//! Stitching per-shard schedules into one global schedule.
//!
//! The sharded driver (`convergent-core`) schedules every shard of a
//! [`Decomposition`] independently, each against cycle 0 of an empty
//! machine. This module merges those per-shard [`SpaceTimeSchedule`]s
//! into one schedule for the original graph:
//!
//! 1. Shards are committed in decomposition order. Each shard is
//!    shifted forward by a per-shard offset `δ` chosen so that (a) no
//!    operation lands on a `(cluster, fu, cycle)` issue slot an earlier
//!    shard already claimed, and (b) every cross-shard dependence is
//!    satisfied.
//! 2. A *boundary COMM fix-up* inserts the transfers that carry values
//!    across shard boundaries — the shard schedulers never saw those
//!    edges. Transfers depart the producer's cluster, are deduplicated
//!    per `(producer, destination cluster)`, and on copy-based machines
//!    occupy the earliest free copy-capable slot; if no slot meets the
//!    consumer's deadline, `δ` is raised until one does.
//!
//! Shifting a shard uniformly preserves its internal dependences and
//! resource shape, and rebuilding against the *global* graph can only
//! shrink effective latencies (a shard-local root with cross-shard
//! predecessors loses its live-in charge), so the merged schedule
//! passes [`crate::validate`] whenever the shard schedules did.

use std::collections::{HashMap, HashSet};

use convergent_ir::{ClusterId, Cycle, Dag, Decomposition, Edge, InstrId, OpClass};
use convergent_machine::Machine;

use crate::{effective_latency_in, ScheduleBuilder, SimError, SpaceTimeSchedule};

/// Result of stitching: the merged schedule plus how the shards were
/// placed in time.
#[derive(Clone, Debug)]
pub struct StitchReport {
    /// The merged, globally-valid schedule.
    pub schedule: SpaceTimeSchedule,
    /// Cycle offset applied to each shard, in shard order.
    pub offsets: Vec<u32>,
    /// Number of cross-shard transfers inserted by the boundary fix-up.
    pub boundary_comms: usize,
}

/// Merges per-shard schedules into one schedule for `dag`.
///
/// `parts[k]` must be a schedule for `decomposition.shards()[k].dag()`
/// on the same `machine`.
///
/// # Errors
///
/// Returns [`SimError::NoTransferUnit`] if a boundary transfer must
/// depart a cluster with no copy-capable unit on a copy-based machine,
/// and propagates [`ScheduleBuilder::build`] errors.
///
/// # Panics
///
/// Panics if `parts` does not have exactly one schedule per shard.
pub fn stitch(
    dag: &Dag,
    machine: &Machine,
    decomposition: &Decomposition,
    parts: &[SpaceTimeSchedule],
) -> Result<StitchReport, SimError> {
    let shards = decomposition.shards();
    assert_eq!(parts.len(), shards.len(), "one schedule per shard required");

    // Incoming cross edges per destination shard.
    let mut incoming: Vec<Vec<Edge>> = vec![Vec::new(); shards.len()];
    for &e in decomposition.cross_edges() {
        incoming[decomposition.shard_of(e.dst)].push(e);
    }
    // Producers whose value crosses a shard boundary.
    let cross_sources: HashSet<InstrId> =
        decomposition.cross_edges().iter().map(|e| e.src).collect();
    // Copy-capable issue slots per cluster, for boundary transfers.
    let copy_fus: Vec<Vec<usize>> = machine
        .cluster_ids()
        .map(|c| {
            machine
                .cluster(c)
                .fus()
                .iter()
                .enumerate()
                .filter(|(_, fu)| fu.can_execute(OpClass::Copy))
                .map(|(idx, _)| idx)
                .collect()
        })
        .collect();
    let register_mapped = machine.comm().register_mapped;

    // Committed issue slots, the per-lane frontier (first cycle past
    // every committed slot of that lane), and value availability of
    // cross-shard producers per cluster.
    let mut occupied: HashSet<(u16, usize, u32)> = HashSet::new();
    let mut frontier: HashMap<(u16, usize), u32> = HashMap::new();
    let mut avail: HashMap<(InstrId, u16), u32> = HashMap::new();
    let mut placed_cluster: HashMap<InstrId, ClusterId> = HashMap::new();

    let mut builder = ScheduleBuilder::new(dag);
    let mut offsets = Vec::with_capacity(shards.len());
    let mut boundary_comms = 0usize;

    for (k, shard) in shards.iter().enumerate() {
        let part = &parts[k];
        // Plan the tightest deadlines first so the dedup by
        // (producer, destination cluster) serves them.
        incoming[k].sort_by_key(|e| {
            let local = decomposition.local_id(e.dst);
            (part.op(local).start, e.dst, e.src)
        });

        // Resource lower bound: every shard slot must clear the
        // committed frontier of its lane.
        let mut delta: u32 = 0;
        for op in part.ops() {
            if let Some(&f) = frontier.get(&(op.cluster.raw(), op.fu)) {
                delta = delta.max(f.saturating_sub(op.start.get()));
            }
        }
        for comm in part.comms() {
            if let Some(fu) = comm.fu {
                if let Some(&f) = frontier.get(&(comm.from.raw(), fu)) {
                    delta = delta.max(f.saturating_sub(comm.start.get()));
                }
            }
        }
        // Dependence lower bound: the earliest any cross-shard value
        // could reach its consumer's cluster.
        for e in &incoming[k] {
            let op = part.op(decomposition.local_id(e.dst));
            let need = match avail.get(&(e.src, op.cluster.raw())) {
                Some(&t) => t,
                None => {
                    let c_u = placed_cluster[&e.src];
                    avail[&(e.src, c_u.raw())] + machine.comm_latency(c_u, op.cluster)
                }
            };
            delta = delta.max(need.saturating_sub(op.start.get()));
        }

        // Plan boundary transfers, raising `delta` until every deadline
        // is met. Raising `delta` only relaxes deadlines (transfer
        // slots do not move later), so this terminates.
        'place: loop {
            let mut cells: HashSet<(u16, usize, u32)> =
                HashSet::with_capacity(part.ops().len() + part.comms().len());
            for op in part.ops() {
                cells.insert((op.cluster.raw(), op.fu, op.start.get() + delta));
            }
            for comm in part.comms() {
                if let Some(fu) = comm.fu {
                    cells.insert((comm.from.raw(), fu, comm.start.get() + delta));
                }
            }
            let mut new_comms: Vec<(InstrId, ClusterId, ClusterId, u32, Option<usize>)> =
                Vec::new();
            let mut trial_avail: HashMap<(InstrId, u16), u32> = HashMap::new();
            for e in &incoming[k] {
                let op = part.op(decomposition.local_id(e.dst));
                let c_w = op.cluster;
                let deadline = op.start.get() + delta;
                let known = avail
                    .get(&(e.src, c_w.raw()))
                    .or_else(|| trial_avail.get(&(e.src, c_w.raw())));
                if let Some(&t) = known {
                    if t <= deadline {
                        continue;
                    }
                    delta += t - deadline;
                    continue 'place;
                }
                let c_u = placed_cluster[&e.src];
                let ready = avail[&(e.src, c_u.raw())];
                let lat = machine.comm_latency(c_u, c_w);
                if register_mapped {
                    // Register-mapped networks: the transfer occupies
                    // no issue slot; inject as soon as the value is
                    // produced.
                    let arrival = ready + lat;
                    if arrival > deadline {
                        delta += arrival - deadline;
                        continue 'place;
                    }
                    new_comms.push((e.src, c_u, c_w, ready, None));
                    trial_avail.insert((e.src, c_w.raw()), arrival);
                } else {
                    let lanes = &copy_fus[c_u.index()];
                    if lanes.is_empty() {
                        return Err(SimError::NoTransferUnit { cluster: c_u });
                    }
                    let mut t = ready;
                    let fu = loop {
                        let free = lanes.iter().copied().find(|&f| {
                            let cell = (c_u.raw(), f, t);
                            !occupied.contains(&cell) && !cells.contains(&cell)
                        });
                        match free {
                            Some(f) => break f,
                            None => t += 1,
                        }
                    };
                    if t + lat > deadline {
                        delta += t + lat - deadline;
                        continue 'place;
                    }
                    cells.insert((c_u.raw(), fu, t));
                    new_comms.push((e.src, c_u, c_w, t, Some(fu)));
                    trial_avail.insert((e.src, c_w.raw()), t + lat);
                }
            }

            // Commit the shard at this offset.
            for &cell in &cells {
                let lane = frontier.entry((cell.0, cell.1)).or_insert(0);
                *lane = (*lane).max(cell.2 + 1);
            }
            occupied.extend(cells);
            for op in part.ops() {
                let g = shard.global_id(op.instr);
                builder.place(g, op.cluster, op.fu, Cycle::new(op.start.get() + delta));
                if cross_sources.contains(&g) {
                    let finish =
                        op.start.get() + delta + effective_latency_in(dag, machine, g, op.cluster);
                    avail.insert((g, op.cluster.raw()), finish);
                    placed_cluster.insert(g, op.cluster);
                }
            }
            for comm in part.comms() {
                let g = shard.global_id(comm.producer);
                builder.comm(
                    g,
                    comm.from,
                    comm.to,
                    Cycle::new(comm.start.get() + delta),
                    comm.fu,
                );
                if cross_sources.contains(&g) {
                    let arrival = comm.start.get() + delta + comm.latency;
                    let known = avail.entry((g, comm.to.raw())).or_insert(arrival);
                    *known = (*known).min(arrival);
                }
            }
            for (producer, from, to, start, fu) in new_comms {
                builder.comm(producer, from, to, Cycle::new(start), fu);
                boundary_comms += 1;
                let arrival = start + machine.comm_latency(from, to);
                let known = avail.entry((producer, to.raw())).or_insert(arrival);
                *known = (*known).min(arrival);
            }
            offsets.push(delta);
            break;
        }
    }

    let schedule = builder.build(machine)?;
    Ok(StitchReport {
        schedule,
        offsets,
        boundary_comms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use convergent_ir::{decompose, DagBuilder, Opcode};

    /// Schedules a shard the dumbest legal way: everything on cluster 0
    /// back to back (single-cluster, no comms).
    fn serial_schedule(dag: &Dag, machine: &Machine) -> SpaceTimeSchedule {
        let mut sb = ScheduleBuilder::new(dag);
        let mut t = 0u32;
        for &i in dag.topo_order() {
            let c = ClusterId::new(0);
            let class = dag.instr(i).class();
            let fu = machine
                .cluster(c)
                .fus()
                .iter()
                .position(|f| f.can_execute(class))
                .expect("cluster 0 executes everything in these tests");
            sb.place(i, c, fu, Cycle::new(t));
            t += effective_latency_in(dag, machine, i, c).max(1);
        }
        sb.build(machine).unwrap()
    }

    fn two_chains() -> Dag {
        let mut b = DagBuilder::new();
        for _ in 0..2 {
            let a = b.instr(Opcode::IntAlu);
            let c = b.instr(Opcode::IntAlu);
            b.edge(a, c).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn disjoint_shards_stitch_and_validate() {
        let dag = two_chains();
        let m = Machine::chorus_vliw(2);
        let dec = decompose(&dag, 2);
        assert_eq!(dec.shards().len(), 2);
        let parts: Vec<SpaceTimeSchedule> = dec
            .shards()
            .iter()
            .map(|s| serial_schedule(s.dag(), &m))
            .collect();
        let report = stitch(&dag, &m, &dec, &parts).unwrap();
        validate(&dag, &m, &report.schedule).unwrap();
        assert_eq!(report.offsets.len(), 2);
        assert_eq!(report.offsets[0], 0);
        // Both shards used the same lane, so the second is pushed past
        // the first.
        assert!(report.offsets[1] > 0);
        assert_eq!(report.boundary_comms, 0);
    }

    #[test]
    fn cross_shard_edges_get_boundary_comms_on_vliw() {
        // A giant chain cut at an articulation vertex plus dust, so the
        // decomposition produces cross edges.
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 1..9 {
            let next = b.instr(Opcode::IntAlu);
            b.edge(prev, next).unwrap();
            prev = next;
        }
        let d1 = b.instr(Opcode::Load);
        let d2 = b.instr(Opcode::Store);
        b.edge(d1, d2).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let dec = decompose(&dag, 8);
        assert!(!dec.cross_edges().is_empty());
        let parts: Vec<SpaceTimeSchedule> = dec
            .shards()
            .iter()
            .map(|s| serial_schedule(s.dag(), &m))
            .collect();
        let report = stitch(&dag, &m, &dec, &parts).unwrap();
        validate(&dag, &m, &report.schedule).unwrap();
        // All shard pieces run on cluster 0, so cross-shard values
        // never change cluster: the fix-up only needs time offsets.
        assert_eq!(report.boundary_comms, 0);
    }

    #[test]
    fn boundary_comm_inserted_when_consumer_moves_cluster() {
        // Chain cut into two shards; schedule the second shard on
        // cluster 1 to force a transfer.
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 1..7 {
            let next = b.instr(Opcode::IntAlu);
            b.edge(prev, next).unwrap();
            prev = next;
        }
        let d1 = b.instr(Opcode::Load);
        let d2 = b.instr(Opcode::Store);
        b.edge(d1, d2).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let dec = decompose(&dag, 8);
        assert!(dec.shards().len() >= 3);
        assert!(!dec.cross_edges().is_empty());
        let last_chain_shard = decomposition_last_chain(&dec);
        let parts: Vec<SpaceTimeSchedule> = dec
            .shards()
            .iter()
            .enumerate()
            .map(|(k, s)| {
                if k == last_chain_shard {
                    // Everything on cluster 1.
                    let mut sb = ScheduleBuilder::new(s.dag());
                    let mut t = 0u32;
                    for &i in s.dag().topo_order() {
                        let c = ClusterId::new(1);
                        sb.place(i, c, 0, Cycle::new(t));
                        t += effective_latency_in(s.dag(), &m, i, c).max(1);
                    }
                    sb.build(&m).unwrap()
                } else {
                    serial_schedule(s.dag(), &m)
                }
            })
            .collect();
        let report = stitch(&dag, &m, &dec, &parts).unwrap();
        validate(&dag, &m, &report.schedule).unwrap();
        assert!(report.boundary_comms >= 1);
        // The inserted transfer occupies a copy-capable slot.
        let inserted = report
            .schedule
            .comms()
            .iter()
            .find(|c| c.to == ClusterId::new(1))
            .expect("a transfer into cluster 1 exists");
        let fu = inserted.fu.expect("vliw transfers occupy a slot");
        assert!(m.cluster(inserted.from).fus()[fu].can_execute(OpClass::Copy));
    }

    /// Index of the shard holding the chain's final instruction (the
    /// downstream piece of the articulation cut).
    fn decomposition_last_chain(dec: &Decomposition) -> usize {
        let mut best = (0, InstrId::new(0));
        for (k, s) in dec.shards().iter().enumerate() {
            for &g in s.to_global() {
                // The chain occupies ids 0..7; the dust 7..9.
                if g.index() < 7 && g >= best.1 {
                    best = (k, g);
                }
            }
        }
        best.0
    }

    #[test]
    fn register_mapped_machines_use_free_transfers() {
        let mut b = DagBuilder::new();
        // Two preplaced chains on different tiles plus a cross link
        // after the cut... simpler: two components, then check raw
        // stitching validates.
        for tile in 0..2u16 {
            let a = b.preplaced_instr(Opcode::Load, ClusterId::new(tile));
            let c = b.preplaced_instr(Opcode::Store, ClusterId::new(tile));
            b.edge(a, c).unwrap();
        }
        let dag = b.build().unwrap();
        let m = Machine::raw(2);
        let dec = decompose(&dag, 2);
        let parts: Vec<SpaceTimeSchedule> = dec
            .shards()
            .iter()
            .map(|s| {
                let mut sb = ScheduleBuilder::new(s.dag());
                let mut t = 0u32;
                for &i in s.dag().topo_order() {
                    let c = s.dag().instr(i).preplacement().unwrap();
                    sb.place(i, c, 0, Cycle::new(t));
                    t += effective_latency_in(s.dag(), &m, i, c).max(1);
                }
                sb.build(&m).unwrap()
            })
            .collect();
        let report = stitch(&dag, &m, &dec, &parts).unwrap();
        validate(&dag, &m, &report.schedule).unwrap();
    }

    #[test]
    fn trivial_decomposition_preserves_the_part() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let c = b.instr(Opcode::IntAlu);
        b.edge(a, c).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let dec = decompose(&dag, 4);
        assert!(dec.is_trivial());
        let part = serial_schedule(dec.shards()[0].dag(), &m);
        let report = stitch(&dag, &m, &dec, std::slice::from_ref(&part)).unwrap();
        assert_eq!(report.schedule, part);
        assert_eq!(report.offsets, vec![0]);
    }
}
