//! Shared scaffolding for benchmark generators.
//!
//! The paper's benchmarks reach the scheduler as data-dependence
//! graphs of unrolled inner loops, with memory operations *preplaced*
//! on the cluster owning their bank (the congruence analysis of
//! Section 5 interleaves arrays across clusters, typically by row or
//! by element index modulo the cluster count). [`Kb`] wraps
//! [`DagBuilder`] with exactly those idioms: banked loads/stores,
//! operator application, and reduction shapes.

use std::collections::HashMap;

use convergent_ir::{ClusterId, DagBuilder, InstrId, Instruction, Opcode, SchedulingUnit};

/// Kernel builder: a [`DagBuilder`] plus banked-memory helpers.
#[derive(Debug)]
pub(crate) struct Kb {
    b: DagBuilder,
    n_banks: u16,
    load_cache: HashMap<String, InstrId>,
}

impl Kb {
    /// Creates a builder for a machine with `n_banks` memory banks
    /// (one per cluster).
    ///
    /// # Panics
    ///
    /// Panics if `n_banks` is zero.
    pub(crate) fn new(n_banks: u16) -> Self {
        assert!(n_banks > 0, "need at least one bank");
        Kb {
            b: DagBuilder::new(),
            n_banks,
            load_cache: HashMap::new(),
        }
    }

    /// The bank (cluster) owning element `index` under modulo
    /// interleaving.
    pub(crate) fn bank(&self, index: i64) -> ClusterId {
        ClusterId::new(index.rem_euclid(i64::from(self.n_banks)) as u16)
    }

    /// A load preplaced on the bank of `index`.
    pub(crate) fn load(&mut self, index: i64, name: &str) -> InstrId {
        let home = self.bank(index);
        self.b
            .push(Instruction::preplaced(Opcode::Load, home).with_name(name))
    }

    /// A load preplaced on the bank of `index`, memoized by `name`:
    /// repeated requests for the same element return the existing
    /// load. This models common-subexpression elimination of array
    /// reads — in real stencil code adjacent points *share* their
    /// overlapping loads, which is what creates cross-point dependence
    /// edges and makes spatial assignment interesting.
    pub(crate) fn load_cached(&mut self, index: i64, name: &str) -> InstrId {
        if let Some(&id) = self.load_cache.get(name) {
            return id;
        }
        let id = self.load(index, name);
        self.load_cache.insert(name.to_string(), id);
        id
    }

    /// A load with no placement constraint (e.g. a scalar kept in a
    /// register or replicated constant table).
    pub(crate) fn load_free(&mut self, name: &str) -> InstrId {
        self.b.push(Instruction::new(Opcode::Load).with_name(name))
    }

    /// A store of `value`, preplaced on the bank of `index`.
    pub(crate) fn store(&mut self, index: i64, name: &str, value: InstrId) -> InstrId {
        let home = self.bank(index);
        let st = self
            .b
            .push(Instruction::preplaced(Opcode::Store, home).with_name(name));
        self.edge(value, st);
        st
    }

    /// A store of `value` with no placement constraint (spilling a
    /// register-resident scalar; no bank discipline applies).
    pub(crate) fn store_free(&mut self, name: &str, value: InstrId) -> InstrId {
        let st = self.b.push(Instruction::new(Opcode::Store).with_name(name));
        self.edge(value, st);
        st
    }

    /// An operation consuming `inputs`.
    pub(crate) fn op(&mut self, opcode: Opcode, inputs: &[InstrId]) -> InstrId {
        let id = self.b.instr(opcode);
        for &src in inputs {
            self.edge(src, id);
        }
        id
    }

    /// A constant materialization.
    pub(crate) fn constant(&mut self, name: &str) -> InstrId {
        self.b.push(Instruction::new(Opcode::Const).with_name(name))
    }

    fn edge(&mut self, src: InstrId, dst: InstrId) {
        self.b
            .edge_dedup(src, dst)
            .expect("generator edges reference existing instructions");
    }

    /// Balanced binary reduction of `values` with `opcode`
    /// (log-depth: the shape compilers produce for reassociable FP
    /// sums under `-ffast-math` and for integer sums).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub(crate) fn reduce_tree(&mut self, opcode: Opcode, values: &[InstrId]) -> InstrId {
        assert!(!values.is_empty(), "cannot reduce zero values");
        let mut layer: Vec<InstrId> = values.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                match pair {
                    [a, b] => next.push(self.op(opcode, &[*a, *b])),
                    [a] => next.push(*a),
                    _ => unreachable!("chunks(2)"),
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Serial accumulation of `values` with `opcode` (linear depth:
    /// the shape strict FP semantics force).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub(crate) fn reduce_chain(&mut self, opcode: Opcode, values: &[InstrId]) -> InstrId {
        assert!(!values.is_empty(), "cannot reduce zero values");
        let mut acc = values[0];
        for &v in &values[1..] {
            acc = self.op(opcode, &[acc, v]);
        }
        acc
    }

    /// Finalizes the unit.
    ///
    /// # Panics
    ///
    /// Panics if the generator produced an invalid graph (a generator
    /// bug, not user error).
    pub(crate) fn finish(self, name: &str) -> SchedulingUnit {
        let dag = self
            .b
            .build()
            .expect("generators produce non-empty acyclic graphs");
        SchedulingUnit::new(name, dag).with_kind(convergent_ir::RegionKind::Trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banking_is_modular() {
        let kb = Kb::new(4);
        assert_eq!(kb.bank(0), ClusterId::new(0));
        assert_eq!(kb.bank(5), ClusterId::new(1));
        assert_eq!(kb.bank(-1), ClusterId::new(3)); // rem_euclid
    }

    #[test]
    fn reduce_tree_is_log_depth() {
        let mut kb = Kb::new(2);
        let vals: Vec<InstrId> = (0..8).map(|k| kb.load(k, "x")).collect();
        let root = kb.reduce_tree(Opcode::FAdd, &vals);
        let unit = kb.finish("t");
        // 8 loads + 7 adds.
        assert_eq!(unit.dag().len(), 15);
        let time = convergent_ir::TimeAnalysis::compute(unit.dag(), |_| 1);
        // Depth: load + 3 add layers = earliest start 3 for the root.
        assert_eq!(time.earliest_start(root), 3);
    }

    #[test]
    fn reduce_chain_is_linear_depth() {
        let mut kb = Kb::new(2);
        let vals: Vec<InstrId> = (0..8).map(|k| kb.load(k, "x")).collect();
        let root = kb.reduce_chain(Opcode::FAdd, &vals);
        let time = {
            let unit = kb.finish("t");
            assert_eq!(unit.dag().len(), 15);
            convergent_ir::TimeAnalysis::compute(unit.dag(), |_| 1)
        };
        assert_eq!(time.earliest_start(root), 7);
    }

    #[test]
    fn stores_depend_on_their_value() {
        let mut kb = Kb::new(2);
        let v = kb.load(0, "a");
        let st = kb.store(1, "c", v);
        let unit = kb.finish("t");
        assert_eq!(unit.dag().preds(st), &[v]);
        assert_eq!(unit.dag().instr(st).preplacement(), Some(ClusterId::new(1)));
    }
}
