//! Region decomposition for sharded scheduling.
//!
//! Convergent scheduling's passes are independent *across* weakly-
//! connected regions of a scheduling unit: no preference, dependence, or
//! placement information flows between instructions that share no path.
//! The driver is superlinear in region size, though, so beyond grouping
//! components this module also cuts *connected* regions down to a target
//! size ([`RegionPolicy::region_size`]): the largest oversize region is
//! split repeatedly — at an articulation vertex when one separates a
//! useful fraction, falling back to a k-way chop along the graph's
//! global topological levels — until every region fits or no
//! profitable cut remains. Chopping every entry at *global* level
//! boundaries keeps all cut planes aligned with the graph's layer
//! structure, so separate chops share boundaries instead of inventing
//! skewed local ones, which keeps the stitched cross-edge bill low. The
//! driver can then run the full pass pipeline on every shard
//! concurrently and stitch the per-shard schedules back together
//! (`convergent-sim`'s `stitch`).
//!
//! Two invariants matter to the callers:
//!
//! * **Connected graphs at or under the region target are never cut.**
//!   Sharding such a graph at any shard count returns one shard that is
//!   the input graph itself, which is what lets the driver promise
//!   byte-identical schedules for `--shards N` on small connected
//!   inputs. Larger connected graphs *are* cut, trading byte-identity
//!   for bounded region size; the driver's cut governor guards the
//!   quality of that trade.
//! * **Cross-shard edges always point from an earlier shard to a later
//!   one.** The shard list is a topological order of the shard quotient
//!   graph, so the stitch phase can commit shards left to right and only
//!   ever look backwards for producers.

use std::collections::HashMap;

use crate::{Dag, DagBuilder, Edge, InstrId};

/// Default region-size target for [`decompose`], in instructions.
///
/// Tuned from the `compiletime` bench sweep: per-instruction throughput
/// is near its peak up to ~2000 instructions and falls superlinearly
/// past it (268k instrs/s at 2000 vs 75k at 100k on the 1-vCPU bench
/// host), so 2000 is the knee where cutting starts to pay.
pub const DEFAULT_REGION_SIZE: usize = 2000;

/// Hard cap on the number of regions a single decomposition may
/// produce, bounding pathological recursion on adversarial graphs.
const MAX_REGIONS: usize = 1024;

/// Fraction of an entry that a recursive articulation cut must move out
/// of its largest piece to count as progress: the largest piece must
/// hold at most `7/8` of the entry, else the cut is rejected and the
/// level cut is tried instead.
const CUT_PROGRESS_NUM: usize = 7;
const CUT_PROGRESS_DEN: usize = 8;

/// Reusable scratch for the cut helpers: stamp arrays sized to the
/// graph make membership tests and flood fills O(1) per step with no
/// per-entry hashing or allocation — decompose stays near-linear even
/// when the recursion touches the same nodes several times.
struct Scratch {
    /// `mark[i] == stamp` iff node `i` belongs to the current entry.
    mark: Vec<u32>,
    /// Dense local index of node `i` within the current entry (valid
    /// only where `mark` matches).
    local: Vec<u32>,
    /// `visit[i] == vstamp` iff the current flood fill reached `i`.
    visit: Vec<u32>,
    /// Piece id assigned by the current flood fill (valid where
    /// `visit` matches).
    piece: Vec<u32>,
    stamp: u32,
    vstamp: u32,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            mark: vec![0; n],
            local: vec![0; n],
            visit: vec![0; n],
            piece: vec![0; n],
            stamp: 0,
            vstamp: 0,
        }
    }

    /// Marks `ids` as the current entry and assigns dense local
    /// indices in slice order.
    fn set_entry(&mut self, ids: &[InstrId]) {
        self.stamp += 1;
        for (k, &g) in ids.iter().enumerate() {
            self.mark[g.index()] = self.stamp;
            #[allow(clippy::cast_possible_truncation)]
            {
                self.local[g.index()] = k as u32;
            }
        }
    }

    fn contains(&self, g: InstrId) -> bool {
        self.mark[g.index()] == self.stamp
    }
}

/// Controls how [`decompose_with`] splits a graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionPolicy {
    /// Concurrency budget: the cap on bins that disconnected components
    /// are packed into. Recursive cuts of oversize regions may produce
    /// more shards than this — extra shards simply queue on the worker
    /// pool — but `max_shards <= 1` disables decomposition entirely.
    pub max_shards: usize,
    /// Target region size in instructions; regions larger than this are
    /// recursively cut while profitable cuts exist. `None` uses
    /// [`DEFAULT_REGION_SIZE`].
    pub region_size: Option<usize>,
}

impl RegionPolicy {
    /// Policy with the default region-size target.
    #[must_use]
    pub fn new(max_shards: usize) -> Self {
        Self {
            max_shards,
            region_size: None,
        }
    }

    /// Sets an explicit region-size target.
    #[must_use]
    pub fn with_region_size(mut self, region_size: usize) -> Self {
        self.region_size = Some(region_size);
        self
    }

    /// The effective region-size target (never zero).
    #[must_use]
    pub fn target_region_size(&self) -> usize {
        self.region_size.unwrap_or(DEFAULT_REGION_SIZE).max(1)
    }
}

/// One shard of a decomposed graph: an induced sub-DAG plus the mapping
/// from its dense local ids back to the original graph.
#[derive(Clone, Debug)]
pub struct Shard {
    dag: Dag,
    to_global: Vec<InstrId>,
}

impl Shard {
    /// The induced sub-DAG. Local ids are dense and id-ordered: local
    /// `k` is the `k`-th smallest global id in the shard.
    #[must_use]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Global ids in local-id order.
    #[must_use]
    pub fn to_global(&self) -> &[InstrId] {
        &self.to_global
    }

    /// Maps a local instruction id back to the original graph.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range for this shard.
    #[must_use]
    pub fn global_id(&self, local: InstrId) -> InstrId {
        self.to_global[local.index()]
    }

    /// Number of instructions in this shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.to_global.len()
    }

    /// Always `false`: shards are built from nonempty id sets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.to_global.is_empty()
    }
}

/// A complete decomposition of a graph into shards.
#[derive(Clone, Debug)]
pub struct Decomposition {
    shards: Vec<Shard>,
    shard_of: Vec<usize>,
    local_of: Vec<InstrId>,
    cross_edges: Vec<Edge>,
}

impl Decomposition {
    /// The shards, in stitch (topological) order.
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Index of the shard containing global instruction `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for the decomposed graph.
    #[must_use]
    pub fn shard_of(&self, i: InstrId) -> usize {
        self.shard_of[i.index()]
    }

    /// Local id of global instruction `i` within its shard.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for the decomposed graph.
    #[must_use]
    pub fn local_id(&self, i: InstrId) -> InstrId {
        self.local_of[i.index()]
    }

    /// Edges (in global ids) whose endpoints live in different shards.
    /// The source's shard index is always strictly smaller than the
    /// destination's.
    #[must_use]
    pub fn cross_edges(&self) -> &[Edge] {
        &self.cross_edges
    }

    /// `true` if the graph was not split (one shard = the whole graph).
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.shards.len() == 1
    }
}

/// Returns the weakly-connected components of `dag`.
///
/// Each component's ids are sorted ascending; components are ordered by
/// their smallest id. The union of the components is exactly the id set
/// of the graph.
#[must_use]
pub fn weakly_connected_components(dag: &Dag) -> Vec<Vec<InstrId>> {
    let n = dag.len();
    let mut comp = vec![usize::MAX; n];
    let mut components: Vec<Vec<InstrId>> = Vec::new();
    let mut stack = Vec::new();
    for start in dag.ids() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        comp[start.index()] = id;
        stack.push(start);
        while let Some(i) = stack.pop() {
            members.push(i);
            for nb in dag.neighbors(i) {
                if comp[nb.index()] == usize::MAX {
                    comp[nb.index()] = id;
                    stack.push(nb);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    // Seeding in id order already yields components ordered by their
    // minimum id; keep the invariant explicit regardless.
    components.sort_by_key(|c| c[0]);
    components
}

/// How dominant the largest component must be (as a fraction of the
/// graph) before [`decompose`] attempts an articulation cut on it.
const GIANT_FRACTION_NUM: usize = 3;
const GIANT_FRACTION_DEN: usize = 4;

/// Most articulation candidates whose directional split is evaluated;
/// candidates are ranked by the balance of their DFS-tree separation
/// first, so the cap costs quality only on adversarial graphs.
const MAX_CUT_CANDIDATES: usize = 8;

/// Splits `dag` into shards under the default [`RegionPolicy`] for
/// `max_shards` (region-size target [`DEFAULT_REGION_SIZE`]).
///
/// See [`decompose_with`] for the full contract.
#[must_use]
pub fn decompose(dag: &Dag, max_shards: usize) -> Decomposition {
    decompose_with(dag, &RegionPolicy::new(max_shards))
}

/// Splits `dag` into shards under `policy`.
///
/// The shard list is a topological order of the shard quotient graph:
/// every cross-shard edge points from an earlier shard to a later one.
///
/// * `max_shards <= 1`, or a connected graph at or under the region
///   target: one shard containing the whole graph, ids mapped
///   identically (sharded scheduling degenerates to the monolithic
///   path, byte-identically).
/// * Several components: components are bin-packed (largest first into
///   the lightest bin) into at most `max_shards` bins — more when the
///   total exceeds `max_shards` regions of the target size. A dominant
///   giant component (more than 3/4 of the instructions, with shard
///   slots to spare) is first cut at its best articulation vertex.
/// * Any region larger than the target — a big connected graph, a big
///   piece of the giant, a heavy bin — is recursively cut: at its best
///   articulation vertex when one moves at least 1/8 of the region out
///   of the largest piece, else chopped into runs of consecutive
///   global topological levels of at most the target size. Regions
///   where neither cut qualifies stay whole ("no profitable cut").
#[must_use]
pub fn decompose_with(dag: &Dag, policy: &RegionPolicy) -> Decomposition {
    let everything: Vec<InstrId> = dag.ids().collect();
    if policy.max_shards <= 1 {
        return assemble(dag, vec![everything]);
    }
    let target = policy.target_region_size();
    let components = weakly_connected_components(dag);
    if components.len() == 1 && components[0].len() <= target {
        return assemble(dag, vec![everything]);
    }
    let mut scratch = Scratch::new(dag.len());
    // Longest-path levels over the whole graph, shared by every level
    // chop below.
    let mut levels = vec![0u32; dag.len()];
    for &g in dag.topo_order() {
        let l = dag
            .preds(g)
            .iter()
            .map(|p| levels[p.index()] + 1)
            .max()
            .unwrap_or(0);
        levels[g.index()] = l;
    }

    // Entries are ordered groups; `free` entries are whole components
    // (no cross edges) that may be packed together at the end, the rest
    // are cut pieces that must keep their position in the sequence.
    struct Entry {
        ids: Vec<InstrId>,
        free: bool,
        tried: bool,
    }
    let mut entries: Vec<Entry> = Vec::new();

    if components.len() == 1 {
        entries.push(Entry {
            ids: everything,
            free: true,
            tried: false,
        });
    } else {
        let giant_idx = components
            .iter()
            .enumerate()
            .max_by_key(|(idx, c)| (c.len(), usize::MAX - idx))
            .map(|(idx, _)| idx)
            .unwrap_or(0);
        let giant_len = components[giant_idx].len();
        let dominates = giant_len * GIANT_FRACTION_DEN > dag.len() * GIANT_FRACTION_NUM;
        // Cutting the giant needs spare shard slots: its pieces each
        // take one, and every other component still needs somewhere to
        // go.
        let has_room = components.len() + 1 < policy.max_shards;

        let mut chain: Vec<Vec<InstrId>> = Vec::new();
        let mut free: Vec<Vec<InstrId>> = Vec::new();
        if dominates && has_room {
            match articulation_cut(dag, &components[giant_idx], &mut scratch) {
                Some(pieces) => chain = pieces,
                None => free.push(components[giant_idx].clone()),
            }
            for (idx, c) in components.into_iter().enumerate() {
                if idx != giant_idx {
                    free.push(c);
                }
            }
            free.sort_by_key(|c| c[0]);
        } else {
            free = components;
        }
        // Free components carry no cross edges so they can go anywhere;
        // the chain pieces must keep their relative order, so they go
        // last.
        for ids in free {
            entries.push(Entry {
                ids,
                free: true,
                tried: false,
            });
        }
        for ids in chain {
            entries.push(Entry {
                ids,
                free: false,
                tried: false,
            });
        }
    }

    // Recursively cut the largest oversize entry until everything fits
    // the target or nothing profitable remains.
    while entries.len() < MAX_REGIONS {
        let Some(k) = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.ids.len() > target && !e.tried)
            .max_by_key(|(k, e)| (e.ids.len(), usize::MAX - k))
            .map(|(k, _)| k)
        else {
            break;
        };
        match cut_entry(dag, &entries[k].ids, target, &levels, &mut scratch) {
            Some(pieces) if entries.len() + pieces.len() - 1 <= MAX_REGIONS => {
                // Replace the entry in place: pieces are internally
                // topologically ordered and inherit the entry's
                // position relative to everything else, so the global
                // quotient order stays topological.
                let tail: Vec<Entry> = entries.drain(k + 1..).collect();
                entries.pop();
                entries.extend(pieces.into_iter().map(|ids| Entry {
                    ids,
                    free: false,
                    tried: false,
                }));
                entries.extend(tail);
            }
            _ => entries[k].tried = true,
        }
    }

    // Pack the free components; cut pieces keep their order.
    let n_chain = entries.iter().filter(|e| !e.free).count();
    let free: Vec<Vec<InstrId>> = entries
        .iter()
        .filter(|e| e.free)
        .map(|e| e.ids.clone())
        .collect();
    let total_free: usize = free.iter().map(Vec::len).sum();
    let allowed = policy.max_shards.saturating_sub(n_chain).max(1);
    let bins = allowed.max(total_free.div_ceil(target));
    let mut groups = pack(free, bins);
    groups.extend(entries.into_iter().filter(|e| !e.free).map(|e| e.ids));
    assemble(dag, groups)
}

/// Cuts one oversize entry (a weakly-connected-or-not ordered id group)
/// into at least two ordered pieces, or returns `None` when no
/// profitable cut exists.
///
/// Strategies, in order:
/// 1. Locally disconnected entries (possible for pieces of earlier
///    cuts) are packed by local component into enough bins to average
///    the target size.
/// 2. An articulation cut, accepted only when its largest piece holds
///    at most 7/8 of the entry.
/// 3. A k-way chop along the graph's global topological levels
///    ([`level_chop`]).
fn cut_entry(
    dag: &Dag,
    ids: &[InstrId],
    target: usize,
    levels: &[u32],
    scratch: &mut Scratch,
) -> Option<Vec<Vec<InstrId>>> {
    let comps = local_components(dag, ids, scratch);
    if comps.len() > 1 {
        return Some(pack(comps, ids.len().div_ceil(target).max(2)));
    }
    if let Some(groups) = articulation_cut(dag, ids, scratch) {
        let largest = groups.iter().map(Vec::len).max().unwrap_or(0);
        if largest * CUT_PROGRESS_DEN <= ids.len() * CUT_PROGRESS_NUM {
            return Some(groups);
        }
    }
    level_chop(ids, levels, target)
}

/// Weakly-connected components of the subgraph induced on `ids`; each
/// sorted ascending, ordered by minimum id.
fn local_components(dag: &Dag, ids: &[InstrId], scratch: &mut Scratch) -> Vec<Vec<InstrId>> {
    scratch.set_entry(ids);
    scratch.vstamp += 1;
    let vs = scratch.vstamp;
    let mut components: Vec<Vec<InstrId>> = Vec::new();
    let mut stack = Vec::new();
    for &start in ids {
        if scratch.visit[start.index()] == vs {
            continue;
        }
        let mut members = Vec::new();
        scratch.visit[start.index()] = vs;
        stack.push(start);
        while let Some(i) = stack.pop() {
            members.push(i);
            for nb in dag.neighbors(i) {
                if scratch.contains(nb) && scratch.visit[nb.index()] != vs {
                    scratch.visit[nb.index()] = vs;
                    stack.push(nb);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components.sort_by_key(|c| c[0]);
    components
}

/// Chops an entry into runs of consecutive *global* topological levels,
/// each holding at most `target` instructions (a single oversize level
/// stays whole — the level boundary is the finest legal cut plane).
///
/// Global longest-path levels strictly increase along every edge, so
/// pieces in ascending level order form a topological chain, and using
/// the same level scale for every entry keeps all chop planes aligned
/// with the graph's layer structure. Returns `None` when the chop makes
/// no progress: fewer than two pieces, or a piece still holding more
/// than 7/8 of the entry (e.g. a star, where one level dominates).
fn level_chop(ids: &[InstrId], levels: &[u32], target: usize) -> Option<Vec<Vec<InstrId>>> {
    if ids.len() < 2 {
        return None;
    }
    let mut sorted: Vec<InstrId> = ids.to_vec();
    sorted.sort_unstable_by_key(|&g| (levels[g.index()], g));
    let mut pieces: Vec<Vec<InstrId>> = Vec::new();
    let mut cur: Vec<InstrId> = Vec::new();
    let mut k = 0usize;
    while k < sorted.len() {
        let level = levels[sorted[k].index()];
        let mut j = k;
        while j < sorted.len() && levels[sorted[j].index()] == level {
            j += 1;
        }
        if !cur.is_empty() && cur.len() + (j - k) > target {
            pieces.push(std::mem::take(&mut cur));
        }
        cur.extend_from_slice(&sorted[k..j]);
        k = j;
    }
    if !cur.is_empty() {
        pieces.push(cur);
    }
    if pieces.len() < 2 {
        return None;
    }
    let largest = pieces.iter().map(Vec::len).max().unwrap_or(0);
    if largest * CUT_PROGRESS_DEN > ids.len() * CUT_PROGRESS_NUM {
        return None;
    }
    for piece in &mut pieces {
        piece.sort_unstable();
    }
    Some(pieces)
}

/// Bin-packs `groups` (disjoint, unordered id sets) into at most `bins`
/// bins by longest-processing-time: largest group first, into the
/// currently lightest bin, ties broken by bin index. Returned bins are
/// sorted ascending internally and ordered by their minimum id.
fn pack(mut groups: Vec<Vec<InstrId>>, bins: usize) -> Vec<Vec<InstrId>> {
    if groups.is_empty() {
        return Vec::new();
    }
    let bins = bins.min(groups.len());
    groups.sort_by_key(|g| (usize::MAX - g.len(), g[0]));
    let mut out: Vec<Vec<InstrId>> = vec![Vec::new(); bins];
    let mut weight = vec![0usize; bins];
    for g in groups {
        let lightest = (0..bins).min_by_key(|&b| (weight[b], b)).unwrap_or(0);
        weight[lightest] += g.len();
        out[lightest].extend(g);
    }
    for bin in &mut out {
        bin.sort_unstable();
    }
    out.sort_by_key(|b| b[0]);
    out
}

/// Cuts a weakly-connected node set at its best articulation vertex.
///
/// Removing an articulation vertex `v` splits the component into pieces
/// that each touch only `v`. Pieces whose edges all point *into* `v`
/// can be scheduled before it, pieces fed only *from* `v` after it, and
/// pieces with edges both ways must stay with `v`. The returned groups
/// — `[upstream, v + mixed, downstream]`, empty groups dropped — are
/// therefore a topological chain. Returns `None` when no articulation
/// vertex moves any instruction out of the middle group.
fn articulation_cut(
    dag: &Dag,
    comp: &[InstrId],
    scratch: &mut Scratch,
) -> Option<Vec<Vec<InstrId>>> {
    scratch.set_entry(comp);
    let candidates = articulation_candidates(dag, comp, scratch);
    let mut best: Option<(usize, Vec<Vec<InstrId>>)> = None;
    for v in candidates.into_iter().take(MAX_CUT_CANDIDATES) {
        let Some(groups) = directional_split(dag, comp, v, scratch) else {
            continue;
        };
        // Score by how much leaves the middle group; a cut that strands
        // everything with `v` is no cut at all.
        let moved: usize = groups
            .iter()
            .filter(|g| !g.contains(&v))
            .map(Vec::len)
            .sum();
        if moved == 0 {
            continue;
        }
        if best.as_ref().is_none_or(|(s, _)| moved > *s) {
            best = Some((moved, groups));
        }
    }
    best.map(|(_, groups)| groups)
}

/// Articulation vertices of the undirected skeleton of `comp`, ranked
/// by the balance of the DFS-subtree separation they induce (best
/// first), ties broken by id.
fn articulation_candidates(dag: &Dag, comp: &[InstrId], scratch: &Scratch) -> Vec<InstrId> {
    let n = comp.len();
    // The caller (`articulation_cut`) has already marked `comp` as the
    // current entry, so membership and dense local indices come from
    // the scratch stamps.
    let adj: Vec<Vec<usize>> = comp
        .iter()
        .map(|&i| {
            dag.neighbors(i)
                .filter(|&g| scratch.contains(g))
                .map(|g| scratch.local[g.index()] as usize)
                .collect()
        })
        .collect();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut subtree = vec![1usize; n];
    let mut parent = vec![usize::MAX; n];
    // Best separation score per articulation vertex found.
    let mut arts: HashMap<usize, usize> = HashMap::new();
    let mut timer = 0usize;
    // Iterative DFS from local node 0; comp is connected so one root
    // covers everything.
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    disc[0] = timer;
    low[0] = timer;
    timer += 1;
    let mut root_children = 0usize;
    while let Some(top) = stack.last_mut() {
        let (u, cursor) = (top.0, top.1);
        if cursor < adj[u].len() {
            top.1 += 1;
            let w = adj[u][cursor];
            if disc[w] == usize::MAX {
                parent[w] = u;
                disc[w] = timer;
                low[w] = timer;
                timer += 1;
                if u == 0 {
                    root_children += 1;
                }
                stack.push((w, 0));
            } else if w != parent[u] {
                low[u] = low[u].min(disc[w]);
            }
        } else {
            stack.pop();
            if let Some(&(p, _)) = stack.last() {
                low[p] = low[p].min(low[u]);
                subtree[p] += subtree[u];
                if p != 0 && low[u] >= disc[p] {
                    // Removing p separates u's subtree; score by how
                    // balanced that separation is.
                    let sep = subtree[u];
                    let score = sep.min(n.saturating_sub(1 + sep));
                    let e = arts.entry(p).or_insert(0);
                    *e = (*e).max(score);
                }
            }
        }
    }
    if root_children > 1 {
        // The DFS root is an articulation vertex when it has more than
        // one tree child; any child subtree is a separation witness.
        let sep = (1..n)
            .filter(|&w| parent[w] == 0)
            .map(|w| subtree[w])
            .min()
            .unwrap_or(0);
        arts.insert(0, sep.min(n.saturating_sub(1 + sep)));
    }
    let mut ranked: Vec<(usize, usize)> = arts.into_iter().collect();
    ranked.sort_by_key(|&(u, score)| (usize::MAX - score, comp[u]));
    ranked.into_iter().map(|(u, _)| comp[u]).collect()
}

/// Splits `comp` around articulation vertex `v` into the ordered groups
/// `[upstream, v + mixed, downstream]` (empty groups dropped). Returns
/// `None` if removing `v` leaves the rest connected (not actually an
/// articulation vertex for this component).
fn directional_split(
    dag: &Dag,
    comp: &[InstrId],
    v: InstrId,
    scratch: &mut Scratch,
) -> Option<Vec<Vec<InstrId>>> {
    // `comp` may be a strict subset of a weakly-connected component (a
    // piece of an earlier cut), so the flood fill must stay inside the
    // induced subgraph — the caller's entry stamps say what's inside.
    scratch.vstamp += 1;
    let vs = scratch.vstamp;
    let mut n_pieces = 0u32;
    let mut stack = Vec::new();
    for &start in comp {
        if start == v || scratch.visit[start.index()] == vs {
            continue;
        }
        let id = n_pieces;
        n_pieces += 1;
        scratch.visit[start.index()] = vs;
        scratch.piece[start.index()] = id;
        stack.push(start);
        while let Some(i) = stack.pop() {
            for nb in dag.neighbors(i) {
                if nb != v && scratch.contains(nb) && scratch.visit[nb.index()] != vs {
                    scratch.visit[nb.index()] = vs;
                    scratch.piece[nb.index()] = id;
                    stack.push(nb);
                }
            }
        }
    }
    if n_pieces < 2 {
        return None;
    }
    // Classify each piece by the direction of its edges with `v`.
    let mut feeds_v = vec![false; n_pieces as usize];
    let mut fed_by_v = vec![false; n_pieces as usize];
    for &p in dag.preds(v) {
        if scratch.visit[p.index()] == vs {
            feeds_v[scratch.piece[p.index()] as usize] = true;
        }
    }
    for &s in dag.succs(v) {
        if scratch.visit[s.index()] == vs {
            fed_by_v[scratch.piece[s.index()] as usize] = true;
        }
    }
    let mut upstream = Vec::new();
    let mut middle = vec![v];
    let mut downstream = Vec::new();
    for &i in comp {
        if i == v {
            continue;
        }
        let id = scratch.piece[i.index()] as usize;
        match (feeds_v[id], fed_by_v[id]) {
            (true, false) => upstream.push(i),
            (false, true) => downstream.push(i),
            // Mixed pieces (or isolated ones, unreachable for a
            // connected component) must stay with the vertex.
            _ => middle.push(i),
        }
    }
    upstream.sort_unstable();
    middle.sort_unstable();
    downstream.sort_unstable();
    let groups: Vec<Vec<InstrId>> = [upstream, middle, downstream]
        .into_iter()
        .filter(|g| !g.is_empty())
        .collect();
    Some(groups)
}

/// Builds the final [`Decomposition`] from ordered disjoint id groups
/// covering the graph.
fn assemble(dag: &Dag, groups: Vec<Vec<InstrId>>) -> Decomposition {
    let mut shard_of = vec![usize::MAX; dag.len()];
    let mut local_of = vec![InstrId::new(0); dag.len()];
    for (k, group) in groups.iter().enumerate() {
        for (local, &g) in group.iter().enumerate() {
            shard_of[g.index()] = k;
            local_of[g.index()] = InstrId::new(local as u32);
        }
    }
    debug_assert!(shard_of.iter().all(|&s| s != usize::MAX));

    let shards: Vec<Shard> = groups
        .into_iter()
        .map(|group| {
            let mut b = DagBuilder::with_capacity(group.len());
            for &g in &group {
                b.push(dag.instr(g).clone());
            }
            for &g in &group {
                for &s in dag.succs(g) {
                    if shard_of[s.index()] == shard_of[g.index()] {
                        b.edge(local_of[g.index()], local_of[s.index()])
                            .expect("induced edge endpoints exist");
                    }
                }
            }
            Shard {
                dag: b
                    .build()
                    .expect("induced subgraph of a DAG is a nonempty DAG"),
                to_global: group,
            }
        })
        .collect();

    let cross_edges: Vec<Edge> = dag
        .edges()
        .filter(|e| shard_of[e.src.index()] != shard_of[e.dst.index()])
        .collect();
    debug_assert!(cross_edges
        .iter()
        .all(|e| shard_of[e.src.index()] < shard_of[e.dst.index()]));

    Decomposition {
        shards,
        shard_of,
        local_of,
        cross_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Opcode;

    /// `k` disjoint chains of length `len`.
    fn chains(k: usize, len: usize) -> Dag {
        let mut b = DagBuilder::new();
        for _ in 0..k {
            let mut prev = b.instr(Opcode::IntAlu);
            for _ in 1..len {
                let next = b.instr(Opcode::IntAlu);
                b.edge(prev, next).unwrap();
                prev = next;
            }
        }
        b.build().unwrap()
    }

    /// A diamond (single component).
    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::Load);
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntMul);
        let z = b.instr(Opcode::Store);
        b.edge(a, x).unwrap();
        b.edge(a, y).unwrap();
        b.edge(x, z).unwrap();
        b.edge(y, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn components_of_disjoint_chains() {
        let d = chains(3, 4);
        let comps = weakly_connected_components(&d);
        assert_eq!(comps.len(), 3);
        for (k, c) in comps.iter().enumerate() {
            let expect: Vec<InstrId> = (0..4).map(|i| InstrId::new((k * 4 + i) as u32)).collect();
            assert_eq!(c, &expect);
        }
    }

    #[test]
    fn connected_graph_is_one_component() {
        let comps = weakly_connected_components(&diamond());
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 4);
    }

    #[test]
    fn single_component_never_cut() {
        for shards in [1, 2, 8, 64] {
            let d = diamond();
            let dec = decompose(&d, shards);
            assert!(dec.is_trivial(), "shards={shards}");
            assert_eq!(dec.shards()[0].len(), d.len());
            assert!(dec.cross_edges().is_empty());
            // Identity mapping.
            for i in d.ids() {
                assert_eq!(dec.shard_of(i), 0);
                assert_eq!(dec.local_id(i), i);
                assert_eq!(dec.shards()[0].global_id(i), i);
            }
        }
    }

    #[test]
    fn disjoint_components_have_no_cross_edges() {
        let d = chains(6, 5);
        let dec = decompose(&d, 3);
        assert_eq!(dec.shards().len(), 3);
        assert!(dec.cross_edges().is_empty());
        // Every instruction appears exactly once, mapped consistently.
        let mut seen = vec![false; d.len()];
        for (k, shard) in dec.shards().iter().enumerate() {
            for (local, &g) in shard.to_global().iter().enumerate() {
                assert!(!seen[g.index()]);
                seen[g.index()] = true;
                assert_eq!(dec.shard_of(g), k);
                assert_eq!(dec.local_id(g), InstrId::new(local as u32));
                assert_eq!(
                    shard.dag().instr(InstrId::new(local as u32)),
                    d.instr(g),
                    "instruction payloads survive induction"
                );
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn packing_balances_shard_sizes() {
        // 4 chains of 10 into 2 bins: 20/20.
        let d = chains(4, 10);
        let dec = decompose(&d, 2);
        assert_eq!(dec.shards().len(), 2);
        assert_eq!(dec.shards()[0].len(), 20);
        assert_eq!(dec.shards()[1].len(), 20);
    }

    #[test]
    fn more_shards_than_components_is_capped() {
        let d = chains(3, 2);
        let dec = decompose(&d, 16);
        assert_eq!(dec.shards().len(), 3);
    }

    #[test]
    fn induced_edges_survive() {
        let d = chains(2, 3);
        let dec = decompose(&d, 2);
        let total_edges: usize = dec.shards().iter().map(|s| s.dag().edge_count()).sum();
        assert_eq!(total_edges + dec.cross_edges().len(), d.edge_count());
        assert_eq!(total_edges, 4);
    }

    #[test]
    fn giant_component_is_cut_at_articulation_vertex() {
        // A bowtie: chain A -> v -> chain C (giant, 9 nodes), plus a
        // 2-node dust component. The giant holds > 3/4 of the graph, so
        // with room to spare it gets cut at v.
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 1..4 {
            let next = b.instr(Opcode::IntAlu);
            b.edge(prev, next).unwrap();
            prev = next;
        }
        let v = b.instr(Opcode::IntMul);
        b.edge(prev, v).unwrap();
        let mut tail = v;
        for _ in 0..4 {
            let next = b.instr(Opcode::IntAlu);
            b.edge(tail, next).unwrap();
            tail = next;
        }
        let d1 = b.instr(Opcode::Load);
        let d2 = b.instr(Opcode::Store);
        b.edge(d1, d2).unwrap();
        let d = b.build().unwrap();

        let dec = decompose(&d, 8);
        assert!(dec.shards().len() >= 3, "giant should be cut");
        // Cross edges all point forward in shard order.
        assert!(!dec.cross_edges().is_empty());
        for e in dec.cross_edges() {
            assert!(dec.shard_of(e.src) < dec.shard_of(e.dst), "{e:?}");
        }
        // Every instruction still appears exactly once.
        let mut seen = vec![false; d.len()];
        for shard in dec.shards() {
            for &g in shard.to_global() {
                assert!(!seen[g.index()]);
                seen[g.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn giant_without_room_stays_whole() {
        // Same bowtie + dust, but only 2 shard slots: no cut, just
        // packing of the two components.
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 1..9 {
            let next = b.instr(Opcode::IntAlu);
            b.edge(prev, next).unwrap();
            prev = next;
        }
        let d1 = b.instr(Opcode::Load);
        let d2 = b.instr(Opcode::Store);
        b.edge(d1, d2).unwrap();
        let d = b.build().unwrap();
        let dec = decompose(&d, 2);
        assert_eq!(dec.shards().len(), 2);
        assert!(dec.cross_edges().is_empty());
    }

    #[test]
    fn max_shards_one_is_identity() {
        let d = chains(4, 3);
        let dec = decompose(&d, 1);
        assert!(dec.is_trivial());
        assert_eq!(dec.shards()[0].len(), d.len());
    }

    /// Asserts the true-partition invariants: every instruction in
    /// exactly one shard, every edge intra-shard or recorded as a
    /// forward cross edge.
    fn assert_partition(dag: &Dag, dec: &Decomposition) {
        let mut seen = vec![false; dag.len()];
        for (k, shard) in dec.shards().iter().enumerate() {
            for (local, &g) in shard.to_global().iter().enumerate() {
                assert!(!seen[g.index()], "{g:?} appears twice");
                seen[g.index()] = true;
                assert_eq!(dec.shard_of(g), k);
                assert_eq!(dec.local_id(g), InstrId::new(local as u32));
            }
        }
        assert!(seen.iter().all(|&s| s), "every instr is in some shard");
        let intra: usize = dec.shards().iter().map(|s| s.dag().edge_count()).sum();
        assert_eq!(intra + dec.cross_edges().len(), dag.edge_count());
        for e in dec.cross_edges() {
            assert!(dec.shard_of(e.src) < dec.shard_of(e.dst), "{e:?}");
        }
    }

    #[test]
    fn connected_chain_is_cut_to_target() {
        let d = chains(1, 100);
        let dec = decompose_with(&d, &RegionPolicy::new(8).with_region_size(25));
        assert!(!dec.is_trivial());
        assert!(dec.shards().len() >= 4);
        for s in dec.shards() {
            assert!(s.len() <= 25, "shard of {} exceeds target", s.len());
        }
        assert_partition(&d, &dec);
    }

    #[test]
    fn connected_graph_under_target_stays_whole() {
        let d = chains(1, 100);
        for shards in [2, 8, 64] {
            let dec = decompose_with(&d, &RegionPolicy::new(shards).with_region_size(100));
            assert!(dec.is_trivial(), "shards={shards}");
        }
        // The default target keeps every small connected graph whole.
        assert!(decompose(&d, 8).is_trivial());
    }

    #[test]
    fn star_has_no_profitable_cut() {
        // A wide fan-in star: the only articulation vertex is the hub,
        // whose removal strands 7/8+ of the graph in one piece, and the
        // level structure is too shallow to balance. No profitable cut
        // exists, so the graph stays whole despite exceeding the
        // target.
        let mut b = DagBuilder::new();
        let sink = b.instr(Opcode::IntAlu);
        for _ in 0..39 {
            let leaf = b.instr(Opcode::Load);
            b.edge(leaf, sink).unwrap();
        }
        let d = b.build().unwrap();
        let dec = decompose_with(&d, &RegionPolicy::new(8).with_region_size(8));
        assert!(dec.is_trivial());
        assert!(dec.cross_edges().is_empty());
    }

    #[test]
    fn level_cut_splits_biconnected_layers() {
        // 10 layers of 4, complete bipartite between consecutive
        // layers: no articulation vertex anywhere, so only the level
        // cut applies.
        let mut b = DagBuilder::new();
        let mut prev: Vec<InstrId> = (0..4).map(|_| b.instr(Opcode::IntAlu)).collect();
        for _ in 1..10 {
            let next: Vec<InstrId> = (0..4).map(|_| b.instr(Opcode::IntAlu)).collect();
            for &p in &prev {
                for &n in &next {
                    b.edge(p, n).unwrap();
                }
            }
            prev = next;
        }
        let d = b.build().unwrap();
        let dec = decompose_with(&d, &RegionPolicy::new(8).with_region_size(10));
        assert!(!dec.is_trivial());
        for s in dec.shards() {
            assert!(s.len() <= 10, "shard of {} exceeds target", s.len());
        }
        assert_partition(&d, &dec);
    }

    #[test]
    fn free_packing_exceeds_shard_budget_to_meet_target() {
        // 100 chains of 40 (4000 instrs) at max_shards=2 with a target
        // of 1000: the packer opens 4 bins rather than two 2000-instr
        // shards — max_shards is a concurrency budget, not a cap on
        // region count.
        let d = chains(100, 40);
        let dec = decompose_with(&d, &RegionPolicy::new(2).with_region_size(1000));
        assert_eq!(dec.shards().len(), 4);
        for s in dec.shards() {
            assert!(s.len() <= 1000);
        }
        assert_partition(&d, &dec);
    }

    #[test]
    fn recursive_cut_pieces_keep_quotient_order() {
        // Two long chains and some dust: both chains get cut
        // recursively; every cross edge must still point forward.
        let mut b = DagBuilder::new();
        for _ in 0..2 {
            let mut prev = b.instr(Opcode::IntAlu);
            for _ in 1..60 {
                let next = b.instr(Opcode::IntAlu);
                b.edge(prev, next).unwrap();
                prev = next;
            }
        }
        b.instr(Opcode::Load);
        let d = b.build().unwrap();
        let dec = decompose_with(&d, &RegionPolicy::new(8).with_region_size(16));
        assert!(dec.shards().len() > 2);
        for s in dec.shards() {
            assert!(s.len() <= 16, "shard of {} exceeds target", s.len());
        }
        assert_partition(&d, &dec);
    }
}
