//! Machine-aware static facts about a dependence graph.

use convergent_ir::{Dag, InstrId, Opcode};
use convergent_machine::Machine;

/// ASAP/ALAP windows, slack, and resource lower bounds for a
/// `(DAG, machine)` pair.
///
/// Unlike `convergent_ir::TimeAnalysis` — which this mirrors — all
/// arithmetic here is done in `u64`, so pathological latency tables
/// that would overflow the scheduler's `u32` cycle arithmetic are
/// *detected* ([`GraphFacts::overflows`]) instead of wrapping or
/// panicking. This is what lets the linter report `CS010` statically.
#[derive(Clone, Debug)]
pub struct GraphFacts {
    latency: Vec<u64>,
    est: Vec<u64>,
    lst: Vec<u64>,
    cpl: u64,
}

impl GraphFacts {
    /// Computes the facts for `dag` on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if `dag` is empty (an empty unit is rejected by the
    /// linter before facts are computed).
    #[must_use]
    pub fn compute(dag: &Dag, machine: &Machine) -> Self {
        assert!(!dag.is_empty(), "facts need at least one instruction");
        let n = dag.len();
        let latency: Vec<u64> = dag
            .instrs()
            .iter()
            .map(|i| u64::from(machine.latency_of(i)))
            .collect();
        let mut est = vec![0u64; n];
        for &i in dag.topo_order() {
            let mut t = 0u64;
            for &p in dag.preds(i) {
                t = t.max(est[p.index()] + latency[p.index()]);
            }
            est[i.index()] = t;
        }
        let cpl = (0..n).map(|i| est[i] + latency[i]).max().unwrap_or(0);
        let mut lst = vec![u64::MAX; n];
        for &i in dag.topo_order().iter().rev() {
            let k = i.index();
            let mut t = cpl;
            for &s in dag.succs(i) {
                t = t.min(lst[s.index()]);
            }
            lst[k] = t - latency[k];
        }
        GraphFacts {
            latency,
            est,
            lst,
            cpl,
        }
    }

    /// Earliest feasible start cycle (ASAP) of `i`.
    #[must_use]
    pub fn earliest_start(&self, i: InstrId) -> u64 {
        self.est[i.index()]
    }

    /// Latest start cycle (ALAP, for the nominal critical-path
    /// makespan) of `i`.
    #[must_use]
    pub fn latest_start(&self, i: InstrId) -> u64 {
        self.lst[i.index()]
    }

    /// Static slack of `i`: `latest_start - earliest_start`.
    #[must_use]
    pub fn slack(&self, i: InstrId) -> u64 {
        self.lst[i.index()] - self.est[i.index()]
    }

    /// The machine latency of `i`, widened to `u64`.
    #[must_use]
    pub fn latency(&self, i: InstrId) -> u64 {
        self.latency[i.index()]
    }

    /// Critical-path length in cycles.
    #[must_use]
    pub fn critical_path_length(&self) -> u64 {
        self.cpl
    }

    /// Instructions whose window cannot be represented in the
    /// scheduler's `u32` cycle arithmetic (completion past
    /// `u32::MAX`). Empty for every sane latency table.
    #[must_use]
    pub fn overflows(&self) -> Vec<InstrId> {
        (0..self.est.len())
            .filter(|&k| self.est[k] + self.latency[k] > u64::from(u32::MAX))
            .map(|k| InstrId::new(k as u32))
            .collect()
    }

    /// A static register-pressure lower bound: the largest number of
    /// operand values that must be live simultaneously to issue a
    /// single instruction (its fan-in).
    #[must_use]
    pub fn pressure_lower_bound(dag: &Dag) -> usize {
        dag.ids().map(|i| dag.preds(i).len()).max().unwrap_or(0)
    }

    /// Dead values: side-effect-free instructions with no consumers,
    /// in a graph that *does* contain effectful instructions (an
    /// all-pure graph is a synthetic kernel whose leaves are its
    /// outputs).
    #[must_use]
    pub fn dead_values(dag: &Dag) -> Vec<InstrId> {
        let effectful = |op: Opcode| matches!(op, Opcode::Store | Opcode::Branch);
        if !dag.instrs().iter().any(|i| effectful(i.opcode())) {
            return Vec::new();
        }
        dag.leaves()
            .filter(|&i| {
                let op = dag.instr(i).opcode();
                !effectful(op) && !op.is_communication()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::DagBuilder;
    use convergent_machine::LatencyTable;

    fn chain(ops: &[Opcode]) -> Dag {
        let mut b = DagBuilder::new();
        let ids: Vec<InstrId> = ops.iter().map(|&op| b.instr(op)).collect();
        for w in ids.windows(2) {
            b.edge(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn windows_match_time_analysis_on_sane_inputs() {
        let dag = chain(&[Opcode::Load, Opcode::IntAlu, Opcode::Store]);
        let m = Machine::raw(4);
        let facts = GraphFacts::compute(&dag, &m);
        let ta = convergent_ir::TimeAnalysis::compute(&dag, |i| m.latency_of(i));
        for i in dag.ids() {
            assert_eq!(facts.earliest_start(i), u64::from(ta.earliest_start(i)));
            assert_eq!(facts.latest_start(i), u64::from(ta.latest_start(i)));
            assert_eq!(facts.slack(i), u64::from(ta.slack(i)));
        }
        assert_eq!(
            facts.critical_path_length(),
            u64::from(ta.critical_path_length())
        );
        assert!(facts.overflows().is_empty());
    }

    #[test]
    fn overflow_is_detected_not_wrapped() {
        let dag = chain(&[Opcode::IntAlu, Opcode::IntAlu, Opcode::IntAlu]);
        let m = Machine::raw(1).with_latencies(LatencyTable::uniform(u32::MAX));
        let facts = GraphFacts::compute(&dag, &m);
        let over = facts.overflows();
        assert!(!over.is_empty());
        // The first instruction alone completes at u32::MAX, which is
        // representable; its successors are not.
        assert!(over.contains(&InstrId::new(1)));
    }

    #[test]
    fn pressure_bound_is_max_fanin() {
        let mut b = DagBuilder::new();
        let producers: Vec<InstrId> = (0..5).map(|_| b.instr(Opcode::IntAlu)).collect();
        let sink = b.instr(Opcode::IntAlu);
        for p in &producers {
            b.edge(*p, sink).unwrap();
        }
        let dag = b.build().unwrap();
        assert_eq!(GraphFacts::pressure_lower_bound(&dag), 5);
    }

    #[test]
    fn dead_values_need_an_effectful_sibling() {
        // Pure graph: no dead values by definition.
        let pure = chain(&[Opcode::FMul, Opcode::FMul]);
        assert!(GraphFacts::dead_values(&pure).is_empty());
        // Add a store on a separate chain: the pure leaf is now dead.
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::FMul);
        let dead = b.instr(Opcode::FMul);
        b.edge(a, dead).unwrap();
        let v = b.instr(Opcode::Load);
        let st = b.instr(Opcode::Store);
        b.edge(v, st).unwrap();
        let dag = b.build().unwrap();
        assert_eq!(GraphFacts::dead_values(&dag), vec![dead]);
    }
}
