//! Errors and validation violations.

use std::error::Error;
use std::fmt;

use convergent_ir::{ClusterId, Cycle, InstrId};

/// A single way a schedule breaks the rules of its machine.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// An instruction was never placed.
    Unplaced(InstrId),
    /// A consumer starts before its producer's value can reach it.
    DependenceViolated {
        /// Producer instruction.
        producer: InstrId,
        /// Consumer instruction.
        consumer: InstrId,
        /// Earliest cycle the value is available at the consumer.
        available: Cycle,
        /// Cycle the consumer actually starts.
        start: Cycle,
    },
    /// Two operations claim the same functional-unit issue slot.
    ResourceConflict {
        /// Cluster where the conflict happens.
        cluster: ClusterId,
        /// Functional-unit index within the cluster.
        fu: usize,
        /// Conflicting cycle.
        cycle: Cycle,
    },
    /// An instruction was placed on a cluster that cannot execute it.
    IncapableCluster {
        /// The misplaced instruction.
        instr: InstrId,
        /// Where it was placed.
        cluster: ClusterId,
    },
    /// A preplaced instruction sits away from its home cluster on a
    /// machine where preplacement is a hard constraint.
    PreplacementViolated {
        /// The misplaced instruction.
        instr: InstrId,
        /// Required home cluster.
        home: ClusterId,
        /// Where it was actually placed.
        actual: ClusterId,
    },
    /// A cross-cluster dependence has no communication operation
    /// carrying the value.
    MissingComm {
        /// Producer instruction.
        producer: InstrId,
        /// Consumer instruction.
        consumer: InstrId,
    },
    /// A communication op departs before its value is produced.
    CommTooEarly {
        /// Producer instruction whose value is transferred.
        producer: InstrId,
        /// Cycle the transfer starts.
        start: Cycle,
        /// Cycle the value is first available at the source.
        ready: Cycle,
    },
    /// A functional-unit index does not exist on the target cluster.
    BadFuIndex {
        /// The instruction with the bad index.
        instr: InstrId,
        /// The out-of-range index.
        fu: usize,
    },
    /// The schedule's op list is not a bijection with the graph's
    /// instructions: this id is duplicated, missing, or stored in the
    /// wrong slot.
    DuplicateOrMissingInstr {
        /// The duplicated / missing / misindexed instruction.
        instr: InstrId,
    },
    /// A communication op departs a cluster that never holds the
    /// producer's value (neither the producing cluster nor the
    /// destination of any earlier legal transfer).
    CommUnsourced {
        /// Producer instruction whose value is claimed.
        producer: InstrId,
        /// Cluster the transfer departs from.
        from: ClusterId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Unplaced(i) => write!(f, "instruction {i} was never placed"),
            Violation::DependenceViolated {
                producer,
                consumer,
                available,
                start,
            } => write!(
                f,
                "consumer {consumer} starts at {start} but {producer}'s value arrives at {available}"
            ),
            Violation::ResourceConflict { cluster, fu, cycle } => {
                write!(f, "two ops issue on {cluster} fu{fu} at {cycle}")
            }
            Violation::IncapableCluster { instr, cluster } => {
                write!(f, "instruction {instr} cannot execute on {cluster}")
            }
            Violation::PreplacementViolated {
                instr,
                home,
                actual,
            } => write!(
                f,
                "preplaced instruction {instr} must run on {home} but was placed on {actual}"
            ),
            Violation::MissingComm { producer, consumer } => write!(
                f,
                "no communication carries {producer}'s value to {consumer}'s cluster"
            ),
            Violation::CommTooEarly {
                producer,
                start,
                ready,
            } => write!(
                f,
                "transfer of {producer}'s value starts at {start} before it is ready at {ready}"
            ),
            Violation::BadFuIndex { instr, fu } => {
                write!(f, "instruction {instr} uses nonexistent fu index {fu}")
            }
            Violation::DuplicateOrMissingInstr { instr } => {
                write!(
                    f,
                    "instruction {instr} is duplicated, missing, or misindexed in the schedule"
                )
            }
            Violation::CommUnsourced { producer, from } => write!(
                f,
                "transfer of {producer}'s value departs {from}, which never holds the value"
            ),
        }
    }
}

/// Top-level error for schedule construction and validation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Validation found one or more rule violations.
    Invalid(Vec<Violation>),
    /// The schedule covers a different number of instructions than the
    /// graph.
    SizeMismatch {
        /// Instructions in the graph.
        expected: usize,
        /// Instructions in the schedule.
        actual: usize,
    },
    /// Simulation stopped making progress: some operations can never
    /// issue (circular or unsatisfiable waits, e.g. in an unvalidated
    /// schedule).
    NoProgress {
        /// Cycle at which the simulator gave up.
        cycle: u32,
        /// Operations (instructions + issue-slot transfers) still
        /// waiting to issue.
        remaining: usize,
    },
    /// A boundary transfer needs a copy-capable functional unit on
    /// `cluster`, but the cluster has none (degenerate machine on a
    /// copy-based communication model).
    NoTransferUnit {
        /// Cluster lacking a copy-capable unit.
        cluster: ClusterId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Invalid(v) => {
                write!(f, "schedule is invalid ({} violations; first: ", v.len())?;
                match v.first() {
                    Some(first) => write!(f, "{first})"),
                    None => write!(f, "none)"),
                }
            }
            SimError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "schedule has {actual} instructions, graph has {expected}"
                )
            }
            SimError::NoProgress { cycle, remaining } => {
                write!(
                    f,
                    "simulation made no progress by cycle {cycle} with {remaining} ops pending"
                )
            }
            SimError::NoTransferUnit { cluster } => {
                write!(f, "cluster {cluster} has no copy-capable transfer unit")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_messages_are_informative() {
        let v = Violation::DependenceViolated {
            producer: InstrId::new(0),
            consumer: InstrId::new(1),
            available: Cycle::new(5),
            start: Cycle::new(3),
        };
        let s = v.to_string();
        assert!(s.contains("i0") && s.contains("i1") && s.contains("t5") && s.contains("t3"));
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::Invalid(vec![Violation::Unplaced(InstrId::new(7))]);
        assert!(e.to_string().contains("1 violations"));
        assert!(e.to_string().contains("i7"));
        let e = SimError::SizeMismatch {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('2'));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<SimError>();
    }
}
