#![warn(missing_docs)]
//! Instruction schedulers for spatial architectures.
//!
//! This crate provides the temporal engine every technique shares — a
//! resource-accurate, communication-inserting [`ListScheduler`] — and
//! the spatial-assignment baselines the paper compares convergent
//! scheduling against:
//!
//! * [`UasScheduler`] — Unified Assign-and-Schedule (Özer, Banerjia,
//!   Conte, MICRO-31), extended as in the paper to give preplaced
//!   instructions' home clusters top priority.
//! * [`PccScheduler`] — Desoli's Partial Component Clustering
//!   (HPL-98-13): capped partial components, load-balanced initial
//!   assignment, and iterative-descent improvement driven by real
//!   schedule-length measurements (hence its compile-time profile in
//!   the paper's Figure 10).
//! * [`RawccScheduler`] — the Rawcc space-time baseline of Table 2:
//!   clustering, cluster merging, and placement with preplacement
//!   constraints.
//! * [`BugScheduler`] — Bulldog-style bottom-up-greedy assignment
//!   (Ellis, 1986), the ancestor of all of the above.
//!
//! Every scheduler consumes a [`convergent_ir::Dag`] plus a
//! [`convergent_machine::Machine`] and produces a
//! [`convergent_sim::SpaceTimeSchedule`] that passes
//! [`convergent_sim::validate`].
//!
//! # Example
//!
//! ```
//! use convergent_ir::{DagBuilder, Opcode};
//! use convergent_machine::Machine;
//! use convergent_schedulers::{Scheduler, UasScheduler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DagBuilder::new();
//! let a = b.instr(Opcode::Load);
//! let c = b.instr(Opcode::FMul);
//! b.edge(a, c)?;
//! let dag = b.build()?;
//!
//! let machine = Machine::chorus_vliw(4);
//! let schedule = UasScheduler::new().schedule(&dag, &machine)?;
//! convergent_sim::validate(&dag, &machine, &schedule)?;
//! # Ok(())
//! # }
//! ```

mod bug;
mod error;
mod list;
mod pcc;
pub mod precondition;
mod priority;
mod program;
mod rawcc;
mod uas;

pub use bug::BugScheduler;
pub use error::ScheduleError;
pub use list::ListScheduler;
pub use pcc::PccScheduler;
pub use precondition::check_inputs;
pub use priority::cp_priorities;
pub use program::{schedule_program, CrossRegionPolicy, ProgramSchedule};
pub use rawcc::RawccScheduler;
pub use uas::UasScheduler;

use convergent_ir::Dag;
use convergent_machine::Machine;
use convergent_sim::SpaceTimeSchedule;

/// A complete space-time scheduling technique.
///
/// Implementors pick clusters *and* cycles; the experiment harness
/// treats all of them uniformly.
pub trait Scheduler {
    /// Short machine-readable name ("uas", "pcc", "rawcc", ...).
    fn name(&self) -> &str;

    /// Produces a legal space-time schedule of `dag` on `machine`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] when the graph cannot be scheduled on
    /// the machine (e.g. an operation no cluster can execute, or a
    /// hard preplacement referencing a nonexistent cluster).
    fn schedule(&self, dag: &Dag, machine: &Machine) -> Result<SpaceTimeSchedule, ScheduleError>;
}
