//! Cross-crate integration tests: every scheduler, on every paper
//! workload, on both machine families, produces a schedule that the
//! simulator accepts — and the domain-specific invariants hold.

use convergent_scheduling::core::ConvergentScheduler;
use convergent_scheduling::machine::Machine;
use convergent_scheduling::schedulers::{
    BugScheduler, PccScheduler, RawccScheduler, Scheduler, UasScheduler,
};
use convergent_scheduling::sim::{evaluate, validate};
use convergent_scheduling::workloads::{raw_suite, rebank, vliw_suite};

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(UasScheduler::new()),
        Box::new(PccScheduler::new()),
        Box::new(RawccScheduler::new()),
        Box::new(BugScheduler::new()),
        Box::new(ConvergentScheduler::raw_default()),
        Box::new(ConvergentScheduler::vliw_tuned()),
    ]
}

#[test]
fn every_scheduler_validates_on_the_raw_suite() {
    let machine = Machine::raw(4);
    for unit in raw_suite(4) {
        for sched in schedulers() {
            let s = sched
                .schedule(unit.dag(), &machine)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", sched.name(), unit.name()));
            validate(unit.dag(), &machine, &s)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", sched.name(), unit.name()));
        }
    }
}

#[test]
fn every_scheduler_validates_on_the_vliw_suite() {
    let machine = Machine::chorus_vliw(4);
    for unit in vliw_suite(4) {
        for sched in schedulers() {
            let s = sched
                .schedule(unit.dag(), &machine)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", sched.name(), unit.name()));
            validate(unit.dag(), &machine, &s)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", sched.name(), unit.name()));
        }
    }
}

#[test]
fn preplacement_is_hard_on_raw_for_every_scheduler() {
    let machine = Machine::raw(8);
    for unit in raw_suite(8) {
        for sched in schedulers() {
            let s = sched.schedule(unit.dag(), &machine).unwrap();
            assert!(
                s.assignment().respects_preplacement(unit.dag()),
                "{} broke preplacement on {}",
                sched.name(),
                unit.name()
            );
        }
    }
}

#[test]
fn evaluation_never_beats_the_nominal_schedule() {
    // Contention can only add cycles on a mesh.
    let machine = Machine::raw(16);
    for unit in raw_suite(16) {
        let s = RawccScheduler::new()
            .schedule(unit.dag(), &machine)
            .unwrap();
        let report = evaluate(unit.dag(), &machine, &s).expect("executes");
        // The evaluator issues ASAP, so it may beat a lazy nominal
        // schedule in cycle count, but never by violating resources:
        // makespan is at least the critical-path bound.
        let time =
            convergent_scheduling::ir::TimeAnalysis::compute(unit.dag(), |i| machine.latency_of(i));
        assert!(
            report.makespan.get() >= time.critical_path_length(),
            "{}: {} < CPL {}",
            unit.name(),
            report.makespan.get(),
            time.critical_path_length()
        );
    }
}

#[test]
fn more_tiles_never_hurt_much() {
    // Speedup vs 1 tile must be >= 0.9 for every scheduler on every
    // benchmark: a spatial machine may be wasted, but a sane scheduler
    // must not fall far below the single-tile baseline.
    for tiles in [2u16, 4] {
        let machine = Machine::raw(tiles);
        for unit in raw_suite(tiles) {
            for sched in [
                Box::new(RawccScheduler::new()) as Box<dyn Scheduler>,
                Box::new(ConvergentScheduler::raw_default()),
            ] {
                let folded = rebank(&unit, 1);
                let single = Machine::raw(1);
                let base = convergent_scheduling::schedulers::ListScheduler::new()
                    .schedule_with_cp(
                        folded.dag(),
                        &single,
                        &convergent_scheduling::sim::Assignment::uniform(
                            folded.dag().len(),
                            convergent_scheduling::ir::ClusterId::new(0),
                        ),
                    )
                    .unwrap();
                let base_cycles = evaluate(folded.dag(), &single, &base)
                    .expect("executes")
                    .makespan
                    .get();
                let s = sched.schedule(unit.dag(), &machine).unwrap();
                let cycles = evaluate(unit.dag(), &machine, &s)
                    .expect("executes")
                    .makespan
                    .get();
                let speedup = f64::from(base_cycles) / f64::from(cycles);
                assert!(
                    speedup >= 0.9,
                    "{} on {}@{tiles}: speedup {speedup:.2}",
                    sched.name(),
                    unit.name()
                );
            }
        }
    }
}

#[test]
fn convergent_is_deterministic_end_to_end() {
    let machine = Machine::raw(4);
    for unit in raw_suite(4) {
        let a = ConvergentScheduler::raw_default()
            .schedule(unit.dag(), &machine)
            .unwrap();
        let b = ConvergentScheduler::raw_default()
            .schedule(unit.dag(), &machine)
            .unwrap();
        assert_eq!(
            a.schedule().makespan(),
            b.schedule().makespan(),
            "{}",
            unit.name()
        );
        assert_eq!(a.assignment(), b.assignment(), "{}", unit.name());
    }
}

#[test]
fn convergence_trace_covers_spatial_passes() {
    let machine = Machine::chorus_vliw(4);
    for unit in vliw_suite(4) {
        let outcome = ConvergentScheduler::vliw_default()
            .assign(unit.dag(), &machine)
            .unwrap();
        // Table 1(b) has 9 passes, one of which (EMPHCP) is time-only.
        assert_eq!(outcome.trace().records().len(), 9, "{}", unit.name());
        assert_eq!(outcome.trace().spatial().count(), 8, "{}", unit.name());
        for r in outcome.trace().records() {
            assert!(
                (0.0..=1.0).contains(&r.changed_fraction),
                "{}: {r:?}",
                unit.name()
            );
        }
    }
}

#[test]
fn single_cluster_machines_work_for_all_suites() {
    // Degenerate machines are the speedup baselines; they must always
    // schedule.
    let raw1 = Machine::raw(1);
    let vliw1 = Machine::chorus_vliw(1);
    for unit in raw_suite(2) {
        let folded = rebank(&unit, 1);
        let s = RawccScheduler::new().schedule(folded.dag(), &raw1).unwrap();
        validate(folded.dag(), &raw1, &s).unwrap();
    }
    for unit in vliw_suite(2) {
        let folded = rebank(&unit, 1);
        let s = UasScheduler::new().schedule(folded.dag(), &vliw1).unwrap();
        validate(folded.dag(), &vliw1, &s).unwrap();
    }
}
