#![warn(missing_docs)]
//! Data-dependence-graph IR for convergent scheduling.
//!
//! This crate provides the program representation consumed by every
//! scheduler in the workspace: instructions classified by operation class,
//! immutable data-dependence DAGs with precomputed topological order, the
//! graph analyses the paper's heuristics rely on (earliest/latest start
//! times, levels, critical paths, undirected distances), and
//! [`SchedulingUnit`], the unit of work handed to a scheduler (a basic
//! block, trace, superblock, or hyperblock in the paper's terminology).
//!
//! The convergent scheduling paper (Lee, Puppin, Swenson, Amarasinghe,
//! MICRO-35, 2002) treats the compiler front end as a producer of
//! dependence graphs annotated with *preplaced* instructions — memory
//! operations pinned to a specific cluster by congruence analysis, or
//! values live across region boundaries. This crate is exactly that
//! interface, rebuilt as a standalone library.
//!
//! # Example
//!
//! ```
//! use convergent_ir::{DagBuilder, Opcode};
//!
//! # fn main() -> Result<(), convergent_ir::IrError> {
//! let mut b = DagBuilder::new();
//! let a = b.instr(Opcode::Load);
//! let c = b.instr(Opcode::Load);
//! let m = b.instr(Opcode::IntMul);
//! b.edge(a, m)?;
//! b.edge(c, m)?;
//! let dag = b.build()?;
//! assert_eq!(dag.len(), 3);
//! assert_eq!(dag.preds(m).len(), 2);
//! # Ok(())
//! # }
//! ```

mod analysis;
mod dot;
mod error;
mod graph;
mod id;
mod instr;
mod partition;
mod program;
mod shape;
mod text;
mod unit;

pub use analysis::UNREACHABLE;
pub use analysis::{CriticalPath, DistanceOracle, TimeAnalysis};
pub use dot::to_dot;
pub use error::IrError;
pub use graph::{Dag, DagBuilder, Edge};
pub use id::{ClusterId, Cycle, InstrId};
pub use instr::{Instruction, OpClass, Opcode};
pub use partition::{
    decompose, decompose_with, weakly_connected_components, Decomposition, RegionPolicy, Shard,
    DEFAULT_REGION_SIZE,
};
pub use program::{CrossValue, Program, ProgramError};
pub use shape::ShapeStats;
pub use text::{parse_raw, parse_unit, to_text, RawUnit, TextError};
pub use unit::{RegionKind, SchedulingUnit};
