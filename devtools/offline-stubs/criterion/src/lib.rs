//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!` — with a simple
//! calibrate-and-time loop printing ns/iter (no statistics, plots, or
//! baselines). Activated only via `scripts/offline-check.sh`; default
//! builds resolve the real `criterion` from crates.io.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark context (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().to_string(), f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Benchmark identifier: a name with an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// An id for `name` parameterised by `param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: Some(param.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.param {
            Some(p) => write!(f, "{}/{}", self.name, p),
            None => write!(f, "{}", self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            param: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name, param: None }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count until the
    /// measurement window is long enough to trust.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(50) || iters >= 1 << 30 {
                self.measured = Some((iters, elapsed));
                return;
            }
            iters = iters.saturating_mul(if elapsed < Duration::from_millis(5) {
                8
            } else {
                2
            });
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher { measured: None };
    f(&mut b);
    match b.measured {
        Some((iters, elapsed)) => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("bench {label:<56} {ns:>14.1} ns/iter  ({iters} iters)");
        }
        None => println!("bench {label:<56} (no measurement)"),
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
