//! The sink trait: where the driver's telemetry goes.
//!
//! The driver never formats anything — it emits *events* (hierarchical
//! spans, batched counter deltas, convergence metrics) into a
//! [`TelemetrySink`] and each sink decides what to keep:
//! [`crate::PassProfile`] keeps only stage/pass spans (so `--profile`
//! output is unchanged), [`super::ChromeTraceSink`] keeps everything
//! as a Perfetto-loadable trace, [`super::PrometheusSink`] folds
//! everything into a metrics registry. A sink declares up front which
//! *expensive* event families it wants ([`SinkInterest`]); the driver
//! skips computing counters/convergence metrics nobody asked for.
//!
//! Span paths are plain strings forming a hierarchy by convention:
//! `<run>` covers the whole schedule call; `shard3` (kind
//! [`SpanKind::Shard`]) covers one shard, whose inner events are
//! prefixed `shard3/`; stage spans (`<init>`, `<readoff>`,
//! `<listsched>`, `<decompose>`, `<stitch>`) and pass spans (`PATH`,
//! `COMM`, …) sit below; kernel phases appear as `PASS/<prologue>`,
//! `PASS/<kernel>`, and `PASS/<metrics>`.

use super::convergence::ConvergenceMetrics;
use super::counters::CounterTotals;

/// The level of a span in the run hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole `schedule()` call.
    Run,
    /// One shard's slice of a sharded run.
    Shard,
    /// A driver stage: `<init>`, `<readoff>`, `<listsched>`,
    /// `<decompose>`, `<stitch>`.
    Stage,
    /// One pass of the sequence.
    Pass,
    /// A phase inside a pass (kernel prologue/apply, metric
    /// computation).
    Phase,
}

/// Which expensive event families a sink wants. Spans are always
/// delivered (they are nearly free); counter deltas and convergence
/// metrics cost a map sweep or atomic traffic, so the driver only
/// produces them when at least one sink opts in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SinkInterest {
    /// Deliver per-span [`CounterTotals`] deltas (enables the map's
    /// hot-path counters).
    pub counters: bool,
    /// Deliver per-pass [`ConvergenceMetrics`] (costs one map sweep
    /// per pass).
    pub convergence: bool,
}

impl SinkInterest {
    /// Everything on.
    #[must_use]
    pub fn all() -> Self {
        SinkInterest {
            counters: true,
            convergence: true,
        }
    }

    /// Spans only (the default).
    #[must_use]
    pub fn spans_only() -> Self {
        SinkInterest::default()
    }

    /// Field-wise or.
    #[must_use]
    pub fn union(self, other: SinkInterest) -> SinkInterest {
        SinkInterest {
            counters: self.counters || other.counters,
            convergence: self.convergence || other.convergence,
        }
    }
}

/// Receives telemetry events from the driver. All methods take `&mut
/// self` and are called from one thread at a time (sharded runs buffer
/// per shard and replay after the join, in shard order, so event order
/// is deterministic for a deterministic schedule).
pub trait TelemetrySink {
    /// Which expensive event families to produce for this sink.
    /// Called once per run, before any event.
    fn interest(&self) -> SinkInterest {
        SinkInterest::spans_only()
    }

    /// One completed span. `start_secs` is relative to the run epoch;
    /// `dur_secs` is the span's wall-clock duration.
    fn span(&mut self, path: &str, kind: SpanKind, start_secs: f64, dur_secs: f64);

    /// Counter activity attributed to the span `path` (a delta, not a
    /// running total). Only called when [`SinkInterest::counters`] was
    /// requested; zero deltas are skipped.
    fn counters(&mut self, path: &str, delta: &CounterTotals) {
        let _ = (path, delta);
    }

    /// Convergence metrics measured after the pass `path`. Only called
    /// when [`SinkInterest::convergence`] was requested.
    fn convergence(&mut self, path: &str, metrics: &ConvergenceMetrics) {
        let _ = (path, metrics);
    }
}

/// Splits a `shard{k}/`-prefixed path (or a bare `shard{k}` container
/// span) into its shard index and the remainder.
#[must_use]
pub fn split_shard_prefix(path: &str) -> (Option<usize>, &str) {
    if let Some(rest) = path.strip_prefix("shard") {
        let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
        if digits > 0 {
            if let Ok(k) = rest[..digits].parse::<usize>() {
                let tail = &rest[digits..];
                if tail.is_empty() {
                    return (Some(k), "");
                }
                if let Some(inner) = tail.strip_prefix('/') {
                    return (Some(k), inner);
                }
            }
        }
    }
    (None, path)
}

/// One buffered telemetry event; see [`TelemetryBuffer`].
#[derive(Clone, Debug, PartialEq)]
pub enum TelemetryEvent {
    /// A completed span.
    Span {
        /// Span path.
        path: String,
        /// Hierarchy level.
        kind: SpanKind,
        /// Start, seconds from the run epoch.
        start_secs: f64,
        /// Duration in seconds.
        dur_secs: f64,
    },
    /// A per-span counter delta.
    Counters {
        /// Span path the delta is attributed to.
        path: String,
        /// The delta.
        delta: CounterTotals,
    },
    /// Per-pass convergence metrics.
    Convergence {
        /// Pass path.
        path: String,
        /// The metrics.
        metrics: ConvergenceMetrics,
    },
}

/// A sink that records events for later replay — how sharded runs keep
/// worker-thread telemetry deterministic (each shard buffers, the
/// driver replays buffers in shard order after the join), and a handy
/// programmatic capture for tests and JSON reports.
#[derive(Clone, Debug, Default)]
pub struct TelemetryBuffer {
    interest: SinkInterest,
    events: Vec<TelemetryEvent>,
}

impl TelemetryBuffer {
    /// An all-interest buffer.
    #[must_use]
    pub fn new() -> Self {
        TelemetryBuffer::with_interest(SinkInterest::all())
    }

    /// A buffer requesting only the given event families.
    #[must_use]
    pub fn with_interest(interest: SinkInterest) -> Self {
        TelemetryBuffer {
            interest,
            events: Vec::new(),
        }
    }

    /// The recorded events, in arrival order.
    #[must_use]
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Replays every event into `sink`, prefixing each path with
    /// `prefix`. Timestamps are passed through unchanged (buffers used
    /// for sharding share the parent run's epoch).
    pub fn replay_into(&self, prefix: &str, sink: &mut dyn TelemetrySink) {
        for ev in &self.events {
            match ev {
                TelemetryEvent::Span {
                    path,
                    kind,
                    start_secs,
                    dur_secs,
                } => sink.span(&format!("{prefix}{path}"), *kind, *start_secs, *dur_secs),
                TelemetryEvent::Counters { path, delta } => {
                    sink.counters(&format!("{prefix}{path}"), delta);
                }
                TelemetryEvent::Convergence { path, metrics } => {
                    sink.convergence(&format!("{prefix}{path}"), metrics);
                }
            }
        }
    }

    /// `(earliest_start, latest_end)` over the buffered spans, or
    /// `None` if no span was recorded — used to synthesize shard
    /// container spans.
    #[must_use]
    pub fn span_extent(&self) -> Option<(f64, f64)> {
        let mut extent: Option<(f64, f64)> = None;
        for ev in &self.events {
            if let TelemetryEvent::Span {
                start_secs,
                dur_secs,
                ..
            } = ev
            {
                let end = start_secs + dur_secs;
                extent = Some(match extent {
                    None => (*start_secs, end),
                    Some((lo, hi)) => (lo.min(*start_secs), hi.max(end)),
                });
            }
        }
        extent
    }

    /// Sum of every buffered counter delta.
    #[must_use]
    pub fn counter_total(&self) -> CounterTotals {
        let mut total = CounterTotals::default();
        for ev in &self.events {
            if let TelemetryEvent::Counters { delta, .. } = ev {
                total.merge(delta);
            }
        }
        total
    }

    /// The buffered `(path, metrics)` convergence entries, in order.
    pub fn convergence_entries(&self) -> impl Iterator<Item = (&str, &ConvergenceMetrics)> + '_ {
        self.events.iter().filter_map(|ev| match ev {
            TelemetryEvent::Convergence { path, metrics } => Some((path.as_str(), metrics)),
            _ => None,
        })
    }
}

impl TelemetrySink for TelemetryBuffer {
    fn interest(&self) -> SinkInterest {
        self.interest
    }

    fn span(&mut self, path: &str, kind: SpanKind, start_secs: f64, dur_secs: f64) {
        self.events.push(TelemetryEvent::Span {
            path: path.to_string(),
            kind,
            start_secs,
            dur_secs,
        });
    }

    fn counters(&mut self, path: &str, delta: &CounterTotals) {
        self.events.push(TelemetryEvent::Counters {
            path: path.to_string(),
            delta: *delta,
        });
    }

    fn convergence(&mut self, path: &str, metrics: &ConvergenceMetrics) {
        self.events.push(TelemetryEvent::Convergence {
            path: path.to_string(),
            metrics: *metrics,
        });
    }
}

/// Fans one event stream out to several sinks (e.g. `--profile` and
/// `--trace` on the same run). Interest is the union of the members'.
#[derive(Default)]
pub struct MultiSink<'a> {
    sinks: Vec<&'a mut dyn TelemetrySink>,
}

impl<'a> MultiSink<'a> {
    /// An empty fan-out.
    #[must_use]
    pub fn new() -> Self {
        MultiSink::default()
    }

    /// Adds a member sink.
    pub fn push(&mut self, sink: &'a mut dyn TelemetrySink) {
        self.sinks.push(sink);
    }

    /// Number of member sinks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// `true` when no sink was added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TelemetrySink for MultiSink<'_> {
    fn interest(&self) -> SinkInterest {
        self.sinks
            .iter()
            .fold(SinkInterest::spans_only(), |acc, s| acc.union(s.interest()))
    }

    fn span(&mut self, path: &str, kind: SpanKind, start_secs: f64, dur_secs: f64) {
        for s in &mut self.sinks {
            s.span(path, kind, start_secs, dur_secs);
        }
    }

    fn counters(&mut self, path: &str, delta: &CounterTotals) {
        for s in &mut self.sinks {
            if s.interest().counters {
                s.counters(path, delta);
            }
        }
    }

    fn convergence(&mut self, path: &str, metrics: &ConvergenceMetrics) {
        for s in &mut self.sinks {
            if s.interest().convergence {
                s.convergence(path, metrics);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_prefix_parsing() {
        assert_eq!(split_shard_prefix("shard0/PATH"), (Some(0), "PATH"));
        assert_eq!(split_shard_prefix("shard12/<init>"), (Some(12), "<init>"));
        assert_eq!(split_shard_prefix("shard3"), (Some(3), ""));
        assert_eq!(split_shard_prefix("shardX/PATH"), (None, "shardX/PATH"));
        assert_eq!(split_shard_prefix("PATH"), (None, "PATH"));
        assert_eq!(split_shard_prefix("shard1x"), (None, "shard1x"));
    }

    #[test]
    fn buffer_records_and_replays_with_prefix() {
        let mut buf = TelemetryBuffer::new();
        buf.span("<init>", SpanKind::Stage, 0.0, 0.5);
        buf.span("PATH", SpanKind::Pass, 0.5, 1.0);
        buf.counters(
            "PATH",
            &CounterTotals {
                set: 3,
                ..CounterTotals::default()
            },
        );
        buf.convergence(
            "PATH",
            &ConvergenceMetrics {
                mean_confidence: 1.0,
                decision_churn: 0.0,
                preference_entropy: 0.0,
                preplacement_coverage: 1.0,
            },
        );
        assert_eq!(buf.span_extent(), Some((0.0, 1.5)));
        assert_eq!(buf.counter_total().set, 3);
        assert_eq!(buf.convergence_entries().count(), 1);

        let mut replayed = TelemetryBuffer::new();
        buf.replay_into("shard0/", &mut replayed);
        assert_eq!(replayed.events().len(), 4);
        match &replayed.events()[1] {
            TelemetryEvent::Span {
                path, start_secs, ..
            } => {
                assert_eq!(path, "shard0/PATH");
                assert_eq!(*start_secs, 0.5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_sink_unions_interest_and_fans_out() {
        let mut spans_only = TelemetryBuffer::with_interest(SinkInterest::spans_only());
        let mut all = TelemetryBuffer::new();
        let mut multi = MultiSink::new();
        assert!(multi.is_empty());
        multi.push(&mut spans_only);
        multi.push(&mut all);
        assert_eq!(multi.len(), 2);
        assert_eq!(multi.interest(), SinkInterest::all());
        multi.span("X", SpanKind::Pass, 0.0, 1.0);
        multi.counters(
            "X",
            &CounterTotals {
                set: 1,
                ..CounterTotals::default()
            },
        );
        drop(multi);
        // The spans-only member never sees counters.
        assert_eq!(spans_only.events().len(), 1);
        assert_eq!(all.events().len(), 2);
    }
}
