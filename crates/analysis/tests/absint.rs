//! Property tests for the abstract preference-map domain: lattice laws
//! for [`Interval`] and [`AbsRow`] joins, soundness of interval
//! multiplication, and decade-discipline of the pipeline analysis
//! (random pipelines never panic and only ever report `CS07x` codes,
//! deterministically).
//!
//! These run under Miri in `offline-check.sh --miri`, so the case
//! count drops there.

use convergent_analysis::{
    analyze_pipeline, AbsRow, ContractClaims, Determinism, EffectOp, Interval, NormStatus,
    PassEffect, PassSummary, WindowFact,
};
use proptest::prelude::*;

const CASES: u32 = if cfg!(miri) { 8 } else { 128 };

/// Builds a well-ordered interval from two arbitrary endpoints.
fn interval(a: f64, b: f64) -> Interval {
    Interval::new(a.min(b), a.max(b))
}

/// `true` when `big` contains every value of `small`.
fn contains_interval(big: &Interval, small: &Interval) -> bool {
    big.lo <= small.lo && small.hi <= big.hi
}

/// `true` when `hi` is at or above `lo` in the `AbsRow` lattice order
/// (the order `join` computes least upper bounds for): a wider value
/// hull, windows no more established, normalization no cleaner,
/// symmetry no less broken.
fn row_at_or_above(hi: &AbsRow, lo: &AbsRow) -> bool {
    contains_interval(&hi.value, &lo.value)
        && hi.windows <= lo.windows
        && hi.norm >= lo.norm
        && (hi.symmetry_broken || !lo.symmetry_broken)
}

/// One of the synthetic row states the join laws quantify over.
fn row(endpoints: (f64, f64), windows: bool, dirty: bool, broken: bool) -> AbsRow {
    let mut r = AbsRow::initial();
    r.value = interval(endpoints.0, endpoints.1);
    r.windows = if windows {
        WindowFact::Established
    } else {
        WindowFact::Unestablished
    };
    r.norm = if dirty {
        NormStatus::Dirty
    } else {
        NormStatus::Normalized
    };
    r.symmetry_broken = broken;
    r
}

/// A small palette of effect summaries shaped like the builtin passes;
/// `kind` indexes into it so a random `Vec<u8>` becomes a pipeline.
fn summary_palette(kind: u8) -> PassSummary {
    let eff = match kind % 6 {
        0 => PassEffect::new(vec![EffectOp::EstablishWindows]),
        1 => PassEffect::new(vec![EffectOp::Absolute {
            in_window: true,
            value: Interval::new(0.0, 2.0),
            randomized: true,
            preserves_support: true,
        }])
        .with_determinism(Determinism::SeededRng)
        .reads_windows()
        .breaks_symmetry(),
        2 => PassEffect::new(vec![EffectOp::ScaleClusters {
            factor: Interval::point(1.2),
        }])
        .breaks_symmetry(),
        3 => PassEffect::new(vec![EffectOp::ScaleTimes {
            factor: Interval::point(1.5),
        }])
        .time_only(),
        4 => PassEffect::new(vec![
            EffectOp::ScaleCells {
                factor: Interval::new(0.5, 2.0),
            },
            EffectOp::Normalize,
        ])
        .breaks_symmetry(),
        _ => PassEffect::opaque(),
    };
    PassSummary::new("P", ContractClaims::default(), eff)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn interval_join_laws(
        a in (0.0f64..100.0, 0.0f64..100.0),
        b in (0.0f64..100.0, 0.0f64..100.0),
        c in (0.0f64..100.0, 0.0f64..100.0),
    ) {
        let (a, b, c) = (interval(a.0, a.1), interval(b.0, b.1), interval(c.0, c.1));
        // Idempotent, commutative, associative.
        prop_assert_eq!(a.join(&a), a);
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        // Least upper bound: contains both operands, and any other
        // upper bound contains the join.
        let j = a.join(&b);
        prop_assert!(contains_interval(&j, &a) && contains_interval(&j, &b));
        let wide = a.join(&b).join(&c);
        prop_assert!(contains_interval(&wide, &j));
    }

    #[test]
    fn interval_mul_is_sound_and_monotone(
        a in (0.0f64..50.0, 0.0f64..50.0),
        b in (0.0f64..50.0, 0.0f64..50.0),
        c in (0.0f64..50.0, 0.0f64..50.0),
        t in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let (a, b, c) = (interval(a.0, a.1), interval(b.0, b.1), interval(c.0, c.1));
        // Soundness: the product of any point of `a` with any point of
        // `b` lies in `a.mul(b)` (sampled at interpolated points).
        let va = a.lo + t.0 * (a.hi - a.lo);
        let vb = b.lo + t.1 * (b.hi - b.lo);
        prop_assert!(a.mul(&b).contains(va * vb));
        // Monotone in its arguments: widening an operand widens the
        // product.
        let prod = a.mul(&c);
        let wider = a.join(&b).mul(&c);
        prop_assert!(contains_interval(&wider, &prod));
        // Commutative in this non-negative domain.
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn row_join_laws(
        av in (0.0f64..10.0, 0.0f64..10.0), abits in 0u8..8,
        bv in (0.0f64..10.0, 0.0f64..10.0), bbits in 0u8..8,
    ) {
        let a = row(av, abits & 1 != 0, abits & 2 != 0, abits & 4 != 0);
        let b = row(bv, bbits & 1 != 0, bbits & 2 != 0, bbits & 4 != 0);
        // Idempotent and commutative.
        prop_assert_eq!(a.join(&a), a);
        prop_assert_eq!(a.join(&b), b.join(&a));
        // Upper bound for both operands in the lattice order.
        let j = a.join(&b);
        prop_assert!(row_at_or_above(&j, &a));
        prop_assert!(row_at_or_above(&j, &b));
    }

    #[test]
    fn normalize_is_idempotent_and_resets_the_hull(
        v in (0.0f64..1000.0, 0.0f64..1000.0),
        bits in 0u8..4,
    ) {
        let (w, broken) = (bits & 1 != 0, bits & 2 != 0);
        let mut r = row(v, w, true, broken);
        r.normalize();
        prop_assert_eq!(r.value, Interval::unit());
        prop_assert_eq!(r.norm, NormStatus::Normalized);
        // Windows and symmetry facts survive normalization.
        prop_assert_eq!(r.windows, if w { WindowFact::Established } else { WindowFact::Unestablished });
        prop_assert_eq!(r.symmetry_broken, broken);
        let once = r;
        r.normalize();
        prop_assert_eq!(r, once);
    }

    #[test]
    fn pipeline_analysis_is_total_and_stays_in_its_decade(
        kinds in proptest::collection::vec(0u8..12, 0..8),
        n_clusters in 1usize..6,
    ) {
        let passes: Vec<PassSummary> = kinds.iter().map(|&k| summary_palette(k)).collect();
        let report = analyze_pipeline(&passes, n_clusters);
        for d in report.diagnostics() {
            let id = d.code.id();
            prop_assert!(id.starts_with("CS07"), "unexpected code {id} from pipeline analysis");
        }
        // Deterministic: the same pipeline reports the same codes.
        let again = analyze_pipeline(&passes, n_clusters);
        let codes = |r: &convergent_analysis::LintReport| {
            r.diagnostics().iter().map(|d| d.code).collect::<Vec<_>>()
        };
        prop_assert_eq!(codes(&report), codes(&again));
    }
}
