//! Region decomposition for sharded scheduling.
//!
//! Convergent scheduling's passes are independent *across* weakly-
//! connected regions of a scheduling unit: no preference, dependence, or
//! placement information flows between instructions that share no path.
//! This module splits a [`Dag`] into such regions — falling back to an
//! articulation-bounded cut when one component dominates — so the driver
//! can run the full pass pipeline on every shard concurrently and stitch
//! the per-shard schedules back together (`convergent-sim`'s `stitch`).
//!
//! Two invariants matter to the callers:
//!
//! * **Single-component graphs are never cut.** Sharding such a graph at
//!   any shard count returns one shard that is the input graph itself,
//!   which is what lets the driver promise byte-identical schedules for
//!   `--shards N` on connected inputs.
//! * **Cross-shard edges always point from an earlier shard to a later
//!   one.** The shard list is a topological order of the shard quotient
//!   graph, so the stitch phase can commit shards left to right and only
//!   ever look backwards for producers.

use std::collections::HashMap;

use crate::{Dag, DagBuilder, Edge, InstrId};

/// One shard of a decomposed graph: an induced sub-DAG plus the mapping
/// from its dense local ids back to the original graph.
#[derive(Clone, Debug)]
pub struct Shard {
    dag: Dag,
    to_global: Vec<InstrId>,
}

impl Shard {
    /// The induced sub-DAG. Local ids are dense and id-ordered: local
    /// `k` is the `k`-th smallest global id in the shard.
    #[must_use]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Global ids in local-id order.
    #[must_use]
    pub fn to_global(&self) -> &[InstrId] {
        &self.to_global
    }

    /// Maps a local instruction id back to the original graph.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range for this shard.
    #[must_use]
    pub fn global_id(&self, local: InstrId) -> InstrId {
        self.to_global[local.index()]
    }

    /// Number of instructions in this shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.to_global.len()
    }

    /// Always `false`: shards are built from nonempty id sets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.to_global.is_empty()
    }
}

/// A complete decomposition of a graph into shards.
#[derive(Clone, Debug)]
pub struct Decomposition {
    shards: Vec<Shard>,
    shard_of: Vec<usize>,
    local_of: Vec<InstrId>,
    cross_edges: Vec<Edge>,
}

impl Decomposition {
    /// The shards, in stitch (topological) order.
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Index of the shard containing global instruction `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for the decomposed graph.
    #[must_use]
    pub fn shard_of(&self, i: InstrId) -> usize {
        self.shard_of[i.index()]
    }

    /// Local id of global instruction `i` within its shard.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for the decomposed graph.
    #[must_use]
    pub fn local_id(&self, i: InstrId) -> InstrId {
        self.local_of[i.index()]
    }

    /// Edges (in global ids) whose endpoints live in different shards.
    /// The source's shard index is always strictly smaller than the
    /// destination's.
    #[must_use]
    pub fn cross_edges(&self) -> &[Edge] {
        &self.cross_edges
    }

    /// `true` if the graph was not split (one shard = the whole graph).
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.shards.len() == 1
    }
}

/// Returns the weakly-connected components of `dag`.
///
/// Each component's ids are sorted ascending; components are ordered by
/// their smallest id. The union of the components is exactly the id set
/// of the graph.
#[must_use]
pub fn weakly_connected_components(dag: &Dag) -> Vec<Vec<InstrId>> {
    let n = dag.len();
    let mut comp = vec![usize::MAX; n];
    let mut components: Vec<Vec<InstrId>> = Vec::new();
    let mut stack = Vec::new();
    for start in dag.ids() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        comp[start.index()] = id;
        stack.push(start);
        while let Some(i) = stack.pop() {
            members.push(i);
            for nb in dag.neighbors(i) {
                if comp[nb.index()] == usize::MAX {
                    comp[nb.index()] = id;
                    stack.push(nb);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    // Seeding in id order already yields components ordered by their
    // minimum id; keep the invariant explicit regardless.
    components.sort_by_key(|c| c[0]);
    components
}

/// How dominant the largest component must be (as a fraction of the
/// graph) before [`decompose`] attempts an articulation cut on it.
const GIANT_FRACTION_NUM: usize = 3;
const GIANT_FRACTION_DEN: usize = 4;

/// Most articulation candidates whose directional split is evaluated;
/// candidates are ranked by the balance of their DFS-tree separation
/// first, so the cap costs quality only on adversarial graphs.
const MAX_CUT_CANDIDATES: usize = 8;

/// Splits `dag` into at most `max_shards` shards.
///
/// The shard list is a topological order of the shard quotient graph:
/// every cross-shard edge points from an earlier shard to a later one.
///
/// * `max_shards <= 1`, or a graph with one weakly-connected component:
///   one shard containing the whole graph, ids mapped identically.
///   Connected graphs are **never** cut, so sharded scheduling of them
///   degenerates to the monolithic path.
/// * Several components: components are bin-packed (largest first into
///   the lightest bin) into `min(max_shards, n_components)` shards. No
///   cross-shard edges exist in this case.
/// * Several components where the largest holds more than 3/4 of the
///   instructions and shard slots remain: the giant is additionally cut
///   at its best articulation vertex into up-to-three ordered pieces
///   (upstream / vertex + mixed / downstream) that become their own
///   shards, connected by cross-shard edges. If no articulation vertex
///   separates anything, the giant stays whole.
#[must_use]
pub fn decompose(dag: &Dag, max_shards: usize) -> Decomposition {
    let everything: Vec<InstrId> = dag.ids().collect();
    if max_shards <= 1 {
        return assemble(dag, vec![everything]);
    }
    let components = weakly_connected_components(dag);
    if components.len() == 1 {
        return assemble(dag, vec![everything]);
    }

    let giant_idx = components
        .iter()
        .enumerate()
        .max_by_key(|(idx, c)| (c.len(), usize::MAX - idx))
        .map(|(idx, _)| idx)
        .unwrap_or(0);
    let giant_len = components[giant_idx].len();
    let dominates = giant_len * GIANT_FRACTION_DEN > dag.len() * GIANT_FRACTION_NUM;
    // Cutting the giant needs spare shard slots: its pieces each take
    // one, and every other component still needs somewhere to go.
    let has_room = components.len() + 1 < max_shards;

    let mut chain: Vec<Vec<InstrId>> = Vec::new();
    let mut free: Vec<Vec<InstrId>> = Vec::new();
    if dominates && has_room {
        match articulation_cut(dag, &components[giant_idx]) {
            Some(pieces) => chain = pieces,
            None => free.push(components[giant_idx].clone()),
        }
        for (idx, c) in components.into_iter().enumerate() {
            if idx != giant_idx {
                free.push(c);
            }
        }
        free.sort_by_key(|c| c[0]);
    } else {
        free = components;
    }

    let free_bins = pack(free, max_shards.saturating_sub(chain.len()).max(1));
    // Free bins carry no cross edges so they can go anywhere; the chain
    // pieces must keep their relative order, so they go last.
    let mut groups = free_bins;
    groups.extend(chain);
    assemble(dag, groups)
}

/// Bin-packs `groups` (disjoint, unordered id sets) into at most `bins`
/// bins by longest-processing-time: largest group first, into the
/// currently lightest bin, ties broken by bin index. Returned bins are
/// sorted ascending internally and ordered by their minimum id.
fn pack(mut groups: Vec<Vec<InstrId>>, bins: usize) -> Vec<Vec<InstrId>> {
    if groups.is_empty() {
        return Vec::new();
    }
    let bins = bins.min(groups.len());
    groups.sort_by_key(|g| (usize::MAX - g.len(), g[0]));
    let mut out: Vec<Vec<InstrId>> = vec![Vec::new(); bins];
    let mut weight = vec![0usize; bins];
    for g in groups {
        let lightest = (0..bins).min_by_key(|&b| (weight[b], b)).unwrap_or(0);
        weight[lightest] += g.len();
        out[lightest].extend(g);
    }
    for bin in &mut out {
        bin.sort_unstable();
    }
    out.sort_by_key(|b| b[0]);
    out
}

/// Cuts a weakly-connected node set at its best articulation vertex.
///
/// Removing an articulation vertex `v` splits the component into pieces
/// that each touch only `v`. Pieces whose edges all point *into* `v`
/// can be scheduled before it, pieces fed only *from* `v` after it, and
/// pieces with edges both ways must stay with `v`. The returned groups
/// — `[upstream, v + mixed, downstream]`, empty groups dropped — are
/// therefore a topological chain. Returns `None` when no articulation
/// vertex moves any instruction out of the middle group.
fn articulation_cut(dag: &Dag, comp: &[InstrId]) -> Option<Vec<Vec<InstrId>>> {
    let candidates = articulation_candidates(dag, comp);
    let mut best: Option<(usize, Vec<Vec<InstrId>>)> = None;
    for v in candidates.into_iter().take(MAX_CUT_CANDIDATES) {
        let Some(groups) = directional_split(dag, comp, v) else {
            continue;
        };
        // Score by how much leaves the middle group; a cut that strands
        // everything with `v` is no cut at all.
        let moved: usize = groups
            .iter()
            .filter(|g| !g.contains(&v))
            .map(Vec::len)
            .sum();
        if moved == 0 {
            continue;
        }
        if best.as_ref().is_none_or(|(s, _)| moved > *s) {
            best = Some((moved, groups));
        }
    }
    best.map(|(_, groups)| groups)
}

/// Articulation vertices of the undirected skeleton of `comp`, ranked
/// by the balance of the DFS-subtree separation they induce (best
/// first), ties broken by id.
fn articulation_candidates(dag: &Dag, comp: &[InstrId]) -> Vec<InstrId> {
    let n = comp.len();
    let local: HashMap<InstrId, usize> = comp.iter().enumerate().map(|(k, &i)| (i, k)).collect();
    let adj: Vec<Vec<usize>> = comp
        .iter()
        .map(|&i| {
            dag.neighbors(i)
                .filter_map(|g| local.get(&g).copied())
                .collect()
        })
        .collect();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut subtree = vec![1usize; n];
    let mut parent = vec![usize::MAX; n];
    // Best separation score per articulation vertex found.
    let mut arts: HashMap<usize, usize> = HashMap::new();
    let mut timer = 0usize;
    // Iterative DFS from local node 0; comp is connected so one root
    // covers everything.
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    disc[0] = timer;
    low[0] = timer;
    timer += 1;
    let mut root_children = 0usize;
    while let Some(top) = stack.last_mut() {
        let (u, cursor) = (top.0, top.1);
        if cursor < adj[u].len() {
            top.1 += 1;
            let w = adj[u][cursor];
            if disc[w] == usize::MAX {
                parent[w] = u;
                disc[w] = timer;
                low[w] = timer;
                timer += 1;
                if u == 0 {
                    root_children += 1;
                }
                stack.push((w, 0));
            } else if w != parent[u] {
                low[u] = low[u].min(disc[w]);
            }
        } else {
            stack.pop();
            if let Some(&(p, _)) = stack.last() {
                low[p] = low[p].min(low[u]);
                subtree[p] += subtree[u];
                if p != 0 && low[u] >= disc[p] {
                    // Removing p separates u's subtree; score by how
                    // balanced that separation is.
                    let sep = subtree[u];
                    let score = sep.min(n.saturating_sub(1 + sep));
                    let e = arts.entry(p).or_insert(0);
                    *e = (*e).max(score);
                }
            }
        }
    }
    if root_children > 1 {
        // The DFS root is an articulation vertex when it has more than
        // one tree child; any child subtree is a separation witness.
        let sep = (1..n)
            .filter(|&w| parent[w] == 0)
            .map(|w| subtree[w])
            .min()
            .unwrap_or(0);
        arts.insert(0, sep.min(n.saturating_sub(1 + sep)));
    }
    let mut ranked: Vec<(usize, usize)> = arts.into_iter().collect();
    ranked.sort_by_key(|&(u, score)| (usize::MAX - score, comp[u]));
    ranked.into_iter().map(|(u, _)| comp[u]).collect()
}

/// Splits `comp` around articulation vertex `v` into the ordered groups
/// `[upstream, v + mixed, downstream]` (empty groups dropped). Returns
/// `None` if removing `v` leaves the rest connected (not actually an
/// articulation vertex for this component).
fn directional_split(dag: &Dag, comp: &[InstrId], v: InstrId) -> Option<Vec<Vec<InstrId>>> {
    let mut piece: HashMap<InstrId, usize> = HashMap::new();
    let mut n_pieces = 0usize;
    let mut stack = Vec::new();
    for &start in comp {
        if start == v || piece.contains_key(&start) {
            continue;
        }
        let id = n_pieces;
        n_pieces += 1;
        piece.insert(start, id);
        stack.push(start);
        while let Some(i) = stack.pop() {
            for nb in dag.neighbors(i) {
                if nb != v && !piece.contains_key(&nb) {
                    piece.insert(nb, id);
                    stack.push(nb);
                }
            }
        }
    }
    if n_pieces < 2 {
        return None;
    }
    // Classify each piece by the direction of its edges with `v`.
    let mut feeds_v = vec![false; n_pieces];
    let mut fed_by_v = vec![false; n_pieces];
    for &p in dag.preds(v) {
        if let Some(&id) = piece.get(&p) {
            feeds_v[id] = true;
        }
    }
    for &s in dag.succs(v) {
        if let Some(&id) = piece.get(&s) {
            fed_by_v[id] = true;
        }
    }
    let mut upstream = Vec::new();
    let mut middle = vec![v];
    let mut downstream = Vec::new();
    for &i in comp {
        if i == v {
            continue;
        }
        let id = piece[&i];
        match (feeds_v[id], fed_by_v[id]) {
            (true, false) => upstream.push(i),
            (false, true) => downstream.push(i),
            // Mixed pieces (or isolated ones, unreachable for a
            // connected component) must stay with the vertex.
            _ => middle.push(i),
        }
    }
    upstream.sort_unstable();
    middle.sort_unstable();
    downstream.sort_unstable();
    let groups: Vec<Vec<InstrId>> = [upstream, middle, downstream]
        .into_iter()
        .filter(|g| !g.is_empty())
        .collect();
    Some(groups)
}

/// Builds the final [`Decomposition`] from ordered disjoint id groups
/// covering the graph.
fn assemble(dag: &Dag, groups: Vec<Vec<InstrId>>) -> Decomposition {
    let mut shard_of = vec![usize::MAX; dag.len()];
    let mut local_of = vec![InstrId::new(0); dag.len()];
    for (k, group) in groups.iter().enumerate() {
        for (local, &g) in group.iter().enumerate() {
            shard_of[g.index()] = k;
            local_of[g.index()] = InstrId::new(local as u32);
        }
    }
    debug_assert!(shard_of.iter().all(|&s| s != usize::MAX));

    let shards: Vec<Shard> = groups
        .into_iter()
        .map(|group| {
            let mut b = DagBuilder::with_capacity(group.len());
            for &g in &group {
                b.push(dag.instr(g).clone());
            }
            for &g in &group {
                for &s in dag.succs(g) {
                    if shard_of[s.index()] == shard_of[g.index()] {
                        b.edge(local_of[g.index()], local_of[s.index()])
                            .expect("induced edge endpoints exist");
                    }
                }
            }
            Shard {
                dag: b
                    .build()
                    .expect("induced subgraph of a DAG is a nonempty DAG"),
                to_global: group,
            }
        })
        .collect();

    let cross_edges: Vec<Edge> = dag
        .edges()
        .filter(|e| shard_of[e.src.index()] != shard_of[e.dst.index()])
        .collect();
    debug_assert!(cross_edges
        .iter()
        .all(|e| shard_of[e.src.index()] < shard_of[e.dst.index()]));

    Decomposition {
        shards,
        shard_of,
        local_of,
        cross_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Opcode;

    /// `k` disjoint chains of length `len`.
    fn chains(k: usize, len: usize) -> Dag {
        let mut b = DagBuilder::new();
        for _ in 0..k {
            let mut prev = b.instr(Opcode::IntAlu);
            for _ in 1..len {
                let next = b.instr(Opcode::IntAlu);
                b.edge(prev, next).unwrap();
                prev = next;
            }
        }
        b.build().unwrap()
    }

    /// A diamond (single component).
    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::Load);
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntMul);
        let z = b.instr(Opcode::Store);
        b.edge(a, x).unwrap();
        b.edge(a, y).unwrap();
        b.edge(x, z).unwrap();
        b.edge(y, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn components_of_disjoint_chains() {
        let d = chains(3, 4);
        let comps = weakly_connected_components(&d);
        assert_eq!(comps.len(), 3);
        for (k, c) in comps.iter().enumerate() {
            let expect: Vec<InstrId> = (0..4).map(|i| InstrId::new((k * 4 + i) as u32)).collect();
            assert_eq!(c, &expect);
        }
    }

    #[test]
    fn connected_graph_is_one_component() {
        let comps = weakly_connected_components(&diamond());
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 4);
    }

    #[test]
    fn single_component_never_cut() {
        for shards in [1, 2, 8, 64] {
            let d = diamond();
            let dec = decompose(&d, shards);
            assert!(dec.is_trivial(), "shards={shards}");
            assert_eq!(dec.shards()[0].len(), d.len());
            assert!(dec.cross_edges().is_empty());
            // Identity mapping.
            for i in d.ids() {
                assert_eq!(dec.shard_of(i), 0);
                assert_eq!(dec.local_id(i), i);
                assert_eq!(dec.shards()[0].global_id(i), i);
            }
        }
    }

    #[test]
    fn disjoint_components_have_no_cross_edges() {
        let d = chains(6, 5);
        let dec = decompose(&d, 3);
        assert_eq!(dec.shards().len(), 3);
        assert!(dec.cross_edges().is_empty());
        // Every instruction appears exactly once, mapped consistently.
        let mut seen = vec![false; d.len()];
        for (k, shard) in dec.shards().iter().enumerate() {
            for (local, &g) in shard.to_global().iter().enumerate() {
                assert!(!seen[g.index()]);
                seen[g.index()] = true;
                assert_eq!(dec.shard_of(g), k);
                assert_eq!(dec.local_id(g), InstrId::new(local as u32));
                assert_eq!(
                    shard.dag().instr(InstrId::new(local as u32)),
                    d.instr(g),
                    "instruction payloads survive induction"
                );
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn packing_balances_shard_sizes() {
        // 4 chains of 10 into 2 bins: 20/20.
        let d = chains(4, 10);
        let dec = decompose(&d, 2);
        assert_eq!(dec.shards().len(), 2);
        assert_eq!(dec.shards()[0].len(), 20);
        assert_eq!(dec.shards()[1].len(), 20);
    }

    #[test]
    fn more_shards_than_components_is_capped() {
        let d = chains(3, 2);
        let dec = decompose(&d, 16);
        assert_eq!(dec.shards().len(), 3);
    }

    #[test]
    fn induced_edges_survive() {
        let d = chains(2, 3);
        let dec = decompose(&d, 2);
        let total_edges: usize = dec.shards().iter().map(|s| s.dag().edge_count()).sum();
        assert_eq!(total_edges + dec.cross_edges().len(), d.edge_count());
        assert_eq!(total_edges, 4);
    }

    #[test]
    fn giant_component_is_cut_at_articulation_vertex() {
        // A bowtie: chain A -> v -> chain C (giant, 9 nodes), plus a
        // 2-node dust component. The giant holds > 3/4 of the graph, so
        // with room to spare it gets cut at v.
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 1..4 {
            let next = b.instr(Opcode::IntAlu);
            b.edge(prev, next).unwrap();
            prev = next;
        }
        let v = b.instr(Opcode::IntMul);
        b.edge(prev, v).unwrap();
        let mut tail = v;
        for _ in 0..4 {
            let next = b.instr(Opcode::IntAlu);
            b.edge(tail, next).unwrap();
            tail = next;
        }
        let d1 = b.instr(Opcode::Load);
        let d2 = b.instr(Opcode::Store);
        b.edge(d1, d2).unwrap();
        let d = b.build().unwrap();

        let dec = decompose(&d, 8);
        assert!(dec.shards().len() >= 3, "giant should be cut");
        // Cross edges all point forward in shard order.
        assert!(!dec.cross_edges().is_empty());
        for e in dec.cross_edges() {
            assert!(dec.shard_of(e.src) < dec.shard_of(e.dst), "{e:?}");
        }
        // Every instruction still appears exactly once.
        let mut seen = vec![false; d.len()];
        for shard in dec.shards() {
            for &g in shard.to_global() {
                assert!(!seen[g.index()]);
                seen[g.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn giant_without_room_stays_whole() {
        // Same bowtie + dust, but only 2 shard slots: no cut, just
        // packing of the two components.
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 1..9 {
            let next = b.instr(Opcode::IntAlu);
            b.edge(prev, next).unwrap();
            prev = next;
        }
        let d1 = b.instr(Opcode::Load);
        let d2 = b.instr(Opcode::Store);
        b.edge(d1, d2).unwrap();
        let d = b.build().unwrap();
        let dec = decompose(&d, 2);
        assert_eq!(dec.shards().len(), 2);
        assert!(dec.cross_edges().is_empty());
    }

    #[test]
    fn max_shards_one_is_identity() {
        let d = chains(4, 3);
        let dec = decompose(&d, 1);
        assert!(dec.is_trivial());
        assert_eq!(dec.shards()[0].len(), d.len());
    }
}
