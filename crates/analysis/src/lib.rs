//! Static analysis for convergent scheduling inputs.
//!
//! The schedulers in this workspace trust that the dependence graph,
//! the machine model, and each convergent pass are well-formed; before
//! this crate, a cyclic DAG or an infeasible preplacement was only
//! caught — if at all — deep inside `evaluate()` or by the fuzz
//! shrinker. `convergent-analysis` checks the `(DAG, machine)` half of
//! that triple *statically*, without running a scheduler, and reports
//! problems as structured [`Diagnostic`]s under a stable `CSxxx`
//! [`Code`] catalogue (see `docs/DIAGNOSTICS.md` at the workspace
//! root).
//!
//! The third leg of the triple — the pass sequence — is covered by two
//! cooperating layers. The [`absint`] module proves each pass's
//! declared contract *for all inputs* from its effect summary
//! ([`prove_contract`]) and runs a whole-sequence dataflow analysis
//! ([`analyze_pipeline`]) that emits the `CS07x` pipeline codes.
//! Where a summary is too coarse (an [`Verdict::Unproven`] clause),
//! `convergent_core::contract` falls back to recording every
//! `PreferenceMap` write on small probe graphs and emits the `CS06x`
//! codes defined here. The `csched lint` and `csched analyze`
//! subcommands compose all the layers.
//!
//! Entry points:
//!
//! * [`lint_raw`] — lint a parsed-but-unvalidated [`RawUnit`]
//!   (cycles with a witness path, dangling/self/duplicate edges, …).
//! * [`lint_dag`] — lint a validated [`Dag`] against a [`Machine`]
//!   (feasible windows, preplacement, op-class coverage, latency
//!   table, dead code, register pressure).
//! * [`lint_unit`] — convenience wrapper over [`lint_dag`] for a
//!   [`SchedulingUnit`].
//!
//! [`RawUnit`]: convergent_ir::RawUnit
//! [`Dag`]: convergent_ir::Dag
//! [`Machine`]: convergent_machine::Machine
//! [`SchedulingUnit`]: convergent_ir::SchedulingUnit

#![warn(missing_docs)]

pub mod absint;
mod codes;
mod diag;
mod facts;
mod lint;

pub use absint::{
    analyze_pipeline, prove_contract, AbsRow, ContractClaims, ContractProof, Determinism, EffectOp,
    Interval, NormStatus, PassEffect, PassSummary, Verdict, WindowFact,
};
pub use codes::Code;
pub use diag::{Diagnostic, LintReport, Severity};
pub use facts::GraphFacts;
pub use lint::{lint_dag, lint_raw, lint_unit, LintOptions};
