//! PLACE — preplacement.
//!
//! "This pass increases the weight for preplaced instructions to be
//! placed in their home cluster. Since this condition is required for
//! correctness, the weight increase is large":
//!
//! ```text
//! ∀ (i ∈ PREPLACED, t):  W[i, t, cp(i)] ← 100 · W[i, t, cp(i)]
//! ```

use convergent_analysis::{EffectOp, Interval, PassEffect};

use crate::{Pass, PassContext};

/// The PLACE pass. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct Place {
    factor: f64,
}

impl Place {
    /// Creates the pass with the paper's factor of 100.
    #[must_use]
    pub fn new() -> Self {
        Place { factor: 100.0 }
    }

    /// Overrides the boost factor (used by ablation benches).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a positive finite number.
    #[must_use]
    pub fn with_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        self.factor = factor;
        self
    }
}

impl Default for Place {
    fn default() -> Self {
        Place::new()
    }
}

impl Pass for Place {
    fn name(&self) -> &'static str {
        "PLACE"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        for i in ctx.dag.preplaced() {
            let home = ctx
                .dag
                .instr(i)
                .preplacement()
                .expect("preplaced() yields preplaced instructions");
            if home.index() < ctx.weights.n_clusters() {
                ctx.weights.scale_cluster(i, home, self.factor);
            }
        }
    }

    fn effect(&self) -> PassEffect {
        // A constant boost of each preplaced instruction's home
        // cluster column.
        PassEffect::new(vec![EffectOp::ScaleClusters {
            factor: Interval::point(self.factor),
        }])
        .breaks_symmetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::Rig;
    use convergent_ir::{ClusterId, DagBuilder, Opcode};
    use convergent_machine::Machine;

    #[test]
    fn preplaced_instructions_snap_to_home() {
        let mut b = DagBuilder::new();
        let p = b.preplaced_instr(Opcode::Load, ClusterId::new(3));
        let q = b.instr(Opcode::IntAlu);
        b.edge(p, q).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(4));
        rig.run(&Place::new());
        rig.weights.assert_invariants(1e-9);
        assert_eq!(rig.weights.preferred_cluster(p), ClusterId::new(3));
        // ×100 over 3 competitors: confidence ≈ 100.
        assert!(rig.weights.confidence(p) > 50.0);
        // Non-preplaced instructions untouched.
        assert!((rig.weights.confidence(q) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn factor_is_configurable() {
        let mut b = DagBuilder::new();
        let p = b.preplaced_instr(Opcode::Load, ClusterId::new(1));
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.run(&Place::new().with_factor(2.0));
        assert!((rig.weights.confidence(p) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_preplacement_means_identity() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        let before = rig.weights.clone();
        rig.run(&Place::new());
        let i = convergent_ir::InstrId::new(0);
        assert_eq!(
            rig.weights.cluster_weight(i, ClusterId::new(0)),
            before.cluster_weight(i, ClusterId::new(0))
        );
    }
}
