//! Bottom-Up Greedy (BUG) assignment.
//!
//! Ellis's Bulldog compiler (1986) pioneered cluster assignment with a
//! two-phase algorithm: a bottom-up traversal propagates information
//! about preplaced instructions through the graph, then a top-down
//! greedy pass maps each instruction to the cluster that can execute
//! it earliest. It is the ancestor of every baseline in this crate and
//! one of only two prior techniques (with Rawcc) that directly support
//! preplaced instructions — we include it for ablations.

use convergent_ir::{ClusterId, Dag, UNREACHABLE};
use convergent_machine::Machine;
use convergent_sim::{Assignment, SpaceTimeSchedule};

use crate::list::check_assignment;
use crate::{ListScheduler, ScheduleError, Scheduler};

/// The BUG scheduler. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct BugScheduler {
    _private: (),
}

impl BugScheduler {
    /// Creates a BUG scheduler.
    #[must_use]
    pub fn new() -> Self {
        BugScheduler::default()
    }

    /// Computes the greedy assignment without the final
    /// list-scheduling pass.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] when the graph cannot be mapped to the
    /// machine.
    pub fn assign(&self, dag: &Dag, machine: &Machine) -> Result<Assignment, ScheduleError> {
        crate::precondition::check_inputs(dag, machine)?;
        let n = dag.len();
        let n_clusters = machine.n_clusters();

        // Bottom-up phase: distance to the nearest preplaced
        // instruction of each cluster (multi-source BFS over the
        // undirected graph) — the propagated preplacement information.
        let pull = preplacement_distances(dag, n_clusters);

        // Top-down phase: greedy earliest-completion placement.
        let hard = machine.memory().preplacement_is_hard();
        let mut cluster_of: Vec<ClusterId> = vec![ClusterId::new(0); n];
        let mut est_finish: Vec<u32> = vec![0; n];
        let mut load: Vec<u32> = vec![0; n_clusters];
        for &i in dag.topo_order() {
            let instr = dag.instr(i);
            let chosen = match (instr.preplacement(), hard) {
                (Some(h), true) => h,
                (pre, _) => {
                    let best = machine
                        .cluster_ids()
                        .filter(|&c| machine.cluster_can_execute(c, instr.class()))
                        .min_by_key(|&c| {
                            let ready: u32 = dag
                                .preds(i)
                                .iter()
                                .map(|&p| {
                                    let pc = cluster_of[p.index()];
                                    est_finish[p.index()] + machine.comm_latency(pc, c)
                                })
                                .max()
                                .unwrap_or(0);
                            let home_rank = u32::from(pre != Some(c));
                            let d = pull[c.index()][i.index()];
                            let affinity = if d == UNREACHABLE { u32::MAX } else { d };
                            (home_rank, ready, load[c.index()], affinity, c)
                        })
                        .expect("capable cluster checked above");
                    best
                }
            };
            let ready: u32 = dag
                .preds(i)
                .iter()
                .map(|&p| {
                    est_finish[p.index()] + machine.comm_latency(cluster_of[p.index()], chosen)
                })
                .max()
                .unwrap_or(0);
            cluster_of[i.index()] = chosen;
            est_finish[i.index()] = ready + machine.latency_of(instr);
            load[chosen.index()] += 1;
        }
        let assignment = Assignment::from_vec(cluster_of);
        check_assignment(dag, machine, &assignment)?;
        Ok(assignment)
    }
}

impl Scheduler for BugScheduler {
    fn name(&self) -> &str {
        "bug"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> Result<SpaceTimeSchedule, ScheduleError> {
        let assignment = self.assign(dag, machine)?;
        ListScheduler::new().schedule_with_cp(dag, machine, &assignment)
    }
}

/// For each cluster, the undirected distance from every instruction to
/// the nearest instruction preplaced on that cluster
/// ([`UNREACHABLE`] when the cluster has none).
fn preplacement_distances(dag: &Dag, n_clusters: usize) -> Vec<Vec<u32>> {
    use std::collections::VecDeque;
    let mut out = vec![vec![UNREACHABLE; dag.len()]; n_clusters];
    for (c, dist) in out.iter_mut().enumerate() {
        let mut q = VecDeque::new();
        for i in dag.preplaced() {
            if dag.instr(i).preplacement() == Some(ClusterId::new(c as u16)) {
                dist[i.index()] = 0;
                q.push_back(i);
            }
        }
        while let Some(i) = q.pop_front() {
            let d = dist[i.index()];
            for nb in dag.neighbors(i) {
                if dist[nb.index()] == UNREACHABLE {
                    dist[nb.index()] = d + 1;
                    q.push_back(nb);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::{DagBuilder, Opcode};
    use convergent_sim::validate;

    fn c(i: u16) -> ClusterId {
        ClusterId::new(i)
    }

    #[test]
    fn preplacement_distance_field() {
        let mut b = DagBuilder::new();
        let ld = b.preplaced_instr(Opcode::Load, c(1));
        let a1 = b.instr(Opcode::IntAlu);
        let a2 = b.instr(Opcode::IntAlu);
        b.edge(ld, a1).unwrap();
        b.edge(a1, a2).unwrap();
        let dag = b.build().unwrap();
        let d = preplacement_distances(&dag, 2);
        assert_eq!(d[1][ld.index()], 0);
        assert_eq!(d[1][a1.index()], 1);
        assert_eq!(d[1][a2.index()], 2);
        assert_eq!(d[0][ld.index()], UNREACHABLE); // cluster 0 has none
    }

    #[test]
    fn neighbors_pulled_toward_home() {
        let mut b = DagBuilder::new();
        let ld = b.preplaced_instr(Opcode::Load, c(2));
        let a1 = b.instr(Opcode::IntAlu);
        b.edge(ld, a1).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let asg = BugScheduler::new().assign(&dag, &m).unwrap();
        assert_eq!(asg.cluster(ld), c(2));
        // Greedy earliest-completion keeps the consumer local.
        assert_eq!(asg.cluster(a1), c(2));
    }

    #[test]
    fn parallel_chains_balance() {
        let mut b = DagBuilder::new();
        for _ in 0..4 {
            let mut prev = b.instr(Opcode::IntAlu);
            for _ in 0..3 {
                let n = b.instr(Opcode::IntAlu);
                b.edge(prev, n).unwrap();
                prev = n;
            }
        }
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let asg = BugScheduler::new().assign(&dag, &m).unwrap();
        assert_eq!(asg.cut_edges(&dag), 0);
        assert_eq!(asg.loads(4), vec![4, 4, 4, 4]);
    }

    #[test]
    fn schedule_validates() {
        let mut b = DagBuilder::new();
        let x = b.preplaced_instr(Opcode::Load, c(0));
        let y = b.preplaced_instr(Opcode::Load, c(1));
        let z = b.instr(Opcode::FMul);
        b.edge(x, z).unwrap();
        b.edge(y, z).unwrap();
        let dag = b.build().unwrap();
        for m in [Machine::raw(2), Machine::chorus_vliw(2)] {
            let s = BugScheduler::new().schedule(&dag, &m).unwrap();
            validate(&dag, &m, &s).unwrap();
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(BugScheduler::new().name(), "bug");
    }
}
