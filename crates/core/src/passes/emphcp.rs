//! EMPHCP — emphasize critical path distance.
//!
//! "This pass attempts to help the convergence of the time information
//! by emphasizing the level of each instruction. The level of an
//! instruction is a good time approximation because it is when the
//! instruction can be scheduled if a machine has infinite resources":
//!
//! ```text
//! ∀ (i, c):  W[i, level(i), c] ← 1.2 · W[i, level(i), c]
//! ```
//!
//! This is the only pass in the standard sequences that adjusts *only*
//! temporal preferences, so it is excluded from the convergence plots
//! (Figures 7 and 9).

use convergent_analysis::{EffectOp, Interval, PassEffect};

use crate::{Pass, PassContext};

/// The EMPHCP pass. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct EmphCp {
    factor: f64,
}

impl EmphCp {
    /// Creates the pass with the paper's factor of 1.2.
    #[must_use]
    pub fn new() -> Self {
        EmphCp { factor: 1.2 }
    }

    /// Overrides the emphasis factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a positive finite number.
    #[must_use]
    pub fn with_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        self.factor = factor;
        self
    }
}

impl Default for EmphCp {
    fn default() -> Self {
        EmphCp::new()
    }
}

impl Pass for EmphCp {
    fn name(&self) -> &'static str {
        "EMPHCP"
    }

    fn is_time_only(&self) -> bool {
        true
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        let n_slots = ctx.weights.n_slots() as u32;
        for i in ctx.dag.ids() {
            let level = ctx.time.level(i);
            if level < n_slots {
                ctx.weights.scale_time(i, level, self.factor);
            }
        }
    }

    fn effect(&self) -> PassEffect {
        // A constant boost of each instruction's level time row; the
        // same factor hits every cluster, so spatial marginals keep
        // their ratios.
        PassEffect::new(vec![EffectOp::ScaleTimes {
            factor: Interval::point(self.factor),
        }])
        .time_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::Rig;
    use convergent_ir::{ClusterId, Cycle, DagBuilder, Opcode};
    use convergent_machine::Machine;

    #[test]
    fn time_moves_toward_levels() {
        // Island with a wide window: after EMPHCP its preferred time
        // is its level (0).
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        let z = b.instr(Opcode::IntAlu);
        b.edge(x, y).unwrap();
        b.edge(y, z).unwrap();
        let island = b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.run(&EmphCp::new());
        rig.weights.assert_invariants(1e-9);
        assert_eq!(rig.weights.preferred_time(island), Cycle::ZERO);
        assert_eq!(rig.weights.preferred_time(y), Cycle::new(1));
    }

    #[test]
    fn spatial_preferences_untouched() {
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(4));
        rig.weights.scale_cluster(x, ClusterId::new(2), 3.0);
        rig.weights.normalize_all();
        let conf_before = rig.weights.confidence(x);
        rig.run(&EmphCp::new());
        assert!((rig.weights.confidence(x) - conf_before).abs() < 1e-9);
        assert!(EmphCp::new().is_time_only());
    }
}
