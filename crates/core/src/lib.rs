#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // pass kernels index several parallel per-cluster arrays

//! Convergent scheduling — the MICRO-35 (2002) contribution.
//!
//! > "A convergent scheduler is composed of independent passes, each
//! > implementing a heuristic that addresses a particular problem or
//! > constraint. The passes share a simple, common interface that
//! > provides spatial and temporal preference for each instruction.
//! > Preferences are not absolute; instead, the interface allows a
//! > pass to express the confidence of its preferences."
//!
//! This crate implements that framework:
//!
//! * [`PreferenceMap`] — the shared `W[i, c, t]` weight matrix with the
//!   paper's invariants, marginals, and confidence measure.
//! * [`Pass`] / [`PassContext`] — the common interface between
//!   heuristics.
//! * [`passes`] — the full Section 4 collection: INITTIME, NOISE,
//!   PLACE, FIRST, PATH, COMM, PLACEPROP, LOAD, LEVEL, PATHPROP,
//!   EMPHCP.
//! * [`Sequence`] — compositions of passes, with the paper's Table 1
//!   configurations as presets ([`Sequence::raw`], [`Sequence::vliw`]).
//! * [`ConvergentScheduler`] — the driver: run a sequence, read off
//!   preferred clusters as the spatial assignment and preferred times
//!   as list-scheduling priorities, and record the per-pass
//!   convergence trace (Figures 7 and 9).
//!
//! # Quick example
//!
//! ```
//! use convergent_core::ConvergentScheduler;
//! use convergent_ir::{ClusterId, DagBuilder, Opcode};
//! use convergent_machine::Machine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A banked load feeding an add, on a 4-cluster VLIW.
//! let mut b = DagBuilder::new();
//! let ld = b.preplaced_instr(Opcode::Load, ClusterId::new(2));
//! let ad = b.instr(Opcode::IntAlu);
//! b.edge(ld, ad)?;
//! let dag = b.build()?;
//! let machine = Machine::chorus_vliw(4);
//!
//! let outcome = ConvergentScheduler::vliw_default().schedule(&dag, &machine)?;
//! convergent_sim::validate(&dag, &machine, outcome.schedule())?;
//! // The preplacement heuristics pull the consumer to the load's bank.
//! assert_eq!(outcome.assignment().cluster(ad), ClusterId::new(2));
//! # Ok(())
//! # }
//! ```

pub mod contract;
mod driver;
mod governor;
mod pass;
pub mod passes;
mod profile;
mod sequence;
pub mod telemetry;
pub mod tuner;
mod weights;

pub use contract::{
    prove_pass, sequence_proof_counts, summarize_pass, summarize_sequence, verify_pass,
    verify_pass_empirically, verify_pass_on, verify_sequence,
};
pub use convergent_analysis::{
    ContractProof, Determinism, EffectOp, Interval, PassEffect, PassSummary, Verdict,
};
pub use driver::{
    AssignOutcome, ConvergenceTrace, ConvergentScheduler, PassRecord, ScheduleOutcome, ShardInfo,
};
pub use governor::{assess, CutAssessment, CutVerdict};
pub use pass::{Pass, PassContext, PassContract, PassScratch, RowKernel};
pub use profile::PassProfile;
pub use sequence::Sequence;
pub use weights::{PreferenceMap, RowOps, WeightOp, WeightRows};
