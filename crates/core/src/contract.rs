//! Pass-contract verification: static proof first, probes second.
//!
//! A [`crate::Pass`] declares a [`PassContract`]; this module checks
//! the declaration along two routes:
//!
//! 1. **Static** — the pass's [`crate::Pass::effect`] summary is fed
//!    to the abstract interpreter
//!    ([`convergent_analysis::prove_contract`]), which tries to decide
//!    each clause *for all inputs*. A clause it proves needs no run at
//!    all; a clause the summary itself violates is rejected outright
//!    (`RefutedStatic`, still a `CS06x` diagnostic) without ever
//!    constructing a scheduler.
//! 2. **Empirical** — clauses the summary is too coarse (or absent:
//!    the default opaque summary) to decide fall back to *running* the
//!    pass on small probe graphs with the recording `PreferenceMap`
//!    proxy enabled and inspecting the captured [`WeightOp`] log.
//!
//! Either way a contract-violating pass is flagged at `csched lint` /
//! `csched analyze` time — as a structured `CS06x` diagnostic — rather
//! than surfacing later as a fuzz counterexample or a wrong schedule.
//! Every builtin pass carries a precise effect summary, so the builtin
//! sequences verify without a single probe run; third-party passes
//! that don't override [`crate::Pass::effect`] get the pre-existing
//! empirical behaviour unchanged.
//!
//! The probes are deliberately tiny (a latency-diverse chain and a
//! preplaced diamond) so a fully opaque sequence still verifies in
//! well under a millisecond; they are not meant to be adversarial
//! workloads but to exercise the operations every heuristic performs:
//! windows, preplacement, cross-cluster tension, and slack.

use std::collections::HashSet;

use convergent_analysis::{
    prove_contract, Code, ContractClaims, ContractProof, Diagnostic, PassSummary, Verdict,
};
use convergent_ir::{ClusterId, Dag, DagBuilder, DistanceOracle, Opcode, TimeAnalysis};
use convergent_machine::Machine;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::passes::InitTime;
use crate::weights::WeightOp;
use crate::{Pass, PassContext, PassContract, PreferenceMap, Sequence};

/// Seed for the pass under test; fixed so two recorded runs are
/// comparable bit for bit.
const PROBE_SEED: u64 = 0x5EED_CA11;

/// Tolerance for the post-run invariant check — looser than the unit
/// tests' `1e-9` since a whole pass may legitimately accumulate a few
/// ulps of drift across marginals.
const INVARIANT_TOL: f64 = 1e-6;

/// One recorded execution of a pass on a probe.
struct RecordedRun {
    /// The primitive operations the pass performed.
    log: Vec<WeightOp>,
    /// Feasible window per instruction at the moment the pass started.
    windows_before: Vec<(u32, u32)>,
    /// The map after the pass ran and the driver normalized.
    weights: PreferenceMap,
}

/// The probe graphs: `(name, dag)` pairs valid on any machine with at
/// least one cluster.
fn probes(machine: &Machine) -> Vec<(&'static str, Dag)> {
    // A latency-diverse chain: tight single-slot windows.
    let mut b = DagBuilder::new();
    let ld = b.instr(Opcode::Load);
    let ad = b.instr(Opcode::IntAlu);
    let fm = b.instr(Opcode::FMul);
    let st = b.instr(Opcode::Store);
    b.edge(ld, ad).unwrap();
    b.edge(ad, fm).unwrap();
    b.edge(fm, st).unwrap();
    let chain = b.build().unwrap();

    // A diamond with memory ops preplaced on two different banks plus
    // a slack-rich side chain — exercises preplacement handling and
    // non-trivial windows.
    let other = ClusterId::new((1 % machine.n_clusters()) as u16);
    let mut b = DagBuilder::new();
    let l0 = b.preplaced_instr(Opcode::Load, ClusterId::new(0));
    let l1 = b.preplaced_instr(Opcode::Load, other);
    let fm = b.instr(Opcode::FMul);
    let st = b.preplaced_instr(Opcode::Store, ClusterId::new(0));
    let side = b.instr(Opcode::IntAlu);
    b.edge(l0, fm).unwrap();
    b.edge(l1, fm).unwrap();
    b.edge(fm, st).unwrap();
    b.edge(l0, side).unwrap();
    b.edge(side, st).unwrap();
    let diamond = b.build().unwrap();

    vec![("chain", chain), ("preplaced-diamond", diamond)]
}

/// Runs `pass` once on `(dag, machine)` with recording enabled,
/// mirroring the driver: INITTIME first (for passes that expect
/// established windows), normalization afterwards.
fn run_recorded(
    pass: &dyn Pass,
    contract: &PassContract,
    dag: &Dag,
    machine: &Machine,
) -> RecordedRun {
    let time = TimeAnalysis::compute(dag, |i| machine.latency_of(i));
    let slots = time.critical_path_length().max(1) as usize;
    let mut weights = PreferenceMap::new(dag.len(), machine.n_clusters(), slots);
    let mut dist = DistanceOracle::new();
    let mut scratch = crate::PassScratch::default();
    if !contract.establishes_windows {
        let mut rng = StdRng::seed_from_u64(PROBE_SEED);
        let mut ctx = PassContext {
            dag,
            machine,
            time: &time,
            dist: &mut dist,
            rng: &mut rng,
            weights: &mut weights,
            scratch: &mut scratch,
        };
        InitTime::new().run(&mut ctx);
        weights.normalize_all();
    }
    let windows_before: Vec<(u32, u32)> = dag.ids().map(|i| weights.window(i)).collect();
    weights.record();
    let mut rng = StdRng::seed_from_u64(PROBE_SEED);
    let mut ctx = PassContext {
        dag,
        machine,
        time: &time,
        dist: &mut dist,
        rng: &mut rng,
        weights: &mut weights,
        scratch: &mut scratch,
    };
    pass.run(&mut ctx);
    let log = weights.take_recording();
    weights.normalize_all();
    RecordedRun {
        log,
        windows_before,
        weights,
    }
}

/// Converts a declared [`PassContract`] into the analysis-side
/// [`ContractClaims`] mirror (field for field).
fn claims_of(c: &PassContract) -> ContractClaims {
    ContractClaims {
        establishes_windows: c.establishes_windows,
        window_respecting: c.window_respecting,
        deterministic: c.deterministic,
        normalization_preserving: c.normalization_preserving,
        preplacement_monotone: c.preplacement_monotone,
    }
}

/// Bundles a pass's name, claimed contract, and effect summary into
/// the [`PassSummary`] the abstract interpreter consumes.
#[must_use]
pub fn summarize_pass(pass: &dyn Pass) -> PassSummary {
    PassSummary::new(pass.name(), claims_of(&pass.contract()), pass.effect())
}

/// Summarizes every pass of `seq`, in order — the input shape for
/// [`convergent_analysis::analyze_pipeline`] and `csched analyze`.
#[must_use]
pub fn summarize_sequence(seq: &Sequence) -> Vec<PassSummary> {
    seq.passes()
        .iter()
        .map(|p| summarize_pass(p.as_ref()))
        .collect()
}

/// Runs only the static half: per-clause verdicts plus any
/// `RefutedStatic` diagnostics, no probe ever executed.
#[must_use]
pub fn prove_pass(pass: &dyn Pass) -> (ContractProof, Vec<Diagnostic>) {
    prove_contract(&summarize_pass(pass))
}

/// Static proof totals for a whole sequence: `(proven, fallback)`
/// clause counts, where `fallback` counts clauses that were *not*
/// proven (Unproven and RefutedStatic alike). Feeds the
/// `contracts_proven` / `contracts_unproven` telemetry counters.
#[must_use]
pub fn sequence_proof_counts(seq: &Sequence) -> (u64, u64) {
    let mut proven = 0u64;
    let mut fallback = 0u64;
    for pass in seq.passes() {
        let (proof, _) = prove_pass(pass.as_ref());
        let (p, u, r) = proof.counts();
        proven += p as u64;
        fallback += (u + r) as u64;
    }
    (proven, fallback)
}

/// Which contract clauses the empirical probes should still check.
/// (`establishes_windows` has no empirical check — it only changes the
/// probe setup — so it has no mask bit.)
#[derive(Clone, Copy)]
struct ClauseMask {
    window_respecting: bool,
    preplacement_monotone: bool,
    normalization_preserving: bool,
    deterministic: bool,
}

impl ClauseMask {
    const ALL: ClauseMask = ClauseMask {
        window_respecting: true,
        preplacement_monotone: true,
        normalization_preserving: true,
        deterministic: true,
    };

    fn any(&self) -> bool {
        self.window_respecting
            || self.preplacement_monotone
            || self.normalization_preserving
            || self.deterministic
    }
}

/// Verifies `pass` against its declared [`PassContract`], static proof
/// first: clauses the effect summary proves are skipped, clauses it
/// refutes are reported without running anything, and only the
/// remainder fall back to the recorded probe runs. Returns one `CS06x`
/// diagnostic per violated clause (per probe, for empirical findings).
#[must_use]
pub fn verify_pass(pass: &dyn Pass, machine: &Machine) -> Vec<Diagnostic> {
    let (proof, mut diags) = prove_pass(pass);
    let needs_probe = |v: Verdict| v == Verdict::Unproven;
    let mask = ClauseMask {
        window_respecting: needs_probe(proof.window_respecting),
        preplacement_monotone: needs_probe(proof.preplacement_monotone),
        normalization_preserving: needs_probe(proof.normalization_preserving),
        deterministic: needs_probe(proof.deterministic),
    };
    if mask.any() {
        diags.extend(verify_pass_filtered(pass, machine, mask));
    }
    diags
}

/// Verifies `pass` purely empirically — every claimed clause checked
/// on the probe graphs, ignoring the effect summary. This is the
/// pre-static behaviour, kept public as the ground truth the
/// soundness tests compare the prover against: a clause the abstract
/// interpreter proves must never produce a diagnostic here.
#[must_use]
pub fn verify_pass_empirically(pass: &dyn Pass, machine: &Machine) -> Vec<Diagnostic> {
    verify_pass_filtered(pass, machine, ClauseMask::ALL)
}

/// Runs every clause check for `pass` on one *specific* graph instead
/// of the builtin probes — the hook the fuzz-stream soundness test
/// uses to confront statically proven clauses with arbitrary
/// generated graphs. Returns the same `CS06x` diagnostics as
/// [`verify_pass_empirically`], labelled with `graph_name`.
#[must_use]
pub fn verify_pass_on(
    pass: &dyn Pass,
    machine: &Machine,
    graph_name: &str,
    dag: &Dag,
) -> Vec<Diagnostic> {
    check_on_probe(pass, machine, graph_name, dag, ClauseMask::ALL)
}

fn verify_pass_filtered(pass: &dyn Pass, machine: &Machine, mask: ClauseMask) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (probe, dag) in probes(machine) {
        diags.extend(check_on_probe(pass, machine, probe, &dag, mask));
    }
    diags
}

fn check_on_probe(
    pass: &dyn Pass,
    machine: &Machine,
    probe: &str,
    dag: &Dag,
    mask: ClauseMask,
) -> Vec<Diagnostic> {
    let contract = pass.contract();
    let name = pass.name();
    let mut diags = Vec::new();
    {
        let run = run_recorded(pass, &contract, dag, machine);

        if mask.window_respecting && contract.window_respecting && !contract.establishes_windows {
            let mut windows = run.windows_before.clone();
            for op in &run.log {
                match *op {
                    WeightOp::SetWindow { i, lo, hi } => {
                        // Tightening is always legal (intersect
                        // semantics); track it for later writes.
                        let w = &mut windows[i.index()];
                        w.0 = w.0.max(lo);
                        w.1 = w.1.min(hi);
                    }
                    WeightOp::Set { i, c, t, value } if value > 0.0 => {
                        let (lo, hi) = windows[i.index()];
                        if t < lo || t > hi {
                            diags.push(
                                Diagnostic::new(
                                    Code::OutOfWindowWrite,
                                    vec![i],
                                    format!(
                                        "pass {name} wrote W[{i},{c},t{t}] = {value} outside the feasible window [{lo}, {hi}] on probe `{probe}`"
                                    ),
                                )
                                .with_witness(format!("set({i}, {c}, {t}, {value})")),
                            );
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }

        if mask.preplacement_monotone && contract.preplacement_monotone {
            for op in &run.log {
                let (i, c, what) = match *op {
                    WeightOp::ForbidCluster { i, c } => (i, c, format!("forbid_cluster({i}, {c})")),
                    WeightOp::ScaleCluster { i, c, factor: 0.0 } => {
                        (i, c, format!("scale_cluster({i}, {c}, 0)"))
                    }
                    _ => continue,
                };
                let instr = dag.instr(i);
                if instr.preplacement() == Some(c) && machine.cluster_can_execute(c, instr.class())
                {
                    diags.push(
                        Diagnostic::new(
                            Code::PreplacementDemoted,
                            vec![i],
                            format!(
                                "pass {name} zeroed the home cluster {c} of preplaced {i} on probe `{probe}`"
                            ),
                        )
                        .with_witness(what),
                    );
                    break;
                }
            }
        }

        if mask.normalization_preserving && contract.normalization_preserving {
            if let Err(msg) = run.weights.check_invariants(INVARIANT_TOL) {
                diags.push(Diagnostic::new(
                    Code::BrokenNormalization,
                    vec![],
                    format!(
                        "pass {name} broke preference-map invariants on probe `{probe}`: {msg}"
                    ),
                ));
            }
        }

        if mask.deterministic && contract.deterministic {
            let rerun = run_recorded(pass, &contract, dag, machine);
            if rerun.log != run.log {
                diags.push(Diagnostic::new(
                    Code::NondeterministicPass,
                    vec![],
                    format!(
                        "pass {name} produced a different operation log on an identical re-run (same seed) on probe `{probe}`"
                    ),
                ));
            }
        }
    }
    diags
}

/// Verifies every pass of `seq`, deduplicating identical findings
/// from repeated pass instances (the builtin sequences run PATHPROP
/// several times).
#[must_use]
pub fn verify_sequence(seq: &Sequence, machine: &Machine) -> Vec<Diagnostic> {
    let mut seen: HashSet<(Code, String)> = HashSet::new();
    let mut out = Vec::new();
    for pass in seq.passes() {
        for d in verify_pass(pass.as_ref(), machine) {
            if seen.insert((d.code, d.message.clone())) {
                out.push(d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_sequences_honor_their_contracts() {
        for (seq, machine) in [
            (Sequence::raw(), Machine::raw(4)),
            (Sequence::raw(), Machine::raw(16)),
            (Sequence::vliw(), Machine::chorus_vliw(4)),
            (Sequence::vliw_tuned(), Machine::chorus_vliw(4)),
            (Sequence::vliw(), Machine::single_cluster()),
        ] {
            let diags = verify_sequence(&seq, &machine);
            assert!(
                diags.is_empty(),
                "{} on {}: {diags:?}",
                seq.names().join(","),
                machine.name()
            );
        }
    }

    #[test]
    fn every_builtin_pass_proves_statically() {
        // The acceptance bar for the builtin roster: no clause falls
        // back to the empirical probes, none is refuted.
        for seq in [Sequence::raw(), Sequence::vliw(), Sequence::vliw_tuned()] {
            for pass in seq.passes() {
                let (proof, diags) = prove_pass(pass.as_ref());
                assert!(proof.all_proven(), "{}: {proof:?} {diags:?}", pass.name());
                assert!(diags.is_empty(), "{}: {diags:?}", pass.name());
            }
            let (proven, fallback) = sequence_proof_counts(&seq);
            assert_eq!(proven, 5 * seq.len() as u64);
            assert_eq!(fallback, 0);
        }
    }

    #[test]
    fn static_proofs_agree_with_probes_for_builtins() {
        // Soundness on the probe graphs themselves: everything the
        // prover waves through must also pass the recorded run.
        for (seq, machine) in [
            (Sequence::raw(), Machine::raw(4)),
            (Sequence::vliw_tuned(), Machine::chorus_vliw(4)),
        ] {
            for pass in seq.passes() {
                let diags = verify_pass_empirically(pass.as_ref(), &machine);
                assert!(diags.is_empty(), "{}: {diags:?}", pass.name());
            }
        }
    }

    #[test]
    fn opaque_pass_still_verifies_empirically() {
        // A pass with the default opaque effect() goes down the
        // recorded-probe path and comes back clean if it behaves.
        struct Honest;
        impl Pass for Honest {
            fn name(&self) -> &'static str {
                "HONEST"
            }
            fn run(&self, ctx: &mut PassContext<'_>) {
                for i in ctx.dag.ids() {
                    ctx.weights.scale_cluster(i, ClusterId::new(0), 1.5);
                }
            }
        }
        let (proof, _) = prove_pass(&Honest);
        assert!(!proof.all_proven(), "opaque must not auto-prove");
        assert!(verify_pass(&Honest, &Machine::raw(4)).is_empty());
    }

    #[test]
    fn statically_refuted_pass_is_rejected_without_probes() {
        // An effect summary that *declares* an out-of-window absolute
        // write is rejected by the prover alone; run() is never
        // invoked (it would panic).
        struct Broken;
        impl Pass for Broken {
            fn name(&self) -> &'static str {
                "BROKEN-PROBE"
            }
            fn run(&self, _ctx: &mut PassContext<'_>) {
                unreachable!("statically refuted pass must not be probed");
            }
            fn effect(&self) -> convergent_analysis::PassEffect {
                use convergent_analysis::{EffectOp, Interval, PassEffect};
                PassEffect::new(vec![EffectOp::Absolute {
                    in_window: false,
                    value: Interval::new(0.0, 1.0),
                    randomized: false,
                    preserves_support: true,
                }])
            }
        }
        let diags = verify_pass(&Broken, &Machine::raw(4));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::OutOfWindowWrite);
        assert!(diags[0].message.contains("statically"));
    }
}
