//! Compile-time throughput of the convergent scheduler itself: how
//! many instructions per second the full pass pipeline (weights,
//! passes, normalization, final list schedule) sustains at several
//! region sizes — the paper's Figure 10 claim, extended to 100k
//! instructions. Companion to figure10, but focused on the convergent
//! scheduler and machine-readable: results land in
//! `BENCH_compiletime.json`, including a per-pass wall-clock breakdown
//! of the best repetition and host metadata (cpu model, core count,
//! thread count) so rows are comparable across machines.
//!
//! ```text
//! cargo run --release -p convergent-bench --bin compiletime
//! cargo run --release -p convergent-bench --bin compiletime -- \
//!     --sizes 200,2000 --budget-secs 0.5 --no-out --max-ratio 4.0
//! cargo run --release -p convergent-bench --bin compiletime -- --threads 8
//! cargo run --release -p convergent-bench --bin compiletime -- \
//!     --components 8 --shards 8 --sizes 50000
//! ```
//!
//! The workload is a layered random DAG whose layer width scales with
//! the instruction count (`width = max(8, n/125)`, overridable with
//! `--width`), keeping graph depth — and with it the number of time
//! slots and the feasible-window span — roughly constant across sizes.
//! A fixed width would make the cell count per instruction grow
//! linearly in `n` (depth ∝ n ⇒ slack ∝ n), which measures the
//! workload's shape rather than the scheduler, and puts 100k
//! instructions out of reach of any implementation (~4·10⁹ weight
//! cells). Real scheduling regions grow wide, not kilodeep.
//!
//! `--components K` switches the workload to a disjoint union of `K`
//! layered graphs (distinct seeds, sizes split evenly); `--shards N`
//! lets the driver schedule regions concurrently and stitch the
//! results — since the decomposer cuts connected graphs recursively,
//! this also engages on the default single-component workload.
//! `--region-size N` overrides the decomposer's target region size.
//! When shard metadata is produced it lands in the JSON rows
//! (`shard_sizes`, `boundary_comms`) and every sharded schedule is
//! re-validated outside the timed region. Every row also records
//! `shards_effective` — the region count the decomposer actually
//! produced (1 when the cut was refused or trivial); a mismatch with
//! the requested `--shards` is warned on stderr.
//!
//! Measurements run serially (never through the parallel harness) so
//! each row gets an unloaded machine; `--threads N` exercises the
//! driver's intra-pass parallelism instead. Every size is repeated
//! until a fixed wall-clock budget (`--budget-secs`, default 2 s) is
//! spent, so `best_seconds` is equally converged across rows instead
//! of drifting with size; the measured rep count is recorded per row.
//!
//! `--max-ratio R` turns the run into a scaling guard: it exits
//! nonzero if throughput at the smallest size exceeds throughput at
//! the largest by more than `R×` — the superlinear-collapse symptom
//! the banded preference map and the bulk row kernels exist to
//! prevent.
//!
//! Each size also runs a second, equally-budgeted loop of
//! fully-instrumented reps through the telemetry layer: the hot-path
//! counter totals, argmax-cache hit rate, and measured overhead (best
//! instrumented rep vs best uninstrumented rep) land in the JSON
//! rows, and `--trace FILE` writes a Chrome trace (all sizes on one
//! timeline) loadable in Perfetto.

use std::time::Instant;

use convergent_core::telemetry::{ChromeTraceSink, CounterTotals, MultiSink, TelemetryBuffer};
use convergent_core::{ConvergentScheduler, PassProfile};
use convergent_ir::{DagBuilder, SchedulingUnit};
use convergent_machine::Machine;
use convergent_workloads::{layered, LayeredParams};

struct Row {
    n: usize,
    width: usize,
    best: f64,
    ips: f64,
    reps: u32,
    profile: PassProfile,
    shard_sizes: Option<Vec<usize>>,
    boundary_comms: Option<usize>,
    /// Regions the decomposer actually produced (1 = monolithic).
    shards_effective: usize,
    /// Hot-path counter totals from one fully-instrumented rep.
    counters: CounterTotals,
    /// Best wall-clock seconds over the instrumented rep loop; the
    /// ratio against `best` is the measured telemetry overhead.
    telemetry_secs: f64,
}

/// Layer width for an `n`-instruction sweep point: proportional so
/// depth stays near 125 levels at every size (see module docs).
fn auto_width(n: usize) -> usize {
    (n / 125).max(8)
}

/// The sweep workload at one size: a single layered DAG, or — with
/// `--components K` — a disjoint union of `K` layered DAGs with
/// distinct seeds and near-equal sizes, each kept at the same target
/// depth so the union measures the decomposer and stitch rather than
/// a change in graph shape.
fn build_workload(
    n: usize,
    components: usize,
    forced_width: Option<usize>,
) -> (SchedulingUnit, usize) {
    if components <= 1 {
        let width = forced_width.unwrap_or_else(|| auto_width(n));
        let unit = layered(
            LayeredParams::new(n, 0xF16)
                .with_width(width)
                .with_preplacement(0.5, 4),
        );
        return (unit, width);
    }
    let components = components.min(n);
    let mut b = DagBuilder::with_capacity(n);
    let mut row_width = 0usize;
    for c in 0..components {
        let size = n / components + usize::from(c < n % components);
        let width = forced_width.unwrap_or_else(|| auto_width(size));
        row_width = row_width.max(width);
        let unit = layered(
            LayeredParams::new(size, 0xF16 + c as u64)
                .with_width(width)
                .with_preplacement(0.5, 4),
        );
        let dag = unit.dag();
        let ids: Vec<_> = dag.instrs().iter().map(|i| b.push(i.clone())).collect();
        for i in dag.ids() {
            for &s in dag.succs(i) {
                b.edge(ids[i.index()], ids[s.index()]).expect("fresh ids");
            }
        }
    }
    let unit = SchedulingUnit::new(
        format!("layered-union-{components}x{n}"),
        b.build().expect("union of DAGs is a DAG"),
    );
    (unit, row_width)
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1).map(|m| m.trim().to_string()))
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|k| args.get(k + 1))
            .cloned()
    };
    let out_path = flag_val("--out").unwrap_or_else(|| "BENCH_compiletime.json".to_string());
    let no_out = args.iter().any(|a| a == "--no-out");
    let show_profile = args.iter().any(|a| a == "--profile");
    let trace_path = flag_val("--trace");
    let budget_secs: f64 = flag_val("--budget-secs")
        .map(|v| v.parse().expect("--budget-secs takes seconds"))
        .unwrap_or(2.0);
    let max_ratio: Option<f64> =
        flag_val("--max-ratio").map(|v| v.parse().expect("--max-ratio takes a number"));
    let threads: usize = flag_val("--threads")
        .map(|v| v.parse().expect("--threads takes a positive integer"))
        .unwrap_or(1);
    assert!(threads > 0, "--threads takes a positive integer");
    let shards: usize = flag_val("--shards")
        .map(|v| v.parse().expect("--shards takes a positive integer"))
        .unwrap_or(1);
    assert!(shards > 0, "--shards takes a positive integer");
    let components: usize = flag_val("--components")
        .map(|v| v.parse().expect("--components takes a positive integer"))
        .unwrap_or(1);
    assert!(components > 0, "--components takes a positive integer");
    let region_size: Option<usize> = flag_val("--region-size")
        .map(|v| v.parse().expect("--region-size takes a positive integer"));
    assert!(
        region_size != Some(0),
        "--region-size takes a positive integer"
    );
    let forced_width: Option<usize> =
        flag_val("--width").map(|v| v.parse().expect("--width takes a positive integer"));
    let sizes: Vec<usize> = flag_val("--sizes")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--sizes takes a comma list"))
                .collect()
        })
        .unwrap_or_else(|| vec![200, 500, 1000, 2000, 5000, 10000, 50000, 100000]);

    let machine = Machine::chorus_vliw(4);
    let make_sched = || {
        let s = ConvergentScheduler::vliw_default()
            .with_threads(threads)
            .with_shards(shards);
        match region_size {
            Some(n) => s.with_region_size(n),
            None => s,
        }
    };
    println!(
        "{:>8}{:>8}{:>12}{:>16}{:>8}{:>12}{:>10}{:>10}",
        "instrs", "width", "best (s)", "instrs/sec", "reps", "weight ops", "hit rate", "tel ovh"
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut trace_sink = trace_path.as_ref().map(|_| ChromeTraceSink::new());
    for &n in &sizes {
        let (unit, width) = build_workload(n, components, forced_width);
        let mut best = f64::INFINITY;
        let mut best_profile = PassProfile::default();
        let mut shard_sizes = None;
        let mut boundary_comms = None;
        let mut reps = 0u32;
        let clock = Instant::now();
        // At least one rep, then keep going until the budget is spent.
        while reps == 0 || clock.elapsed().as_secs_f64() < budget_secs {
            let sched = make_sched();
            let start = Instant::now();
            let (out, profile) = sched
                .schedule_profiled(unit.dag(), &machine)
                .expect("convergent schedules");
            let secs = start.elapsed().as_secs_f64();
            assert!(out.schedule().makespan().get() > 0);
            if secs < best {
                best = secs;
                best_profile = profile;
                shard_sizes = out.shard_info().map(|i| i.shard_sizes.clone());
                boundary_comms = out.shard_info().map(|i| i.boundary_comms);
            }
            if reps == 0 && shards > 1 {
                // Hold sharded schedules to the referee once, outside
                // the timed region.
                convergent_sim::validate(unit.dag(), &machine, out.schedule())
                    .expect("sharded schedule validates");
            }
            reps += 1;
        }
        // A second, equally-budgeted loop of fully-instrumented reps:
        // best-of-N against best-of-N is the honest overhead ratio (a
        // single rep against the min of thousands mostly measures
        // run-to-run noise). Counter totals come from the first rep —
        // they are deterministic, so every rep agrees — and the trace
        // sink joins only that rep, keeping the shared timeline one
        // run per size.
        let (counters, telemetry_secs) = {
            let mut counters = CounterTotals::default();
            let mut best_tel = f64::INFINITY;
            let mut tel_reps = 0u32;
            let clock = Instant::now();
            while tel_reps == 0 || clock.elapsed().as_secs_f64() < budget_secs {
                let sched = make_sched();
                let mut buf = TelemetryBuffer::new();
                let start = Instant::now();
                {
                    let mut multi = MultiSink::new();
                    multi.push(&mut buf);
                    if tel_reps == 0 {
                        if let Some(t) = trace_sink.as_mut() {
                            multi.push(t);
                        }
                    }
                    sched
                        .schedule_with_sink(unit.dag(), &machine, &mut multi)
                        .expect("instrumented convergent schedules");
                }
                let secs = start.elapsed().as_secs_f64();
                if tel_reps == 0 {
                    counters = buf.counter_total();
                    if let Some(t) = trace_sink.as_mut() {
                        // Keep per-size runs disjoint on the timeline.
                        t.advance_base();
                    }
                }
                best_tel = best_tel.min(secs);
                tel_reps += 1;
            }
            (counters, best_tel)
        };
        let shards_effective = shard_sizes.as_ref().map_or(1, Vec::len);
        if shards > 1 && shards_effective != shards {
            eprintln!(
                "warning: {n} instrs: requested --shards {shards} but the decomposer \
                 produced {shards_effective} region(s)"
            );
        }
        let ips = n as f64 / best;
        let hit_rate = counters
            .argmax_hit_rate()
            .map_or_else(|| "n/a".to_string(), |r| format!("{:.1}%", r * 100.0));
        let overhead = telemetry_secs / best;
        println!(
            "{n:>8}{width:>8}{best:>12.4}{ips:>16.0}{reps:>8}{:>12}{hit_rate:>10}{overhead:>9.2}x",
            counters.weight_ops()
        );
        if let Some(sizes) = &shard_sizes {
            println!(
                "          sharded into {} region(s) {:?}, {} boundary comm(s)",
                sizes.len(),
                sizes,
                boundary_comms.unwrap_or(0)
            );
        }
        if show_profile {
            println!("{}", best_profile.render_table());
        }
        rows.push(Row {
            n,
            width,
            best,
            ips,
            reps,
            profile: best_profile,
            shard_sizes,
            boundary_comms,
            shards_effective,
            counters,
            telemetry_secs,
        });
    }

    if let (Some(t), Some(path)) = (trace_sink.as_ref(), trace_path.as_ref()) {
        t.save(path).expect("write chrome trace");
        println!("wrote {path} ({} events)", t.len());
    }

    if !no_out {
        let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
        let mut json = String::from("{\n  \"experiment\": \"compiletime\",\n");
        json.push_str("  \"scheduler\": \"convergent vliw_default\",\n");
        json.push_str("  \"machine\": \"chorus_vliw(4)\",\n");
        let width_desc =
            forced_width.map_or_else(|| "max(8, n/125)".to_string(), |w| w.to_string());
        if components > 1 {
            json.push_str(&format!(
                "  \"workload\": \"disjoint union of {components} layered(seeds 0xF16.., width {width_desc}, preplace 0.5 over 4 banks)\",\n"
            ));
        } else {
            json.push_str(&format!(
                "  \"workload\": \"layered(seed 0xF16, width {width_desc}, preplace 0.5 over 4 banks)\",\n"
            ));
        }
        json.push_str(&format!("  \"components\": {components},\n"));
        json.push_str(&format!("  \"shards\": {shards},\n"));
        json.push_str(&format!(
            "  \"region_size\": {},\n",
            region_size.map_or_else(|| "null".to_string(), |n| n.to_string())
        ));
        json.push_str(&format!("  \"threads\": {threads},\n"));
        json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
        json.push_str(&format!("  \"host_cpu_model\": \"{}\",\n", cpu_model()));
        json.push_str(&format!(
            "  \"host_os\": \"{} {}\",\n",
            std::env::consts::OS,
            std::env::consts::ARCH
        ));
        json.push_str(&format!(
            "  \"budget_secs\": {budget_secs},\n  \"rows\": [\n"
        ));
        for (k, row) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"instrs\": {}, \"width\": {}, \"best_seconds\": {:.6}, \"instrs_per_sec\": {:.1}, \"reps\": {}, \"per_pass_seconds\": {{",
                row.n, row.width, row.best, row.ips, row.reps
            ));
            let spans: Vec<String> = row
                .profile
                .spans()
                .map(|(name, secs, _)| format!("\"{name}\": {secs:.6}"))
                .collect();
            json.push_str(&spans.join(", "));
            json.push('}');
            json.push_str(&format!(", \"shards_effective\": {}", row.shards_effective));
            if let Some(sizes) = &row.shard_sizes {
                let sizes: Vec<String> = sizes.iter().map(ToString::to_string).collect();
                json.push_str(&format!(
                    ", \"shard_sizes\": [{}], \"boundary_comms\": {}",
                    sizes.join(", "),
                    row.boundary_comms.unwrap_or(0)
                ));
            }
            let hit_rate = row
                .counters
                .argmax_hit_rate()
                .map_or_else(|| "null".to_string(), |r| format!("{r:.4}"));
            json.push_str(&format!(
                ", \"counters\": {}, \"argmax_hit_rate\": {hit_rate}, \"telemetry_overhead\": {:.4}",
                row.counters.to_json(),
                row.telemetry_secs / row.best
            ));
            json.push_str(&format!(
                "}}{}\n",
                if k + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&out_path, json).expect("write results json");
        println!();
        println!("wrote {out_path}");
    }

    if let Some(ratio) = max_ratio {
        let small = rows.iter().min_by_key(|r| r.n).expect("at least one size");
        let large = rows.iter().max_by_key(|r| r.n).expect("at least one size");
        let measured = small.ips / large.ips;
        println!(
            "scaling: {} instrs/s at {} vs {} at {} — ratio {measured:.2} (limit {ratio:.2})",
            small.ips.round(),
            small.n,
            large.ips.round(),
            large.n
        );
        if measured > ratio {
            eprintln!(
                "FAIL: throughput collapses {measured:.2}x from {} to {} instrs (limit {ratio:.2}x)",
                small.n, large.n
            );
            std::process::exit(1);
        }
    }
}
