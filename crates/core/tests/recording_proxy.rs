//! Property tests for the recording `PreferenceMap` proxy.
//!
//! Two guarantees make contract checking trustworthy:
//!
//! 1. **Transparency** — turning recording on must not change a
//!    single bit of the map's behaviour.
//! 2. **Fidelity** — replaying the captured [`WeightOp`] log onto a
//!    fresh map must reproduce the recorded map bit for bit, so the
//!    log is a complete account of what a pass did.
//!
//! These also run under `cargo miri test` (the `--miri` path of
//! `scripts/offline-check.sh`) to catch undefined behaviour in the
//! logging hot path.

use convergent_core::{PreferenceMap, WeightOp};
use convergent_ir::{ClusterId, InstrId};
use proptest::prelude::*;

const N: usize = 3;
const C: usize = 3;
const T: usize = 5;

/// The public mutator vocabulary, compounds included: `Add` and
/// `SetMarginal` have no `WeightOp` of their own and must decompose
/// into recorded primitives.
#[derive(Clone, Debug)]
enum Op {
    Set {
        i: usize,
        c: usize,
        t: usize,
        v: f64,
    },
    Scale {
        i: usize,
        c: usize,
        t: usize,
        f: f64,
    },
    ScaleCluster {
        i: usize,
        c: usize,
        f: f64,
    },
    ScaleTime {
        i: usize,
        t: usize,
        f: f64,
    },
    Add {
        i: usize,
        c: usize,
        t: usize,
        d: f64,
    },
    SetWindow {
        i: usize,
        lo: usize,
        len: usize,
    },
    Forbid {
        i: usize,
        c: usize,
    },
    Reset {
        i: usize,
    },
    Normalize {
        i: usize,
    },
    NormalizeAll,
    SetMarginal {
        i: usize,
        target: Vec<f64>,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..N, 0..C, 0..T, 0.0f64..2.0).prop_map(|(i, c, t, v)| Op::Set { i, c, t, v }),
        (0..N, 0..C, 0..T, 0.0f64..50.0).prop_map(|(i, c, t, f)| Op::Scale { i, c, t, f }),
        (0..N, 0..C, 0.0f64..50.0).prop_map(|(i, c, f)| Op::ScaleCluster { i, c, f }),
        (0..N, 0..T, 0.0f64..50.0).prop_map(|(i, t, f)| Op::ScaleTime { i, t, f }),
        (0..N, 0..C, 0..T, -1.0f64..1.0).prop_map(|(i, c, t, d)| Op::Add { i, c, t, d }),
        (0..N, 0..T, 0..T).prop_map(|(i, lo, len)| Op::SetWindow { i, lo, len }),
        (0..N, 0..C).prop_map(|(i, c)| Op::Forbid { i, c }),
        (0..N).prop_map(|i| Op::Reset { i }),
        (0..N).prop_map(|i| Op::Normalize { i }),
        (0..N).prop_map(|_| Op::NormalizeAll),
        (0..N, proptest::collection::vec(0.0f64..1.0, C))
            .prop_map(|(i, target)| Op::SetMarginal { i, target }),
    ]
}

/// Applies `op`, skipping window proposals disjoint from the current
/// window (which would panic by design).
fn apply(w: &mut PreferenceMap, op: &Op) {
    match *op {
        Op::Set { i, c, t, v } => w.set(
            InstrId::new(i as u32),
            ClusterId::new(c as u16),
            t as u32,
            v,
        ),
        Op::Scale { i, c, t, f } => {
            w.scale(
                InstrId::new(i as u32),
                ClusterId::new(c as u16),
                t as u32,
                f,
            );
        }
        Op::ScaleCluster { i, c, f } => {
            w.scale_cluster(InstrId::new(i as u32), ClusterId::new(c as u16), f);
        }
        Op::ScaleTime { i, t, f } => w.scale_time(InstrId::new(i as u32), t as u32, f),
        Op::Add { i, c, t, d } => {
            w.add(
                InstrId::new(i as u32),
                ClusterId::new(c as u16),
                t as u32,
                d,
            );
        }
        Op::SetWindow { i, lo, len } => {
            let lo = lo as u32;
            let hi = (lo + len as u32).min(T as u32 - 1);
            let (cur_lo, cur_hi) = w.window(InstrId::new(i as u32));
            if lo.max(cur_lo) <= hi.min(cur_hi) {
                w.set_window(InstrId::new(i as u32), lo, hi);
            }
        }
        Op::Forbid { i, c } => w.forbid_cluster(InstrId::new(i as u32), ClusterId::new(c as u16)),
        Op::Reset { i } => w.reset_uniform(InstrId::new(i as u32)),
        Op::Normalize { i } => w.normalize(InstrId::new(i as u32)),
        Op::NormalizeAll => w.normalize_all(),
        Op::SetMarginal { i, ref target } => {
            w.set_cluster_marginal(InstrId::new(i as u32), target);
        }
    }
}

/// Bitwise comparison of every observable quantity of two maps.
fn assert_identical(a: &PreferenceMap, b: &PreferenceMap) {
    for i in 0..N {
        let id = InstrId::new(i as u32);
        assert_eq!(a.window(id), b.window(id), "window[{i}]");
        for c in 0..C {
            let cid = ClusterId::new(c as u16);
            assert_eq!(a.cluster_feasible(id, cid), b.cluster_feasible(id, cid));
            for t in 0..T {
                assert_eq!(
                    a.get(id, cid, t as u32).to_bits(),
                    b.get(id, cid, t as u32).to_bits(),
                    "W[{i},{c},{t}]"
                );
            }
            assert_eq!(
                a.cluster_weight(id, cid).to_bits(),
                b.cluster_weight(id, cid).to_bits()
            );
        }
        for t in 0..T {
            assert_eq!(
                a.time_weight(id, t as u32).to_bits(),
                b.time_weight(id, t as u32).to_bits()
            );
        }
        assert_eq!(a.total(id).to_bits(), b.total(id).to_bits());
        assert_eq!(a.preferred_cluster(id), b.preferred_cluster(id));
        assert_eq!(a.preferred_time(id), b.preferred_time(id));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recording_is_transparent(
        ops in proptest::collection::vec(op_strategy(), 1..50)
    ) {
        let mut silent = PreferenceMap::new(N, C, T);
        let mut recorded = PreferenceMap::new(N, C, T);
        recorded.record();
        prop_assert!(recorded.is_recording());
        for op in &ops {
            apply(&mut silent, op);
            apply(&mut recorded, op);
        }
        assert_identical(&silent, &recorded);
        // Draining the log leaves the map intact and stops recording.
        let _ = recorded.take_recording();
        prop_assert!(!recorded.is_recording());
        assert_identical(&silent, &recorded);
    }

    #[test]
    fn replaying_the_log_reproduces_the_map(
        ops in proptest::collection::vec(op_strategy(), 1..50)
    ) {
        let mut live = PreferenceMap::new(N, C, T);
        live.record();
        for op in &ops {
            apply(&mut live, op);
        }
        let log: Vec<WeightOp> = live.take_recording();
        // Compound ops must have decomposed into primitives: the log
        // contains at least one entry per mutating op applied.
        prop_assert!(!log.is_empty());

        let mut replayed = PreferenceMap::new(N, C, T);
        for op in &log {
            op.apply(&mut replayed);
        }
        assert_identical(&live, &replayed);
    }
}
