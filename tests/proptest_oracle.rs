//! Differential property tests: the event-driven oracle must agree
//! with the cycle-driven evaluator on every validated schedule, and
//! both referees must answer perturbed (possibly broken) schedules
//! with structured errors — never a panic.

use convergent_scheduling::core::ConvergentScheduler;
use convergent_scheduling::ir::{ClusterId, Cycle, InstrId, SchedulingUnit};
use convergent_scheduling::machine::Machine;
use convergent_scheduling::schedulers::{
    BugScheduler, PccScheduler, RawccScheduler, Scheduler, UasScheduler,
};
use convergent_scheduling::sim::{
    cross_check, evaluate, resimulate, validate, ScheduleBuilder, SpaceTimeSchedule,
};
use convergent_scheduling::workloads::{
    deep_chain, fully_preplaced, layered, op_class_desert, wide_fanin, LayeredParams,
};
use proptest::prelude::*;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(UasScheduler::new()),
        Box::new(PccScheduler::new().with_max_rounds(1)),
        Box::new(RawccScheduler::new()),
        Box::new(BugScheduler::new()),
        Box::new(ConvergentScheduler::raw_default()),
        Box::new(ConvergentScheduler::vliw_tuned()),
    ]
}

/// Every validated schedule must make the two simulators agree on the
/// full report, and the shared verdict must be a successful run.
fn check_differential(unit: &SchedulingUnit, machine: &Machine) {
    let dag = unit.dag();
    for sched in schedulers() {
        let Ok(schedule) = sched.schedule(dag, machine) else {
            // A legitimate rejection (e.g. no capable cluster) is out of
            // scope here; the fuzz harness classifies those separately.
            continue;
        };
        validate(dag, machine, &schedule)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", sched.name(), unit.name()));
        match cross_check(dag, machine, &schedule) {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => panic!(
                "{} on {}: validated schedule stalled: {e}",
                sched.name(),
                unit.name()
            ),
            Err(d) => panic!(
                "{} on {}: simulators diverge: {d}",
                sched.name(),
                unit.name()
            ),
        }
    }
}

/// Rebuilds `schedule` with one deliberate mutation. The result may or
/// may not still be valid — the property under test is only that the
/// referees answer with structured verdicts.
fn perturb(
    dag: &convergent_scheduling::ir::Dag,
    machine: &Machine,
    schedule: &SpaceTimeSchedule,
    mode: u32,
    pick: usize,
    delta: u32,
) -> Option<SpaceTimeSchedule> {
    let mut sb = ScheduleBuilder::new(dag);
    let victim = InstrId::new((pick % dag.len()) as u32);
    for op in schedule.ops() {
        let (mut cluster, mut start) = (op.cluster, op.start);
        if op.instr == victim {
            match mode % 3 {
                // Shift the victim earlier: may break dependences.
                0 => start = start.saturating_sub(delta),
                // Shift it later: may orphan its consumers' timing.
                1 => start = Cycle::new(start.get() + delta),
                // Teleport it to another cluster without re-routing.
                _ => {
                    cluster =
                        ClusterId::new((cluster.index() as u16 + 1) % machine.n_clusters() as u16);
                }
            }
        }
        sb.place(op.instr, cluster, op.fu, start);
    }
    let drop_comm = mode >= 128 && schedule.comm_count() > 0;
    let dropped = pick % schedule.comm_count().max(1);
    for (k, c) in schedule.comms().iter().enumerate() {
        if drop_comm && k == dropped {
            continue; // sever one transfer: consumers may starve
        }
        sb.comm(c.producer, c.from, c.to, c.start, c.fu);
    }
    sb.build(machine).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn validated_schedules_agree(
        n in 8usize..80,
        width in 2usize..10,
        seed in any::<u64>(),
        pre in 0.0f64..0.8,
        banks in 2u16..8,
    ) {
        let unit = layered(
            LayeredParams::new(n, seed)
                .with_width(width)
                .with_preplacement(pre, banks),
        );
        check_differential(&unit, &Machine::raw(banks));
        check_differential(&unit, &Machine::chorus_vliw(banks));
    }

    #[test]
    fn adversarial_families_agree(n in 4usize..50, seed in any::<u64>(), banks in 1u16..6) {
        check_differential(&deep_chain(n), &Machine::raw(banks));
        check_differential(&wide_fanin(n, banks, seed), &Machine::chorus_vliw(banks.max(2)));
        check_differential(&fully_preplaced(n, banks, seed), &Machine::raw(banks));
        check_differential(&op_class_desert(n, seed), &Machine::chorus_vliw(banks.max(2)));
    }

    #[test]
    fn perturbed_schedules_fail_structurally(
        n in 8usize..60,
        seed in any::<u64>(),
        mode in 0u32..256,
        pick in any::<u64>(),
        delta in 1u32..5,
    ) {
        let unit = layered(LayeredParams::new(n, seed).with_preplacement(0.3, 4));
        let machine = Machine::raw(4);
        for sched in schedulers() {
            let Ok(good) = sched.schedule(unit.dag(), &machine) else { continue };
            let Some(bad) = perturb(unit.dag(), &machine, &good, mode, pick as usize, delta) else {
                continue;
            };
            // Both referees must return structured verdicts — reaching
            // the end of this block without a panic is the property.
            let v = validate(unit.dag(), &machine, &bad);
            let e = evaluate(unit.dag(), &machine, &bad);
            let o = resimulate(unit.dag(), &machine, &bad);
            if v.is_ok() {
                // Anything that still validates must keep the
                // simulators in agreement, whatever the mutation was.
                prop_assert!(
                    cross_check(unit.dag(), &machine, &bad).is_ok(),
                    "{}: validated mutant diverged (evaluate: {e:?}, oracle: {o:?})",
                    sched.name()
                );
            }
        }
    }
}
