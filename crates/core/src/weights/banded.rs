//! The banded core: per-instruction storage proportional to the
//! instruction's slack band instead of the full critical-path length.
//!
//! Each row is either [`Row::Uniform`] — a closed form for the state
//! every instruction starts in and returns to after `reset_uniform`,
//! costing O(1) storage — or a [`Band`]: `n_clusters × width` cells
//! anchored at `lo`. Reads outside the band return exactly `0.0`;
//! absolute writes outside it grow the band (with an amortized margin,
//! clamped to `[0, n_slots)`); `set_window` shrinks it.
//!
//! Every operation is written to be **bit-exact** with [`DenseCore`]
//! under identical op histories: the dense row is zero outside the
//! band, `x + 0.0 == x` for the non-negative raw weights, and all
//! marginal summations here visit cells in the same order the dense
//! loops do, so skipping the zeros changes no partial sum.
//!
//! [`DenseCore`]: super::dense::DenseCore

use std::cell::Cell;

use convergent_ir::{ClusterId, InstrId};

use super::argmax::{self, ArgmaxCache, EPS, NO_CLUSTER};
use super::{SCALE_FOLD_MAX, SCALE_FOLD_MIN};
use crate::telemetry::BandStats;

/// A dense block of `n_clusters × width` raw cells anchored at `lo`.
///
/// Cells and the per-slot time marginals live in **one** allocation:
/// rows densify by the thousand under NOISE, so halving the malloc
/// traffic (and keeping each row's marginals on the same cache lines
/// as its cells) is a measurable win on the compile-time profile.
#[derive(Clone, Debug)]
struct Band {
    lo: u32,
    /// Band width in slots; `buf` holds `(n_clusters + 1) · width`.
    width: u32,
    /// Cluster-major cells — `(c, t)` lives at `c·width + (t − lo)` —
    /// followed by the `width` raw time marginals for the band slots.
    buf: Vec<f64>,
}

impl Band {
    #[inline]
    fn width(&self) -> usize {
        self.width as usize
    }

    #[inline]
    fn hi(&self) -> u32 {
        self.lo + self.width - 1
    }

    #[inline]
    fn contains(&self, t: u32) -> bool {
        t >= self.lo && t <= self.hi()
    }

    /// The `n_clusters · width` cluster-major cells.
    #[inline]
    fn w(&self) -> &[f64] {
        &self.buf[..self.buf.len() - self.width as usize]
    }

    /// The `width` raw time marginals.
    #[inline]
    fn tsum(&self) -> &[f64] {
        let n = self.buf.len() - self.width as usize;
        &self.buf[n..]
    }

    /// Mutable cells and time marginals, split out of the shared
    /// buffer.
    #[inline]
    fn parts_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        let n = self.buf.len() - self.width as usize;
        self.buf.split_at_mut(n)
    }
}

/// One instruction's raw weights.
#[derive(Clone, Debug)]
enum Row {
    /// Every live cell inside the window holds `per`; the raw time
    /// marginal is `tsum` on every window slot and `0` elsewhere. A
    /// cluster is live iff its raw `cluster_sum` entry is nonzero
    /// (`cluster_ok` is *not* consulted: `forbid_cluster` flips the
    /// flag before squashing the weights, so the flag can be ahead of
    /// the cell state).
    Uniform {
        per: f64,
        tsum: f64,
    },
    Band(Band),
}

/// Grows `b` to cover slot `t`, padding new cells with exact zeros.
/// The growing side gets a margin of the current width (clamped to
/// `[0, n_slots)`) so `k` consecutive out-of-band writes reallocate
/// O(log k) times, not k. Returns whether the band actually grew —
/// the telemetry band-event counter keys off it.
fn grow_band(b: &mut Band, n_clusters: usize, n_slots: usize, t: usize) -> bool {
    let width = b.width();
    let cur_lo = b.lo as usize;
    let cur_hi = cur_lo + width - 1;
    if (cur_lo..=cur_hi).contains(&t) {
        return false;
    }
    let new_lo = if t < cur_lo {
        t.saturating_sub(width)
    } else {
        cur_lo
    };
    let new_hi = if t > cur_hi {
        (t + width).min(n_slots - 1)
    } else {
        cur_hi
    };
    let new_w = new_hi - new_lo + 1;
    let off = cur_lo - new_lo;
    let mut buf = vec![0.0; (n_clusters + 1) * new_w];
    let w = b.w();
    for c in 0..n_clusters {
        buf[c * new_w + off..c * new_w + off + width]
            .copy_from_slice(&w[c * width..(c + 1) * width]);
    }
    buf[n_clusters * new_w + off..n_clusters * new_w + off + width].copy_from_slice(b.tsum());
    b.lo = new_lo as u32;
    b.width = new_w as u32;
    b.buf = buf;
    true
}

/// Shrinks `b` to exactly `[lo, hi]` (which the band always covers —
/// densification anchors at the window and growth only widens), in
/// place, returning whether any discarded cell was nonzero.
fn shrink_band(b: &mut Band, n_clusters: usize, lo: u32, hi: u32) -> bool {
    let bw = b.width();
    debug_assert!(b.lo <= lo && hi <= b.hi());
    if b.lo == lo && b.hi() == hi {
        return false;
    }
    let shift = (lo - b.lo) as usize;
    let new_w = (hi - lo + 1) as usize;
    let mut any_removed = false;
    let w = b.w();
    for c in 0..n_clusters {
        for k in 0..bw {
            if (k < shift || k >= shift + new_w) && w[c * bw + k] != 0.0 {
                any_removed = true;
            }
        }
    }
    // Compact ascending: region c's destination `c·new_w` never
    // overruns region c+1's source `(c+1)·bw + shift` (the time
    // marginals are region `n_clusters` of the shared buffer).
    for c in 0..=n_clusters {
        b.buf
            .copy_within(c * bw + shift..c * bw + shift + new_w, c * new_w);
    }
    b.buf.truncate((n_clusters + 1) * new_w);
    b.lo = lo;
    b.width = new_w as u32;
    any_removed
}

/// The raw cell value of `row` at `(c, t)` — shared by the core
/// accessors and the row views. `cluster_sum` is the instruction's
/// `n_clusters` marginal entries.
fn raw_get_in(row: &Row, window: (u32, u32), cluster_sum: &[f64], c: usize, t: usize) -> f64 {
    match row {
        Row::Uniform { per, .. } => {
            let (lo, hi) = window;
            if (t as u32) >= lo && (t as u32) <= hi && cluster_sum[c] != 0.0 {
                *per
            } else {
                0.0
            }
        }
        Row::Band(b) => {
            if b.contains(t as u32) {
                b.w()[c * b.width() + (t - b.lo as usize)]
            } else {
                0.0
            }
        }
    }
}

/// Converts a `Uniform` row into an equivalent `Band` anchored at the
/// window (cells and marginals keep their exact bits); no-op on bands.
/// Returns whether a conversion happened — the telemetry band-event
/// counter keys off it.
fn densify_in(slot: &mut Row, window: (u32, u32), cluster_sum: &[f64], n_clusters: usize) -> bool {
    if let Row::Uniform { per, tsum } = *slot {
        let (lo, hi) = window;
        let width = (hi - lo + 1) as usize;
        // One allocation, one pass: each region is written exactly
        // once (no zero-prefill of cells that get overwritten).
        let mut buf = Vec::with_capacity((n_clusters + 1) * width);
        for c in 0..n_clusters {
            let v = if cluster_sum[c] != 0.0 { per } else { 0.0 };
            let n = buf.len() + width;
            buf.resize(n, v);
        }
        let n = buf.len() + width;
        buf.resize(n, tsum);
        *slot = Row::Band(Band {
            lo,
            width: width as u32,
            buf,
        });
        true
    } else {
        false
    }
}

/// The fresh `preferred_time` scan for one row, exactly as the dense
/// core's full-slot scan would compute it (see the comments inline).
fn top_time_scan(row: &Row, window: (u32, u32), s: f64, n_slots: usize) -> u32 {
    let best = match row {
        Row::Uniform { tsum, .. } => {
            let (lo, hi) = window;
            let v = *tsum;
            if lo > 0 {
                // Slot 0 (zero) leads; the first window slot
                // takes over iff it clears the tie band, and
                // later window slots only tie it.
                if v * s > EPS {
                    lo as usize
                } else {
                    0
                }
            } else if (hi as usize) + 1 < n_slots && 0.0 > v * s + EPS {
                // A (numerically) negative marginal hands the
                // lead to the first exactly-zero slot past the
                // window, as the dense scan would.
                hi as usize + 1
            } else {
                0
            }
        }
        Row::Band(b) => {
            let lo = b.lo as usize;
            let tsum = b.tsum();
            let mut best = 0usize;
            let mut bestv = if lo == 0 { tsum[0] } else { 0.0 };
            for (k, &v) in tsum.iter().enumerate() {
                let t = lo + k;
                if t == 0 {
                    continue;
                }
                if v * s > bestv * s + EPS {
                    best = t;
                    bestv = v;
                }
            }
            // Dense also scans the exactly-zero slots past the
            // band; they win only over a negative leader.
            let after = lo + b.width();
            if after < n_slots && 0.0 > bestv * s + EPS {
                best = after;
            }
            best
        }
    };
    best as u32
}

/// Banded storage with lazy normalization; the default representation
/// behind [`crate::PreferenceMap`].
#[derive(Clone, Debug)]
pub(crate) struct BandedCore {
    n_instrs: usize,
    n_clusters: usize,
    n_slots: usize,
    rows: Vec<Row>,
    /// Raw cluster marginals, flat `n_instrs × n_clusters`.
    cluster_sum: Vec<f64>,
    total: Vec<f64>,
    /// Pending per-instruction normalization factor.
    scale: Vec<f64>,
    window: Vec<(u32, u32)>,
    cluster_ok: Vec<bool>,
    argmax: Vec<Cell<ArgmaxCache>>,
    /// Band growth/densification telemetry — always on: both events
    /// sit on reallocation paths where one relaxed increment is noise.
    stats: BandStats,
}

impl BandedCore {
    pub(crate) fn new(n_instrs: usize, n_clusters: usize, n_slots: usize) -> Self {
        assert!(n_instrs > 0, "need at least one instruction");
        assert!(n_clusters > 0, "need at least one cluster");
        assert!(n_slots > 0, "need at least one time slot");
        assert!(n_clusters < NO_CLUSTER as usize, "too many clusters");
        let per = 1.0 / (n_clusters * n_slots) as f64;
        BandedCore {
            n_instrs,
            n_clusters,
            n_slots,
            rows: vec![
                Row::Uniform {
                    per,
                    tsum: per * n_clusters as f64,
                };
                n_instrs
            ],
            cluster_sum: vec![per * n_slots as f64; n_instrs * n_clusters],
            total: vec![1.0; n_instrs],
            scale: vec![1.0; n_instrs],
            window: vec![(0, n_slots as u32 - 1); n_instrs],
            cluster_ok: vec![true; n_instrs * n_clusters],
            argmax: vec![Cell::new(ArgmaxCache::INVALID); n_instrs],
            stats: BandStats::default(),
        }
    }

    /// `(growths, densifications)` since construction.
    pub(crate) fn band_stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.stats.growths.load(Ordering::Relaxed),
            self.stats.densifications.load(Ordering::Relaxed),
        )
    }

    /// `(cluster_valid, time_valid)` of `i`'s argmax cache — the
    /// telemetry layer's hit/miss/invalidation probe.
    pub(crate) fn cache_flags(&self, i: InstrId) -> (bool, bool) {
        let c = self.argmax[i.index()].get();
        (c.cluster_valid, c.time_valid)
    }

    pub(crate) fn n_instrs(&self) -> usize {
        self.n_instrs
    }

    pub(crate) fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    pub(crate) fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// The raw (unscaled) cell value — exactly what the dense core
    /// holds at `(i, c, t)`.
    fn raw_get(&self, ii: usize, c: usize, t: usize) -> f64 {
        debug_assert!(ii < self.n_instrs && c < self.n_clusters && t < self.n_slots);
        let base = ii * self.n_clusters;
        raw_get_in(
            &self.rows[ii],
            self.window[ii],
            &self.cluster_sum[base..base + self.n_clusters],
            c,
            t,
        )
    }

    /// The raw time marginal — exactly the dense core's `time_sum[t]`
    /// (zero outside the band, proven by the band invariant).
    fn raw_time(&self, ii: usize, t: usize) -> f64 {
        match &self.rows[ii] {
            Row::Uniform { tsum, .. } => {
                let (lo, hi) = self.window[ii];
                if (t as u32) >= lo && (t as u32) <= hi {
                    *tsum
                } else {
                    0.0
                }
            }
            Row::Band(b) => {
                if b.contains(t as u32) {
                    b.tsum()[t - b.lo as usize]
                } else {
                    0.0
                }
            }
        }
    }

    /// Converts a `Uniform` row into an equivalent `Band` anchored at
    /// the current window (cells and marginals keep their exact bits).
    fn densify(&mut self, ii: usize) {
        let base = ii * self.n_clusters;
        if densify_in(
            &mut self.rows[ii],
            self.window[ii],
            &self.cluster_sum[base..base + self.n_clusters],
            self.n_clusters,
        ) {
            self.stats.densified();
        }
    }

    pub(crate) fn get(&self, i: InstrId, c: ClusterId, t: u32) -> f64 {
        self.raw_get(i.index(), c.index(), t as usize) * self.scale[i.index()]
    }

    pub(crate) fn set(&mut self, i: InstrId, c: ClusterId, t: u32, value: f64) {
        assert!(value.is_finite() && value >= 0.0, "weights are ≥ 0");
        let ii = i.index();
        let cc = c.index();
        let tt = t as usize;
        let raw = value / self.scale[ii];
        let delta = raw - self.raw_get(ii, cc, tt);
        if delta == 0.0 {
            return;
        }
        self.densify(ii);
        let n_clusters = self.n_clusters;
        let n_slots = self.n_slots;
        let Row::Band(b) = &mut self.rows[ii] else {
            unreachable!("densify leaves a band")
        };
        if grow_band(b, n_clusters, n_slots, tt) {
            self.stats.grew();
        }
        let width = b.width();
        let off = tt - b.lo as usize;
        let (w, ts) = b.parts_mut();
        w[cc * width + off] = raw;
        ts[off] += delta;
        self.cluster_sum[ii * n_clusters + cc] += delta;
        self.total[ii] += delta;
        argmax::note_cluster_write(&self.argmax[ii], cc, delta > 0.0);
        let lo = b.lo as usize;
        let tsum = b.tsum();
        argmax::note_time_write(&self.argmax[ii], tt, delta > 0.0, self.scale[ii], |t| {
            if (lo..lo + tsum.len()).contains(&t) {
                tsum[t - lo]
            } else {
                0.0
            }
        });
    }

    pub(crate) fn scale(&mut self, i: InstrId, c: ClusterId, t: u32, factor: f64) {
        self.rows_view().scale(i, c, t, factor);
    }

    pub(crate) fn scale_cluster(&mut self, i: InstrId, c: ClusterId, factor: f64) {
        self.rows_view().scale_cluster(i, c, factor);
    }

    pub(crate) fn scale_time(&mut self, i: InstrId, t: u32, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let ii = i.index();
        let tt = t as usize;
        debug_assert!(tt < self.n_slots);
        if let Row::Uniform { per, .. } = &self.rows[ii] {
            let per = *per;
            let (lo, hi) = self.window[ii];
            let base = ii * self.n_clusters;
            let any_live = self.cluster_sum[base..base + self.n_clusters]
                .iter()
                .any(|&v| v != 0.0);
            if factor == 1.0 || per == 0.0 || !any_live || (t < lo || t > hi) {
                return; // dense: every cell at `t` unchanged
            }
            self.densify(ii);
        }
        let n_clusters = self.n_clusters;
        let Row::Band(b) = &mut self.rows[ii] else {
            unreachable!("densify leaves a band")
        };
        if !b.contains(t) {
            return; // all cells at `t` are zero
        }
        let width = b.width();
        let off = tt - b.lo as usize;
        let old_sum = b.tsum()[off];
        let mut new_sum = 0.0;
        let mut changed = false;
        let (w, ts) = b.parts_mut();
        for c in 0..n_clusters {
            let old = w[c * width + off];
            let new = old * factor;
            if new != old {
                w[c * width + off] = new;
                self.cluster_sum[ii * n_clusters + c] += new - old;
                changed = true;
            }
            new_sum += new;
        }
        if !changed {
            return;
        }
        ts[off] = new_sum;
        self.total[ii] += new_sum - old_sum;
        argmax::invalidate_cluster(&self.argmax[ii]);
        let lo = b.lo as usize;
        let tsum = b.tsum();
        argmax::note_time_write(
            &self.argmax[ii],
            tt,
            new_sum > old_sum,
            self.scale[ii],
            |t| {
                if (lo..lo + tsum.len()).contains(&t) {
                    tsum[t - lo]
                } else {
                    0.0
                }
            },
        );
    }

    pub(crate) fn set_window(&mut self, i: InstrId, lo: u32, hi: u32) {
        assert!(lo <= hi, "window must be non-empty");
        assert!((hi as usize) < self.n_slots, "window exceeds time slots");
        let ii = i.index();
        let (old_lo, old_hi) = self.window[ii];
        let lo = lo.max(old_lo);
        let hi = hi.min(old_hi);
        assert!(lo <= hi, "window must be non-empty");
        self.window[ii] = (lo, hi);
        let n_clusters = self.n_clusters;
        let any_removed = match &mut self.rows[ii] {
            Row::Uniform { per, .. } => {
                let removed_slots = (old_hi - old_lo) != (hi - lo);
                let base = ii * n_clusters;
                let any_live = self.cluster_sum[base..base + n_clusters]
                    .iter()
                    .any(|&v| v != 0.0);
                removed_slots && *per != 0.0 && any_live
            }
            Row::Band(b) => shrink_band(b, n_clusters, lo, hi),
        };
        if any_removed {
            // Rebuild each cluster marginal from the surviving cells in
            // ascending `t` order, exactly as the dense core does (its
            // zeroed out-of-window cells contribute nothing bitwise).
            match &self.rows[ii] {
                Row::Uniform { per, .. } => {
                    let width = (hi - lo + 1) as usize;
                    let mut live_sum = 0.0;
                    for _ in 0..width {
                        live_sum += *per;
                    }
                    for c in 0..n_clusters {
                        if self.cluster_sum[ii * n_clusters + c] != 0.0 {
                            self.cluster_sum[ii * n_clusters + c] = live_sum;
                        }
                    }
                }
                Row::Band(b) => {
                    let width = b.width();
                    let w = b.w();
                    for c in 0..n_clusters {
                        let mut sum = 0.0;
                        for k in 0..width {
                            sum += w[c * width + k];
                        }
                        self.cluster_sum[ii * n_clusters + c] = sum;
                    }
                }
            }
            self.total[ii] = self.cluster_sum[ii * n_clusters..(ii + 1) * n_clusters]
                .iter()
                .sum();
            argmax::invalidate_cluster(&self.argmax[ii]);
            let cache = self.argmax[ii].get();
            if cache.time_valid && !(lo..=hi).contains(&cache.top_time) {
                argmax::invalidate_time(&self.argmax[ii]);
            }
        }
    }

    pub(crate) fn window(&self, i: InstrId) -> (u32, u32) {
        self.window[i.index()]
    }

    /// The current band extent of `i` (equals the window for rows
    /// still in uniform closed form).
    pub(crate) fn band(&self, i: InstrId) -> (u32, u32) {
        match &self.rows[i.index()] {
            Row::Uniform { .. } => self.window[i.index()],
            Row::Band(b) => (b.lo, b.hi()),
        }
    }

    /// Raw `f64` weight cells currently stored across all rows: one
    /// for a uniform row, `n_clusters × width` for a band.
    pub(crate) fn stored_cells(&self) -> usize {
        self.rows
            .iter()
            .map(|r| match r {
                Row::Uniform { .. } => 1,
                Row::Band(b) => b.w().len(),
            })
            .sum()
    }

    pub(crate) fn forbid_cluster(&mut self, i: InstrId, c: ClusterId) {
        self.cluster_ok[i.index() * self.n_clusters + c.index()] = false;
        self.scale_cluster(i, c, 0.0);
    }

    pub(crate) fn cluster_feasible(&self, i: InstrId, c: ClusterId) -> bool {
        self.cluster_ok[i.index() * self.n_clusters + c.index()]
    }

    pub(crate) fn cluster_weight(&self, i: InstrId, c: ClusterId) -> f64 {
        self.cluster_sum[i.index() * self.n_clusters + c.index()] * self.scale[i.index()]
    }

    pub(crate) fn time_weight(&self, i: InstrId, t: u32) -> f64 {
        self.raw_time(i.index(), t as usize) * self.scale[i.index()]
    }

    pub(crate) fn total(&self, i: InstrId) -> f64 {
        self.total[i.index()] * self.scale[i.index()]
    }

    /// Shannon entropy (nats) of row `i`'s normalized cell
    /// distribution, in one sweep of the stored band (uniform rows in
    /// closed form): with `w = raw·s`, `H = ln T − (s·Σ raw·ln raw +
    /// s·ln s·Σ raw) / T`, so the scale factor multiplies once per row
    /// instead of once per cell.
    pub(crate) fn row_entropy(&self, i: InstrId) -> f64 {
        let ii = i.index();
        let s = self.scale[ii];
        let total = self.total[ii] * s;
        if total <= 0.0 {
            return 0.0;
        }
        let (raw_sum, raw_wlnw) = match &self.rows[ii] {
            Row::Uniform { per, .. } => {
                let (lo, hi) = self.window[ii];
                let width = f64::from(hi - lo + 1);
                let base = ii * self.n_clusters;
                let live = self.cluster_sum[base..base + self.n_clusters]
                    .iter()
                    .filter(|&&cs| cs != 0.0)
                    .count() as f64;
                let cells = live * width;
                if *per > 0.0 && cells > 0.0 {
                    (cells * per, cells * per * per.ln())
                } else {
                    (0.0, 0.0)
                }
            }
            Row::Band(b) => {
                let mut raw_sum = 0.0;
                let mut raw_wlnw = 0.0;
                for &raw in b.w() {
                    if raw > 0.0 {
                        raw_sum += raw;
                        raw_wlnw += raw * raw.ln();
                    }
                }
                (raw_sum, raw_wlnw)
            }
        };
        let sum_wlnw = s * raw_wlnw + s * s.ln() * raw_sum;
        (total.ln() - sum_wlnw / total).max(0.0)
    }

    pub(crate) fn cluster_marginals_into(&self, out: &mut [f64]) {
        let nc = self.n_clusters;
        for ((ii, row), &s) in out.chunks_exact_mut(nc).enumerate().zip(&self.scale) {
            let tot = (self.total[ii] * s).max(f64::MIN_POSITIVE);
            for (o, &cs) in row
                .iter_mut()
                .zip(&self.cluster_sum[ii * nc..(ii + 1) * nc])
            {
                *o = cs * s / tot;
            }
        }
    }

    pub(crate) fn feasible_cells_into(&self, idx: &mut Vec<usize>) {
        idx.clear();
        idx.reserve(self.n_instrs + 1);
        idx.push(0);
        let mut cells = 0usize;
        for (r, &(lo, hi)) in self.window.iter().enumerate() {
            let width = (hi - lo + 1) as usize;
            let nc = self.n_clusters;
            let feasible = self.cluster_ok[r * nc..(r + 1) * nc]
                .iter()
                .filter(|&&ok| ok)
                .count();
            cells += feasible * width;
            idx.push(cells);
        }
    }

    pub(crate) fn top2(&self, i: InstrId) -> (u16, u16) {
        let ii = i.index();
        let base = ii * self.n_clusters;
        argmax::cluster_cache(
            &self.argmax[ii],
            &self.cluster_sum[base..base + self.n_clusters],
            self.scale[ii],
        )
    }

    pub(crate) fn top_time(&self, i: InstrId) -> u32 {
        let ii = i.index();
        let cell = &self.argmax[ii];
        let mut cache = cell.get();
        if !cache.time_valid {
            cache.top_time = top_time_scan(
                &self.rows[ii],
                self.window[ii],
                self.scale[ii],
                self.n_slots,
            );
            cache.time_valid = true;
            cell.set(cache);
        }
        cache.top_time
    }

    pub(crate) fn normalize(&mut self, i: InstrId) {
        let ii = i.index();
        let tot = self.total[ii] * self.scale[ii];
        if tot > EPS {
            let inv = 1.0 / self.total[ii];
            self.scale[ii] = inv;
            if !(SCALE_FOLD_MIN..=SCALE_FOLD_MAX).contains(&inv) {
                self.materialize(i);
            }
        } else {
            self.reset_uniform(i);
        }
    }

    pub(crate) fn materialize(&mut self, i: InstrId) {
        let ii = i.index();
        let s = self.scale[ii];
        if s == 1.0 {
            return;
        }
        match &mut self.rows[ii] {
            Row::Uniform { per, tsum } => {
                *per *= s;
                *tsum *= s;
            }
            Row::Band(b) => {
                // Cells and time marginals share the buffer; one sweep
                // scales both, in the same per-element arithmetic.
                for v in &mut b.buf {
                    *v *= s;
                }
            }
        }
        for c in 0..self.n_clusters {
            self.cluster_sum[ii * self.n_clusters + c] *= s;
        }
        self.total[ii] *= s;
        self.scale[ii] = 1.0;
        // Visible values are unchanged, so cached argmaxes stay valid.
    }

    pub(crate) fn reset_uniform(&mut self, i: InstrId) {
        let ii = i.index();
        let (lo, hi) = self.window[ii];
        let n_feasible = self.cluster_ok[ii * self.n_clusters..(ii + 1) * self.n_clusters]
            .iter()
            .filter(|&&ok| ok)
            .count();
        // A machine mismatch could leave no feasible cluster; fall back
        // to all clusters rather than a degenerate all-zero row.
        let use_all = n_feasible == 0;
        let n_live = if use_all { self.n_clusters } else { n_feasible };
        let slots = (hi - lo + 1) as usize;
        let per = 1.0 / (n_live * slots) as f64;
        for c in 0..self.n_clusters {
            let live = use_all || self.cluster_ok[ii * self.n_clusters + c];
            self.cluster_sum[ii * self.n_clusters + c] =
                if live { per * slots as f64 } else { 0.0 };
        }
        // Back to the O(1) closed form — this also releases the band.
        self.rows[ii] = Row::Uniform {
            per,
            tsum: per * n_live as f64,
        };
        self.total[ii] = 1.0;
        self.scale[ii] = 1.0;
        self.argmax[ii].set(ArgmaxCache::INVALID);
    }

    /// A mutable row view covering every instruction.
    pub(crate) fn rows_view(&mut self) -> BandedRows<'_> {
        BandedRows {
            start: 0,
            n_clusters: self.n_clusters,
            n_slots: self.n_slots,
            rows: &mut self.rows,
            cluster_sum: &mut self.cluster_sum,
            total: &mut self.total,
            scale: &mut self.scale,
            window: &mut self.window,
            cluster_ok: &mut self.cluster_ok,
            argmax: &mut self.argmax,
            stats: &self.stats,
        }
    }

    /// Splits the per-instruction arrays into `n_chunks` disjoint
    /// contiguous row views (clamped to `[1, n_instrs]`); chunk sizes
    /// differ by at most one row. Each view is independently mutable —
    /// the basis for intra-pass parallelism.
    pub(crate) fn split_rows(&mut self, n_chunks: usize) -> Vec<BandedRows<'_>> {
        let n = self.n_instrs;
        let chunks = n_chunks.max(1).min(n.max(1));
        let per = n / chunks;
        let extra = n % chunks;
        let mut out = Vec::with_capacity(chunks);
        let mut rest = self.rows_view();
        for k in 0..chunks - 1 {
            let take = per + usize::from(k < extra);
            let (head, tail) = rest.split_at(take);
            out.push(head);
            rest = tail;
        }
        out.push(rest);
        out
    }
}

/// A mutable view over a contiguous range of instruction rows — the
/// unit of intra-pass parallelism. Views borrow disjoint sub-slices of
/// every per-instruction array, so sibling views of one core can be
/// handed to different threads with no `unsafe`. All methods take
/// *absolute* instruction ids and panic on ids outside the range.
pub(crate) struct BandedRows<'a> {
    start: usize,
    n_clusters: usize,
    n_slots: usize,
    rows: &'a mut [Row],
    cluster_sum: &'a mut [f64],
    total: &'a mut [f64],
    scale: &'a mut [f64],
    window: &'a mut [(u32, u32)],
    cluster_ok: &'a mut [bool],
    argmax: &'a mut [Cell<ArgmaxCache>],
    /// Shared with the core (and sibling views): relaxed atomics.
    stats: &'a BandStats,
}

impl<'a> BandedRows<'a> {
    /// Splits off the first `mid` rows into their own view.
    fn split_at(self, mid: usize) -> (BandedRows<'a>, BandedRows<'a>) {
        let nc = self.n_clusters;
        let (rows_a, rows_b) = self.rows.split_at_mut(mid);
        let (cs_a, cs_b) = self.cluster_sum.split_at_mut(mid * nc);
        let (tot_a, tot_b) = self.total.split_at_mut(mid);
        let (sc_a, sc_b) = self.scale.split_at_mut(mid);
        let (win_a, win_b) = self.window.split_at_mut(mid);
        let (ok_a, ok_b) = self.cluster_ok.split_at_mut(mid * nc);
        let (am_a, am_b) = self.argmax.split_at_mut(mid);
        (
            BandedRows {
                start: self.start,
                n_clusters: nc,
                n_slots: self.n_slots,
                rows: rows_a,
                cluster_sum: cs_a,
                total: tot_a,
                scale: sc_a,
                window: win_a,
                cluster_ok: ok_a,
                argmax: am_a,
                stats: self.stats,
            },
            BandedRows {
                start: self.start + mid,
                n_clusters: nc,
                n_slots: self.n_slots,
                rows: rows_b,
                cluster_sum: cs_b,
                total: tot_b,
                scale: sc_b,
                window: win_b,
                cluster_ok: ok_b,
                argmax: am_b,
                stats: self.stats,
            },
        )
    }

    #[inline]
    fn rel(&self, i: InstrId) -> usize {
        let r = i
            .index()
            .checked_sub(self.start)
            .expect("instruction below this row view");
        assert!(r < self.rows.len(), "instruction above this row view");
        r
    }

    pub(crate) fn start(&self) -> usize {
        self.start
    }

    pub(crate) fn len(&self) -> usize {
        self.rows.len()
    }

    pub(crate) fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    pub(crate) fn n_slots(&self) -> usize {
        self.n_slots
    }

    pub(crate) fn window(&self, i: InstrId) -> (u32, u32) {
        self.window[self.rel(i)]
    }

    pub(crate) fn cluster_feasible(&self, i: InstrId, c: ClusterId) -> bool {
        self.cluster_ok[self.rel(i) * self.n_clusters + c.index()]
    }

    /// `(cluster_valid, time_valid)` of `i`'s argmax cache; see
    /// [`BandedCore::cache_flags`].
    pub(crate) fn cache_flags(&self, i: InstrId) -> (bool, bool) {
        let c = self.argmax[self.rel(i)].get();
        (c.cluster_valid, c.time_valid)
    }

    pub(crate) fn top2(&self, i: InstrId) -> (u16, u16) {
        let r = self.rel(i);
        let base = r * self.n_clusters;
        argmax::cluster_cache(
            &self.argmax[r],
            &self.cluster_sum[base..base + self.n_clusters],
            self.scale[r],
        )
    }

    pub(crate) fn top_time(&self, i: InstrId) -> u32 {
        let r = self.rel(i);
        let cell = &self.argmax[r];
        let mut cache = cell.get();
        if !cache.time_valid {
            cache.top_time =
                top_time_scan(&self.rows[r], self.window[r], self.scale[r], self.n_slots);
            cache.time_valid = true;
            cell.set(cache);
        }
        cache.top_time
    }

    pub(crate) fn scale(&mut self, i: InstrId, c: ClusterId, t: u32, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let r = self.rel(i);
        let cc = c.index();
        let tt = t as usize;
        let nc = self.n_clusters;
        let base = r * nc;
        let old = raw_get_in(
            &self.rows[r],
            self.window[r],
            &self.cluster_sum[base..base + nc],
            cc,
            tt,
        );
        let new = old * factor;
        let delta = new - old;
        if delta == 0.0 {
            return;
        }
        // `delta ≠ 0` implies the cell is nonzero, hence in the band
        // (or in a live uniform window, which densify anchors over).
        if densify_in(
            &mut self.rows[r],
            self.window[r],
            &self.cluster_sum[base..base + nc],
            nc,
        ) {
            self.stats.densified();
        }
        let Row::Band(b) = &mut self.rows[r] else {
            unreachable!("densify leaves a band")
        };
        debug_assert!(b.contains(t));
        let width = b.width();
        let off = tt - b.lo as usize;
        let (w, ts) = b.parts_mut();
        w[cc * width + off] = new;
        ts[off] += delta;
        self.cluster_sum[base + cc] += delta;
        self.total[r] += delta;
        argmax::note_cluster_write(&self.argmax[r], cc, delta > 0.0);
        let lo = b.lo as usize;
        let tsum = b.tsum();
        argmax::note_time_write(&self.argmax[r], tt, delta > 0.0, self.scale[r], |t| {
            if (lo..lo + tsum.len()).contains(&t) {
                tsum[t - lo]
            } else {
                0.0
            }
        });
    }

    pub(crate) fn scale_cluster(&mut self, i: InstrId, c: ClusterId, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let r = self.rel(i);
        let cc = c.index();
        let nc = self.n_clusters;
        let base = r * nc;
        let csk = base + cc;
        if let Row::Uniform { per, .. } = &self.rows[r] {
            let per = *per;
            if factor == 1.0 || per == 0.0 || self.cluster_sum[csk] == 0.0 {
                // The dense loop would find every cell unchanged.
                return;
            }
            if factor == 0.0 {
                // The cluster goes dead; the row stays uniform. The
                // per-slot delta the dense loop applies is the same on
                // every window slot, so one shared marginal suffices.
                if let Row::Uniform { tsum, .. } = &mut self.rows[r] {
                    *tsum += 0.0 - per;
                }
                self.cluster_sum[csk] = 0.0;
                self.total[r] = self.cluster_sum[base..base + nc].iter().sum();
                argmax::note_cluster_write(&self.argmax[r], cc, false);
                argmax::invalidate_time(&self.argmax[r]);
                return;
            }
            if densify_in(
                &mut self.rows[r],
                self.window[r],
                &self.cluster_sum[base..base + nc],
                nc,
            ) {
                self.stats.densified();
            }
        }
        let Row::Band(b) = &mut self.rows[r] else {
            unreachable!("densify leaves a band")
        };
        let width = b.width();
        let old_sum = self.cluster_sum[csk];
        let mut new_sum = 0.0;
        let mut changed = false;
        let (w, ts) = b.parts_mut();
        for k in 0..width {
            let old = w[cc * width + k];
            let new = old * factor;
            if new != old {
                w[cc * width + k] = new;
                ts[k] += new - old;
                changed = true;
            }
            new_sum += new;
        }
        if !changed {
            return;
        }
        // Same exact-rebuild discipline as the dense core: assign the
        // freshly accumulated marginal, re-sum the total.
        self.cluster_sum[csk] = new_sum;
        self.total[r] = self.cluster_sum[base..base + nc].iter().sum();
        argmax::note_cluster_write(&self.argmax[r], cc, new_sum > old_sum);
        argmax::invalidate_time(&self.argmax[r]);
    }

    /// `add` semantics for one cell (clamped read-modify-write) with
    /// no argmax bookkeeping — bulk callers blanket-invalidate the
    /// row's caches once at the end. Bit-exact with the public per-cell
    /// `add` (get + set). Returns whether the cell changed.
    fn add_cell(&mut self, r: usize, c: usize, t: usize, delta: f64) -> bool {
        let nc = self.n_clusters;
        let base = r * nc;
        let s = self.scale[r];
        let raw_cur = raw_get_in(
            &self.rows[r],
            self.window[r],
            &self.cluster_sum[base..base + nc],
            c,
            t,
        );
        let value = (raw_cur * s + delta).max(0.0);
        assert!(value.is_finite() && value >= 0.0, "weights are ≥ 0");
        let raw = value / s;
        let d = raw - raw_cur;
        if d == 0.0 {
            return false;
        }
        if densify_in(
            &mut self.rows[r],
            self.window[r],
            &self.cluster_sum[base..base + nc],
            nc,
        ) {
            self.stats.densified();
        }
        let Row::Band(b) = &mut self.rows[r] else {
            unreachable!("densify leaves a band")
        };
        if grow_band(b, nc, self.n_slots, t) {
            self.stats.grew();
        }
        let width = b.width();
        let off = t - b.lo as usize;
        let (w, ts) = b.parts_mut();
        w[c * width + off] = raw;
        ts[off] += d;
        self.cluster_sum[base + c] += d;
        self.total[r] += d;
        true
    }

    /// `scale` semantics for one cell without argmax bookkeeping;
    /// see [`Self::add_cell`]. Returns whether the cell changed.
    fn scale_cell(&mut self, r: usize, c: usize, t: usize, factor: f64) -> bool {
        let nc = self.n_clusters;
        let base = r * nc;
        let old = raw_get_in(
            &self.rows[r],
            self.window[r],
            &self.cluster_sum[base..base + nc],
            c,
            t,
        );
        let new = old * factor;
        let delta = new - old;
        if delta == 0.0 {
            return false;
        }
        if densify_in(
            &mut self.rows[r],
            self.window[r],
            &self.cluster_sum[base..base + nc],
            nc,
        ) {
            self.stats.densified();
        }
        let Row::Band(b) = &mut self.rows[r] else {
            unreachable!("densify leaves a band")
        };
        debug_assert!(b.contains(t as u32));
        let width = b.width();
        let off = t - b.lo as usize;
        let (w, ts) = b.parts_mut();
        w[c * width + off] = new;
        ts[off] += delta;
        self.cluster_sum[base + c] += delta;
        self.total[r] += delta;
        true
    }

    /// Adds `amplitude · draws[k]` to every feasible in-window cell of
    /// `i`, visiting clusters ascending and slots `lo..=hi` within each
    /// — the exact order (and arithmetic) of the per-cell NOISE loop.
    /// One cache invalidation per row instead of per cell.
    pub(crate) fn noise_fill(&mut self, i: InstrId, amplitude: f64, draws: &[f64]) {
        assert!(
            amplitude.is_finite() && amplitude >= 0.0,
            "amplitude must be ≥ 0"
        );
        let r = self.rel(i);
        let nc = self.n_clusters;
        let base = r * nc;
        let (lo, hi) = self.window[r];
        let width = (hi - lo + 1) as usize;
        let n_feasible = self.cluster_ok[base..base + nc]
            .iter()
            .filter(|&&ok| ok)
            .count();
        assert_eq!(
            draws.len(),
            n_feasible * width,
            "one draw per feasible cell"
        );
        let s = self.scale[r];
        // Densify once up front: the first nonzero delta would force it
        // anyway (draws are almost never all zero), and paying it here
        // lets every cluster stream its full span with no per-cell
        // repr re-match. Visible values are unchanged by the
        // conversion, so the result stays bit-identical to the
        // per-cell loop's.
        if densify_in(
            &mut self.rows[r],
            (lo, hi),
            &self.cluster_sum[base..base + nc],
            nc,
        ) {
            self.stats.densified();
        }
        let Row::Band(b) = &mut self.rows[r] else {
            unreachable!("densify leaves a band")
        };
        // The band always covers the window, so in-window writes never
        // grow it: stream straight over the flat cells with the
        // marginals in locals (same accumulation order as the per-cell
        // path, so the sums keep their exact bits).
        let bw = b.width();
        let blo = b.lo as usize;
        let lo_off = lo as usize - blo;
        let hi_off = hi as usize - blo;
        let (bcells, bts) = b.parts_mut();
        let mut k = 0usize;
        let mut any = false;
        let mut tot = self.total[r];
        for c in 0..nc {
            if !self.cluster_ok[base + c] {
                continue;
            }
            let wrow = &mut bcells[c * bw + lo_off..=c * bw + hi_off];
            let btsum = &mut bts[lo_off..=hi_off];
            let dspan = &draws[k..k + width];
            k += width;
            let mut csum = self.cluster_sum[base + c];
            for ((w, ts), &dr) in wrow.iter_mut().zip(btsum.iter_mut()).zip(dspan) {
                let raw_cur = *w;
                let value = (raw_cur * s + amplitude * dr).max(0.0);
                assert!(value.is_finite() && value >= 0.0, "weights are ≥ 0");
                let raw = value / s;
                let d = raw - raw_cur;
                if d != 0.0 {
                    *w = raw;
                    *ts += d;
                    csum += d;
                    tot += d;
                    any = true;
                }
            }
            self.cluster_sum[base + c] = csum;
        }
        self.total[r] = tot;
        if any {
            // Noise perturbs every feasible cell in both directions
            // across every cluster; neither half of the cache has a
            // cheap keep rule, so invalidate blindly.
            argmax::invalidate_cluster(&self.argmax[r]);
            argmax::invalidate_time(&self.argmax[r]);
        }
    }

    /// `w[i,c,lo+k] += a · xs[k]` for each `k`, clamped at zero —
    /// bit-exact with a per-cell `add` loop over the same span, with
    /// one cache invalidation per row.
    pub(crate) fn axpy_row(&mut self, i: InstrId, c: ClusterId, lo: u32, a: f64, xs: &[f64]) {
        assert!(a.is_finite(), "coefficient must be finite");
        let r = self.rel(i);
        let cc = c.index();
        let nc = self.n_clusters;
        let base = r * nc;
        assert!(
            lo as usize + xs.len() <= self.n_slots,
            "row write exceeds time slots"
        );
        let s = self.scale[r];
        let mut k = 0usize;
        let mut any = false;
        let old_csum = self.cluster_sum[base + cc];
        let pre = self.argmax[r].get();
        let top = pre.top_time as usize;
        let mut time_stale = false;
        // Generic path while uniform (covers the densifying write).
        while k < xs.len() && matches!(self.rows[r], Row::Uniform { .. }) {
            let t = lo as usize + k;
            let x = a * xs[k];
            if self.add_cell(r, cc, t, x) {
                any = true;
                // Clamping at zero never flips the direction of the
                // move, so the sign of `a·x` is the sign of `d`: the
                // cached leader survives slots that only fall while
                // it only rises.
                time_stale |= if t == top { x < 0.0 } else { x > 0.0 };
            }
            k += 1;
        }
        while k < xs.len() {
            let t = lo as usize + k;
            let x = a * xs[k];
            k += 1;
            let Row::Band(b) = &mut self.rows[r] else {
                unreachable!("loop above exits on bands")
            };
            let bw = b.width();
            let raw_cur = if b.contains(t as u32) {
                b.w()[cc * bw + (t - b.lo as usize)]
            } else {
                0.0
            };
            let value = (raw_cur * s + x).max(0.0);
            assert!(value.is_finite() && value >= 0.0, "weights are ≥ 0");
            let raw = value / s;
            let d = raw - raw_cur;
            if d == 0.0 {
                continue;
            }
            // Out-of-band writes grow per cell, in the same sequence
            // the per-cell path would, so band extents stay identical.
            if grow_band(b, nc, self.n_slots, t) {
                self.stats.grew();
            }
            let bw = b.width();
            let off = t - b.lo as usize;
            let (w, ts) = b.parts_mut();
            w[cc * bw + off] = raw;
            ts[off] += d;
            self.cluster_sum[base + cc] += d;
            self.total[r] += d;
            any = true;
            time_stale |= if t == top { d < 0.0 } else { d > 0.0 };
        }
        if any {
            argmax::note_cluster_write(&self.argmax[r], cc, self.cluster_sum[base + cc] > old_csum);
            if time_stale {
                argmax::invalidate_time(&self.argmax[r]);
            }
        }
    }

    /// `w[i,c,lo+k] *= factors[k]` for each `k` — bit-exact with a
    /// per-cell `scale` loop over the same span, with one cache
    /// invalidation per row.
    pub(crate) fn scale_row(&mut self, i: InstrId, c: ClusterId, lo: u32, factors: &[f64]) {
        for &f in factors {
            assert!(f.is_finite() && f >= 0.0, "factors are ≥ 0");
        }
        let r = self.rel(i);
        let cc = c.index();
        let nc = self.n_clusters;
        let base = r * nc;
        assert!(
            lo as usize + factors.len() <= self.n_slots,
            "row write exceeds time slots"
        );
        let mut k = 0usize;
        let mut any = false;
        let old_csum = self.cluster_sum[base + cc];
        let pre = self.argmax[r].get();
        let top = pre.top_time as usize;
        let mut time_stale = false;
        while k < factors.len() && matches!(self.rows[r], Row::Uniform { .. }) {
            let t = lo as usize + k;
            let f = factors[k];
            if self.scale_cell(r, cc, t, f) {
                any = true;
                // A changed cell moved in the direction of `f − 1`;
                // same keep rule as `axpy_row`.
                time_stale |= if t == top { f < 1.0 } else { f > 1.0 };
            }
            k += 1;
        }
        while k < factors.len() {
            let t = lo as usize + k;
            let f = factors[k];
            k += 1;
            let Row::Band(b) = &mut self.rows[r] else {
                unreachable!("loop above exits on bands")
            };
            // Cells outside the band are exactly zero and scaling
            // cannot change them (`f` is finite), as per-cell `scale`
            // concludes via its `delta == 0` early return.
            if !b.contains(t as u32) {
                continue;
            }
            let bw = b.width();
            let off = t - b.lo as usize;
            let (w, ts) = b.parts_mut();
            let old = w[cc * bw + off];
            let new = old * f;
            let d = new - old;
            if d == 0.0 {
                continue;
            }
            w[cc * bw + off] = new;
            ts[off] += d;
            self.cluster_sum[base + cc] += d;
            self.total[r] += d;
            any = true;
            time_stale |= if t == top { d < 0.0 } else { d > 0.0 };
        }
        if any {
            argmax::note_cluster_write(&self.argmax[r], cc, self.cluster_sum[base + cc] > old_csum);
            if time_stale {
                argmax::invalidate_time(&self.argmax[r]);
            }
        }
    }

    /// Applies `scale_cluster(i, c, factors[c])` for every cluster in
    /// one sweep over the row — bit-exact with the per-cluster calls
    /// (the total re-sum is deferred to the end, where it recomputes
    /// the same pure function of the final marginals), with one cache
    /// invalidation per row.
    pub(crate) fn scale_clusters_row(&mut self, i: InstrId, factors: &[f64]) {
        let nc = self.n_clusters;
        assert_eq!(factors.len(), nc, "one factor per cluster");
        for &f in factors {
            assert!(f.is_finite() && f >= 0.0, "factors are ≥ 0");
        }
        let r = self.rel(i);
        let base = r * nc;
        let mut row_changed = false;
        for (c, &f) in factors.iter().enumerate() {
            if f == 1.0 {
                // Every cell is unchanged (uniform fast path and band
                // scan alike conclude `changed == false`).
                continue;
            }
            if self.cluster_sum[base + c] == 0.0 {
                // Dead cluster: the liveness invariant (zero marginal
                // ⇔ every cell zero) means the band scan would walk
                // all-zero cells and conclude `changed == false`.
                continue;
            }
            if let Row::Uniform { per, .. } = &self.rows[r] {
                let per = *per;
                if per == 0.0 || self.cluster_sum[base + c] == 0.0 {
                    continue;
                }
                if f == 0.0 {
                    // Cluster goes dead; the row stays uniform.
                    if let Row::Uniform { tsum, .. } = &mut self.rows[r] {
                        *tsum += 0.0 - per;
                    }
                    self.cluster_sum[base + c] = 0.0;
                    row_changed = true;
                    argmax::note_cluster_write(&self.argmax[r], c, false);
                    continue;
                }
                if densify_in(
                    &mut self.rows[r],
                    self.window[r],
                    &self.cluster_sum[base..base + nc],
                    nc,
                ) {
                    self.stats.densified();
                }
            }
            let Row::Band(b) = &mut self.rows[r] else {
                unreachable!("densify leaves a band")
            };
            let bw = b.width();
            let (w, bts) = b.parts_mut();
            let wrow = &mut w[c * bw..(c + 1) * bw];
            let old_sum = self.cluster_sum[base + c];
            let mut new_sum = 0.0;
            let mut changed = false;
            for (cell, ts) in wrow.iter_mut().zip(bts.iter_mut()) {
                let old = *cell;
                let new = old * f;
                if new != old {
                    *cell = new;
                    *ts += new - old;
                    changed = true;
                }
                new_sum += new;
            }
            if changed {
                self.cluster_sum[base + c] = new_sum;
                row_changed = true;
                argmax::note_cluster_write(&self.argmax[r], c, new_sum > old_sum);
            }
        }
        if row_changed {
            self.total[r] = self.cluster_sum[base..base + nc].iter().sum();
            // Time marginals moved in both directions across clusters;
            // no cheap exact rule (same as `scale_cluster`).
            argmax::invalidate_time(&self.argmax[r]);
        }
    }
}
