//! Scheduling priorities.

use convergent_ir::{Dag, TimeAnalysis};
use convergent_machine::Machine;

/// Classic critical-path list-scheduling priorities: each instruction's
/// *latest start time*, so zero-slack instructions come first and the
/// ready list is processed in order of urgency. Lower value = higher
/// priority.
#[must_use]
pub fn cp_priorities(dag: &Dag, machine: &Machine) -> Vec<u32> {
    let time = TimeAnalysis::compute(dag, |i| machine.latency_of(i));
    dag.ids().map(|i| time.latest_start(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::{DagBuilder, Opcode};

    #[test]
    fn critical_instrs_get_lowest_priority_values() {
        // chain a -> b (critical), island c.
        let mut bld = DagBuilder::new();
        let a = bld.instr(Opcode::FMul); // 7 cycles
        let b = bld.instr(Opcode::IntAlu);
        let c = bld.instr(Opcode::IntAlu);
        bld.edge(a, b).unwrap();
        let dag = bld.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let p = cp_priorities(&dag, &m);
        assert_eq!(p[a.index()], 0);
        assert_eq!(p[b.index()], 7);
        // Island can wait until the last cycle.
        assert_eq!(p[c.index()], 7);
    }
}
