//! `csched` — schedule a dependence graph from the command line.
//!
//! ```text
//! csched <input.cdag | --workload NAME> [options]
//! csched verify <input.cdag | --workload NAME> [options]
//! csched lint <input.cdag | --workload NAME | --all-workloads> [options]
//!
//! options:
//!   --machine raw<N> | vliw<N>    target machine        (default vliw4)
//!   --scheduler convergent|uas|pcc|rawcc|bug            (default convergent)
//!   --workload NAME               use a built-in benchmark instead of a file
//!   --list-workloads              print the built-in benchmark names
//!   --dump                        print the input graph as .cdag and exit
//!   --dot                         print the input graph as Graphviz DOT and exit
//!   --pressure                    also report register pressure
//!   --profile                     print per-pass wall-clock breakdown
//!                                 (convergent scheduler only)
//!   --threads N                   intra-pass worker threads
//!                                 (convergent scheduler only)
//!   --shards N                    schedule weakly-connected regions
//!                                 concurrently (convergent only;
//!                                 identity on connected graphs)
//!   --verbose                     print per-instruction placement
//! ```
//!
//! Examples:
//!
//! ```text
//! csched --workload mxm --machine raw16 --scheduler convergent
//! csched mygraph.cdag --machine vliw4 --scheduler uas --pressure
//! csched --workload sha --dump > sha.cdag
//! ```
//!
//! The `verify` subcommand replays a graph (typically a `.cdag` repro
//! dumped by the fuzz harness) through one scheduler — or all of them
//! when `--scheduler` is omitted — validating each schedule and
//! cross-checking the cycle-driven evaluator against the event-driven
//! oracle:
//!
//! ```text
//! csched verify repro.cdag --machine raw4
//! csched verify --workload fir --machine vliw8 --scheduler pcc
//! ```
//!
//! `verify` lints its input first: a malformed `.cdag` (cycle,
//! dangling edge, impossible preplacement, …) is reported as `CSxxx`
//! diagnostics naming the offending instructions, before any
//! scheduler runs.
//!
//! The `lint` subcommand runs the static analyzer alone — no
//! scheduling — over a `.cdag` file, one workload, or every builtin
//! workload, and also verifies the machine-matched pass sequence
//! against its declared contracts:
//!
//! ```text
//! csched lint repro.cdag --machine raw4
//! csched lint --all-workloads --machine vliw4 --deny warnings
//! csched lint --workload mxm --json
//! ```
//!
//! Lint-specific options:
//!
//! ```text
//!   --all-workloads     lint every builtin workload
//!   --json              machine-readable report on stdout
//!   --deny warnings     exit nonzero on warnings, not just errors
//!   --pedantic          enable the advisory analyses (CS013/CS030/CS031)
//! ```

use std::process::ExitCode;

use convergent_scheduling::analysis::{lint_raw, lint_unit, LintOptions, LintReport};
use convergent_scheduling::core::{contract, ConvergentScheduler, Sequence};
use convergent_scheduling::ir::{parse_raw, parse_unit, to_dot, to_text, SchedulingUnit};
use convergent_scheduling::machine::Machine;
use convergent_scheduling::schedulers::{
    BugScheduler, PccScheduler, RawccScheduler, Scheduler, UasScheduler,
};
use convergent_scheduling::sim::{analyze_pressure, cross_check, evaluate, validate};
use convergent_scheduling::workloads as wl;

struct Options {
    input: Option<String>,
    workload: Option<String>,
    machine: String,
    scheduler: String,
    threads: usize,
    shards: usize,
    dump: bool,
    dot: bool,
    pressure: bool,
    profile: bool,
    verbose: bool,
}

fn usage() -> &'static str {
    "usage: csched [verify|lint] <input.cdag | --workload NAME> [--machine rawN|vliwN] \
     [--scheduler convergent|uas|pcc|rawcc|bug] [--threads N] [--shards N] [--dump] [--dot] [--pressure] \
     [--profile] [--verbose] [--list-workloads]\n\
     lint only: [--all-workloads] [--json] [--deny warnings] [--pedantic]"
}

const WORKLOADS: &[&str] = &[
    "cholesky",
    "tomcatv",
    "vpenta",
    "mxm",
    "fpppp-kernel",
    "sha",
    "swim",
    "jacobi",
    "life",
    "vvmul",
    "rbsorf",
    "yuv",
    "fir",
];

fn builtin_workload(name: &str, banks: u16) -> Option<SchedulingUnit> {
    Some(match name {
        "cholesky" => wl::cholesky(wl::CholeskyParams::for_banks(banks)),
        "tomcatv" => wl::tomcatv(wl::StencilParams::for_banks(banks)),
        "vpenta" => wl::vpenta(wl::VpentaParams::for_banks(banks)),
        "mxm" => wl::mxm(wl::MxmParams::for_banks(banks)),
        "fpppp-kernel" => wl::fpppp_kernel(wl::FppppParams::small()),
        "sha" => wl::sha(wl::ShaParams::small()),
        "swim" => wl::swim(wl::StencilParams::for_banks(banks)),
        "jacobi" => wl::jacobi(wl::StencilParams::for_banks(banks)),
        "life" => wl::life(wl::StencilParams::for_banks(banks)),
        "vvmul" => wl::vvmul(wl::VvmulParams::for_banks(banks)),
        "rbsorf" => wl::rbsorf(wl::StencilParams::for_banks(banks)),
        "yuv" => wl::yuv(wl::YuvParams::for_banks(banks)),
        "fir" => wl::fir(wl::FirParams::for_banks(banks)),
        _ => return None,
    })
}

fn parse_machine(spec: &str) -> Option<Machine> {
    if let Some(n) = spec.strip_prefix("raw") {
        return n.parse().ok().map(Machine::raw);
    }
    if let Some(n) = spec.strip_prefix("vliw") {
        return n.parse().ok().map(Machine::chorus_vliw);
    }
    None
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        input: None,
        workload: None,
        machine: "vliw4".to_string(),
        scheduler: "convergent".to_string(),
        threads: 1,
        shards: 1,
        dump: false,
        dot: false,
        pressure: false,
        profile: false,
        verbose: false,
    };
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--machine" => {
                k += 1;
                opts.machine = args.get(k).ok_or("--machine takes a value")?.clone();
            }
            "--scheduler" => {
                k += 1;
                opts.scheduler = args.get(k).ok_or("--scheduler takes a value")?.clone();
            }
            "--workload" => {
                k += 1;
                opts.workload = Some(args.get(k).ok_or("--workload takes a value")?.clone());
            }
            "--threads" => {
                k += 1;
                opts.threads = args
                    .get(k)
                    .ok_or("--threads takes a value")?
                    .parse()
                    .map_err(|_| "--threads takes a positive integer".to_string())?;
                if opts.threads == 0 {
                    return Err("--threads takes a positive integer".to_string());
                }
            }
            "--shards" => {
                k += 1;
                opts.shards = args
                    .get(k)
                    .ok_or("--shards takes a value")?
                    .parse()
                    .map_err(|_| "--shards takes a positive integer".to_string())?;
                if opts.shards == 0 {
                    return Err("--shards takes a positive integer".to_string());
                }
            }
            "--list-workloads" => {
                for w in WORKLOADS {
                    println!("{w}");
                }
                std::process::exit(0);
            }
            "--dump" => opts.dump = true,
            "--dot" => opts.dot = true,
            "--pressure" => opts.pressure = true,
            "--profile" => opts.profile = true,
            "--verbose" => opts.verbose = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if !other.starts_with('-') => opts.input = Some(other.to_string()),
            other => return Err(format!("unknown option '{other}'")),
        }
        k += 1;
    }
    if opts.input.is_none() && opts.workload.is_none() {
        return Err("need an input file or --workload".to_string());
    }
    Ok(opts)
}

fn make_scheduler(
    name: &str,
    machine: &Machine,
    threads: usize,
    shards: usize,
) -> Result<Box<dyn Scheduler>, String> {
    if threads > 1 && name != "convergent" {
        return Err(format!(
            "--threads applies to the convergent scheduler only (got '{name}')"
        ));
    }
    if shards > 1 && name != "convergent" {
        return Err(format!(
            "--shards applies to the convergent scheduler only (got '{name}')"
        ));
    }
    Ok(match name {
        "convergent" => {
            let s = if machine.comm().register_mapped {
                ConvergentScheduler::raw_default()
            } else {
                ConvergentScheduler::vliw_tuned()
            };
            Box::new(s.with_threads(threads).with_shards(shards))
        }
        "uas" => Box::new(UasScheduler::new()),
        "pcc" => Box::new(PccScheduler::new()),
        "rawcc" => Box::new(RawccScheduler::new()),
        "bug" => Box::new(BugScheduler::new()),
        other => return Err(format!("unknown scheduler '{other}'")),
    })
}

fn resolve_unit(opts: &Options, machine: &Machine) -> Result<SchedulingUnit, String> {
    match (&opts.workload, &opts.input) {
        (Some(w), _) => builtin_workload(w, machine.n_clusters() as u16)
            .ok_or_else(|| format!("unknown workload '{w}' (try --list-workloads)")),
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            parse_unit(&text).map_err(|e| format!("parsing {path}: {e}"))
        }
        (None, None) => unreachable!("checked in parse_args"),
    }
}

struct LintArgs {
    input: Option<String>,
    workloads: Vec<String>,
    machine: String,
    json: bool,
    deny_warnings: bool,
    pedantic: bool,
}

fn parse_lint_args(args: &[String]) -> Result<LintArgs, String> {
    let mut opts = LintArgs {
        input: None,
        workloads: Vec::new(),
        machine: "vliw4".to_string(),
        json: false,
        deny_warnings: false,
        pedantic: false,
    };
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--machine" => {
                k += 1;
                opts.machine = args.get(k).ok_or("--machine takes a value")?.clone();
            }
            "--workload" => {
                k += 1;
                opts.workloads
                    .push(args.get(k).ok_or("--workload takes a value")?.clone());
            }
            "--all-workloads" => {
                opts.workloads = WORKLOADS.iter().map(ToString::to_string).collect();
            }
            "--json" => opts.json = true,
            "--deny" => {
                k += 1;
                match args.get(k).map(String::as_str) {
                    Some("warnings") => opts.deny_warnings = true,
                    other => {
                        return Err(format!(
                            "--deny takes 'warnings', got {}",
                            other.unwrap_or("nothing")
                        ))
                    }
                }
            }
            "--pedantic" => opts.pedantic = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if !other.starts_with('-') => opts.input = Some(other.to_string()),
            other => return Err(format!("unknown option '{other}'")),
        }
        k += 1;
    }
    if opts.input.is_none() && opts.workloads.is_empty() {
        return Err("need an input file, --workload, or --all-workloads".to_string());
    }
    Ok(opts)
}

/// Minimal JSON string escaping for target names.
fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// `csched lint`: run the static analyzer over the requested inputs
/// and verify the machine-matched pass sequence against its declared
/// contracts, without scheduling anything.
fn run_lint(args: &[String]) -> Result<(), String> {
    let opts = parse_lint_args(args)?;
    let machine = parse_machine(&opts.machine)
        .ok_or_else(|| format!("unknown machine '{}' (use rawN or vliwN)", opts.machine))?;
    let lint_opts = if opts.pedantic {
        LintOptions::pedantic()
    } else {
        LintOptions::default()
    };

    let mut targets: Vec<(String, LintReport)> = Vec::new();
    if let Some(path) = &opts.input {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let raw = parse_raw(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        let report = lint_raw(&raw, &machine, lint_opts);
        targets.push((raw.name().to_string(), report));
    }
    for w in &opts.workloads {
        let unit = builtin_workload(w, machine.n_clusters() as u16)
            .ok_or_else(|| format!("unknown workload '{w}' (try --list-workloads)"))?;
        targets.push((w.clone(), lint_unit(&unit, &machine, lint_opts)));
    }

    // The sequence `csched` would run on this machine must honor the
    // pass contracts, or its diagnostics-over-panics guarantee is void.
    let sequence = if machine.comm().register_mapped {
        Sequence::raw()
    } else {
        Sequence::vliw_tuned()
    };
    let contract_diags = contract::verify_sequence(&sequence, &machine);

    if opts.json {
        let contracts: Vec<String> = contract_diags.iter().map(|d| d.to_json()).collect();
        let targets_json: Vec<String> = targets
            .iter()
            .map(|(name, report)| {
                format!(
                    "{{\"name\":\"{}\",\"diagnostics\":{}}}",
                    escape_json(name),
                    report.to_json()
                )
            })
            .collect();
        println!(
            "{{\"machine\":\"{}\",\"contracts\":[{}],\"targets\":[{}]}}",
            escape_json(machine.name()),
            contracts.join(","),
            targets_json.join(",")
        );
    } else {
        if contract_diags.is_empty() {
            println!(
                "machine {machine}: {} passes honor their contracts",
                sequence.len()
            );
        } else {
            println!("machine {machine}: pass contract violations:");
            for d in &contract_diags {
                println!("  {d}");
            }
        }
        for (name, report) in &targets {
            let (errors, warnings, notes) = report.counts();
            if report.is_empty() {
                println!("{name}: clean");
            } else {
                println!("{name}: {errors} error(s), {warnings} warning(s), {notes} note(s)");
                for d in report.diagnostics() {
                    println!("  {d}");
                }
            }
        }
    }

    let dirty = targets
        .iter()
        .filter(|(_, r)| !r.is_clean(opts.deny_warnings))
        .count();
    if dirty > 0 || !contract_diags.is_empty() {
        // Findings are the tool working as intended, not a usage
        // error: report and exit without the usage banner.
        eprintln!(
            "csched: lint failed: {dirty} of {} target(s) dirty, {} contract violation(s)",
            targets.len(),
            contract_diags.len()
        );
        std::process::exit(1);
    }
    Ok(())
}

/// `csched verify`: lint the input, then replay it through the
/// schedulers and hold every schedule to the full referee pair —
/// validation plus the evaluator/oracle cross-check the fuzz harness
/// relies on.
fn run_verify(args: &[String]) -> Result<(), String> {
    let explicit_scheduler = args.iter().any(|a| a == "--scheduler");
    let opts = parse_args(args)?;
    let machine = parse_machine(&opts.machine)
        .ok_or_else(|| format!("unknown machine '{}' (use rawN or vliwN)", opts.machine))?;

    // Lint before scheduling: a malformed repro gets structured
    // diagnostics naming its instructions, not a scheduler panic.
    let (unit, report) = match (&opts.workload, &opts.input) {
        (Some(w), _) => {
            let unit = builtin_workload(w, machine.n_clusters() as u16)
                .ok_or_else(|| format!("unknown workload '{w}' (try --list-workloads)"))?;
            let report = lint_unit(&unit, &machine, LintOptions::default());
            (Some(unit), report)
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let raw = parse_raw(&text).map_err(|e| format!("parsing {path}: {e}"))?;
            let report = lint_raw(&raw, &machine, LintOptions::default());
            let unit = if report.errors().next().is_none() {
                Some(raw.build().map_err(|e| format!("building {path}: {e}"))?)
            } else {
                None
            };
            (unit, report)
        }
        (None, None) => unreachable!("checked in parse_args"),
    };
    for d in report.diagnostics() {
        println!("lint: {d}");
    }
    let Some(unit) = unit else {
        let (errors, _, _) = report.counts();
        return Err(format!(
            "input failed lint with {errors} error(s); not scheduling"
        ));
    };

    let names: Vec<String> = if explicit_scheduler {
        vec![opts.scheduler.clone()]
    } else {
        ["convergent", "uas", "pcc", "rawcc", "bug"]
            .iter()
            .map(ToString::to_string)
            .collect()
    };
    println!(
        "{}: {} instrs, {} edges, machine {machine}",
        unit.name(),
        unit.dag().len(),
        unit.dag().edge_count()
    );
    let mut failures = 0usize;
    for name in &names {
        let scheduler = make_scheduler(name, &machine, 1, 1)?;
        let schedule = match scheduler.schedule(unit.dag(), &machine) {
            Ok(s) => s,
            Err(e) => {
                println!("{name:<12} FAIL scheduling: {e}");
                failures += 1;
                continue;
            }
        };
        if let Err(e) = validate(unit.dag(), &machine, &schedule) {
            println!("{name:<12} FAIL validation: {e}");
            failures += 1;
            continue;
        }
        match cross_check(unit.dag(), &machine, &schedule) {
            Ok(Ok(report)) => println!(
                "{name:<12} ok: {} cycles (nominal {}), {} stalls, simulators agree",
                report.makespan.get(),
                report.nominal_makespan,
                report.network.stall_cycles
            ),
            Ok(Err(e)) => {
                println!("{name:<12} FAIL simulation: {e}");
                failures += 1;
            }
            Err(d) => {
                println!("{name:<12} FAIL cross-check: {d}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} of {} schedulers failed", names.len()));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "verify") {
        return run_verify(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "lint") {
        return run_lint(&args[1..]);
    }
    let opts = parse_args(&args)?;

    let machine = parse_machine(&opts.machine)
        .ok_or_else(|| format!("unknown machine '{}' (use rawN or vliwN)", opts.machine))?;

    let unit = resolve_unit(&opts, &machine)?;

    if opts.dump {
        print!("{}", to_text(&unit));
        return Ok(());
    }
    if opts.dot {
        print!("{}", to_dot(unit.dag(), unit.name()));
        return Ok(());
    }

    let scheduler = make_scheduler(&opts.scheduler, &machine, opts.threads, opts.shards)?;

    let (schedule, profile, shard_note) = if opts.profile {
        if opts.scheduler != "convergent" {
            return Err("--profile is only supported for --scheduler convergent".to_string());
        }
        // Re-build the concrete driver: `Scheduler` has no profiled
        // entry point, and only the convergent pipeline has passes.
        let sched = if machine.comm().register_mapped {
            ConvergentScheduler::raw_default()
        } else {
            ConvergentScheduler::vliw_tuned()
        }
        .with_threads(opts.threads)
        .with_shards(opts.shards);
        let (out, profile) = sched
            .schedule_profiled(unit.dag(), &machine)
            .map_err(|e| format!("scheduling failed: {e}"))?;
        let shard_note = out.shard_info().map(|info| {
            format!(
                "{} regions (sizes {:?}), {} boundary comm(s)",
                info.shard_sizes.len(),
                info.shard_sizes,
                info.boundary_comms
            )
        });
        (out.into_schedule(), Some(profile), shard_note)
    } else {
        let schedule = scheduler
            .schedule(unit.dag(), &machine)
            .map_err(|e| format!("scheduling failed: {e}"))?;
        (schedule, None, None)
    };
    validate(unit.dag(), &machine, &schedule)
        .map_err(|e| format!("produced schedule failed validation: {e}"))?;
    let report =
        evaluate(unit.dag(), &machine, &schedule).map_err(|e| format!("simulation failed: {e}"))?;

    println!("{unit}");
    println!("machine:    {machine}");
    println!("scheduler:  {}", scheduler.name());
    if let Some(note) = &shard_note {
        println!("shards:     {note}");
    }
    println!(
        "cycles:     {} (nominal {})",
        report.makespan.get(),
        report.nominal_makespan
    );
    println!(
        "comm:       {} transfers, {} link-cycles, {} stall cycles",
        report.comm_ops, report.network.link_cycles, report.network.stall_cycles
    );
    println!("issue use:  {:.1}%", report.fu_utilization * 100.0);
    if opts.pressure {
        let p = analyze_pressure(unit.dag(), &machine, &schedule);
        println!(
            "registers:  peak {} of {}, {} spills",
            p.max_peak(),
            machine.registers_per_cluster(),
            p.total_spills()
        );
    }
    if let Some(p) = &profile {
        println!();
        print!("{}", p.render_table());
    }
    if opts.verbose {
        println!();
        for i in unit.dag().ids() {
            let op = schedule.op(i);
            println!(
                "  {i:>5} {:<8} {} @ {}",
                unit.dag().instr(i).opcode().to_string(),
                op.cluster,
                op.start
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("csched: {msg}");
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
