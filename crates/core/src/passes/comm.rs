//! COMM — communication minimization.
//!
//! "This pass reduces communication load by increasing the weight for
//! an instruction to be in the same clusters where most of [its]
//! neighbors (successors and predecessors in the dependence graph)
//! are. This is done by summing the weights of all the neighbors in a
//! specific cluster, and using that to skew weights in the correct
//! direction."
//!
//! The paper's formula multiplies `W[i,t,c]` by `Σ_n W[n,t,c]` —
//! literally the neighbors' weight in the *same time slot*. Dependent
//! neighbors never share a time slot, so (as the prose says) we sum
//! each neighbor's weight "in a specific cluster", i.e. its cluster
//! marginal, and use that as the skew factor (plus a small floor so a
//! cluster no neighbor currently favours is dampened, not
//! obliterated). This interpretation is flagged in DESIGN.md.
//!
//! Two extras from the paper, both on by default:
//!
//! * "a variant … that considers grand-parents and grand-children,
//!   and we usually run it together with COMM" — grand-neighbors
//!   contribute with half weight;
//! * "for each i: W[i, tᵢ, cᵢ] ← 2 · W[i, tᵢ, cᵢ]" — the preferred
//!   slot is reinforced, sharpening the map.

use convergent_ir::ClusterId;

use crate::{Pass, PassContext};

/// Floor added to neighbor skew factors so unvisited clusters are
/// dampened rather than zeroed (keeps the map recoverable, feature 3
/// of Section 2).
const SKEW_FLOOR: f64 = 0.05;

/// The COMM pass. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct Comm {
    grand_neighbors: bool,
    reinforce_preferred: bool,
}

impl Comm {
    /// Creates the pass with grand-neighbors and preferred-slot
    /// reinforcement enabled, the configuration the paper runs.
    #[must_use]
    pub fn new() -> Self {
        Comm {
            grand_neighbors: true,
            reinforce_preferred: true,
        }
    }

    /// Enables or disables the grand-parent/grand-child variant.
    #[must_use]
    pub fn with_grand_neighbors(mut self, on: bool) -> Self {
        self.grand_neighbors = on;
        self
    }

    /// Enables or disables the `W[i,tᵢ,cᵢ] ← 2W[i,tᵢ,cᵢ]`
    /// reinforcement step.
    #[must_use]
    pub fn with_reinforcement(mut self, on: bool) -> Self {
        self.reinforce_preferred = on;
        self
    }
}

impl Default for Comm {
    fn default() -> Self {
        Comm::new()
    }
}

impl Pass for Comm {
    fn name(&self) -> &'static str {
        "COMM"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        let n_clusters = ctx.weights.n_clusters();
        let n_instrs = ctx.weights.n_instrs();
        // Snapshot normalized cluster marginals (one flat row-major
        // buffer rather than a Vec per instruction) so the pass result
        // does not depend on instruction iteration order.
        let mut marginal = vec![0.0; n_instrs * n_clusters];
        for i in ctx.dag.ids() {
            let tot = ctx.weights.total(i).max(f64::MIN_POSITIVE);
            for c in 0..n_clusters {
                marginal[i.index() * n_clusters + c] =
                    ctx.weights.cluster_weight(i, ClusterId::new(c as u16)) / tot;
            }
        }

        // Scratch reused across instructions: the skew accumulator and
        // a stamp array standing in for per-instruction hash sets when
        // deduplicating grand-neighbors. `mark[g] == i` ⇔ `g` was
        // already counted (as `i` itself, a direct neighbor, or an
        // earlier grand-neighbor) while processing instruction `i`.
        let mut skew = vec![0.0; n_clusters];
        let mut mark: Vec<u32> = vec![u32::MAX; if self.grand_neighbors { n_instrs } else { 0 }];
        for i in ctx.dag.ids() {
            skew.fill(SKEW_FLOOR);
            for n in ctx.dag.neighbors(i) {
                for c in 0..n_clusters {
                    skew[c] += marginal[n.index() * n_clusters + c];
                }
            }
            if self.grand_neighbors {
                let stamp = i.index() as u32;
                mark[i.index()] = stamp;
                for n in ctx.dag.neighbors(i) {
                    mark[n.index()] = stamp;
                }
                for n in ctx.dag.neighbors(i) {
                    for g in ctx.dag.neighbors(n) {
                        if mark[g.index()] != stamp {
                            mark[g.index()] = stamp;
                            for c in 0..n_clusters {
                                skew[c] += 0.5 * marginal[g.index() * n_clusters + c];
                            }
                        }
                    }
                }
            }
            for c in 0..n_clusters {
                ctx.weights
                    .scale_cluster(i, ClusterId::new(c as u16), skew[c]);
            }
        }

        if self.reinforce_preferred {
            for i in ctx.dag.ids() {
                let ci = ctx.weights.preferred_cluster(i);
                let ti = ctx.weights.preferred_time(i);
                ctx.weights.scale(i, ci, ti.get(), 2.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::Rig;
    use convergent_ir::{DagBuilder, Opcode};
    use convergent_machine::Machine;

    fn c(k: u16) -> ClusterId {
        ClusterId::new(k)
    }

    #[test]
    fn instruction_follows_its_neighbors() {
        // y's only neighbor x is strongly on cluster 1.
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        b.edge(x, y).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(4));
        rig.weights.scale_cluster(x, c(1), 100.0);
        rig.weights.normalize_all();
        rig.run(&Comm::new());
        rig.weights.assert_invariants(1e-9);
        assert_eq!(rig.weights.preferred_cluster(y), c(1));
        assert!(rig.weights.confidence(y) > 2.0);
    }

    #[test]
    fn grand_neighbors_reach_two_hops() {
        // chain x -> m -> y; x pinned to cluster 2; with the
        // grand-neighbor variant y hears about it in one COMM run.
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let m = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        b.edge(x, m).unwrap();
        b.edge(m, y).unwrap();
        let dag = b.build().unwrap();

        let mut with = Rig::new(dag.clone(), Machine::raw(4));
        with.weights.scale_cluster(x, c(2), 100.0);
        with.weights.normalize_all();
        with.run(&Comm::new().with_reinforcement(false));
        let conf_with = with.weights.cluster_weight(y, c(2));

        let mut without = Rig::new(dag, Machine::raw(4));
        without.weights.scale_cluster(x, c(2), 100.0);
        without.weights.normalize_all();
        without.run(
            &Comm::new()
                .with_grand_neighbors(false)
                .with_reinforcement(false),
        );
        let conf_without = without.weights.cluster_weight(y, c(2));
        assert!(
            conf_with > conf_without,
            "grand-neighbors must strengthen the pull: {conf_with} vs {conf_without}"
        );
    }

    #[test]
    fn reinforcement_sharpens_preferred_slot() {
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.weights.scale_cluster(x, c(1), 3.0);
        rig.weights.normalize_all();
        let before = rig.weights.confidence(x);
        rig.run(&Comm::new());
        // An isolated instruction has no neighbors: only the
        // reinforcement step applies, and it must increase confidence.
        assert!(rig.weights.confidence(x) > before);
    }

    #[test]
    fn symmetric_inputs_stay_symmetric() {
        // Without reinforcement, an unbiased pair stays unbiased.
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        b.edge(x, y).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.run(&Comm::new().with_reinforcement(false));
        rig.weights.assert_invariants(1e-9);
        assert!((rig.weights.confidence(x) - 1.0).abs() < 1e-9);
        assert!((rig.weights.confidence(y) - 1.0).abs() < 1e-9);
    }
}
