//! The collection of heuristics from Section 4 of the paper.
//!
//! Each pass addresses exactly one constraint and communicates with
//! the others only through the preference map:
//!
//! | pass | constraint |
//! |---|---|
//! | [`InitTime`] | feasible time windows (and executable clusters) |
//! | [`Noise`] | symmetry breaking for parallelism |
//! | [`Place`] | preplaced instructions on their home clusters |
//! | [`First`] | the Chorus "data lives on cluster 1" invariant |
//! | [`Path`] | critical paths stay together |
//! | [`Comm`] | communication minimization |
//! | [`PlaceProp`] | propagating preplacement to neighbors |
//! | [`LoadBalance`] | balancing expected load |
//! | [`LevelDistribute`] | spreading level-parallelism across clusters |
//! | [`PathProp`] | propagating confident assignments along paths |
//! | [`EmphCp`] | sharpening temporal preferences toward levels |
//! | [`RegPressure`] | register pressure (the paper's §1 constraint) |
//!
//! There are no restrictions on the order or the number of times each
//! is applied; [`crate::Sequence`] holds the composition.

mod comm;
mod emphcp;
mod first;
mod inittime;
mod level;
mod load;
mod noise;
mod path;
mod pathprop;
mod place;
mod placeprop;
mod regpress;

pub use comm::Comm;
pub use emphcp::EmphCp;
pub use first::First;
pub use inittime::InitTime;
pub use level::LevelDistribute;
pub use load::LoadBalance;
pub use noise::Noise;
pub use path::Path;
pub use pathprop::PathProp;
pub use place::Place;
pub use placeprop::PlaceProp;
pub use regpress::RegPressure;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared scaffolding for pass unit tests.

    use convergent_ir::{Dag, DistanceOracle, TimeAnalysis};
    use convergent_machine::Machine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::{Pass, PassContext, PassScratch, PreferenceMap};

    /// Bundles everything needed to run passes over one graph.
    pub(crate) struct Rig {
        pub dag: Dag,
        pub machine: Machine,
        pub time: TimeAnalysis,
        pub weights: PreferenceMap,
        pub dist: DistanceOracle,
        pub rng: StdRng,
        pub scratch: PassScratch,
    }

    impl Rig {
        pub(crate) fn new(dag: Dag, machine: Machine) -> Self {
            let time = TimeAnalysis::compute(&dag, |i| machine.latency_of(i));
            let slots = time.critical_path_length().max(1) as usize;
            let weights = PreferenceMap::new(dag.len(), machine.n_clusters(), slots);
            Rig {
                dag,
                machine,
                time,
                weights,
                dist: DistanceOracle::new(),
                rng: StdRng::seed_from_u64(7),
                scratch: PassScratch::default(),
            }
        }

        /// Runs `pass` followed by the driver's normalization step.
        pub(crate) fn run(&mut self, pass: &dyn Pass) {
            let mut ctx = PassContext {
                dag: &self.dag,
                machine: &self.machine,
                time: &self.time,
                dist: &mut self.dist,
                rng: &mut self.rng,
                weights: &mut self.weights,
                scratch: &mut self.scratch,
            };
            pass.run(&mut ctx);
            self.weights.normalize_all();
        }
    }
}
