//! Compile-time throughput of the convergent scheduler itself: how
//! many instructions per second the full pass pipeline (weights,
//! passes, normalization, final list schedule) sustains at several
//! region sizes — the paper's Figure 10 claim, extended to 10k
//! instructions. Companion to figure10, but focused on the convergent
//! scheduler and machine-readable: results land in
//! `BENCH_compiletime.json`, including a per-pass wall-clock breakdown
//! of the best repetition.
//!
//! ```text
//! cargo run --release -p convergent-bench --bin compiletime
//! cargo run --release -p convergent-bench --bin compiletime -- \
//!     --sizes 200,2000 --budget-secs 0.5 --no-out --max-ratio 4.0
//! ```
//!
//! Measurements run serially (never through the parallel harness) so
//! each row gets an unloaded machine. Every size is repeated until a
//! fixed wall-clock budget (`--budget-secs`, default 2 s) is spent, so
//! `best_seconds` is equally converged across rows instead of drifting
//! with size; the measured rep count is recorded per row.
//!
//! `--max-ratio R` turns the run into a scaling guard: it exits
//! nonzero if throughput at the smallest size exceeds throughput at
//! the largest by more than `R×` — the superlinear-collapse symptom
//! the banded preference map exists to prevent.

use std::time::Instant;

use convergent_core::{ConvergentScheduler, PassProfile};
use convergent_machine::Machine;
use convergent_workloads::{layered, LayeredParams};

struct Row {
    n: usize,
    best: f64,
    ips: f64,
    reps: u32,
    profile: PassProfile,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|k| args.get(k + 1))
            .cloned()
    };
    let out_path = flag_val("--out").unwrap_or_else(|| "BENCH_compiletime.json".to_string());
    let no_out = args.iter().any(|a| a == "--no-out");
    let show_profile = args.iter().any(|a| a == "--profile");
    let budget_secs: f64 = flag_val("--budget-secs")
        .map(|v| v.parse().expect("--budget-secs takes seconds"))
        .unwrap_or(2.0);
    let max_ratio: Option<f64> =
        flag_val("--max-ratio").map(|v| v.parse().expect("--max-ratio takes a number"));
    let sizes: Vec<usize> = flag_val("--sizes")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--sizes takes a comma list"))
                .collect()
        })
        .unwrap_or_else(|| vec![200, 500, 1000, 2000, 5000, 10000]);

    let machine = Machine::chorus_vliw(4);
    println!(
        "{:>8}{:>12}{:>16}{:>8}",
        "instrs", "best (s)", "instrs/sec", "reps"
    );
    let mut rows: Vec<Row> = Vec::new();
    for &n in &sizes {
        let unit = layered(
            LayeredParams::new(n, 0xF16)
                .with_width(8)
                .with_preplacement(0.5, 4),
        );
        let mut best = f64::INFINITY;
        let mut best_profile = PassProfile::default();
        let mut reps = 0u32;
        let clock = Instant::now();
        // At least one rep, then keep going until the budget is spent.
        while reps == 0 || clock.elapsed().as_secs_f64() < budget_secs {
            let sched = ConvergentScheduler::vliw_default();
            let start = Instant::now();
            let (out, profile) = sched
                .schedule_profiled(unit.dag(), &machine)
                .expect("convergent schedules");
            let secs = start.elapsed().as_secs_f64();
            assert!(out.schedule().makespan().get() > 0);
            if secs < best {
                best = secs;
                best_profile = profile;
            }
            reps += 1;
        }
        let ips = n as f64 / best;
        println!("{n:>8}{best:>12.4}{ips:>16.0}{reps:>8}");
        if show_profile {
            println!("{}", best_profile.render_table());
        }
        rows.push(Row {
            n,
            best,
            ips,
            reps,
            profile: best_profile,
        });
    }

    if !no_out {
        let mut json = String::from("{\n  \"experiment\": \"compiletime\",\n");
        json.push_str("  \"scheduler\": \"convergent vliw_default\",\n");
        json.push_str("  \"machine\": \"chorus_vliw(4)\",\n");
        json.push_str(&format!(
            "  \"budget_secs\": {budget_secs},\n  \"rows\": [\n"
        ));
        for (k, row) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"instrs\": {}, \"best_seconds\": {:.6}, \"instrs_per_sec\": {:.1}, \"reps\": {}, \"per_pass_seconds\": {{",
                row.n, row.best, row.ips, row.reps
            ));
            let spans: Vec<String> = row
                .profile
                .spans()
                .map(|(name, secs, _)| format!("\"{name}\": {secs:.6}"))
                .collect();
            json.push_str(&spans.join(", "));
            json.push_str(&format!(
                "}}}}{}\n",
                if k + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&out_path, json).expect("write results json");
        println!();
        println!("wrote {out_path}");
    }

    if let Some(ratio) = max_ratio {
        let small = rows.iter().min_by_key(|r| r.n).expect("at least one size");
        let large = rows.iter().max_by_key(|r| r.n).expect("at least one size");
        let measured = small.ips / large.ips;
        println!(
            "scaling: {} instrs/s at {} vs {} at {} — ratio {measured:.2} (limit {ratio:.2})",
            small.ips.round(),
            small.n,
            large.ips.round(),
            large.n
        );
        if measured > ratio {
            eprintln!(
                "FAIL: throughput collapses {measured:.2}x from {} to {} instrs (limit {ratio:.2}x)",
                small.n, large.n
            );
            std::process::exit(1);
        }
    }
}
