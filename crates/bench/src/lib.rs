//! Experiment harness shared by the `table*` / `figure*` binaries.
//!
//! Every experiment follows the same recipe: build a workload, run a
//! scheduler, *validate* the schedule (no experiment ever reports an
//! illegal schedule), execute it cycle-by-cycle on the simulator —
//! including static-network contention on Raw — and report the
//! resulting makespans as speedups relative to a single-cluster run of
//! the same graph.

pub mod cases;
pub mod parallel;

use convergent_ir::{ClusterId, SchedulingUnit};
use convergent_machine::Machine;
use convergent_schedulers::{ListScheduler, ScheduleError, Scheduler};
use convergent_sim::{evaluate, validate, Assignment};
use convergent_workloads::rebank;

/// Executed cycles of `scheduler` on `unit`×`machine` (validated,
/// contention-adjusted).
///
/// # Errors
///
/// Propagates any [`ScheduleError`]; validation failures surface as
/// [`ScheduleError::ProducedInvalid`].
pub fn executed_cycles(
    scheduler: &dyn Scheduler,
    unit: &SchedulingUnit,
    machine: &Machine,
) -> Result<u32, ScheduleError> {
    let schedule = scheduler.schedule(unit.dag(), machine)?;
    validate(unit.dag(), machine, &schedule)
        .map_err(|e| ScheduleError::ProducedInvalid(format!("{}: {e}", unit.name())))?;
    let report = evaluate(unit.dag(), machine, &schedule)
        .map_err(|e| ScheduleError::ProducedInvalid(format!("{}: {e}", unit.name())))?;
    Ok(report.makespan.get())
}

/// Executed cycles of `unit` on a single cluster of the same flavour
/// as `machine` — the paper's speedup baseline. Preplacements fold
/// onto the single bank, so total work is identical.
///
/// # Errors
///
/// Propagates any [`ScheduleError`].
pub fn baseline_cycles(unit: &SchedulingUnit, machine: &Machine) -> Result<u32, ScheduleError> {
    let single = if machine.comm().register_mapped {
        Machine::raw(1)
    } else {
        Machine::chorus_vliw(1)
    };
    let folded = rebank(unit, 1);
    let assignment = Assignment::uniform(folded.dag().len(), ClusterId::new(0));
    let schedule = ListScheduler::new().schedule_with_cp(folded.dag(), &single, &assignment)?;
    validate(folded.dag(), &single, &schedule)
        .map_err(|e| ScheduleError::ProducedInvalid(format!("{} baseline: {e}", unit.name())))?;
    let report = evaluate(folded.dag(), &single, &schedule)
        .map_err(|e| ScheduleError::ProducedInvalid(format!("{} baseline: {e}", unit.name())))?;
    Ok(report.makespan.get())
}

/// Speedup of `scheduler` on `unit`×`machine` over the single-cluster
/// baseline.
///
/// # Errors
///
/// Propagates any [`ScheduleError`].
pub fn speedup(
    scheduler: &dyn Scheduler,
    unit: &SchedulingUnit,
    machine: &Machine,
) -> Result<f64, ScheduleError> {
    let base = baseline_cycles(unit, machine)?;
    let cycles = executed_cycles(scheduler, unit, machine)?;
    Ok(f64::from(base) / f64::from(cycles))
}

/// Geometric mean (the right average for speedup ratios).
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a row of fixed-width cells (simple table formatting shared
/// by the harness binaries).
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<14}");
    for cell in cells {
        print!("{cell:>11}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_schedulers::RawccScheduler;
    use convergent_workloads::{mxm, MxmParams};

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn speedup_pipeline_runs() {
        let unit = mxm(MxmParams::for_banks(2));
        let m = Machine::raw(2);
        let s = speedup(&RawccScheduler::new(), &unit, &m).unwrap();
        assert!(s > 0.5, "speedup {s} suspiciously low");
        assert!(s <= 2.5, "speedup {s} exceeds machine width");
    }
}
