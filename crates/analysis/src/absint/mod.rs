//! Abstract interpretation of pass effects.
//!
//! `core::contract` replays each pass through a recording proxy on two
//! probe graphs — an *empirical* check that can only refute, never
//! prove. This module closes the gap for passes that publish an
//! effect summary: [`PassEffect`] describes, as intervals and
//! qualitative facts, every `WeightOp` shape the pass can emit on
//! *any* input, and [`prove_contract`] symbolically executes that
//! summary over the abstract preference-map domain to prove (or
//! statically refute) each [`ContractClaims`] clause for all inputs.
//! When the summary is too coarse — or absent ([`PassEffect::opaque`])
//! — the verdict is an explicit [`Verdict::Unproven`] and callers fall
//! back to the recording proxy.
//!
//! On top of the per-pass proofs, [`analyze_pipeline`] runs a forward
//! dataflow analysis over a whole pass sequence's summaries and emits
//! the `CS07x` diagnostics: window reads before establishment, dead
//! passes, redundant normalization, noise-after-bias ordering hazards,
//! and sequences that can never reach decidable confidence.
//!
//! The split mirrors the classic absint layering: [`domain`] holds the
//! abstract values (intervals, the per-row lattice), [`effects`] the
//! transfer functions per effect op, and [`fixpoint`] the sequence
//! walk (straight-line, so the fixpoint is reached in one monotone
//! forward sweep).

pub mod domain;
pub mod effects;
pub mod fixpoint;

pub use domain::{AbsRow, Interval, NormStatus, WindowFact};
pub use effects::{
    prove_contract, ContractClaims, ContractProof, Determinism, EffectOp, PassEffect, PassSummary,
    Verdict,
};
pub use fixpoint::analyze_pipeline;
