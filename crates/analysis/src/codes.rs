//! The stable `CSxxx` diagnostic-code catalogue.

use std::fmt;

use crate::Severity;

/// A stable diagnostic code.
///
/// Codes are grouped by decade: `CS00x` graph structure, `CS01x`
/// timing and preplacement feasibility, `CS02x` op-class coverage,
/// `CS03x` advisory graph hygiene, `CS04x` component structure and
/// shardability, `CS05x` machine-model consistency, `CS06x` pass
/// contracts, `CS07x` pipeline dataflow (ordering and redundancy
/// hazards in a pass sequence). The string ids are append-only: a
/// code is never renumbered or reused, so tooling may match on them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// `CS001`: the dependence graph contains a cycle.
    Cycle,
    /// `CS002`: an edge endpoint references a nonexistent instruction.
    DanglingEdge,
    /// `CS003`: an instruction depends on itself.
    SelfEdge,
    /// `CS004`: the same dependence edge is listed twice.
    DuplicateEdge,
    /// `CS005`: the scheduling unit has no instructions.
    EmptyGraph,
    /// `CS010`: an instruction's feasible window is infeasible — its
    /// ASAP/ALAP times cannot be represented in cycle arithmetic
    /// (overflow) or contradict each other.
    InfeasibleWindow,
    /// `CS011`: a preplacement names a cluster the machine does not
    /// have.
    BadHomeCluster,
    /// `CS012`: a preplaced instruction's home cluster cannot execute
    /// its operation class — a contradictory preplacement.
    IncapableHome,
    /// `CS013`: two hard-preplaced instructions on a dependence edge
    /// sit further apart than the edge's slack allows; the nominal
    /// critical path is unachievable.
    TightPreplacedPair,
    /// `CS020`: no cluster in the machine can execute an instruction's
    /// operation class.
    UncoverableClass,
    /// `CS021`: the input graph contains a communication pseudo-op
    /// (`copy`/`send`/`recv`) that only schedulers may insert.
    CommOpInInput,
    /// `CS030`: a side-effect-free instruction has no consumers (dead
    /// value).
    DeadValue,
    /// `CS031`: the static register-pressure lower bound exceeds the
    /// machine's total register count.
    PressureOverRegisters,
    /// `CS040`: the graph splits into several weakly-connected
    /// components but one giant component dominates; region sharding
    /// cannot balance the pieces without articulation cuts.
    DegenerateShardStructure,
    /// `CS041`: the graph exceeds the default region-size target but
    /// the best recursive cut the decomposer finds is degenerate —
    /// mostly cross-shard edges or one shard holding nearly the whole
    /// graph — so sharded scheduling will fall back to a monolithic
    /// schedule.
    DegenerateRegionCut,
    /// `CS050`: the latency table reports zero latency for a
    /// non-communication operation class used by the graph.
    ZeroLatency,
    /// `CS051`: nonzero `Send`/`Recv` latency on a register-mapped
    /// machine, where network ports piggyback on producer/consumer
    /// instructions.
    CommLatencyMismatch,
    /// `CS052`: a cluster on a copy-based machine has no copy-capable
    /// functional unit, so it can never source a cross-cluster
    /// transfer.
    MissingTransferUnit,
    /// `CS060`: a pass performed an absolute weight write outside an
    /// instruction's feasible window.
    OutOfWindowWrite,
    /// `CS061`: a pass produced different writes on identical inputs
    /// with the same seed.
    NondeterministicPass,
    /// `CS062`: the preference map violated its normalization
    /// invariants after a pass ran.
    BrokenNormalization,
    /// `CS063`: a pass forbade (or zeroed) the home cluster of a
    /// preplaced instruction.
    PreplacementDemoted,
    /// `CS070`: a pass reads or writes inside feasibility windows
    /// before any pass in the sequence establishes them.
    WindowsReadBeforeEstablished,
    /// `CS071`: a pass whose entire effect is dead at its position —
    /// a repeated window-establishing pass, or a cluster-only scaling
    /// pass on a single-cluster target.
    DeadPass,
    /// `CS072`: a pass ends with an explicit normalization of a map
    /// the driver normalizes anyway after every pass.
    RedundantNormalization,
    /// `CS073`: a randomized (noise) pass runs after a deterministic
    /// symmetry-breaking pass, eroding the bias the earlier pass
    /// established.
    NoiseAfterBias,
    /// `CS074`: no pass in the sequence can break cluster symmetry on
    /// a multi-cluster target, so preferences never reach decidable
    /// confidence.
    UndecidableConfidence,
}

impl Code {
    /// Every code, in catalogue order — used to generate and test the
    /// `docs/DIAGNOSTICS.md` catalogue.
    pub const ALL: [Code; 27] = [
        Code::Cycle,
        Code::DanglingEdge,
        Code::SelfEdge,
        Code::DuplicateEdge,
        Code::EmptyGraph,
        Code::InfeasibleWindow,
        Code::BadHomeCluster,
        Code::IncapableHome,
        Code::TightPreplacedPair,
        Code::UncoverableClass,
        Code::CommOpInInput,
        Code::DeadValue,
        Code::PressureOverRegisters,
        Code::DegenerateShardStructure,
        Code::DegenerateRegionCut,
        Code::ZeroLatency,
        Code::CommLatencyMismatch,
        Code::MissingTransferUnit,
        Code::OutOfWindowWrite,
        Code::NondeterministicPass,
        Code::BrokenNormalization,
        Code::PreplacementDemoted,
        Code::WindowsReadBeforeEstablished,
        Code::DeadPass,
        Code::RedundantNormalization,
        Code::NoiseAfterBias,
        Code::UndecidableConfidence,
    ];

    /// The stable string id, e.g. `"CS001"`.
    #[must_use]
    pub const fn id(self) -> &'static str {
        match self {
            Code::Cycle => "CS001",
            Code::DanglingEdge => "CS002",
            Code::SelfEdge => "CS003",
            Code::DuplicateEdge => "CS004",
            Code::EmptyGraph => "CS005",
            Code::InfeasibleWindow => "CS010",
            Code::BadHomeCluster => "CS011",
            Code::IncapableHome => "CS012",
            Code::TightPreplacedPair => "CS013",
            Code::UncoverableClass => "CS020",
            Code::CommOpInInput => "CS021",
            Code::DeadValue => "CS030",
            Code::PressureOverRegisters => "CS031",
            Code::DegenerateShardStructure => "CS040",
            Code::DegenerateRegionCut => "CS041",
            Code::ZeroLatency => "CS050",
            Code::CommLatencyMismatch => "CS051",
            Code::MissingTransferUnit => "CS052",
            Code::OutOfWindowWrite => "CS060",
            Code::NondeterministicPass => "CS061",
            Code::BrokenNormalization => "CS062",
            Code::PreplacementDemoted => "CS063",
            Code::WindowsReadBeforeEstablished => "CS070",
            Code::DeadPass => "CS071",
            Code::RedundantNormalization => "CS072",
            Code::NoiseAfterBias => "CS073",
            Code::UndecidableConfidence => "CS074",
        }
    }

    /// The severity a diagnostic with this code carries by default.
    ///
    /// `CS012` is the one context-dependent code: contradictory
    /// preplacement is an [`Severity::Error`] on machines where
    /// preplacement is a hard constraint and a [`Severity::Warning`]
    /// otherwise; this returns the hard-machine severity.
    #[must_use]
    pub const fn default_severity(self) -> Severity {
        match self {
            Code::Cycle
            | Code::DanglingEdge
            | Code::SelfEdge
            | Code::DuplicateEdge
            | Code::EmptyGraph
            | Code::InfeasibleWindow
            | Code::BadHomeCluster
            | Code::IncapableHome
            | Code::UncoverableClass
            | Code::OutOfWindowWrite
            | Code::NondeterministicPass
            | Code::BrokenNormalization
            | Code::PreplacementDemoted
            | Code::MissingTransferUnit => Severity::Error,
            Code::CommOpInInput
            | Code::ZeroLatency
            | Code::CommLatencyMismatch
            | Code::WindowsReadBeforeEstablished
            | Code::DeadPass
            | Code::NoiseAfterBias
            | Code::UndecidableConfidence => Severity::Warning,
            Code::TightPreplacedPair
            | Code::DeadValue
            | Code::PressureOverRegisters
            | Code::DegenerateShardStructure
            | Code::DegenerateRegionCut
            | Code::RedundantNormalization => Severity::Note,
        }
    }

    /// One-line human summary of what the code means.
    #[must_use]
    pub const fn summary(self) -> &'static str {
        match self {
            Code::Cycle => "dependence graph contains a cycle",
            Code::DanglingEdge => "edge endpoint references a nonexistent instruction",
            Code::SelfEdge => "instruction depends on itself",
            Code::DuplicateEdge => "duplicate dependence edge",
            Code::EmptyGraph => "scheduling unit has no instructions",
            Code::InfeasibleWindow => "infeasible ASAP/ALAP window (cycle-arithmetic overflow)",
            Code::BadHomeCluster => "preplacement names a nonexistent cluster",
            Code::IncapableHome => "preplaced home cluster cannot execute the instruction",
            Code::TightPreplacedPair => "preplaced pair further apart than edge slack allows",
            Code::UncoverableClass => "no cluster can execute the operation class",
            Code::CommOpInInput => "communication pseudo-op in input graph",
            Code::DeadValue => "side-effect-free instruction has no consumers",
            Code::PressureOverRegisters => {
                "register-pressure lower bound exceeds machine registers"
            }
            Code::DegenerateShardStructure => {
                "one giant weakly-connected component dominates the graph"
            }
            Code::DegenerateRegionCut => {
                "oversize graph has no cut the region governor would accept"
            }
            Code::ZeroLatency => "zero latency for a non-communication class",
            Code::CommLatencyMismatch => "nonzero send/recv latency on a register-mapped machine",
            Code::MissingTransferUnit => "cluster on a copy-based machine lacks a transfer unit",
            Code::OutOfWindowWrite => "pass wrote outside a feasible window",
            Code::NondeterministicPass => "pass is nondeterministic for a fixed seed",
            Code::BrokenNormalization => "pass broke preference-map normalization invariants",
            Code::PreplacementDemoted => "pass forbade a preplaced instruction's home cluster",
            Code::WindowsReadBeforeEstablished => {
                "pass uses feasibility windows before any pass establishes them"
            }
            Code::DeadPass => "pass has no effect at its position in the sequence",
            Code::RedundantNormalization => "explicit normalization is redundant with the driver's",
            Code::NoiseAfterBias => "randomized pass runs after a deterministic bias pass",
            Code::UndecidableConfidence => "no pass in the sequence can break cluster symmetry",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_stable() {
        let mut ids: Vec<&str> = Code::ALL.iter().map(|c| c.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Code::ALL.len());
        assert_eq!(Code::Cycle.id(), "CS001");
        assert_eq!(Code::PreplacementDemoted.id(), "CS063");
        assert_eq!(Code::WindowsReadBeforeEstablished.id(), "CS070");
        assert_eq!(Code::UndecidableConfidence.id(), "CS074");
    }

    #[test]
    fn display_matches_id() {
        for c in Code::ALL {
            assert_eq!(c.to_string(), c.id());
        }
    }
}
