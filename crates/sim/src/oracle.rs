//! Differential schedule oracle: an independent re-simulation of a
//! [`SpaceTimeSchedule`] used to cross-check [`crate::evaluate`].
//!
//! [`resimulate`] derives makespan, contention stalls, and link
//! occupancy from the schedule alone, just like `evaluate` — but with a
//! completely different execution strategy. Where `evaluate` is
//! cycle-driven (scan every functional unit every cycle), the oracle is
//! *event-driven*: each functional unit sleeps until something that
//! could unblock its queue head actually happens — a producer
//! finishing, a value arriving, or its own next issue opportunity. The
//! oracle also carries its own link-occupancy ledger and its own
//! dimension-ordered path walk rather than reusing [`crate::route`], so
//! a bug in either simulator's traversal, readiness, or contention
//! logic shows up as a disagreement instead of being silently shared.
//!
//! [`cross_check`] runs both simulators and diffs their reports
//! field by field; the fuzz harness (`crates/bench/src/bin/fuzz.rs`)
//! drives it over randomized schedules from every scheduler in the
//! workspace.
//!
//! # Why the two simulators must agree exactly
//!
//! Both implement the same contract: nominal cycle numbers define the
//! per-FU *issue order* only; execution is as-soon-as-possible under
//! data arrival, one issue per FU per cycle, and earliest-feasible-slot
//! wormhole routing. Within a cycle, units are scanned in ascending
//! `(cluster, fu)` order and a value delivered by an earlier unit is
//! visible to a later unit in the same cycle. The oracle reproduces
//! that visibility rule in its wake-up times, so every quantity in
//! [`EvalReport`] — including stall cycles, which depend on the global
//! order routes are injected — must match bit for bit.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

use convergent_ir::{Cycle, Dag, InstrId};
use convergent_machine::{Machine, Topology};

use crate::route::RouterReport;
use crate::{evaluate, EvalReport, SimError, SpaceTimeSchedule};

/// One field on which the two simulators disagree.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Which quantity diverged.
    pub field: &'static str,
    /// What [`crate::evaluate`] reported.
    pub evaluate: String,
    /// What [`resimulate`] reported.
    pub oracle: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulators disagree on {}: evaluate says {}, oracle says {}",
            self.field, self.evaluate, self.oracle
        )
    }
}

impl std::error::Error for Divergence {}

/// Runs both simulators on `schedule` and diffs their reports.
///
/// Returns the agreed outcome — `Ok(report)` when the schedule
/// executes, `Err(SimError)` when both simulators got stuck on the
/// same number of operations (possible only for unvalidated
/// schedules).
///
/// # Errors
///
/// Returns [`Divergence`] describing the first differing field when the
/// two simulators disagree. Any divergence is a bug in one of them.
#[allow(clippy::result_large_err)]
pub fn cross_check(
    dag: &Dag,
    machine: &Machine,
    schedule: &SpaceTimeSchedule,
) -> Result<Result<EvalReport, SimError>, Divergence> {
    let ev = evaluate(dag, machine, schedule);
    let or = resimulate(dag, machine, schedule);
    match (ev, or) {
        (Ok(e), Ok(o)) => {
            let diff = |field: &'static str, a: &dyn fmt::Debug, b: &dyn fmt::Debug| Divergence {
                field,
                evaluate: format!("{a:?}"),
                oracle: format!("{b:?}"),
            };
            if e.makespan != o.makespan {
                return Err(diff("makespan", &e.makespan, &o.makespan));
            }
            if e.network.stall_cycles != o.network.stall_cycles {
                return Err(diff(
                    "stall_cycles",
                    &e.network.stall_cycles,
                    &o.network.stall_cycles,
                ));
            }
            if e.network.routes != o.network.routes {
                return Err(diff("routes", &e.network.routes, &o.network.routes));
            }
            if e.network.link_cycles != o.network.link_cycles {
                return Err(diff(
                    "link_cycles",
                    &e.network.link_cycles,
                    &o.network.link_cycles,
                ));
            }
            if e.comm_ops != o.comm_ops {
                return Err(diff("comm_ops", &e.comm_ops, &o.comm_ops));
            }
            if e.nominal_makespan != o.nominal_makespan {
                return Err(diff(
                    "nominal_makespan",
                    &e.nominal_makespan,
                    &o.nominal_makespan,
                ));
            }
            if e.fu_utilization.to_bits() != o.fu_utilization.to_bits() {
                return Err(diff("fu_utilization", &e.fu_utilization, &o.fu_utilization));
            }
            Ok(Ok(e))
        }
        (
            Err(SimError::NoProgress {
                remaining: re,
                cycle,
            }),
            Err(SimError::NoProgress { remaining: ro, .. }),
        ) => {
            // The give-up cycle is an artifact of each strategy's
            // watchdog; only the set of stuck operations is meaningful.
            if re == ro {
                Ok(Err(SimError::NoProgress {
                    cycle,
                    remaining: re,
                }))
            } else {
                Err(Divergence {
                    field: "stuck ops",
                    evaluate: re.to_string(),
                    oracle: ro.to_string(),
                })
            }
        }
        (e, o) => Err(Divergence {
            field: "outcome",
            evaluate: format!("{e:?}"),
            oracle: format!("{o:?}"),
        }),
    }
}

/// A directed occupancy-ledger edge between two tile coordinates.
type Seg = ((u16, u16), (u16, u16));

/// Something a sleeping functional unit may be waiting on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Key {
    /// Producer finishing on its own cluster.
    Fin(InstrId),
    /// Producer's value arriving on a cluster (by index).
    Arr(InstrId, usize),
}

/// Work queued on one functional unit, in nominal issue order.
#[derive(Clone, Copy, Debug)]
enum Slot {
    Instr(InstrId),
    Comm(usize),
}

struct FuQueue {
    items: Vec<Slot>,
    head: usize,
    /// Earliest pending attempt, for event dedup: an event popped at a
    /// different time than this is stale and skipped.
    scheduled: Option<u32>,
}

struct Oracle<'a> {
    dag: &'a Dag,
    machine: &'a Machine,
    schedule: &'a SpaceTimeSchedule,
    fus: Vec<Vec<FuQueue>>,
    heap: BinaryHeap<Reverse<(u32, usize, usize)>>,
    waiters: HashMap<Key, Vec<(usize, usize)>>,
    finish: Vec<Option<u32>>,
    arrival: HashMap<(InstrId, usize), u32>,
    /// Occupied (segment, cycle) slots — the oracle's own ledger.
    busy: HashSet<(Seg, u32)>,
    wire_of: Vec<Vec<usize>>,
    injected: Vec<bool>,
    report: RouterReport,
    max_time: u32,
    remaining: usize,
}

/// Re-executes `schedule` event-by-event and reports true cost.
///
/// Produces the same [`EvalReport`] as [`crate::evaluate`] for any
/// schedule — that equality is the differential invariant the fuzz
/// harness checks.
///
/// # Errors
///
/// Returns [`SimError::NoProgress`] when the event queue drains with
/// operations still blocked, which only happens for schedules that do
/// not pass [`crate::validate`].
pub fn resimulate(
    dag: &Dag,
    machine: &Machine,
    schedule: &SpaceTimeSchedule,
) -> Result<EvalReport, SimError> {
    let n_clusters = machine.n_clusters();
    let mut fus: Vec<Vec<FuQueue>> = (0..n_clusters)
        .map(|c| {
            let width = machine
                .cluster(convergent_ir::ClusterId::new(c as u16))
                .issue_width();
            (0..width)
                .map(|_| FuQueue {
                    items: Vec::new(),
                    head: 0,
                    scheduled: None,
                })
                .collect()
        })
        .collect();
    // Nominal issue order per unit: by (start, instr-before-comm, id).
    type KeyedSlots = Vec<Vec<Vec<((u32, u8, u32), Slot)>>>;
    let mut keyed: KeyedSlots = fus
        .iter()
        .map(|row| row.iter().map(|_| Vec::new()).collect())
        .collect();
    for op in schedule.ops() {
        keyed[op.cluster.index()][op.fu]
            .push(((op.start.get(), 0, op.instr.raw()), Slot::Instr(op.instr)));
    }
    for (k, comm) in schedule.comms().iter().enumerate() {
        if let Some(fu) = comm.fu {
            keyed[comm.from.index()][fu]
                .push(((comm.start.get(), 1, comm.producer.raw()), Slot::Comm(k)));
        }
    }
    for (c, row) in keyed.into_iter().enumerate() {
        for (f, mut cell) in row.into_iter().enumerate() {
            cell.sort_by_key(|&(key, _)| key);
            fus[c][f].items = cell.into_iter().map(|(_, slot)| slot).collect();
        }
    }

    let mut wire_of: Vec<Vec<usize>> = vec![Vec::new(); dag.len()];
    for (k, comm) in schedule.comms().iter().enumerate() {
        if comm.fu.is_none() {
            wire_of[comm.producer.index()].push(k);
        }
    }

    let remaining = dag.len() + schedule.comms().iter().filter(|c| c.fu.is_some()).count();
    let total_issue_slots = remaining;
    let mut o = Oracle {
        dag,
        machine,
        schedule,
        fus,
        heap: BinaryHeap::new(),
        waiters: HashMap::new(),
        finish: vec![None; dag.len()],
        arrival: HashMap::new(),
        busy: HashSet::new(),
        injected: vec![false; schedule.comms().len()],
        wire_of,
        report: RouterReport::default(),
        max_time: 0,
        remaining,
    };
    for c in 0..n_clusters {
        for f in 0..o.fus[c].len() {
            o.push_attempt(0, c, f);
        }
    }

    let mut last_t = 0;
    while let Some(Reverse((t, c, f))) = o.heap.pop() {
        if o.fus[c][f].scheduled != Some(t) {
            continue; // superseded by an earlier wake-up
        }
        o.fus[c][f].scheduled = None;
        last_t = t;
        o.attempt(t, c, f);
    }
    if o.remaining > 0 {
        return Err(SimError::NoProgress {
            cycle: last_t,
            remaining: o.remaining,
        });
    }

    let makespan = o.max_time.max(1);
    let total_fus: usize = (0..n_clusters)
        .map(|c| {
            machine
                .cluster(convergent_ir::ClusterId::new(c as u16))
                .issue_width()
        })
        .sum();
    Ok(EvalReport {
        nominal_makespan: schedule.makespan(),
        makespan: Cycle::new(makespan),
        network: o.report,
        fu_utilization: total_issue_slots as f64 / (total_fus as f64 * f64::from(makespan)),
        comm_ops: schedule.comm_count(),
    })
}

impl Oracle<'_> {
    /// Schedules an issue attempt for unit `(c, f)` at time `t`,
    /// coalescing with any attempt already pending at `t` or earlier.
    fn push_attempt(&mut self, t: u32, c: usize, f: usize) {
        let fu = &mut self.fus[c][f];
        if fu.head >= fu.items.len() {
            return;
        }
        match fu.scheduled {
            Some(s) if s <= t => {}
            _ => {
                fu.scheduled = Some(t);
                self.heap.push(Reverse((t, c, f)));
            }
        }
    }

    /// Registers unit `(c, f)` to be woken when `key` changes.
    /// Registrations persist — stale wake-ups only cost a spurious
    /// attempt, while a missed wake-up would stall the simulation.
    fn wait_on(&mut self, key: Key, c: usize, f: usize) {
        let list = self.waiters.entry(key).or_default();
        if !list.contains(&(c, f)) {
            list.push((c, f));
        }
    }

    /// Wakes everything waiting on `key`, which now has value `v`.
    ///
    /// The wake time reproduces `evaluate`'s intra-cycle visibility:
    /// the event fired while unit `(cc, fc)` issued at cycle `tc`, so a
    /// value usable at or before `tc` reaches units later in the
    /// `(cluster, fu)` scan the same cycle and everyone else at
    /// `tc + 1`.
    fn wake(&mut self, key: Key, v: u32, tc: u32, cc: usize, fc: usize) {
        let Some(list) = self.waiters.get(&key) else {
            return;
        };
        for (c, f) in list.clone() {
            let w = if v > tc {
                v
            } else if (c, f) > (cc, fc) {
                tc
            } else {
                tc + 1
            };
            self.push_attempt(w, c, f);
        }
    }

    /// Tries to issue the queue head of unit `(c, f)` at cycle `t`;
    /// on failure, arranges to be re-attempted no later than the first
    /// cycle it could succeed.
    fn attempt(&mut self, t: u32, c: usize, f: usize) {
        let fu = &self.fus[c][f];
        let Some(&slot) = fu.items.get(fu.head) else {
            return;
        };
        // Collect every unmet requirement: the latest known satisfy
        // time (retry then), or a subscription if not yet knowable.
        let mut retry: Option<u32> = None;
        let mut need = |avail: Option<u32>, key: Key, waits: &mut Vec<Key>| match avail {
            Some(v) if v <= t => {}
            Some(v) => {
                retry = Some(retry.map_or(v, |r: u32| r.max(v)));
                // Arrivals can still improve below v; finishes cannot.
                if matches!(key, Key::Arr(..)) {
                    waits.push(key);
                }
            }
            None => waits.push(key),
        };
        let mut waits: Vec<Key> = Vec::new();
        match slot {
            Slot::Instr(i) => {
                for &p in self.dag.preds(i) {
                    if self.schedule.op(p).cluster.index() == c {
                        need(self.finish[p.index()], Key::Fin(p), &mut waits);
                    } else {
                        need(
                            self.arrival.get(&(p, c)).copied(),
                            Key::Arr(p, c),
                            &mut waits,
                        );
                    }
                }
            }
            Slot::Comm(k) => {
                let comm = &self.schedule.comms()[k];
                let p = comm.producer;
                if comm.from == self.schedule.op(p).cluster {
                    need(self.finish[p.index()], Key::Fin(p), &mut waits);
                } else {
                    need(
                        self.arrival.get(&(p, comm.from.index())).copied(),
                        Key::Arr(p, comm.from.index()),
                        &mut waits,
                    );
                }
            }
        }
        if retry.is_none() && waits.is_empty() {
            self.issue(slot, t, c, f);
            return;
        }
        for key in waits {
            self.wait_on(key, c, f);
        }
        if let Some(m) = retry {
            self.push_attempt(m.max(t + 1), c, f);
        }
    }

    fn issue(&mut self, slot: Slot, t: u32, c: usize, f: usize) {
        self.fus[c][f].head += 1;
        self.remaining -= 1;
        self.push_attempt(t + 1, c, f);
        match slot {
            Slot::Instr(i) => {
                let fin = t + self.schedule.op(i).latency;
                self.finish[i.index()] = Some(fin);
                self.max_time = self.max_time.max(fin);
                self.wake(Key::Fin(i), fin, t, c, f);
                let home = self.schedule.op(i).cluster.index();
                let mut work = Vec::new();
                self.launch_wires(i, home, fin, &mut work);
                self.drain(i, work, t, c, f);
            }
            Slot::Comm(k) => {
                let comm = &self.schedule.comms()[k];
                self.report.routes += 1;
                self.report.link_cycles += 1;
                let seed = vec![(comm.to.index(), t + comm.latency)];
                self.drain(comm.producer, seed, t, c, f);
            }
        }
    }

    /// Records deliveries of `p`'s value, waking consumers and chasing
    /// relay chains, exactly mirroring `evaluate`'s propagation order.
    fn drain(&mut self, p: InstrId, mut work: Vec<(usize, u32)>, tc: u32, cc: usize, fc: usize) {
        while let Some((cluster, arr)) = work.pop() {
            self.max_time = self.max_time.max(arr);
            let improved = match self.arrival.get(&(p, cluster)) {
                Some(&old) => arr < old,
                None => true,
            };
            if improved {
                self.arrival.insert((p, cluster), arr);
                self.wake(Key::Arr(p, cluster), arr, tc, cc, fc);
                self.launch_wires(p, cluster, arr, &mut work);
            }
        }
    }

    /// Injects every not-yet-injected wire route of `p` departing
    /// `cluster`, where the value becomes available at `avail`.
    fn launch_wires(
        &mut self,
        p: InstrId,
        cluster: usize,
        avail: u32,
        work: &mut Vec<(usize, u32)>,
    ) {
        let ks: Vec<usize> = self.wire_of[p.index()]
            .iter()
            .copied()
            .filter(|&k| !self.injected[k] && self.schedule.comms()[k].from.index() == cluster)
            .collect();
        for k in ks {
            self.injected[k] = true;
            let comm = &self.schedule.comms()[k];
            let path = self.walk(comm.from, comm.to);
            let inj = self.claim(&path, avail);
            self.report.stall_cycles += inj - avail;
            self.report.routes += 1;
            self.report.link_cycles += path.len().saturating_sub(1);
            work.push((comm.to.index(), inj + comm.latency));
        }
    }

    /// The oracle's own dimension-ordered path: injection self-segment,
    /// then X hops, then Y hops (single segment on bus topologies).
    fn walk(&self, from: convergent_ir::ClusterId, to: convergent_ir::ClusterId) -> Vec<Seg> {
        if from == to {
            return Vec::new();
        }
        let topo = self.machine.topology();
        let (fx, fy) = topo.coords(from);
        let (tx, ty) = topo.coords(to);
        match topo {
            Topology::Mesh { .. } => {
                let mut segs = vec![((fx, fy), (fx, fy))];
                let step = |a: u16, b: u16| if b > a { a + 1 } else { a - 1 };
                let (mut x, mut y) = (fx, fy);
                while x != tx {
                    let nx = step(x, tx);
                    segs.push(((x, y), (nx, y)));
                    x = nx;
                }
                while y != ty {
                    let ny = step(y, ty);
                    segs.push(((x, y), (x, ny)));
                    y = ny;
                }
                segs
            }
            Topology::PointToPoint => vec![((fx, fy), (tx, ty))],
        }
    }

    /// Claims the earliest start `>= ready` at which segment `k` of the
    /// path is free at cycle `start + k` — the oracle's own wormhole
    /// contention rule.
    fn claim(&mut self, path: &[Seg], ready: u32) -> u32 {
        if path.is_empty() {
            return ready;
        }
        let mut s = ready;
        loop {
            let free = path
                .iter()
                .enumerate()
                .all(|(k, seg)| !self.busy.contains(&(*seg, s + k as u32)));
            if free {
                break;
            }
            s += 1;
        }
        for (k, seg) in path.iter().enumerate() {
            self.busy.insert((*seg, s + k as u32));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, ScheduleBuilder};
    use convergent_ir::{ClusterId, DagBuilder, Opcode};

    fn c(i: u16) -> ClusterId {
        ClusterId::new(i)
    }

    #[test]
    fn oracle_matches_evaluate_on_contention() {
        // Same scenario as evaluate's contention test: two routes fight
        // over the (1,0)->(2,0) link, one stall.
        let mut b = DagBuilder::new();
        let p0 = b.instr(Opcode::IntAlu);
        let p1 = b.instr(Opcode::IntMul);
        let u0 = b.instr(Opcode::IntAlu);
        let u1 = b.instr(Opcode::IntAlu);
        b.edge(p0, u0).unwrap();
        b.edge(p1, u1).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::raw(16);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(p0, c(0), 0, Cycle::ZERO);
        sb.place(p1, c(1), 0, Cycle::ZERO);
        sb.comm(p0, c(0), c(2), Cycle::new(1), None);
        sb.comm(p1, c(1), c(2), Cycle::new(2), None);
        sb.place(u0, c(2), 0, Cycle::new(5));
        sb.place(u1, c(2), 0, Cycle::new(6));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
        let r = resimulate(&dag, &m, &s).unwrap();
        assert_eq!(r.network.stall_cycles, 1);
        assert_eq!(r.makespan, Cycle::new(7));
        let agreed = cross_check(&dag, &m, &s).unwrap().unwrap();
        assert_eq!(agreed, r);
    }

    #[test]
    fn oracle_reports_no_progress_on_deadlock() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let d = b.instr(Opcode::IntAlu);
        b.edge(a, d).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(a, c(0), 0, Cycle::ZERO);
        sb.place(d, c(1), 0, Cycle::new(9)); // no transfer
        let s = sb.build(&m).unwrap();
        match resimulate(&dag, &m, &s) {
            Err(SimError::NoProgress { remaining, .. }) => assert_eq!(remaining, 1),
            other => panic!("expected NoProgress, got {other:?}"),
        }
        // Both referees get stuck on the same op, so the cross-check
        // agrees on the failure.
        assert!(cross_check(&dag, &m, &s).unwrap().is_err());
    }

    #[test]
    fn oracle_follows_relay_chains() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let d = b.instr(Opcode::IntAlu);
        b.edge(a, d).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(3);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(a, c(0), 0, Cycle::ZERO);
        sb.comm(a, c(0), c(1), Cycle::new(1), Some(3));
        sb.comm(a, c(1), c(2), Cycle::new(2), Some(3));
        sb.place(d, c(2), 0, Cycle::new(3));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
        let r = resimulate(&dag, &m, &s).unwrap();
        assert_eq!(r.makespan, Cycle::new(4));
        assert!(cross_check(&dag, &m, &s).unwrap().is_ok());
    }

    #[test]
    fn divergence_display_names_the_field() {
        let d = Divergence {
            field: "makespan",
            evaluate: "t5".into(),
            oracle: "t6".into(),
        };
        let s = d.to_string();
        assert!(s.contains("makespan") && s.contains("t5") && s.contains("t6"));
    }
}
