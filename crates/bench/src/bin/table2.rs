//! Table 2 / Figure 6: Rawcc-baseline vs convergent scheduling on
//! Raw machines of 2–16 tiles. Speedups are relative to the same
//! graph executed on one tile.
//!
//! ```text
//! cargo run --release -p convergent-bench --bin table2
//! cargo run --release -p convergent-bench --bin table2 -- --tiles 16
//! cargo run --release -p convergent-bench --bin table2 -- --jobs 4
//! ```

use convergent_bench::parallel::{default_jobs, jobs_from_args, run_cells};
use convergent_bench::{geomean, print_row, speedup};
use convergent_core::ConvergentScheduler;
use convergent_machine::Machine;
use convergent_schedulers::{RawccScheduler, Scheduler};
use convergent_workloads::raw_suite;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let jobs = jobs_from_args(&mut args, default_jobs());
    let tile_configs: Vec<u16> = match args.iter().position(|a| a == "--tiles") {
        Some(k) => vec![args
            .get(k + 1)
            .and_then(|v| v.parse().ok())
            .expect("--tiles takes a number")],
        None => vec![2, 4, 8, 16],
    };

    println!("Table 2: Rawcc speedup vs Convergent speedup (relative to one tile)");
    println!();
    let header: Vec<String> = tile_configs
        .iter()
        .map(|t| format!("base/{t}"))
        .chain(tile_configs.iter().map(|t| format!("conv/{t}")))
        .collect();
    print_row("benchmark", &header);

    let bench_names: Vec<String> = raw_suite(4).iter().map(|u| u.name().to_string()).collect();

    // One cell per benchmark × tile count; each cell builds its own
    // scheduler, so the fan-out is deterministic (see bench::parallel).
    let cells: Vec<(String, u16)> = bench_names
        .iter()
        .flat_map(|name| tile_configs.iter().map(move |&t| (name.clone(), t)))
        .collect();
    let results: Vec<(f64, f64)> = run_cells(&cells, jobs, |(name, tiles)| {
        let unit = raw_suite(*tiles)
            .into_iter()
            .find(|u| u.name() == name)
            .expect("suite roster is fixed");
        let machine = Machine::raw(*tiles);
        let base = speedup(&RawccScheduler::new(), &unit, &machine)
            .unwrap_or_else(|e| panic!("rawcc on {name}/{tiles}: {e}"));
        let conv = speedup(&ConvergentScheduler::raw_default(), &unit, &machine)
            .unwrap_or_else(|e| panic!("convergent on {name}/{tiles}: {e}"));
        (base, conv)
    });

    let mut base_all: Vec<Vec<f64>> = vec![Vec::new(); tile_configs.len()];
    let mut conv_all: Vec<Vec<f64>> = vec![Vec::new(); tile_configs.len()];
    for (row, name) in bench_names.iter().enumerate() {
        let mut cells_out = Vec::new();
        let row_results = &results[row * tile_configs.len()..(row + 1) * tile_configs.len()];
        for (k, &(base, conv)) in row_results.iter().enumerate() {
            base_all[k].push(base);
            conv_all[k].push(conv);
        }
        for &(base, _) in row_results {
            cells_out.push(format!("{base:.2}"));
        }
        for &(_, conv) in row_results {
            cells_out.push(format!("{conv:.2}"));
        }
        print_row(name, &cells_out);
    }

    println!();
    let mut cells_out = Vec::new();
    for col in &base_all {
        cells_out.push(format!("{:.2}", geomean(col)));
    }
    for col in &conv_all {
        cells_out.push(format!("{:.2}", geomean(col)));
    }
    print_row("geomean", &cells_out);

    println!();
    for (k, &tiles) in tile_configs.iter().enumerate() {
        let improvement = (geomean(&conv_all[k]) / geomean(&base_all[k]) - 1.0) * 100.0;
        println!("convergent vs rawcc @ {tiles:>2} tiles: {improvement:+.1}%  (paper @16: +21%)");
    }
    // Figure 6 is the 16-tile column of this table as a bar chart.
    let _ = Scheduler::name(&RawccScheduler::new());
}
