//! Schedule legality checking.
//!
//! [`validate`] is the single referee used by every test and experiment
//! in the workspace: a schedule that passes is executable on the target
//! machine — all dependences are satisfied through time and space, no
//! issue slot is double-booked, and every hard placement constraint is
//! honored.

use std::collections::HashMap;

use convergent_ir::{Cycle, Dag, InstrId};
use convergent_machine::Machine;

use crate::{SimError, SpaceTimeSchedule, Violation};

/// Checks `schedule` against `dag` and `machine`.
///
/// # Errors
///
/// Returns [`SimError::SizeMismatch`] if the schedule covers a
/// different number of instructions than the graph, and
/// [`SimError::Invalid`] with the full list of [`Violation`]s if any
/// rule is broken. A schedule whose op list is not a bijection with
/// `dag.ids()` (a duplicated, missing, or misindexed instruction) is
/// rejected immediately with [`Violation::DuplicateOrMissingInstr`],
/// since every later check relies on by-id lookup.
pub fn validate(
    dag: &Dag,
    machine: &Machine,
    schedule: &SpaceTimeSchedule,
) -> Result<(), SimError> {
    if schedule.ops().len() != dag.len() {
        return Err(SimError::SizeMismatch {
            expected: dag.len(),
            actual: schedule.ops().len(),
        });
    }
    let bijection_breaks = check_bijection(dag, schedule);
    if !bijection_breaks.is_empty() {
        return Err(SimError::Invalid(bijection_breaks));
    }
    let mut violations = Vec::new();

    check_placements(dag, machine, schedule, &mut violations);
    check_resources(machine, schedule, &mut violations);
    check_dependences(dag, schedule, &mut violations);

    if violations.is_empty() {
        Ok(())
    } else {
        Err(SimError::Invalid(violations))
    }
}

/// The op list must cover each instruction of the graph exactly once,
/// with instruction `k` stored in slot `k` (the invariant
/// [`SpaceTimeSchedule::op`] lookups depend on). An equal-length
/// schedule that duplicates one instruction and drops another — or
/// permutes the slots — is caught here, not by the size check.
fn check_bijection(dag: &Dag, schedule: &SpaceTimeSchedule) -> Vec<Violation> {
    let mut count = vec![0usize; dag.len()];
    let mut bad = std::collections::BTreeSet::new();
    for (slot, op) in schedule.ops().iter().enumerate() {
        if op.instr.index() >= dag.len() {
            bad.insert(op.instr);
            continue;
        }
        count[op.instr.index()] += 1;
        if op.instr.index() != slot {
            bad.insert(op.instr);
        }
    }
    for (k, &c) in count.iter().enumerate() {
        if c != 1 {
            bad.insert(InstrId::new(k as u32));
        }
    }
    bad.into_iter()
        .map(|instr| Violation::DuplicateOrMissingInstr { instr })
        .collect()
}

fn check_placements(
    dag: &Dag,
    machine: &Machine,
    schedule: &SpaceTimeSchedule,
    violations: &mut Vec<Violation>,
) {
    let hard = machine.memory().preplacement_is_hard();
    for op in schedule.ops() {
        let instr = dag.instr(op.instr);
        if op.fu >= machine.cluster(op.cluster).issue_width() {
            violations.push(Violation::BadFuIndex {
                instr: op.instr,
                fu: op.fu,
            });
            continue;
        }
        if !machine.cluster(op.cluster).fus()[op.fu].can_execute(instr.class()) {
            violations.push(Violation::IncapableCluster {
                instr: op.instr,
                cluster: op.cluster,
            });
        }
        if hard {
            if let Some(home) = instr.preplacement() {
                if home != op.cluster {
                    violations.push(Violation::PreplacementViolated {
                        instr: op.instr,
                        home,
                        actual: op.cluster,
                    });
                }
            }
        }
    }
}

fn check_resources(
    machine: &Machine,
    schedule: &SpaceTimeSchedule,
    violations: &mut Vec<Violation>,
) {
    let mut slots: HashMap<(usize, usize, Cycle), u32> = HashMap::new();
    for op in schedule.ops() {
        if op.fu < machine.cluster(op.cluster).issue_width() {
            *slots
                .entry((op.cluster.index(), op.fu, op.start))
                .or_insert(0) += 1;
        }
    }
    for comm in schedule.comms() {
        if let Some(fu) = comm.fu {
            if fu < machine.cluster(comm.from).issue_width() {
                *slots
                    .entry((comm.from.index(), fu, comm.start))
                    .or_insert(0) += 1;
            } else {
                violations.push(Violation::BadFuIndex {
                    instr: comm.producer,
                    fu,
                });
            }
        }
    }
    let mut conflicts: Vec<_> = slots
        .into_iter()
        .filter(|&(_, count)| count > 1)
        .map(|((cluster, fu, cycle), _)| Violation::ResourceConflict {
            cluster: convergent_ir::ClusterId::new(cluster as u16),
            fu,
            cycle,
        })
        .collect();
    conflicts.sort_by_key(|v| match v {
        Violation::ResourceConflict { cluster, fu, cycle } => (*cycle, cluster.index(), *fu),
        _ => unreachable!(),
    });
    violations.extend(conflicts);
}

fn check_dependences(dag: &Dag, schedule: &SpaceTimeSchedule, violations: &mut Vec<Violation>) {
    // Per-producer cluster-availability maps, computed once and shared
    // by every outgoing edge. Producers without comms stay out of the
    // map: the common same-cluster case needs no allocation.
    let mut arrivals: HashMap<InstrId, HashMap<usize, Cycle>> = HashMap::new();
    let mut seen: std::collections::HashSet<InstrId> = std::collections::HashSet::new();
    for comm in schedule.comms() {
        if seen.insert(comm.producer) {
            arrivals.insert(
                comm.producer,
                value_arrivals(schedule, comm.producer, violations),
            );
        }
    }

    for e in dag.edges() {
        let p = schedule.op(e.src);
        let u = schedule.op(e.dst);
        let available = if p.cluster == u.cluster {
            Some(p.finish())
        } else {
            arrivals
                .get(&e.src)
                .and_then(|avail| avail.get(&u.cluster.index()).copied())
        };
        match available {
            Some(avail) => {
                if u.start < avail {
                    violations.push(Violation::DependenceViolated {
                        producer: e.src,
                        consumer: e.dst,
                        available: avail,
                        start: u.start,
                    });
                }
            }
            None => violations.push(Violation::MissingComm {
                producer: e.src,
                consumer: e.dst,
            }),
        }
    }
}

/// Earliest arrival of `producer`'s value on every cluster it reaches,
/// following chains of comm ops (a relay A→B then B→C is legal when
/// each hop departs no earlier than the value's arrival at its source
/// cluster). Transfers that depart before the value is present are
/// reported as [`Violation::CommTooEarly`] and ignored; transfers
/// departing a cluster the value never reaches at all are reported as
/// [`Violation::CommUnsourced`].
fn value_arrivals(
    schedule: &SpaceTimeSchedule,
    producer: InstrId,
    violations: &mut Vec<Violation>,
) -> HashMap<usize, Cycle> {
    let op = schedule.op(producer);
    let mut avail: HashMap<usize, Cycle> = HashMap::new();
    avail.insert(op.cluster.index(), op.finish());
    // Least fixed point: a comm contributes its arrival iff it departs
    // at or after the value's (final) availability at its source.
    // Availabilities only decrease as more legal comms are folded in,
    // which can only legalize more comms, so iterate to stability.
    loop {
        let mut changed = false;
        for comm in schedule.comms_for(producer) {
            let Some(&src) = avail.get(&comm.from.index()) else {
                continue;
            };
            if comm.start < src {
                continue;
            }
            let arrival = comm.arrival();
            match avail.entry(comm.to.index()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if arrival < *e.get() {
                        e.insert(arrival);
                        changed = true;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(arrival);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for comm in schedule.comms_for(producer) {
        match avail.get(&comm.from.index()) {
            Some(&src) => {
                if comm.start < src {
                    violations.push(Violation::CommTooEarly {
                        producer,
                        start: comm.start,
                        ready: src,
                    });
                }
            }
            None => violations.push(Violation::CommUnsourced {
                producer,
                from: comm.from,
            }),
        }
    }
    avail
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduleBuilder;
    use convergent_ir::{ClusterId, DagBuilder, Opcode};

    fn chain() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let c = b.instr(Opcode::IntAlu);
        b.edge(a, c).unwrap();
        b.build().unwrap()
    }

    fn c(i: u16) -> ClusterId {
        ClusterId::new(i)
    }

    fn i(k: u32) -> InstrId {
        InstrId::new(k)
    }

    #[test]
    fn valid_same_cluster_schedule() {
        let dag = chain();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.place(i(1), c(0), 0, Cycle::new(1));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
    }

    #[test]
    fn dependence_violation_detected() {
        let dag = chain();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.place(i(1), c(0), 1, Cycle::ZERO); // too early
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        match err {
            SimError::Invalid(v) => assert!(matches!(v[0], Violation::DependenceViolated { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_comm_detected() {
        let dag = chain();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.place(i(1), c(1), 0, Cycle::new(10));
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        assert!(matches!(
            err,
            SimError::Invalid(ref v) if matches!(v[0], Violation::MissingComm { .. })
        ));
    }

    #[test]
    fn comm_makes_cross_cluster_legal() {
        let dag = chain();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        // value ready at 1; copy at 1 on transfer unit (fu 3); arrives 2.
        sb.comm(i(0), c(0), c(1), Cycle::new(1), Some(3));
        sb.place(i(1), c(1), 0, Cycle::new(2));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
    }

    #[test]
    fn comm_too_early_detected() {
        let dag = chain();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.comm(i(0), c(0), c(1), Cycle::ZERO, Some(3)); // value not ready
        sb.place(i(1), c(1), 0, Cycle::new(5));
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        match err {
            SimError::Invalid(v) => {
                assert!(v
                    .iter()
                    .any(|x| matches!(x, Violation::CommTooEarly { .. })));
                assert!(v.iter().any(|x| matches!(x, Violation::MissingComm { .. })));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resource_conflict_detected() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::IntAlu);
        b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.place(i(1), c(0), 0, Cycle::ZERO); // same fu, same cycle
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        assert!(matches!(
            err,
            SimError::Invalid(ref v) if matches!(v[0], Violation::ResourceConflict { .. })
        ));
    }

    #[test]
    fn incapable_fu_detected() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::FMul);
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(1);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO); // fu 0 is int-alu, not fpu
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        assert!(matches!(
            err,
            SimError::Invalid(ref v) if matches!(v[0], Violation::IncapableCluster { .. })
        ));
    }

    #[test]
    fn hard_preplacement_enforced_on_raw() {
        let mut b = DagBuilder::new();
        b.preplaced_instr(Opcode::Load, c(1));
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        assert!(matches!(
            err,
            SimError::Invalid(ref v) if matches!(v[0], Violation::PreplacementViolated { .. })
        ));
    }

    #[test]
    fn soft_preplacement_allowed_on_vliw() {
        let mut b = DagBuilder::new();
        b.preplaced_instr(Opcode::Load, c(1));
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 1, Cycle::ZERO); // fu 1 = int-alu/mem
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap(); // legal, just slower
        assert_eq!(s.op(i(0)).latency, 4);
    }

    #[test]
    fn bad_fu_index_detected() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let m = Machine::raw(1); // single-issue: only fu 0
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 5, Cycle::ZERO);
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        assert!(matches!(
            err,
            SimError::Invalid(ref v) if matches!(v[0], Violation::BadFuIndex { .. })
        ));
    }

    #[test]
    fn duplicated_and_dropped_instr_detected() {
        // Equal-length op list that schedules i0 twice and i1 never:
        // passes the size check, must fail the bijection check.
        let dag = chain();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.place(i(1), c(0), 0, Cycle::new(1));
        let good = sb.build(&m).unwrap();
        let mut ops = good.ops().to_vec();
        ops[1] = ops[0];
        let s = crate::SpaceTimeSchedule::from_parts(ops, vec![], good.makespan());
        let err = validate(&dag, &m, &s).unwrap_err();
        match err {
            SimError::Invalid(v) => {
                assert_eq!(
                    v,
                    vec![
                        Violation::DuplicateOrMissingInstr { instr: i(0) },
                        Violation::DuplicateOrMissingInstr { instr: i(1) },
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn permuted_op_slots_detected() {
        // Both instructions present but stored in swapped slots, which
        // would silently corrupt every by-id lookup.
        let dag = chain();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.place(i(1), c(0), 0, Cycle::new(1));
        let good = sb.build(&m).unwrap();
        let mut ops = good.ops().to_vec();
        ops.swap(0, 1);
        let s = crate::SpaceTimeSchedule::from_parts(ops, vec![], good.makespan());
        let err = validate(&dag, &m, &s).unwrap_err();
        match err {
            SimError::Invalid(v) => {
                assert_eq!(v.len(), 2);
                assert!(v
                    .iter()
                    .all(|x| matches!(x, Violation::DuplicateOrMissingInstr { .. })));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn out_of_range_instr_id_detected() {
        let dag = chain();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.place(i(1), c(0), 0, Cycle::new(1));
        let good = sb.build(&m).unwrap();
        let mut ops = good.ops().to_vec();
        ops[1].instr = i(7); // beyond the graph
        let s = crate::SpaceTimeSchedule::from_parts(ops, vec![], good.makespan());
        let err = validate(&dag, &m, &s).unwrap_err();
        match err {
            SimError::Invalid(v) => {
                assert!(v.contains(&Violation::DuplicateOrMissingInstr { instr: i(7) }));
                assert!(v.contains(&Violation::DuplicateOrMissingInstr { instr: i(1) }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relay_chain_is_legal_and_unsourced_comm_rejected() {
        // A legal relay c0 -> c1 -> c2 must validate; rerouting the
        // second hop to depart a cluster the value never visits must
        // produce CommUnsourced.
        let dag = chain();
        let m = Machine::chorus_vliw(4);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.comm(i(0), c(0), c(1), Cycle::new(1), Some(3));
        sb.comm(i(0), c(1), c(2), Cycle::new(2), Some(3));
        sb.place(i(1), c(2), 0, Cycle::new(3));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();

        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.comm(i(0), c(0), c(1), Cycle::new(1), Some(3));
        sb.comm(i(0), c(3), c(2), Cycle::new(2), Some(3)); // c3 never holds it
        sb.place(i(1), c(2), 0, Cycle::new(3));
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        match err {
            SimError::Invalid(v) => {
                assert!(v.contains(&Violation::CommUnsourced {
                    producer: i(0),
                    from: c(3),
                }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relay_hop_departing_too_early_detected() {
        // The second hop leaves c1 before the first hop has arrived.
        let dag = chain();
        let m = Machine::chorus_vliw(4);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.comm(i(0), c(0), c(1), Cycle::new(1), Some(3));
        sb.comm(i(0), c(1), c(2), Cycle::new(1), Some(2)); // arrives c1 at 2
        sb.place(i(1), c(2), 0, Cycle::new(5));
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        match err {
            SimError::Invalid(v) => {
                assert!(v.contains(&Violation::CommTooEarly {
                    producer: i(0),
                    start: Cycle::new(1),
                    ready: Cycle::new(2),
                }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn raw_register_mapped_comm() {
        let dag = chain();
        let m = Machine::raw(4);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        // finish at 1, route 0 -> 1 injected at 1, arrives 1 + 3 = 4.
        sb.comm(i(0), c(0), c(1), Cycle::new(1), None);
        sb.place(i(1), c(1), 0, Cycle::new(4));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
        // One cycle earlier must fail.
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.comm(i(0), c(0), c(1), Cycle::new(1), None);
        sb.place(i(1), c(1), 0, Cycle::new(3));
        let s = sb.build(&m).unwrap();
        assert!(validate(&dag, &m, &s).is_err());
    }
}
