//! The `--shards` contract, end to end, over every builtin workload:
//!
//! * `--shards 1` is always the monolithic driver — byte-identical
//!   schedules, no shard metadata.
//! * Single-component graphs at or under the region-size target are
//!   never cut (every builtin suite unit fits the default target of
//!   2000 instructions), so any shard budget stays byte-identical too.
//! * On multi-component graphs the sharded pipeline must produce a
//!   schedule the shared referee accepts ([`convergent_sim::validate`]
//!   plus the cycle-level oracle cross-check), with shard metadata
//!   that accounts for every instruction, and a makespan within a
//!   pinned factor of the monolithic schedule (shards stack pieces in
//!   time rather than interleaving them; 3x holds with wide margin on
//!   every builtin workload, keeping the stitch honest without pinning
//!   exact cycle counts).
//! * Forcing recursive cuts on *connected* graphs with a tiny
//!   `--region-size` must keep the same referee guarantees, and when
//!   the cut governor rejects a degenerate cut the fall-back schedule
//!   must be byte-identical to the monolithic one.

use convergent_core::ConvergentScheduler;
use convergent_ir::weakly_connected_components;
use convergent_machine::Machine;
use convergent_sim::{cross_check, validate};
use convergent_workloads::{raw_suite, vliw_suite};

const MAKESPAN_RATIO_LIMIT: f64 = 3.0;

fn check_suite(machine: &Machine, units: Vec<convergent_ir::SchedulingUnit>) {
    for unit in units {
        let dag = unit.dag();
        let connected = weakly_connected_components(dag).len() == 1;
        let reference = ConvergentScheduler::vliw_default()
            .schedule(dag, machine)
            .unwrap_or_else(|e| panic!("{}: {e}", unit.name()));
        for shards in [1usize, 2, 8] {
            let sharded = ConvergentScheduler::vliw_default()
                .with_shards(shards)
                .schedule(dag, machine)
                .unwrap_or_else(|e| panic!("{} shards={shards}: {e}", unit.name()));
            if shards == 1 || connected {
                assert_eq!(
                    reference.schedule(),
                    sharded.schedule(),
                    "{} diverged at shards={shards}",
                    unit.name()
                );
                assert!(sharded.shard_info().is_none());
                continue;
            }
            // Multi-component: equivalent quality, proven by the
            // shared referee rather than byte equality.
            validate(dag, machine, sharded.schedule())
                .unwrap_or_else(|e| panic!("{} shards={shards}: {e}", unit.name()));
            cross_check(dag, machine, sharded.schedule())
                .unwrap_or_else(|d| panic!("{} shards={shards} cross-check: {d}", unit.name()))
                .unwrap_or_else(|e| panic!("{} shards={shards} oracle sim: {e}", unit.name()));
            let info = sharded
                .shard_info()
                .expect("multi-component graph decomposes");
            assert_eq!(
                info.shard_sizes.iter().sum::<usize>(),
                dag.len(),
                "{} shards={shards}",
                unit.name()
            );
            let ratio = f64::from(sharded.schedule().makespan().get())
                / f64::from(reference.schedule().makespan().get().max(1));
            assert!(
                ratio <= MAKESPAN_RATIO_LIMIT,
                "{} shards={shards}: sharded makespan {} vs monolithic {} (ratio {ratio:.2})",
                unit.name(),
                sharded.schedule().makespan(),
                reference.schedule().makespan()
            );
        }
    }
}

#[test]
fn vliw_suite_honors_the_shards_contract() {
    let machine = Machine::chorus_vliw(4);
    check_suite(&machine, vliw_suite(4));
}

#[test]
fn raw_suite_honors_the_shards_contract() {
    let machine = Machine::raw(4);
    check_suite(&machine, raw_suite(4));
}

#[test]
fn connected_workloads_recursively_shard_and_validate() {
    // Force recursive cuts on every connected suite unit by shrinking
    // the region target to a quarter of the unit. Two legal outcomes
    // per unit: the governor accepts the cut (schedule must pass the
    // shared referee with a bounded makespan and fully-accounted shard
    // metadata) or rejects it (schedule must be byte-identical to the
    // monolithic one). Both paths must occur across the suites, so the
    // test cannot silently degenerate into all-fallback.
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for (machine, units) in [
        (Machine::raw(4), raw_suite(4)),
        (Machine::chorus_vliw(4), vliw_suite(4)),
    ] {
        for unit in units {
            let dag = unit.dag();
            if weakly_connected_components(dag).len() != 1 || dag.len() < 16 {
                continue;
            }
            let reference = ConvergentScheduler::vliw_default()
                .schedule(dag, &machine)
                .unwrap_or_else(|e| panic!("{}: {e}", unit.name()));
            let region = (dag.len() / 4).max(4);
            let sharded = ConvergentScheduler::vliw_default()
                .with_shards(8)
                .with_region_size(region)
                .schedule(dag, &machine)
                .unwrap_or_else(|e| panic!("{} region={region}: {e}", unit.name()));
            match sharded.shard_info() {
                Some(info) => {
                    accepted += 1;
                    assert!(info.shard_sizes.len() > 1, "{}", unit.name());
                    assert_eq!(
                        info.shard_sizes.iter().sum::<usize>(),
                        dag.len(),
                        "{}",
                        unit.name()
                    );
                    assert!(
                        info.cross_edges > 0,
                        "{}: a connected cut crosses",
                        unit.name()
                    );
                    validate(dag, &machine, sharded.schedule())
                        .unwrap_or_else(|e| panic!("{} region={region}: {e}", unit.name()));
                    cross_check(dag, &machine, sharded.schedule())
                        .unwrap_or_else(|d| panic!("{} cross-check: {d}", unit.name()))
                        .unwrap_or_else(|e| panic!("{} oracle sim: {e}", unit.name()));
                    let ratio = f64::from(sharded.schedule().makespan().get())
                        / f64::from(reference.schedule().makespan().get().max(1));
                    assert!(
                        ratio <= MAKESPAN_RATIO_LIMIT,
                        "{} region={region}: sharded makespan {} vs monolithic {} (ratio {ratio:.2})",
                        unit.name(),
                        sharded.schedule().makespan(),
                        reference.schedule().makespan()
                    );
                }
                None => {
                    rejected += 1;
                    let verdict = sharded
                        .governor()
                        .unwrap_or_else(|| panic!("{}: fallback without a verdict", unit.name()));
                    assert!(!verdict.accepted(), "{}", unit.name());
                    assert_eq!(
                        reference.schedule(),
                        sharded.schedule(),
                        "{}: governor fallback must be byte-identical",
                        unit.name()
                    );
                }
            }
        }
    }
    assert!(accepted > 0, "no suite unit took the recursive-cut path");
    assert!(
        rejected > 0,
        "no suite unit exercised the governor fallback"
    );
}

#[test]
fn disconnected_workloads_shard_and_validate() {
    // The adversarial `disconnected` family is the shard scheduler's
    // home turf: every unit splits, so the stitch path and boundary
    // bookkeeping run on every case.
    for machine in [Machine::raw(4), Machine::chorus_vliw(4)] {
        for (k, n, seed) in [(2, 30, 1), (5, 64, 7), (8, 100, 21)] {
            let unit = convergent_workloads::disconnected(k, n, seed);
            let dag = unit.dag();
            for shards in [2usize, 4, 16] {
                let out = ConvergentScheduler::vliw_default()
                    .with_shards(shards)
                    .schedule(dag, &machine)
                    .unwrap_or_else(|e| panic!("{} shards={shards}: {e}", unit.name()));
                validate(dag, &machine, out.schedule())
                    .unwrap_or_else(|e| panic!("{} shards={shards}: {e}", unit.name()));
                cross_check(dag, &machine, out.schedule())
                    .unwrap_or_else(|d| panic!("{} shards={shards} cross-check: {d}", unit.name()))
                    .unwrap_or_else(|e| panic!("{} shards={shards} oracle sim: {e}", unit.name()));
                let info = out.shard_info().expect("disconnected units decompose");
                assert_eq!(info.shard_sizes.iter().sum::<usize>(), dag.len());
                assert!(info.shard_sizes.len() <= shards.min(k));
            }
        }
    }
}
