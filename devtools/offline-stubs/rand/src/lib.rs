//! Offline stand-in for the `rand` crate.
//!
//! This crate exists so the workspace can be built and tested on
//! machines with no crates.io access (see
//! `devtools/offline-stubs/README.md`). It implements exactly the API
//! surface the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` — with a SplitMix64 generator.
//! It is activated only via `scripts/offline-check.sh`; default builds
//! resolve the real `rand` from crates.io.
//!
//! Streams differ from the real `rand`, so experiment *numbers*
//! produced offline are not comparable to online runs; determinism and
//! all structural properties are preserved.

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only the `seed_from_u64` entry point the
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Conversion of raw bits into a sample of `T` (stands in for
/// `Standard: Distribution<T>`; user code never names this trait).
pub trait StandardSample {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from (stands in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}
uint_range!(u8, u16, u32, u64, usize);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end as i128) - (start as i128)) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                ((start as i128) + off) as $t
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// generator (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a sample of `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    /// Stand-in for `rand::rngs::StdRng`: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state ^ 0x5DEE_CE66_D0F1_5A25,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = a.gen();
            let y: f64 = b.gen();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
            let k = a.gen_range(3usize..10);
            let _ = b.gen_range(3usize..10);
            assert!((3..10).contains(&k));
            let m = a.gen_range(2..=3usize);
            let _ = b.gen_range(2..=3usize);
            assert!((2..=3).contains(&m));
        }
    }
}
