//! Structured diagnostics and lint reports.

use std::fmt;

use convergent_ir::InstrId;

use crate::Code;

/// How serious a diagnostic is.
///
/// Ordering is by severity: `Note < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory finding; the input is legal and schedulable.
    Note,
    /// Suspicious but schedulable; rejected under `--deny warnings`.
    Warning,
    /// The input cannot be scheduled correctly.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of the static analyzer.
///
/// Diagnostics deliberately contain no floats, so they derive `Eq`
/// and can travel inside `ScheduleError` values compared by tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable catalogue code.
    pub code: Code,
    /// Severity (usually [`Code::default_severity`], but `CS012`
    /// downgrades to a warning on soft-preplacement machines).
    pub severity: Severity,
    /// Instructions the finding is about (may be empty for
    /// machine-level findings).
    pub instrs: Vec<InstrId>,
    /// Human-readable description.
    pub message: String,
    /// Optional evidence, e.g. a cycle path `"i2 -> i5 -> i2"`.
    pub witness: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity.
    #[must_use]
    pub fn new(code: Code, instrs: Vec<InstrId>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            instrs,
            message: message.into(),
            witness: None,
        }
    }

    /// Overrides the severity.
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Attaches a witness string.
    #[must_use]
    pub fn with_witness(mut self, witness: impl Into<String>) -> Self {
        self.witness = Some(witness.into());
        self
    }

    /// Renders the diagnostic as a JSON object (hand-rolled; the
    /// workspace carries no serde dependency).
    #[must_use]
    pub fn to_json(&self) -> String {
        let instrs: Vec<String> = self.instrs.iter().map(|i| i.index().to_string()).collect();
        let witness = match &self.witness {
            Some(w) => format!("\"{}\"", escape_json(w)),
            None => "null".to_string(),
        };
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"instrs\":[{}],\"message\":\"{}\",\"witness\":{}}}",
            self.code,
            self.severity,
            instrs.join(","),
            escape_json(&self.message),
            witness
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.severity)?;
        if !self.instrs.is_empty() {
            let ids: Vec<String> = self.instrs.iter().map(|i| i.to_string()).collect();
            write!(f, " [{}]", ids.join(","))?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(w) = &self.witness {
            write!(f, " (witness: {w})")?;
        }
        Ok(())
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The outcome of a lint run: an ordered list of diagnostics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        LintReport::default()
    }

    /// All diagnostics, in the order the checks produced them.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every diagnostic of `other`.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// `true` if no diagnostics at all were produced.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The most severe finding, or `None` for an empty report.
    #[must_use]
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// `(errors, warnings, notes)` counts.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Note => c.2 += 1,
            }
        }
        c
    }

    /// `true` if the input passed: no errors, and — when
    /// `deny_warnings` — no warnings either. Notes never fail a lint.
    #[must_use]
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        let threshold = if deny_warnings {
            Severity::Warning
        } else {
            Severity::Error
        };
        self.diagnostics.iter().all(|d| d.severity < threshold)
    }

    /// Iterates over the error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Renders the whole report as a JSON array.
    #[must_use]
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!("[{}]", items.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_and_json() {
        let d = Diagnostic::new(
            Code::Cycle,
            vec![InstrId::new(1), InstrId::new(2)],
            "cycle through 2 instructions",
        )
        .with_witness("i1 -> i2 -> i1");
        let s = d.to_string();
        assert!(s.starts_with("CS001 error [i1,i2]:"), "{s}");
        assert!(s.contains("witness: i1 -> i2 -> i1"), "{s}");
        let j = d.to_json();
        assert!(j.contains("\"code\":\"CS001\""), "{j}");
        assert!(j.contains("\"instrs\":[1,2]"), "{j}");
        assert!(j.contains("\"witness\":\"i1 -> i2 -> i1\""), "{j}");
    }

    #[test]
    fn json_escaping() {
        let d = Diagnostic::new(Code::EmptyGraph, vec![], "quote \" slash \\ newline \n");
        let j = d.to_json();
        assert!(j.contains("quote \\\" slash \\\\ newline \\n"), "{j}");
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let mut r = LintReport::new();
        assert!(r.is_clean(true));
        assert_eq!(r.worst(), None);
        r.push(Diagnostic::new(Code::DeadValue, vec![InstrId::new(0)], "x"));
        assert!(r.is_clean(true), "notes never fail a lint");
        r.push(Diagnostic::new(Code::CommOpInInput, vec![], "y"));
        assert!(r.is_clean(false));
        assert!(!r.is_clean(true));
        r.push(Diagnostic::new(Code::Cycle, vec![], "z"));
        assert!(!r.is_clean(false));
        assert_eq!(r.counts(), (1, 1, 1));
        assert_eq!(r.worst(), Some(Severity::Error));
        assert_eq!(r.errors().count(), 1);
    }
}
