//! Stitching per-shard schedules into one global schedule.
//!
//! The sharded driver (`convergent-core`) schedules every shard of a
//! [`Decomposition`] independently, each against cycle 0 of an empty
//! machine. This module merges those per-shard [`SpaceTimeSchedule`]s
//! into one schedule for the original graph:
//!
//! 1. Shards are committed in decomposition order. Each shard is
//!    shifted forward by a per-shard offset `δ` chosen so that (a) no
//!    operation lands on a `(cluster, fu, cycle)` issue slot an earlier
//!    shard already claimed, and (b) every cross-shard dependence is
//!    satisfied.
//! 2. A *boundary COMM fix-up* inserts the transfers that carry values
//!    across shard boundaries — the shard schedulers never saw those
//!    edges. Availability is tracked per `(value, cluster)` in every
//!    direction the value has already travelled: the producer's placed
//!    cluster, every cluster a shard-internal COMM forwarded it to, and
//!    the destinations of boundary transfers inserted earlier (so later
//!    consumers can relay from those instead of going back to the
//!    producer). Each new transfer departs whichever known location
//!    arrives earliest at the consumer, is deduplicated per
//!    `(producer, destination cluster)`, and on copy-based machines
//!    occupies the earliest free copy-capable slot; if no slot meets
//!    the consumer's deadline, `δ` is raised until one does. A
//!    location with no copy-capable unit is skipped in favour of the
//!    next-best one, so stitching only fails when *no* cluster holding
//!    the value can send it.
//!
//! Shifting a shard uniformly preserves its internal dependences and
//! resource shape, and rebuilding against the *global* graph can only
//! shrink effective latencies (a shard-local root with cross-shard
//! predecessors loses its live-in charge), so the merged schedule
//! passes [`crate::validate`] whenever the shard schedules did.

use std::collections::{HashMap, HashSet};

use convergent_ir::{ClusterId, Cycle, Dag, Decomposition, Edge, InstrId, OpClass};
use convergent_machine::Machine;

use crate::{effective_latency_in, ScheduleBuilder, SimError, SpaceTimeSchedule};

/// Result of stitching: the merged schedule plus how the shards were
/// placed in time.
#[derive(Clone, Debug)]
pub struct StitchReport {
    /// The merged, globally-valid schedule.
    pub schedule: SpaceTimeSchedule,
    /// Cycle offset applied to each shard, in shard order.
    pub offsets: Vec<u32>,
    /// Number of cross-shard transfers inserted by the boundary fix-up.
    pub boundary_comms: usize,
}

/// Marks cycle `t` busy in a per-lane occupancy bitmap, growing it on
/// demand (absent words are free).
fn set_busy(words: &mut Vec<u64>, t: u32) {
    let w = (t / 64) as usize;
    if words.len() <= w {
        words.resize(w + 1, 0);
    }
    words[w] |= 1u64 << (t % 64);
}

/// Earliest cycle `t >= start` (and `t <= limit`, when bounded) at
/// which some lane of a cluster is free in both occupancy bitmaps,
/// testing 64 cycles per word. Returns the lane's position within the
/// cluster's copy-lane list and the cycle; ties on the cycle go to the
/// earliest lane, matching a cycle-by-cycle scan in lane order. With
/// `limit == None` the scan always lands: words past a bitmap's end are
/// free, so it terminates just past the busiest lane's frontier.
fn first_free_slot(
    busy_a: &[Vec<u64>],
    busy_b: &[Vec<u64>],
    base: usize,
    n_lanes: usize,
    start: u32,
    limit: Option<u32>,
) -> Option<(usize, u32)> {
    debug_assert!(n_lanes > 0, "slot scan on a cluster with no copy lanes");
    let mut t = start;
    loop {
        if limit.is_some_and(|l| t > l) {
            return None;
        }
        let w = (t / 64) as usize;
        let head = !0u64 << (t % 64);
        let mut best: Option<(u32, usize)> = None;
        for li in 0..n_lanes {
            let a = busy_a[base + li].get(w).copied().unwrap_or(0);
            let b = busy_b[base + li].get(w).copied().unwrap_or(0);
            let free = !(a | b) & head;
            if free != 0 {
                let cand = (w as u32) * 64 + free.trailing_zeros();
                if best.is_none_or(|(bt, _)| cand < bt) {
                    best = Some((cand, li));
                }
            }
        }
        if let Some((bt, li)) = best {
            return match limit {
                Some(l) if bt > l => None,
                _ => Some((li, bt)),
            };
        }
        t = (w as u32 + 1) * 64;
    }
}

/// Merges per-shard schedules into one schedule for `dag`.
///
/// `parts[k]` must be a schedule for `decomposition.shards()[k].dag()`
/// on the same `machine`.
///
/// # Errors
///
/// Returns [`SimError::NoTransferUnit`] if a boundary transfer must
/// depart a cluster with no copy-capable unit on a copy-based machine,
/// and propagates [`ScheduleBuilder::build`] errors.
///
/// # Panics
///
/// Panics if `parts` does not have exactly one schedule per shard.
pub fn stitch(
    dag: &Dag,
    machine: &Machine,
    decomposition: &Decomposition,
    parts: &[SpaceTimeSchedule],
) -> Result<StitchReport, SimError> {
    let shards = decomposition.shards();
    assert_eq!(parts.len(), shards.len(), "one schedule per shard required");

    /// Records that `g` is available on cluster `c` at cycle `t`,
    /// min-merging with any earlier arrival.
    fn note_avail(
        avail: &mut HashMap<(InstrId, u16), u32>,
        locs: &mut HashMap<InstrId, Vec<u16>>,
        g: InstrId,
        c: u16,
        t: u32,
    ) {
        use std::collections::hash_map::Entry;
        match avail.entry((g, c)) {
            Entry::Occupied(mut e) => {
                if t < *e.get() {
                    e.insert(t);
                }
            }
            Entry::Vacant(e) => {
                e.insert(t);
                locs.entry(g).or_default().push(c);
            }
        }
    }

    // Incoming cross edges per destination shard.
    let mut incoming: Vec<Vec<Edge>> = vec![Vec::new(); shards.len()];
    for &e in decomposition.cross_edges() {
        incoming[decomposition.shard_of(e.dst)].push(e);
    }
    // Producers whose value crosses a shard boundary.
    let cross_sources: HashSet<InstrId> =
        decomposition.cross_edges().iter().map(|e| e.src).collect();
    // Copy-capable issue slots per cluster, for boundary transfers.
    let copy_fus: Vec<Vec<usize>> = machine
        .cluster_ids()
        .map(|c| {
            machine
                .cluster(c)
                .fus()
                .iter()
                .enumerate()
                .filter(|(_, fu)| fu.can_execute(OpClass::Copy))
                .map(|(idx, _)| idx)
                .collect()
        })
        .collect();
    let register_mapped = machine.comm().register_mapped;

    // Flat indexing for per-copy-lane occupancy bitmaps: cluster `c`'s
    // copy lanes occupy `lane_base[c] .. lane_base[c + 1]`.
    let mut lane_base: Vec<usize> = Vec::with_capacity(copy_fus.len() + 1);
    lane_base.push(0);
    for lanes in &copy_fus {
        lane_base.push(lane_base.last().unwrap() + lanes.len());
    }
    // Committed copy-lane occupancy (one bit per cycle per lane), the
    // per-lane frontier (first cycle past every committed slot of that
    // lane), and value availability of cross-shard producers per
    // cluster. `locs` lists every cluster a value is known to reach
    // (sorted, for deterministic scans); the cycle it arrives there
    // lives in `avail`.
    let mut committed_busy: Vec<Vec<u64>> = vec![Vec::new(); *lane_base.last().unwrap()];
    let mut frontier: HashMap<(u16, usize), u32> = HashMap::new();
    let mut avail: HashMap<(InstrId, u16), u32> = HashMap::new();
    let mut locs: HashMap<InstrId, Vec<u16>> = HashMap::new();

    let mut builder = ScheduleBuilder::new(dag);
    let mut offsets = Vec::with_capacity(shards.len());
    let mut boundary_comms = 0usize;

    for (k, shard) in shards.iter().enumerate() {
        let part = &parts[k];
        // Plan the tightest deadlines first so the dedup by
        // (producer, destination cluster) serves them.
        incoming[k].sort_by_key(|e| {
            let local = decomposition.local_id(e.dst);
            (part.op(local).start, e.dst, e.src)
        });

        // Resource lower bound: every shard slot must clear the
        // committed frontier of its lane.
        let mut delta: u32 = 0;
        for op in part.ops() {
            if let Some(&f) = frontier.get(&(op.cluster.raw(), op.fu)) {
                delta = delta.max(f.saturating_sub(op.start.get()));
            }
        }
        for comm in part.comms() {
            if let Some(fu) = comm.fu {
                if let Some(&f) = frontier.get(&(comm.from.raw(), fu)) {
                    delta = delta.max(f.saturating_sub(comm.start.get()));
                }
            }
        }
        // Dependence lower bound: the earliest any cross-shard value
        // could reach its consumer's cluster from its best known
        // location.
        for e in &incoming[k] {
            let op = part.op(decomposition.local_id(e.dst));
            let need = locs[&e.src]
                .iter()
                .map(|&c| {
                    let loc = ClusterId::new(c);
                    avail[&(e.src, c)] + machine.comm_latency(loc, op.cluster)
                })
                .min()
                .expect("cross-shard producer committed before its consumers");
            delta = delta.max(need.saturating_sub(op.start.get()));
        }

        // Plan boundary transfers, raising `delta` until every deadline
        // is met. Each round plans the whole shard and accumulates the
        // *worst* deadline shortfall, which is a sound lower bound on
        // the required rise (it is measured against committed slots
        // only, never the shard's own cells, which shift with `delta`).
        // When the shard's own dense head is the blocker the shortfall
        // degenerates to 1, so a linear search would replan the whole
        // shard once per cycle of the final gap; instead the search
        // gallops (doubling the step while infeasible) and then binary
        // searches the untested range, committing the smallest `delta`
        // a round proves feasible — logarithmic replans in the gap with
        // the same fixpoint a cycle-by-cycle crawl reaches.
        let mut lo_bound = delta;
        let mut gallop: u32 = 0;
        let mut refine_hi: Option<u32> = None;
        // Two per-round occupancy overlays on top of `committed_busy`:
        // `round_busy` holds the shard's own cells (shifted by the
        // round's `delta`) plus transfers placed this round — what a
        // real placement must avoid. `claim_busy` holds placed plus
        // *projected* transfers only: misses measure their shortfall
        // against committed slots and this round's claims, never the
        // shard's own cells (those shift with `delta`, so counting them
        // would overshoot the rise by the length of the shard's packed
        // prefix), and each miss claims a distinct slot so the round's
        // shortfall prices copy-lane bandwidth, not just the first
        // free hole.
        let mut round_busy: Vec<Vec<u64>> = vec![Vec::new(); *lane_base.last().unwrap()];
        let mut claim_busy: Vec<Vec<u64>> = vec![Vec::new(); *lane_base.last().unwrap()];
        'place: loop {
            for words in round_busy.iter_mut().chain(claim_busy.iter_mut()) {
                words.clear();
            }
            let mut cells: HashSet<(u16, usize, u32)> =
                HashSet::with_capacity(part.ops().len() + part.comms().len());
            for op in part.ops() {
                let t = op.start.get() + delta;
                cells.insert((op.cluster.raw(), op.fu, t));
                if let Some(li) = copy_fus[op.cluster.index()]
                    .iter()
                    .position(|&f| f == op.fu)
                {
                    set_busy(&mut round_busy[lane_base[op.cluster.index()] + li], t);
                }
            }
            for comm in part.comms() {
                if let Some(fu) = comm.fu {
                    let t = comm.start.get() + delta;
                    cells.insert((comm.from.raw(), fu, t));
                    if let Some(li) = copy_fus[comm.from.index()].iter().position(|&f| f == fu) {
                        set_busy(&mut round_busy[lane_base[comm.from.index()] + li], t);
                    }
                }
            }
            let mut new_comms: Vec<(InstrId, ClusterId, ClusterId, u32, Option<usize>)> =
                Vec::new();
            let mut trial_avail: HashMap<(InstrId, u16), u32> = HashMap::new();
            let mut trial_locs: HashMap<InstrId, Vec<u16>> = HashMap::new();
            let mut shortfall: u32 = 0;
            for e in &incoming[k] {
                let op = part.op(decomposition.local_id(e.dst));
                let c_w = op.cluster;
                let deadline = op.start.get() + delta;
                let known = avail
                    .get(&(e.src, c_w.raw()))
                    .or_else(|| trial_avail.get(&(e.src, c_w.raw())));
                if let Some(&t) = known {
                    shortfall = shortfall.max(t.saturating_sub(deadline));
                    continue;
                }
                // Source the transfer from whichever known location —
                // committed or planned this round — reaches `c_w`
                // first (ties broken by cluster id).
                let mut sources: Vec<(u32, u16, u32)> = locs
                    .get(&e.src)
                    .into_iter()
                    .flatten()
                    .map(|&c| (avail[&(e.src, c)], c))
                    .chain(
                        trial_locs
                            .get(&e.src)
                            .into_iter()
                            .flatten()
                            .map(|&c| (trial_avail[&(e.src, c)], c)),
                    )
                    .map(|(t, c)| (t + machine.comm_latency(ClusterId::new(c), c_w), c, t))
                    .collect();
                sources.sort_unstable();
                let first = *sources
                    .first()
                    .expect("cross-shard producer committed before its consumers");
                // Copy-based transfers must depart a cluster with a
                // copy-capable lane; fall back past locations that
                // have none.
                let (_, c_u_raw, ready) = if register_mapped {
                    first
                } else {
                    *sources
                        .iter()
                        .find(|&&(_, c, _)| !copy_fus[usize::from(c)].is_empty())
                        .ok_or(SimError::NoTransferUnit {
                            cluster: ClusterId::new(first.1),
                        })?
                };
                let c_u = ClusterId::new(c_u_raw);
                let lat = machine.comm_latency(c_u, c_w);
                if register_mapped {
                    // Register-mapped networks: the transfer occupies
                    // no issue slot; inject as soon as the value is
                    // produced.
                    let arrival = ready + lat;
                    shortfall = shortfall.max(arrival.saturating_sub(deadline));
                    new_comms.push((e.src, c_u, c_w, ready, None));
                    trial_avail.insert((e.src, c_w.raw()), arrival);
                    trial_locs.entry(e.src).or_default().push(c_w.raw());
                } else {
                    // Earliest free copy slot no later than the
                    // deadline; scanning past it is pointless, the
                    // transfer would miss anyway.
                    let lanes = &copy_fus[c_u.index()];
                    let base = lane_base[c_u.index()];
                    let found = deadline.checked_sub(lat).and_then(|lim| {
                        first_free_slot(
                            &committed_busy,
                            &round_busy,
                            base,
                            lanes.len(),
                            ready,
                            Some(lim),
                        )
                    });
                    if let Some((li, t)) = found {
                        let fu = lanes[li];
                        cells.insert((c_u.raw(), fu, t));
                        set_busy(&mut round_busy[base + li], t);
                        set_busy(&mut claim_busy[base + li], t);
                        new_comms.push((e.src, c_u, c_w, t, Some(fu)));
                        trial_avail.insert((e.src, c_w.raw()), t + lat);
                        trial_locs.entry(e.src).or_default().push(c_w.raw());
                    } else {
                        // No slot meets the deadline this round:
                        // project the transfer onto the earliest slot
                        // free of committed cells and of this round's
                        // other claims, and let the resulting shortfall
                        // drive the search. A miss whose projection
                        // already meets the deadline (pure own-cell
                        // interference) still forces a rise of one, so
                        // every round makes progress.
                        let (li2, t2) = first_free_slot(
                            &committed_busy,
                            &claim_busy,
                            base,
                            lanes.len(),
                            ready,
                            None,
                        )
                        .expect("unbounded slot scan lands past the lane frontier");
                        set_busy(&mut claim_busy[base + li2], t2);
                        shortfall = shortfall.max((t2 + lat).saturating_sub(deadline).max(1));
                        trial_avail.insert((e.src, c_w.raw()), t2 + lat);
                        trial_locs.entry(e.src).or_default().push(c_w.raw());
                    }
                }
            }
            if shortfall > 0 {
                lo_bound = lo_bound.max(delta + shortfall);
                delta = match refine_hi {
                    // Mid-point infeasible: halve the untested range,
                    // or fall back to the known-feasible top when the
                    // lower bound catches up to it.
                    Some(hi) if lo_bound >= hi => {
                        refine_hi = None;
                        hi
                    }
                    Some(hi) => lo_bound + (hi - lo_bound) / 2,
                    None => {
                        gallop = gallop.saturating_mul(2).max(1);
                        lo_bound + (gallop - 1)
                    }
                };
                continue 'place;
            }
            if delta > lo_bound {
                // Feasible, but the gallop may have overshot the
                // smallest workable offset: binary-search down to it.
                refine_hi = Some(delta);
                delta = lo_bound + (delta - lo_bound) / 2;
                continue 'place;
            }

            // Commit the shard at this offset.
            for &(c, fu, t) in &cells {
                let lane = frontier.entry((c, fu)).or_insert(0);
                *lane = (*lane).max(t + 1);
                if let Some(li) = copy_fus[usize::from(c)].iter().position(|&f| f == fu) {
                    set_busy(&mut committed_busy[lane_base[usize::from(c)] + li], t);
                }
            }
            for op in part.ops() {
                let g = shard.global_id(op.instr);
                builder.place(g, op.cluster, op.fu, Cycle::new(op.start.get() + delta));
                if cross_sources.contains(&g) {
                    let finish =
                        op.start.get() + delta + effective_latency_in(dag, machine, g, op.cluster);
                    note_avail(&mut avail, &mut locs, g, op.cluster.raw(), finish);
                }
            }
            for comm in part.comms() {
                let g = shard.global_id(comm.producer);
                builder.comm(
                    g,
                    comm.from,
                    comm.to,
                    Cycle::new(comm.start.get() + delta),
                    comm.fu,
                );
                if cross_sources.contains(&g) {
                    let arrival = comm.start.get() + delta + comm.latency;
                    note_avail(&mut avail, &mut locs, g, comm.to.raw(), arrival);
                }
            }
            for (producer, from, to, start, fu) in new_comms {
                builder.comm(producer, from, to, Cycle::new(start), fu);
                boundary_comms += 1;
                let arrival = start + machine.comm_latency(from, to);
                note_avail(&mut avail, &mut locs, producer, to.raw(), arrival);
            }
            offsets.push(delta);
            break;
        }
    }

    let schedule = builder.build(machine)?;
    Ok(StitchReport {
        schedule,
        offsets,
        boundary_comms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use convergent_ir::{decompose, DagBuilder, Opcode};

    /// Schedules a shard the dumbest legal way: everything on cluster 0
    /// back to back (single-cluster, no comms).
    fn serial_schedule(dag: &Dag, machine: &Machine) -> SpaceTimeSchedule {
        let mut sb = ScheduleBuilder::new(dag);
        let mut t = 0u32;
        for &i in dag.topo_order() {
            let c = ClusterId::new(0);
            let class = dag.instr(i).class();
            let fu = machine
                .cluster(c)
                .fus()
                .iter()
                .position(|f| f.can_execute(class))
                .expect("cluster 0 executes everything in these tests");
            sb.place(i, c, fu, Cycle::new(t));
            t += effective_latency_in(dag, machine, i, c).max(1);
        }
        sb.build(machine).unwrap()
    }

    fn two_chains() -> Dag {
        let mut b = DagBuilder::new();
        for _ in 0..2 {
            let a = b.instr(Opcode::IntAlu);
            let c = b.instr(Opcode::IntAlu);
            b.edge(a, c).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn disjoint_shards_stitch_and_validate() {
        let dag = two_chains();
        let m = Machine::chorus_vliw(2);
        let dec = decompose(&dag, 2);
        assert_eq!(dec.shards().len(), 2);
        let parts: Vec<SpaceTimeSchedule> = dec
            .shards()
            .iter()
            .map(|s| serial_schedule(s.dag(), &m))
            .collect();
        let report = stitch(&dag, &m, &dec, &parts).unwrap();
        validate(&dag, &m, &report.schedule).unwrap();
        assert_eq!(report.offsets.len(), 2);
        assert_eq!(report.offsets[0], 0);
        // Both shards used the same lane, so the second is pushed past
        // the first.
        assert!(report.offsets[1] > 0);
        assert_eq!(report.boundary_comms, 0);
    }

    #[test]
    fn cross_shard_edges_get_boundary_comms_on_vliw() {
        // A giant chain cut at an articulation vertex plus dust, so the
        // decomposition produces cross edges.
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 1..9 {
            let next = b.instr(Opcode::IntAlu);
            b.edge(prev, next).unwrap();
            prev = next;
        }
        let d1 = b.instr(Opcode::Load);
        let d2 = b.instr(Opcode::Store);
        b.edge(d1, d2).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let dec = decompose(&dag, 8);
        assert!(!dec.cross_edges().is_empty());
        let parts: Vec<SpaceTimeSchedule> = dec
            .shards()
            .iter()
            .map(|s| serial_schedule(s.dag(), &m))
            .collect();
        let report = stitch(&dag, &m, &dec, &parts).unwrap();
        validate(&dag, &m, &report.schedule).unwrap();
        // All shard pieces run on cluster 0, so cross-shard values
        // never change cluster: the fix-up only needs time offsets.
        assert_eq!(report.boundary_comms, 0);
    }

    #[test]
    fn boundary_comm_inserted_when_consumer_moves_cluster() {
        // Chain cut into two shards; schedule the second shard on
        // cluster 1 to force a transfer.
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 1..7 {
            let next = b.instr(Opcode::IntAlu);
            b.edge(prev, next).unwrap();
            prev = next;
        }
        let d1 = b.instr(Opcode::Load);
        let d2 = b.instr(Opcode::Store);
        b.edge(d1, d2).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let dec = decompose(&dag, 8);
        assert!(dec.shards().len() >= 3);
        assert!(!dec.cross_edges().is_empty());
        let last_chain_shard = decomposition_last_chain(&dec);
        let parts: Vec<SpaceTimeSchedule> = dec
            .shards()
            .iter()
            .enumerate()
            .map(|(k, s)| {
                if k == last_chain_shard {
                    // Everything on cluster 1.
                    let mut sb = ScheduleBuilder::new(s.dag());
                    let mut t = 0u32;
                    for &i in s.dag().topo_order() {
                        let c = ClusterId::new(1);
                        sb.place(i, c, 0, Cycle::new(t));
                        t += effective_latency_in(s.dag(), &m, i, c).max(1);
                    }
                    sb.build(&m).unwrap()
                } else {
                    serial_schedule(s.dag(), &m)
                }
            })
            .collect();
        let report = stitch(&dag, &m, &dec, &parts).unwrap();
        validate(&dag, &m, &report.schedule).unwrap();
        assert!(report.boundary_comms >= 1);
        // The inserted transfer occupies a copy-capable slot.
        let inserted = report
            .schedule
            .comms()
            .iter()
            .find(|c| c.to == ClusterId::new(1))
            .expect("a transfer into cluster 1 exists");
        let fu = inserted.fu.expect("vliw transfers occupy a slot");
        assert!(m.cluster(inserted.from).fus()[fu].can_execute(OpClass::Copy));
    }

    /// Index of the shard holding the chain's final instruction (the
    /// downstream piece of the articulation cut).
    fn decomposition_last_chain(dec: &Decomposition) -> usize {
        let mut best = (0, InstrId::new(0));
        for (k, s) in dec.shards().iter().enumerate() {
            for &g in s.to_global() {
                // The chain occupies ids 0..7; the dust 7..9.
                if g.index() < 7 && g >= best.1 {
                    best = (k, g);
                }
            }
        }
        best.0
    }

    #[test]
    fn boundary_transfer_relays_from_nearest_known_location() {
        // A line mesh where multi-hop latency is superadditive (1 to a
        // neighbour, +4 per extra hop): going 0 → 2 directly costs 5,
        // but hopping through a value already copied to tile 1 costs
        // 1 + 1. The fix-up must depart tile 1, not the producer's
        // tile 0.
        use convergent_machine::{Cluster, CommModel, LatencyTable, MemoryModel, Topology};
        let m = Machine::new(
            "relay-line-3",
            (0..3).map(|_| Cluster::raw_tile()).collect(),
            Topology::Mesh {
                width: 3,
                height: 1,
            },
            CommModel {
                base_latency: 1,
                per_hop: 4,
                register_mapped: true,
            },
            LatencyTable::r4000(),
            MemoryModel::raw(),
        );
        // Giant chain plus dust so decompose cuts the chain.
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 1..9 {
            let next = b.instr(Opcode::IntAlu);
            b.edge(prev, next).unwrap();
            prev = next;
        }
        let d1 = b.instr(Opcode::Load);
        let d2 = b.instr(Opcode::Store);
        b.edge(d1, d2).unwrap();
        let dag = b.build().unwrap();
        let dec = decompose(&dag, 8);
        // The chain is cut at articulation vertex 4: pieces {0..3},
        // {4}, {5..8}. Route the downstream edge 4 → 5.
        let cross = *dec
            .cross_edges()
            .iter()
            .max_by_key(|e| e.dst)
            .expect("the chain cut produces cross edges");
        let k_src = dec.shard_of(cross.src);
        let k_dst = dec.shard_of(cross.dst);
        let parts: Vec<SpaceTimeSchedule> = dec
            .shards()
            .iter()
            .enumerate()
            .map(|(k, s)| {
                let cluster = if k == k_dst {
                    ClusterId::new(2)
                } else {
                    ClusterId::new(0)
                };
                let mut sb = ScheduleBuilder::new(s.dag());
                let mut t = 0u32;
                for &i in s.dag().topo_order() {
                    sb.place(i, cluster, 0, Cycle::new(t));
                    let finish = t + effective_latency_in(s.dag(), &m, i, cluster);
                    if k == k_src && s.global_id(i) == cross.src {
                        // Shard-internal copy: the boundary value also
                        // reaches tile 1 right after it is produced.
                        sb.comm(i, cluster, ClusterId::new(1), Cycle::new(finish), None);
                    }
                    t += (finish - t).max(1);
                }
                sb.build(&m).unwrap()
            })
            .collect();
        let report = stitch(&dag, &m, &dec, &parts).unwrap();
        validate(&dag, &m, &report.schedule).unwrap();
        assert_eq!(report.boundary_comms, 1);
        let inserted = report
            .schedule
            .comms()
            .iter()
            .find(|c| c.to == ClusterId::new(2))
            .expect("a transfer into tile 2 exists");
        assert_eq!(
            inserted.from,
            ClusterId::new(1),
            "relay beats the direct hop"
        );
    }

    #[test]
    fn register_mapped_machines_use_free_transfers() {
        let mut b = DagBuilder::new();
        // Two preplaced chains on different tiles plus a cross link
        // after the cut... simpler: two components, then check raw
        // stitching validates.
        for tile in 0..2u16 {
            let a = b.preplaced_instr(Opcode::Load, ClusterId::new(tile));
            let c = b.preplaced_instr(Opcode::Store, ClusterId::new(tile));
            b.edge(a, c).unwrap();
        }
        let dag = b.build().unwrap();
        let m = Machine::raw(2);
        let dec = decompose(&dag, 2);
        let parts: Vec<SpaceTimeSchedule> = dec
            .shards()
            .iter()
            .map(|s| {
                let mut sb = ScheduleBuilder::new(s.dag());
                let mut t = 0u32;
                for &i in s.dag().topo_order() {
                    let c = s.dag().instr(i).preplacement().unwrap();
                    sb.place(i, c, 0, Cycle::new(t));
                    t += effective_latency_in(s.dag(), &m, i, c).max(1);
                }
                sb.build(&m).unwrap()
            })
            .collect();
        let report = stitch(&dag, &m, &dec, &parts).unwrap();
        validate(&dag, &m, &report.schedule).unwrap();
    }

    #[test]
    fn trivial_decomposition_preserves_the_part() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let c = b.instr(Opcode::IntAlu);
        b.edge(a, c).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let dec = decompose(&dag, 4);
        assert!(dec.is_trivial());
        let part = serial_schedule(dec.shards()[0].dag(), &m);
        let report = stitch(&dag, &m, &dec, std::slice::from_ref(&part)).unwrap();
        assert_eq!(report.schedule, part);
        assert_eq!(report.offsets, vec![0]);
    }
}
