//! Property tests over random dependence graphs: every scheduler must
//! produce validated schedules whose makespans sit between the
//! critical-path lower bound and the fully-serial upper bound.

use convergent_scheduling::core::ConvergentScheduler;
use convergent_scheduling::ir::TimeAnalysis;
use convergent_scheduling::machine::Machine;
use convergent_scheduling::schedulers::{
    BugScheduler, PccScheduler, RawccScheduler, Scheduler, UasScheduler,
};
use convergent_scheduling::sim::{evaluate, validate};
use convergent_scheduling::workloads::{layered, parallel_chains, series_parallel, LayeredParams};
use proptest::prelude::*;

fn check_all(unit: &convergent_scheduling::ir::SchedulingUnit, machine: &Machine) {
    let dag = unit.dag();
    let time = TimeAnalysis::compute(dag, |i| machine.latency_of(i));
    // Upper bound: strictly serial execution plus a transfer per edge
    // plus the live-in fetches the machine may charge.
    let serial: u32 = dag.instrs().iter().map(|i| machine.latency_of(i)).sum();
    let max_comm = (0..machine.n_clusters() as u16)
        .map(|c| {
            machine.comm_latency(
                convergent_scheduling::ir::ClusterId::new(0),
                convergent_scheduling::ir::ClusterId::new(c),
            )
        })
        .max()
        .unwrap_or(0);
    let upper = serial + (dag.edge_count() as u32 + dag.len() as u32) * (max_comm + 1);

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(UasScheduler::new()),
        Box::new(PccScheduler::new().with_max_rounds(1)),
        Box::new(RawccScheduler::new()),
        Box::new(BugScheduler::new()),
        Box::new(ConvergentScheduler::raw_default()),
        Box::new(ConvergentScheduler::vliw_tuned()),
    ];
    for sched in schedulers {
        let s = sched
            .schedule(dag, machine)
            .unwrap_or_else(|e| panic!("{}: {e}", sched.name()));
        validate(dag, machine, &s).unwrap_or_else(|e| panic!("{}: {e}", sched.name()));
        // The cycle-level execution also respects the dependence
        // height, with or without contention.
        let executed = evaluate(dag, machine, &s)
            .unwrap_or_else(|e| panic!("{}: {e}", sched.name()))
            .makespan
            .get();
        assert!(
            executed >= time.critical_path_length(),
            "{}: executed {executed} below CPL {}",
            sched.name(),
            time.critical_path_length()
        );
        let ms = s.makespan().get();
        assert!(
            ms >= time.critical_path_length(),
            "{}: makespan {ms} below CPL {}",
            sched.name(),
            time.critical_path_length()
        );
        assert!(
            ms <= upper,
            "{}: makespan {ms} above serial bound {upper}",
            sched.name()
        );
        if machine.memory().preplacement_is_hard() {
            assert!(
                s.assignment().respects_preplacement(dag),
                "{} broke preplacement",
                sched.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn layered_dags_schedule_on_raw(
        n in 10usize..120,
        width in 2usize..12,
        seed in any::<u64>(),
        pre in 0.0f64..0.8,
    ) {
        let unit = layered(
            LayeredParams::new(n, seed)
                .with_width(width)
                .with_preplacement(pre, 4),
        );
        check_all(&unit, &Machine::raw(4));
    }

    #[test]
    fn layered_dags_schedule_on_vliw(
        n in 10usize..120,
        width in 2usize..12,
        seed in any::<u64>(),
        pre in 0.0f64..0.8,
    ) {
        let unit = layered(
            LayeredParams::new(n, seed)
                .with_width(width)
                .with_preplacement(pre, 4),
        );
        check_all(&unit, &Machine::chorus_vliw(4));
    }

    #[test]
    fn series_parallel_dags_schedule(n in 5usize..80, seed in any::<u64>()) {
        let unit = series_parallel(n, seed);
        check_all(&unit, &Machine::raw(4));
        check_all(&unit, &Machine::chorus_vliw(2));
    }

    #[test]
    fn chains_reach_near_ideal_spatial_speedup(k in 2usize..5, len in 3usize..10) {
        // k independent chains on k tiles: the Rawcc baseline must cut
        // zero edges and the makespan must be (near) one chain's length.
        let unit = parallel_chains(k, len);
        let machine = Machine::raw(k as u16);
        let s = RawccScheduler::new().schedule(unit.dag(), &machine).unwrap();
        validate(unit.dag(), &machine, &s).unwrap();
        prop_assert_eq!(s.assignment().cut_edges(unit.dag()), 0);
        prop_assert_eq!(s.makespan().get(), len as u32);
    }
}
