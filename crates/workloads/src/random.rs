//! Random DAG families.
//!
//! Used for the compile-time scalability study (the paper's Figure 10
//! sweeps scheduling-region size up to ~2000 instructions), for
//! property-based testing, and for ablations. All generators are
//! deterministic given their seed.

use convergent_ir::{ClusterId, DagBuilder, Instruction, Opcode, SchedulingUnit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`layered`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayeredParams {
    /// Total instructions.
    pub n_instrs: usize,
    /// Average instructions per level.
    pub avg_width: usize,
    /// Maximum predecessors drawn for each non-root instruction.
    pub max_fanin: usize,
    /// Fraction of memory operations preplaced on a random bank.
    pub preplaced_fraction: f64,
    /// Banks used for preplacement.
    pub n_banks: u16,
    /// RNG seed.
    pub seed: u64,
}

impl LayeredParams {
    /// A mid-sized mixed graph.
    #[must_use]
    pub fn new(n_instrs: usize, seed: u64) -> Self {
        LayeredParams {
            n_instrs,
            avg_width: 8,
            max_fanin: 3,
            preplaced_fraction: 0.0,
            n_banks: 4,
            seed,
        }
    }

    /// Sets the average layer width (bigger = fatter graph).
    #[must_use]
    pub fn with_width(mut self, w: usize) -> Self {
        self.avg_width = w.max(1);
        self
    }

    /// Sets the preplaced fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= f <= 1.0`.
    #[must_use]
    pub fn with_preplacement(mut self, f: f64, n_banks: u16) -> Self {
        assert!((0.0..=1.0).contains(&f), "fraction in [0,1]");
        self.preplaced_fraction = f;
        self.n_banks = n_banks.max(1);
        self
    }
}

/// A layered random DAG: instructions are dealt into levels of noisy
/// width; each instruction draws 1–`max_fanin` predecessors from the
/// two levels above. Opcode mix is ~60% int ALU, 15% FP, 20% memory,
/// 5% multiplies — a generic "compiled code" profile.
#[must_use]
pub fn layered(params: LayeredParams) -> SchedulingUnit {
    assert!(params.n_instrs > 0, "need at least one instruction");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = DagBuilder::with_capacity(params.n_instrs);
    let mut levels: Vec<Vec<convergent_ir::InstrId>> = vec![Vec::new()];
    let mut placed = 0usize;
    while placed < params.n_instrs {
        let width = rng.gen_range(1..=params.avg_width * 2);
        let width = width.min(params.n_instrs - placed);
        let mut level = Vec::with_capacity(width);
        for _ in 0..width {
            let opcode = match rng.gen_range(0..100) {
                0..=59 => Opcode::IntAlu,
                60..=69 => Opcode::FAdd,
                70..=74 => Opcode::FMul,
                75..=84 => Opcode::Load,
                85..=94 => Opcode::Store,
                95..=97 => Opcode::IntMul,
                _ => Opcode::Shift,
            };
            let id = if opcode.is_memory() && rng.gen_bool(params.preplaced_fraction) {
                let bank = ClusterId::new(rng.gen_range(0..params.n_banks));
                b.push(Instruction::preplaced(opcode, bank))
            } else {
                b.push(Instruction::new(opcode))
            };
            // Wire to earlier levels.
            let depth = levels.len();
            if depth > 1 || !levels[0].is_empty() {
                let fanin = rng.gen_range(1..=params.max_fanin);
                for _ in 0..fanin {
                    let lvl = if depth >= 2 && rng.gen_bool(0.3) {
                        &levels[depth - 2]
                    } else {
                        &levels[depth - 1]
                    };
                    if let Some(&src) = pick(&mut rng, lvl) {
                        let _ = b.edge_dedup(src, id);
                    }
                }
            }
            level.push(id);
            placed += 1;
        }
        levels.push(level);
    }
    SchedulingUnit::new(
        format!("layered-{}", params.n_instrs),
        b.build().expect("layered graphs are DAGs"),
    )
}

fn pick<'a, T>(rng: &mut StdRng, slice: &'a [T]) -> Option<&'a T> {
    if slice.is_empty() {
        None
    } else {
        Some(&slice[rng.gen_range(0..slice.len())])
    }
}

/// `k` independent chains of `len` single-cycle instructions — the
/// textbook best case for spatial distribution.
#[must_use]
pub fn parallel_chains(k: usize, len: usize) -> SchedulingUnit {
    assert!(k > 0 && len > 0, "need at least one chain of one op");
    let mut b = DagBuilder::with_capacity(k * len);
    for _ in 0..k {
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 1..len {
            let next = b.instr(Opcode::IntAlu);
            b.edge(prev, next).expect("fresh ids");
            prev = next;
        }
    }
    SchedulingUnit::new(
        format!("chains-{k}x{len}"),
        b.build().expect("chains are DAGs"),
    )
}

/// A fork-join (series-parallel) DAG built by recursive composition:
/// useful for testing because its optimal structure is understood.
#[must_use]
pub fn series_parallel(n_instrs: usize, seed: u64) -> SchedulingUnit {
    assert!(n_instrs > 0, "need at least one instruction");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DagBuilder::with_capacity(n_instrs + 2);
    let budget = n_instrs;
    let (first, last) = build_sp(&mut b, &mut rng, budget);
    let _ = (first, last);
    SchedulingUnit::new(
        format!("sp-{n_instrs}"),
        b.build().expect("series-parallel graphs are DAGs"),
    )
}

/// Builds a series-parallel block of roughly `budget` instructions and
/// returns its (entry, exit) instructions.
fn build_sp(
    b: &mut DagBuilder,
    rng: &mut StdRng,
    budget: usize,
) -> (convergent_ir::InstrId, convergent_ir::InstrId) {
    if budget <= 2 {
        let x = b.instr(Opcode::IntAlu);
        if budget == 2 {
            let y = b.instr(Opcode::FAdd);
            b.edge(x, y).expect("fresh ids");
            (x, y)
        } else {
            (x, x)
        }
    } else if rng.gen_bool(0.5) {
        // Series: A then B.
        let split = rng.gen_range(1..budget);
        let (a_in, a_out) = build_sp(b, rng, split);
        let (b_in, b_out) = build_sp(b, rng, budget - split);
        b.edge(a_out, b_in).expect("fresh ids");
        (a_in, b_out)
    } else {
        // Parallel: fork into 2-3 branches, then join.
        let branches = rng
            .gen_range(2..=3usize)
            .min(budget.saturating_sub(2).max(2));
        let fork = b.instr(Opcode::IntAlu);
        let join = b.instr(Opcode::IntAlu);
        let inner = budget.saturating_sub(2).max(branches);
        let per = (inner / branches).max(1);
        for _ in 0..branches {
            let (c_in, c_out) = build_sp(b, rng, per);
            b.edge(fork, c_in).expect("fresh ids");
            b.edge(c_out, join).expect("fresh ids");
        }
        (fork, join)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::ShapeStats;

    #[test]
    fn layered_hits_requested_size() {
        for n in [10, 100, 500] {
            let unit = layered(LayeredParams::new(n, 1));
            assert_eq!(unit.dag().len(), n);
        }
    }

    #[test]
    fn layered_is_deterministic_per_seed() {
        let a = layered(LayeredParams::new(200, 5));
        let b = layered(LayeredParams::new(200, 5));
        assert_eq!(a.dag().edge_count(), b.dag().edge_count());
        let c = layered(LayeredParams::new(200, 6));
        // Overwhelmingly likely to differ.
        assert_ne!(a.dag().edge_count(), c.dag().edge_count());
    }

    #[test]
    fn layered_preplacement_fraction_applies() {
        let unit = layered(LayeredParams::new(400, 2).with_preplacement(1.0, 4));
        let mem = unit
            .dag()
            .instrs()
            .iter()
            .filter(|i| i.opcode().is_memory())
            .count();
        assert_eq!(unit.dag().preplaced_count(), mem);
        assert!(mem > 0);
    }

    #[test]
    fn width_controls_shape() {
        let narrow = layered(LayeredParams::new(300, 3).with_width(2));
        let fat = layered(LayeredParams::new(300, 3).with_width(24));
        let sn = ShapeStats::compute(narrow.dag(), |_| 1);
        let sf = ShapeStats::compute(fat.dag(), |_| 1);
        assert!(sf.avg_parallelism() > sn.avg_parallelism());
    }

    #[test]
    fn chains_shape() {
        let unit = parallel_chains(4, 10);
        let s = ShapeStats::compute(unit.dag(), |_| 1);
        assert_eq!(s.instr_count(), 40);
        assert_eq!(s.height(), 10);
        assert_eq!(s.max_width(), 4);
    }

    #[test]
    fn series_parallel_is_connected_dag() {
        let unit = series_parallel(100, 9);
        // One weakly connected component: every instruction reachable
        // from the entry in the undirected sense.
        let mut oracle = convergent_ir::DistanceOracle::new();
        let d = oracle.distances_from(unit.dag(), convergent_ir::InstrId::new(0));
        assert!(d.iter().all(|&x| x != convergent_ir::UNREACHABLE));
    }
}
