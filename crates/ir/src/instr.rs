//! Instructions and operation classification.
//!
//! The schedulers never interpret instruction *semantics*; they only need
//! to know which functional unit an operation occupies, how long it takes
//! (both supplied by the machine model, keyed on [`OpClass`]), and whether
//! it is *preplaced* — pinned to a specific cluster for correctness, as
//! produced by the congruence analysis described in Section 5 of the
//! paper.

use std::fmt;

use crate::ClusterId;

/// Concrete operation of an instruction.
///
/// The set mirrors the MIPS R4000-flavoured ISA both evaluation platforms
/// of the paper use, plus the pseudo-ops the schedulers themselves insert
/// ([`Opcode::Copy`] for inter-cluster register transfers on a clustered
/// VLIW, [`Opcode::Send`]/[`Opcode::Recv`] for Raw's static network).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Integer add/subtract/compare.
    IntAlu,
    /// Integer shift.
    Shift,
    /// Bitwise logic (and/or/xor/not).
    Logic,
    /// Integer multiply.
    IntMul,
    /// Integer divide/modulo.
    IntDiv,
    /// Load from memory.
    Load,
    /// Store to memory.
    Store,
    /// Floating-point add/subtract/compare.
    FAdd,
    /// Floating-point multiply.
    FMul,
    /// Floating-point divide.
    FDiv,
    /// Floating-point square root.
    FSqrt,
    /// Materialize a constant.
    Const,
    /// Conditional or unconditional branch.
    Branch,
    /// Inter-cluster register copy (inserted by schedulers on VLIW).
    Copy,
    /// Inject a value into the static network (inserted on Raw).
    Send,
    /// Consume a value from the static network (inserted on Raw).
    Recv,
}

impl Opcode {
    /// Returns the coarse [`OpClass`] used for latency and
    /// functional-unit lookup in machine models.
    #[must_use]
    pub const fn class(self) -> OpClass {
        match self {
            Opcode::IntAlu | Opcode::Shift | Opcode::Logic | Opcode::Const => OpClass::IntAlu,
            Opcode::IntMul => OpClass::IntMul,
            Opcode::IntDiv => OpClass::IntDiv,
            Opcode::Load => OpClass::Load,
            Opcode::Store => OpClass::Store,
            Opcode::FAdd => OpClass::FAdd,
            Opcode::FMul => OpClass::FMul,
            Opcode::FDiv | Opcode::FSqrt => OpClass::FDiv,
            Opcode::Branch => OpClass::Branch,
            Opcode::Copy => OpClass::Copy,
            Opcode::Send => OpClass::Send,
            Opcode::Recv => OpClass::Recv,
        }
    }

    /// Returns `true` for loads and stores, the opcodes that congruence
    /// analysis may preplace on a specific memory bank.
    #[must_use]
    pub const fn is_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Returns `true` for the pseudo-ops inserted by schedulers rather
    /// than present in input programs.
    #[must_use]
    pub const fn is_communication(self) -> bool {
        matches!(self, Opcode::Copy | Opcode::Send | Opcode::Recv)
    }

    /// Returns `true` for floating-point arithmetic.
    #[must_use]
    pub const fn is_float(self) -> bool {
        matches!(
            self,
            Opcode::FAdd | Opcode::FMul | Opcode::FDiv | Opcode::FSqrt
        )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::IntAlu => "add",
            Opcode::Shift => "sll",
            Opcode::Logic => "and",
            Opcode::IntMul => "mul",
            Opcode::IntDiv => "div",
            Opcode::Load => "lw",
            Opcode::Store => "sw",
            Opcode::FAdd => "fadd",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
            Opcode::FSqrt => "fsqrt",
            Opcode::Const => "li",
            Opcode::Branch => "br",
            Opcode::Copy => "copy",
            Opcode::Send => "send",
            Opcode::Recv => "recv",
        };
        f.write_str(s)
    }
}

/// Coarse operation class: the key machine models use to report latency
/// and functional-unit requirements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Single-cycle integer ALU work (add, shift, logic, constants).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// FP add/subtract/compare.
    FAdd,
    /// FP multiply.
    FMul,
    /// FP divide/sqrt.
    FDiv,
    /// Control transfer.
    Branch,
    /// Inter-cluster register copy.
    Copy,
    /// Static-network send.
    Send,
    /// Static-network receive.
    Recv,
}

impl OpClass {
    /// All operation classes, for exhaustive latency tables.
    pub const ALL: [OpClass; 12] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::FAdd,
        OpClass::FMul,
        OpClass::FDiv,
        OpClass::Branch,
        OpClass::Copy,
        OpClass::Send,
        OpClass::Recv,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// One instruction of a scheduling unit.
///
/// Instructions are created through [`crate::DagBuilder`], which assigns
/// dense ids. The optional *preplacement* pins the instruction to a home
/// cluster; the paper treats honoring it as a correctness requirement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instruction {
    opcode: Opcode,
    preplacement: Option<ClusterId>,
    name: Option<String>,
}

impl Instruction {
    /// Creates an ordinary (non-preplaced, unnamed) instruction.
    #[must_use]
    pub const fn new(opcode: Opcode) -> Self {
        Instruction {
            opcode,
            preplacement: None,
            name: None,
        }
    }

    /// Creates an instruction pinned to `home` — a *preplaced*
    /// instruction in the paper's terminology.
    #[must_use]
    pub const fn preplaced(opcode: Opcode, home: ClusterId) -> Self {
        Instruction {
            opcode,
            preplacement: Some(home),
            name: None,
        }
    }

    /// Attaches a debug name (shown in DOT dumps and error messages).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Returns the opcode.
    #[must_use]
    pub const fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// Returns the operation class (shorthand for `opcode().class()`).
    #[must_use]
    pub const fn class(&self) -> OpClass {
        self.opcode.class()
    }

    /// Returns the home cluster if this instruction is preplaced.
    #[must_use]
    pub const fn preplacement(&self) -> Option<ClusterId> {
        self.preplacement
    }

    /// Returns `true` if this instruction is preplaced.
    #[must_use]
    pub const fn is_preplaced(&self) -> bool {
        self.preplacement.is_some()
    }

    /// Returns the debug name, if one was attached.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name, self.preplacement) {
            (Some(n), Some(c)) => write!(f, "{} [{}@{}]", self.opcode, n, c),
            (Some(n), None) => write!(f, "{} [{}]", self.opcode, n),
            (None, Some(c)) => write!(f, "{} [@{}]", self.opcode, c),
            (None, None) => write!(f, "{}", self.opcode),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_classes_are_consistent() {
        assert_eq!(Opcode::IntAlu.class(), OpClass::IntAlu);
        assert_eq!(Opcode::Shift.class(), OpClass::IntAlu);
        assert_eq!(Opcode::Const.class(), OpClass::IntAlu);
        assert_eq!(Opcode::FSqrt.class(), OpClass::FDiv);
        assert_eq!(Opcode::Load.class(), OpClass::Load);
    }

    #[test]
    fn memory_and_comm_predicates() {
        assert!(Opcode::Load.is_memory());
        assert!(Opcode::Store.is_memory());
        assert!(!Opcode::IntAlu.is_memory());
        assert!(Opcode::Copy.is_communication());
        assert!(Opcode::Send.is_communication());
        assert!(Opcode::Recv.is_communication());
        assert!(!Opcode::Load.is_communication());
        assert!(Opcode::FMul.is_float());
        assert!(!Opcode::IntMul.is_float());
    }

    #[test]
    fn instruction_preplacement() {
        let i = Instruction::new(Opcode::Load);
        assert!(!i.is_preplaced());
        let p = Instruction::preplaced(Opcode::Load, ClusterId::new(2));
        assert_eq!(p.preplacement(), Some(ClusterId::new(2)));
        assert!(p.is_preplaced());
    }

    #[test]
    fn instruction_display() {
        let i = Instruction::preplaced(Opcode::Load, ClusterId::new(1)).with_name("a[i]");
        assert_eq!(i.to_string(), "lw [a[i]@c1]");
        assert_eq!(Instruction::new(Opcode::FMul).to_string(), "fmul");
    }

    #[test]
    fn all_opclasses_listed() {
        // Every opcode's class must appear in OpClass::ALL.
        for op in [
            Opcode::IntAlu,
            Opcode::Shift,
            Opcode::Logic,
            Opcode::IntMul,
            Opcode::IntDiv,
            Opcode::Load,
            Opcode::Store,
            Opcode::FAdd,
            Opcode::FMul,
            Opcode::FDiv,
            Opcode::FSqrt,
            Opcode::Const,
            Opcode::Branch,
            Opcode::Copy,
            Opcode::Send,
            Opcode::Recv,
        ] {
            assert!(OpClass::ALL.contains(&op.class()), "{op:?}");
        }
    }
}
