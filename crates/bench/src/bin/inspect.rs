//! Assignment-quality inspector: for each Raw-suite benchmark, compare
//! the Rawcc baseline and the convergent scheduler on cut edges,
//! transfer counts, executed cycles, and network stalls. Useful when
//! studying *why* one scheduler wins a benchmark.
//!
//! ```text
//! cargo run --release -p convergent-bench --bin inspect [-- --tiles N]
//! ```

use convergent_core::ConvergentScheduler;
use convergent_machine::Machine;
use convergent_schedulers::{RawccScheduler, Scheduler};
use convergent_sim::{evaluate, validate};
use convergent_workloads::raw_suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiles: u16 = args
        .iter()
        .position(|a| a == "--tiles")
        .and_then(|k| args.get(k + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let machine = Machine::raw(tiles);
    println!(
        "{:<14}{:>8}{:>8}{:>8}{:>9}{:>9}{:>8}{:>8}{:>8}",
        "bench", "instrs", "cutR", "cutC", "commR", "commC", "cycR", "cycC", "stallC"
    );
    for unit in raw_suite(tiles) {
        let r = RawccScheduler::new()
            .schedule(unit.dag(), &machine)
            .expect("rawcc schedules the suite");
        validate(unit.dag(), &machine, &r).expect("valid");
        let c = Scheduler::schedule(&ConvergentScheduler::raw_default(), unit.dag(), &machine)
            .expect("convergent schedules the suite");
        validate(unit.dag(), &machine, &c).expect("valid");
        let er = evaluate(unit.dag(), &machine, &r).expect("validated schedule executes");
        let ec = evaluate(unit.dag(), &machine, &c).expect("validated schedule executes");
        println!(
            "{:<14}{:>8}{:>8}{:>8}{:>9}{:>9}{:>8}{:>8}{:>8}",
            unit.name(),
            unit.dag().len(),
            r.assignment().cut_edges(unit.dag()),
            c.assignment().cut_edges(unit.dag()),
            r.comm_count(),
            c.comm_count(),
            er.makespan.get(),
            ec.makespan.get(),
            ec.network.stall_cycles,
        );
    }
}
