#![warn(missing_docs)]
//! Space-time schedules, validation, and cycle-level evaluation.
//!
//! This crate is the "hardware" side of the reproduction: it defines
//! what a finished schedule looks like ([`SpaceTimeSchedule`]), checks
//! that a schedule is legal for a given machine ([`validate`]), and
//! evaluates its true cost including static-network link contention on
//! Raw-style meshes ([`evaluate`]).
//!
//! Keeping these concerns out of the schedulers means every scheduling
//! technique in the workspace — convergent, UAS, PCC, Rawcc-style —
//! is graded by exactly the same referee, which is what makes the
//! paper's comparisons meaningful.
//!
//! # Example
//!
//! ```
//! use convergent_ir::{Cycle, ClusterId, DagBuilder, Opcode};
//! use convergent_machine::Machine;
//! use convergent_sim::{Assignment, ScheduleBuilder, validate};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DagBuilder::new();
//! let a = b.instr(Opcode::IntAlu);
//! let dag = b.build()?;
//! let machine = Machine::chorus_vliw(4);
//!
//! let mut sb = ScheduleBuilder::new(&dag);
//! sb.place(a, ClusterId::new(0), 0, Cycle::ZERO);
//! let schedule = sb.build(&machine)?;
//! validate(&dag, &machine, &schedule)?;
//! assert_eq!(schedule.makespan().get(), 1);
//! # Ok(())
//! # }
//! ```

mod assignment;
mod error;
mod evaluate;
pub mod oracle;
mod pressure;
mod route;
mod schedule;
mod stitch;
mod validate;

pub use assignment::Assignment;
pub use error::{SimError, Violation};
pub use evaluate::{evaluate, EvalReport};
pub use oracle::{cross_check, resimulate, Divergence};
pub use pressure::{analyze_pressure, PressureReport};
pub use route::{route_hops, RouterReport};
pub use schedule::{CommOp, PlacedOp, ScheduleBuilder, SpaceTimeSchedule};
pub use stitch::{stitch, StitchReport};
pub use validate::validate;

use convergent_ir::{ClusterId, Dag, InstrId, Instruction};
use convergent_machine::Machine;

/// Effective latency of `instr` when executed on cluster `c`: the base
/// op-class latency, plus the machine's remote-memory penalty when a
/// preplaced memory operation executes away from its home bank (legal
/// only on machines with a soft memory model, e.g. Chorus).
#[must_use]
pub fn effective_latency(machine: &Machine, instr: &Instruction, c: ClusterId) -> u32 {
    let base = machine.latency_of(instr);
    if instr.opcode().is_memory() {
        if let (Some(home), Some(penalty)) = (instr.preplacement(), machine.memory().remote_penalty)
        {
            if home != c {
                return base + penalty;
            }
        }
    }
    base
}

/// [`effective_latency`] plus the *live-in* cost: on machines with a
/// data-home cluster (Chorus: "all the data are available in the first
/// cluster at the beginning of every scheduling unit"), a root
/// instruction executed on any other cluster must first fetch its
/// live-in operands across the interconnect, which we charge as one
/// inter-cluster transfer latency. This is the cost the FIRST
/// heuristic trades against parallelism.
#[must_use]
pub fn effective_latency_in(dag: &Dag, machine: &Machine, i: InstrId, c: ClusterId) -> u32 {
    let instr = dag.instr(i);
    let mut lat = effective_latency(machine, instr, c);
    if dag.preds(i).is_empty() && !instr.is_preplaced() {
        if let Some(home) = machine.data_home() {
            if home != c {
                lat += machine.comm_latency(home, c);
            }
        }
    }
    lat
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::Opcode;

    #[test]
    fn effective_latency_adds_remote_penalty() {
        let m = Machine::chorus_vliw(4);
        let home = ClusterId::new(2);
        let ld = Instruction::preplaced(Opcode::Load, home);
        assert_eq!(effective_latency(&m, &ld, home), 3);
        assert_eq!(effective_latency(&m, &ld, ClusterId::new(0)), 4);
        // Non-memory ops never pay the penalty.
        let add = Instruction::preplaced(Opcode::IntAlu, home);
        assert_eq!(effective_latency(&m, &add, ClusterId::new(0)), 1);
        // Unpinned memory ops never pay the penalty.
        let free = Instruction::new(Opcode::Load);
        assert_eq!(effective_latency(&m, &free, ClusterId::new(0)), 3);
    }

    #[test]
    fn raw_has_no_soft_penalty() {
        let m = Machine::raw(4);
        let ld = Instruction::preplaced(Opcode::Load, ClusterId::new(1));
        // On Raw, remote access is illegal, so effective latency is the
        // base latency everywhere; validation rejects wrong placement.
        assert_eq!(effective_latency(&m, &ld, ClusterId::new(0)), 3);
    }
}
