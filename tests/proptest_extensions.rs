//! Property tests for the extension subsystems: the `.cdag` text
//! format, register-pressure analysis, and multi-region scheduling.

use convergent_scheduling::ir::{parse_unit, to_text};
use convergent_scheduling::machine::Machine;
use convergent_scheduling::schedulers::{
    schedule_program, CrossRegionPolicy, RawccScheduler, Scheduler, UasScheduler,
};
use convergent_scheduling::sim::{analyze_pressure, validate};
use convergent_scheduling::workloads::{
    layered, multi_region_accumulate, LayeredParams, MultiRegionParams,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn text_format_round_trips_random_graphs(
        n in 1usize..150,
        width in 1usize..10,
        seed in any::<u64>(),
        pre in 0.0f64..1.0,
    ) {
        let unit = layered(
            LayeredParams::new(n, seed)
                .with_width(width)
                .with_preplacement(pre, 4),
        );
        let text = to_text(&unit);
        let back = parse_unit(&text).expect("serializer output parses");
        prop_assert_eq!(back.dag().len(), unit.dag().len());
        prop_assert_eq!(back.dag().edge_count(), unit.dag().edge_count());
        for i in unit.dag().ids() {
            prop_assert_eq!(
                back.dag().instr(i).opcode(),
                unit.dag().instr(i).opcode()
            );
            prop_assert_eq!(
                back.dag().instr(i).preplacement(),
                unit.dag().instr(i).preplacement()
            );
        }
        // Second round trip is byte-identical (canonical form).
        prop_assert_eq!(to_text(&back), text);
    }

    #[test]
    fn pressure_analysis_is_sane_on_random_schedules(
        n in 5usize..100,
        seed in any::<u64>(),
        regs in 2u32..40,
    ) {
        let unit = layered(LayeredParams::new(n, seed).with_preplacement(0.3, 4));
        let machine = Machine::raw(4).with_registers_per_cluster(regs);
        let s = RawccScheduler::new()
            .schedule(unit.dag(), &machine)
            .expect("schedules");
        validate(unit.dag(), &machine, &s).expect("valid");
        let p = analyze_pressure(unit.dag(), &machine, &s);
        // Peak never exceeds the number of value-producing instructions.
        let producers = unit
            .dag()
            .ids()
            .filter(|&i| !unit.dag().succs(i).is_empty())
            .count() as u32;
        prop_assert!(p.max_peak() <= producers + 1);
        // Belady keeps the active set at regs + 1 transiently.
        prop_assert!(p.max_peak() <= regs + 1 || p.total_spills() > 0);
        // No spills implies fits, and vice versa.
        prop_assert_eq!(p.fits(), p.total_spills() == 0);
        // Spill cycles are consistent with the spill count.
        prop_assert_eq!(
            p.spill_cycles,
            p.total_spills() * (machine.latency(convergent_scheduling::ir::OpClass::Store)
                + machine.latency(convergent_scheduling::ir::OpClass::Load))
        );
    }

    #[test]
    fn bigger_register_files_never_spill_more(
        n in 10usize..80,
        seed in any::<u64>(),
    ) {
        let unit = layered(LayeredParams::new(n, seed));
        let small = Machine::raw(2).with_registers_per_cluster(4);
        let big = Machine::raw(2).with_registers_per_cluster(32);
        let s_small = RawccScheduler::new().schedule(unit.dag(), &small).unwrap();
        let s_big = RawccScheduler::new().schedule(unit.dag(), &big).unwrap();
        // Same machine topology → same schedule; only the analysis
        // capacity differs.
        let p_small = analyze_pressure(unit.dag(), &small, &s_small);
        let p_big = analyze_pressure(unit.dag(), &big, &s_big);
        prop_assert!(p_big.total_spills() <= p_small.total_spills());
    }

    #[test]
    fn multi_region_bindings_are_always_consistent(
        banks in 1u16..6,
        regions in 2usize..5,
        carried in 1usize..6,
    ) {
        let program = multi_region_accumulate(MultiRegionParams {
            n_banks: banks,
            regions,
            carried,
        });
        let machine = Machine::raw(banks.max(2));
        let ps = schedule_program(
            &program,
            &machine,
            &RawccScheduler::new(),
            CrossRegionPolicy::FirstDefinition,
        )
        .expect("programs schedule");
        prop_assert_eq!(ps.schedules().len(), regions);
        for v in program.values() {
            let bound = ps.binding(v.name()).expect("every value is bound");
            // The definition really sits on the bound cluster, and so
            // does every use (hard preplacement on Raw).
            let (du, di) = v.def();
            prop_assert_eq!(ps.schedules()[du].op(di).cluster, bound);
            for &(uu, ui) in v.uses() {
                prop_assert_eq!(ps.schedules()[uu].op(ui).cluster, bound);
            }
        }
    }

    #[test]
    fn data_home_policy_binds_to_home_on_vliw(
        regions in 2usize..4,
        carried in 1usize..5,
    ) {
        let program = multi_region_accumulate(MultiRegionParams {
            n_banks: 1, // unbanked loads: no pin conflicts with home
            regions,
            carried,
        });
        let machine = Machine::chorus_vliw(4);
        // n_banks=1 pins loads to cluster 0 == data home: compatible.
        let ps = schedule_program(
            &program,
            &machine,
            &UasScheduler::new(),
            CrossRegionPolicy::DataHome,
        )
        .expect("programs schedule");
        for v in program.values() {
            prop_assert_eq!(
                ps.binding(v.name()),
                Some(convergent_scheduling::ir::ClusterId::new(0))
            );
        }
    }
}
