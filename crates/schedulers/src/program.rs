//! Multi-region scheduling: turning cross-region liveness into
//! preplacement.
//!
//! Regions execute back-to-back, so a value live across regions must
//! sit on one agreed cluster. The paper describes both policies we
//! implement:
//!
//! * [`CrossRegionPolicy::FirstDefinition`] (Rawcc): "this cluster is
//!   the cluster of the first definition/use encountered by the
//!   compiler; subsequent definitions and uses become preplaced
//!   instructions" — the first region schedules freely and its choice
//!   pins the later regions.
//! * [`CrossRegionPolicy::DataHome`] (Chorus): "all values that are
//!   live across multiple scheduling regions are mapped to the first
//!   cluster" — definitions and uses alike are pinned to the
//!   machine's data-home cluster.

use std::collections::HashMap;

use convergent_ir::{ClusterId, Dag, DagBuilder, InstrId, Instruction, Program};
use convergent_machine::Machine;
use convergent_sim::SpaceTimeSchedule;

use crate::{ScheduleError, Scheduler};

/// How cross-region values pick their consistent cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CrossRegionPolicy {
    /// Rawcc's rule: the first definition's cluster wins; later
    /// regions see preplaced instructions.
    #[default]
    FirstDefinition,
    /// Chorus's rule: everything maps to the machine's data-home
    /// cluster (cluster 0 when the machine declares none).
    DataHome,
}

/// The result of scheduling a whole program.
#[derive(Clone, Debug)]
pub struct ProgramSchedule {
    schedules: Vec<SpaceTimeSchedule>,
    bindings: HashMap<String, ClusterId>,
}

impl ProgramSchedule {
    /// Per-region schedules, in execution order.
    #[must_use]
    pub fn schedules(&self) -> &[SpaceTimeSchedule] {
        &self.schedules
    }

    /// The cluster each cross-region value was bound to.
    #[must_use]
    pub fn binding(&self, name: &str) -> Option<ClusterId> {
        self.bindings.get(name).copied()
    }

    /// Total cycles with regions executed back-to-back.
    #[must_use]
    pub fn total_cycles(&self) -> u32 {
        self.schedules.iter().map(|s| s.makespan().get()).sum()
    }
}

/// Schedules every region of `program` with `scheduler`, threading
/// cross-region values through `policy`.
///
/// # Errors
///
/// Returns [`ScheduleError::PreplacementConflict`] when a cross-region
/// pin contradicts an existing preplacement (e.g. a banked load that
/// is also a cross-region definition under [`CrossRegionPolicy::DataHome`]),
/// and propagates any per-region scheduling error.
pub fn schedule_program(
    program: &Program,
    machine: &Machine,
    scheduler: &dyn Scheduler,
    policy: CrossRegionPolicy,
) -> Result<ProgramSchedule, ScheduleError> {
    let home = machine.data_home().unwrap_or(ClusterId::new(0));
    let mut pins: Vec<HashMap<InstrId, (ClusterId, String)>> =
        vec![HashMap::new(); program.units().len()];
    // DataHome pins everything up front.
    if policy == CrossRegionPolicy::DataHome {
        for v in program.values() {
            let (du, di) = v.def();
            pins[du].insert(di, (home, v.name().to_string()));
            for &(uu, ui) in v.uses() {
                pins[uu].insert(ui, (home, v.name().to_string()));
            }
        }
    }

    let mut bindings: HashMap<String, ClusterId> = HashMap::new();
    let mut schedules = Vec::with_capacity(program.units().len());
    for (k, unit) in program.units().iter().enumerate() {
        let dag = apply_pins(unit.dag(), &pins[k])?;
        let schedule = scheduler.schedule(&dag, machine)?;
        // Record bindings for values defined here; pin later regions.
        for v in program.values() {
            let (du, di) = v.def();
            if du != k {
                continue;
            }
            let cluster = match policy {
                CrossRegionPolicy::FirstDefinition => schedule.op(di).cluster,
                CrossRegionPolicy::DataHome => home,
            };
            bindings.insert(v.name().to_string(), cluster);
            for &(uu, ui) in v.uses() {
                pins[uu].insert(ui, (cluster, v.name().to_string()));
            }
        }
        schedules.push(schedule);
    }
    Ok(ProgramSchedule {
        schedules,
        bindings,
    })
}

/// Rebuilds `dag` with the given cross-region pins as preplacements.
fn apply_pins(
    dag: &Dag,
    pins: &HashMap<InstrId, (ClusterId, String)>,
) -> Result<Dag, ScheduleError> {
    if pins.is_empty() {
        return Ok(dag.clone());
    }
    let mut b = DagBuilder::with_capacity(dag.len());
    for i in dag.ids() {
        let instr = dag.instr(i);
        let mut new = match (pins.get(&i), instr.preplacement()) {
            (Some(&(pin, _)), Some(existing)) if pin != existing => {
                return Err(ScheduleError::PreplacementConflict {
                    instr: i,
                    home: existing,
                    assigned: pin,
                });
            }
            (Some(&(pin, _)), _) => Instruction::preplaced(instr.opcode(), pin),
            (None, Some(existing)) => Instruction::preplaced(instr.opcode(), existing),
            (None, None) => Instruction::new(instr.opcode()),
        };
        if let Some(name) = instr.name() {
            new = new.with_name(name);
        }
        b.push(new);
    }
    for e in dag.edges() {
        b.edge(e.src, e.dst).expect("copying a valid graph");
    }
    Ok(b.build().expect("copy of a valid graph"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RawccScheduler, UasScheduler};
    use convergent_ir::{DagBuilder, Opcode, SchedulingUnit};
    use convergent_sim::validate;

    fn c(k: u16) -> ClusterId {
        ClusterId::new(k)
    }

    /// Two regions: region 0 computes per-bank accumulators, region 1
    /// combines them.
    fn accumulator_program() -> (Program, Vec<InstrId>, Vec<InstrId>) {
        let mut b0 = DagBuilder::new();
        let mut defs = Vec::new();
        for k in 0..4u16 {
            let ld = b0.preplaced_instr(Opcode::Load, c(k));
            let acc = b0.instr(Opcode::FAdd);
            b0.edge(ld, acc).unwrap();
            defs.push(acc);
        }
        let mut b1 = DagBuilder::new();
        let mut uses = Vec::new();
        for _ in 0..4 {
            uses.push(b1.instr(Opcode::FMul));
        }
        let sink = b1.instr(Opcode::FAdd);
        for &u in &uses {
            b1.edge(u, sink).unwrap();
        }
        let mut program = Program::new(vec![
            SchedulingUnit::new("produce", b0.build().unwrap()),
            SchedulingUnit::new("consume", b1.build().unwrap()),
        ]);
        for (k, (&d, &u)) in defs.iter().zip(&uses).enumerate() {
            program
                .link(format!("acc{k}"), (0, d), vec![(1, u)])
                .unwrap();
        }
        (program, defs, uses)
    }

    #[test]
    fn first_definition_pins_later_uses() {
        let (program, _, uses) = accumulator_program();
        let machine = Machine::raw(4);
        let ps = schedule_program(
            &program,
            &machine,
            &RawccScheduler::new(),
            CrossRegionPolicy::FirstDefinition,
        )
        .unwrap();
        assert_eq!(ps.schedules().len(), 2);
        for (k, &u) in uses.iter().enumerate() {
            let bound = ps.binding(&format!("acc{k}")).expect("bound");
            assert_eq!(ps.schedules()[1].op(u).cluster, bound);
        }
        assert!(ps.total_cycles() > 0);
    }

    #[test]
    fn schedules_validate_region_by_region() {
        let (program, _, _) = accumulator_program();
        let machine = Machine::raw(4);
        let ps = schedule_program(
            &program,
            &machine,
            &RawccScheduler::new(),
            CrossRegionPolicy::FirstDefinition,
        )
        .unwrap();
        // Region 1's pinned dag must be revalidated against its pins.
        let mut pins = HashMap::new();
        for v in program.values() {
            for &(uu, ui) in v.uses() {
                if uu == 1 {
                    pins.insert(ui, (ps.binding(v.name()).unwrap(), v.name().to_string()));
                }
            }
        }
        let pinned = apply_pins(program.units()[1].dag(), &pins).unwrap();
        validate(&pinned, &machine, &ps.schedules()[1]).unwrap();
    }

    #[test]
    fn data_home_binds_everything_to_cluster_zero() {
        let (program, _defs, _uses) = accumulator_program();
        let machine = Machine::chorus_vliw(4);
        let ps = schedule_program(
            &program,
            &machine,
            &UasScheduler::new(),
            CrossRegionPolicy::DataHome,
        )
        .unwrap();
        // Every cross-region value is bound to the data-home cluster.
        // (On Chorus preplacement is *soft*, so an individual def may
        // still execute remotely for a penalty — the binding, not the
        // issue slot, is the cross-region contract.)
        for k in 0..4 {
            assert_eq!(ps.binding(&format!("acc{k}")), Some(c(0)));
        }
        assert_eq!(ps.schedules().len(), 2);
    }

    #[test]
    fn data_home_is_hard_on_raw() {
        // On Raw preplacement is a hard constraint, so under the
        // DataHome policy every def and use really executes on tile 0.
        let (program, defs, uses) = accumulator_program();
        // Rebuild without banked loads so the pins cannot conflict.
        let mut b0 = DagBuilder::new();
        let mut new_defs = Vec::new();
        for _ in 0..defs.len() {
            let ld = b0.instr(Opcode::Load);
            let acc = b0.instr(Opcode::FAdd);
            b0.edge(ld, acc).unwrap();
            new_defs.push(acc);
        }
        let mut b1 = DagBuilder::new();
        let mut new_uses = Vec::new();
        for _ in 0..uses.len() {
            new_uses.push(b1.instr(Opcode::FMul));
        }
        let sink = b1.instr(Opcode::FAdd);
        for &u in &new_uses {
            b1.edge(u, sink).unwrap();
        }
        let mut program2 = Program::new(vec![
            SchedulingUnit::new("produce", b0.build().unwrap()),
            SchedulingUnit::new("consume", b1.build().unwrap()),
        ]);
        for (k, (&d, &u)) in new_defs.iter().zip(&new_uses).enumerate() {
            program2
                .link(format!("acc{k}"), (0, d), vec![(1, u)])
                .unwrap();
        }
        let _ = program;
        let machine = Machine::raw(4);
        let ps = schedule_program(
            &program2,
            &machine,
            &RawccScheduler::new(),
            CrossRegionPolicy::DataHome,
        )
        .unwrap();
        for &d in &new_defs {
            assert_eq!(ps.schedules()[0].op(d).cluster, c(0));
        }
        for &u in &new_uses {
            assert_eq!(ps.schedules()[1].op(u).cluster, c(0));
        }
    }

    #[test]
    fn conflicting_pins_are_rejected() {
        // A cross-region def that is itself a banked load away from the
        // data home conflicts under DataHome on a hard machine... on
        // chorus (soft) apply_pins still rejects the contradiction.
        let mut b0 = DagBuilder::new();
        let ld = b0.preplaced_instr(Opcode::Load, c(2));
        let mut b1 = DagBuilder::new();
        let u = b1.instr(Opcode::FMul);
        let mut program = Program::new(vec![
            SchedulingUnit::new("r0", b0.build().unwrap()),
            SchedulingUnit::new("r1", b1.build().unwrap()),
        ]);
        program.link("v", (0, ld), vec![(1, u)]).unwrap();
        let machine = Machine::chorus_vliw(4);
        let err = schedule_program(
            &program,
            &machine,
            &UasScheduler::new(),
            CrossRegionPolicy::DataHome,
        )
        .unwrap_err();
        assert!(matches!(err, ScheduleError::PreplacementConflict { .. }));
    }
}
