#![warn(missing_docs)]
//! Machine models for spatial architectures.
//!
//! The paper evaluates convergent scheduling on two spatial machines:
//!
//! * **Raw** — a mesh of single-issue MIPS-like tiles connected by a
//!   register-mapped, compiler-routed static network (3-cycle latency
//!   between neighbors, +1 cycle per extra hop).
//! * **Chorus clustered VLIW** — four identical clusters, each with one
//!   integer ALU, one integer ALU/memory unit, one floating-point unit,
//!   and one transfer unit; moving a register value between clusters
//!   costs one cycle on a transfer unit; memory is interleaved across
//!   clusters with a one-cycle remote-access penalty.
//!
//! [`Machine`] is a data-driven description covering both (and any
//! machine in between): clusters with functional-unit mixes, a topology,
//! a communication model, an operation-latency table, and a memory
//! model. Schedulers interact with hardware *only* through this type.
//!
//! # Example
//!
//! ```
//! use convergent_machine::Machine;
//! use convergent_ir::{ClusterId, OpClass};
//!
//! let raw = Machine::raw(16);
//! assert_eq!(raw.n_clusters(), 16);
//! // Opposite mesh corners on a 4x4: 6 hops, 3 + (6-1) = 8 cycles.
//! let d = raw.comm_latency(ClusterId::new(0), ClusterId::new(15));
//! assert_eq!(d, 8);
//!
//! let vliw = Machine::chorus_vliw(4);
//! assert_eq!(vliw.comm_latency(ClusterId::new(0), ClusterId::new(3)), 1);
//! assert_eq!(vliw.latency(OpClass::FMul), 7);
//! ```

mod fu;
mod latency;
mod model;
mod topology;

pub use fu::FuKind;
pub use latency::LatencyTable;
pub use model::{Cluster, CommModel, Machine, MemoryModel};
pub use topology::Topology;
