#!/usr/bin/env sh
# Full local gate: release build, tests, clippy (warnings are errors),
# and formatting. Run from anywhere inside the repo.
#
#   scripts/check.sh             # normal, resolves crates.io deps
#   scripts/check.sh --offline   # sandboxed containers: use the
#                                # API-compatible stubs in
#                                # devtools/offline-stubs (see its README)
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--offline" ]; then
    exec scripts/offline-check.sh
fi

echo "==> cargo build --release"
cargo build --release
echo "==> cargo test -q"
cargo test -q
echo "==> cargo test -q --workspace"
cargo test -q --workspace
echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings
echo "==> cargo fmt --check"
cargo fmt --check
echo "==> lint smoke: builtin workloads (--deny warnings)"
cargo run --release -q --bin csched -- lint --all-workloads --machine raw4 --deny warnings
cargo run --release -q --bin csched -- lint --all-workloads --machine vliw4 --deny warnings
echo "==> analyze smoke: builtin sequences fully proven (--deny warnings)"
cargo run --release -q --bin csched -- analyze --machine raw4 \
    --sequence raw --sequence vliw --sequence vliw-tuned --deny warnings
# The deliberately broken probe pass must be rejected *statically* —
# nonzero exit, no scheduler constructed.
if cargo run --release -q --bin csched -- analyze --machine raw4 \
    --with-broken-probe >/dev/null 2>&1; then
    echo "check.sh: FAIL: analyze accepted a statically refuted probe pass" >&2
    exit 1
fi
echo "==> lint smoke: 500 fuzz graphs (seed 0)"
cargo run --release -q -p convergent-bench --bin fuzz -- --seed 0 --budget 500 --lint-only
echo "==> fuzz smoke (seed 0, 200 cases)"
cargo run --release -q -p convergent-bench --bin fuzz -- --seed 0 --budget 200
echo "==> fuzz smoke, large deep-chain (band re-anchoring end to end)"
cargo run --release -q -p convergent-bench --bin fuzz -- \
    --seed 1 --budget 2 --family deep-chain --size 2500 --machines raw4,vliw4
echo "==> compile-time scaling guard (200 vs 2000 instrs)"
# The banded preference map keeps the 200→2000 throughput ratio near
# 3x; the dense layout collapsed to 7.3x. Fail past 5x.
cargo run --release -q -p convergent-bench --bin compiletime -- \
    --sizes 200,2000 --budget-secs 0.5 --no-out --max-ratio 5.0
echo "==> compile-time scaling guard (2000 vs 10000 instrs)"
# The bulk row kernels hold the 2000→10000 ratio near 1.5x (the
# per-cell path sat near 10x). Fail past 3x.
cargo run --release -q -p convergent-bench --bin compiletime -- \
    --sizes 2000,10000 --budget-secs 0.75 --no-out --max-ratio 3.0
echo "==> sharded compile-time scaling guard (8 components, 1000 vs 10000 instrs)"
# Region sharding keeps per-shard inputs component-sized; the sharded
# 1000→10000 ratio sits near 2.6x. Fail past 4x.
cargo run --release -q -p convergent-bench --bin compiletime -- \
    --components 8 --shards 8 --sizes 1000,10000 --budget-secs 0.75 --no-out --max-ratio 4.0
echo "==> connected compile-time scaling guard (--shards 8, 10000 vs 100000 instrs)"
# Recursive region cuts keep connected layered graphs in region-sized
# pieces; the sharded 10000→100000 ratio sits near 1.7x (the
# monolithic driver is superlinear past 3x). Fail past 3x.
cargo run --release -q -p convergent-bench --bin compiletime -- \
    --shards 8 --sizes 10000,100000 --budget-secs 0.75 --no-out --max-ratio 3.0
echo "==> sharded-determinism smoke (--shards 1/2/8 identical on a connected builtin)"
# Connected graphs at or under the region target (tomcatv is well
# under the default 2000) are never cut, so any shard budget must
# reproduce the monolithic schedule byte for byte (placement included).
base="$(cargo run --release -q --bin csched -- --workload tomcatv --machine vliw4 --verbose)"
for s in 1 2 8; do
    got="$(cargo run --release -q --bin csched -- --workload tomcatv --machine vliw4 --verbose --shards "$s")"
    if [ "$got" != "$base" ]; then
        echo "check.sh: FAIL: --shards $s diverged from the unsharded schedule on tomcatv" >&2
        exit 1
    fi
done
echo "==> governor-fallback smoke (degenerate cut falls back to the monolithic schedule)"
# Forcing a tiny region target on fir makes every candidate cut
# mostly-crossing; the governor must reject it and the fallback must
# be byte-identical to the monolithic schedule.
fir_base="$(cargo run --release -q --bin csched -- --workload fir --machine vliw4 --verbose)"
fir_got="$(cargo run --release -q --bin csched -- --workload fir --machine vliw4 --verbose --shards 8 --region-size 16)"
if [ "$fir_got" != "$fir_base" ]; then
    echo "check.sh: FAIL: governor fallback diverged from the unsharded schedule on fir" >&2
    exit 1
fi
echo "==> trace smoke (csched --trace parses and names every pass)"
# trace-check re-parses the Chrome trace with the hand-rolled JSON
# reader and requires a span for each pass of the vliw4 sequence.
trace_tmp="$(mktemp /tmp/csched-trace.XXXXXX.json)"
cargo run --release -q --bin csched -- --workload tomcatv --machine vliw4 --trace "$trace_tmp" >/dev/null
cargo run --release -q --bin csched -- trace-check "$trace_tmp" --machine vliw4
rm -f "$trace_tmp"
echo "==> telemetry on/off byte-identity (suite-wide, threads x shards)"
cargo test -q -p convergent-bench --test telemetry_determinism
if [ "${TSAN:-0}" = 1 ]; then
    echo "==> ThreadSanitizer: parallel driver + telemetry (TSAN=1 opt-in)"
    # The intra-pass parallelism (bulk row kernels, sharded regions)
    # and the telemetry sinks are the only threaded code; tsan needs
    # nightly (-Zsanitizer) and an explicit --target so build scripts
    # stay uninstrumented.
    if rustup run nightly rustc --version >/dev/null 2>&1; then
        host="$(rustc -vV | sed -n 's/^host: //p')"
        RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -q \
            --target "$host" -p convergent-core --lib
        RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -q \
            --target "$host" -p convergent-bench --test telemetry_determinism
    else
        echo "check.sh: nightly toolchain not installed (rustup toolchain install nightly); skipping tsan"
    fi
fi
echo "check.sh: all green"
