//! Systematic heuristic selection in action — the paper's future-work
//! section, run as an experiment.
//!
//! Starting from the Table 1(a) Raw sequence, hill-climb pass
//! sequences against total executed cycles on a small training set,
//! then evaluate the winner on the full Raw suite (held-out sizes).
//!
//! ```text
//! cargo run --release -p convergent-bench --bin tune [-- --iters N]
//! ```

use convergent_bench::{executed_cycles, geomean, speedup};
use convergent_core::tuner::{to_sequence, tune, PassSpec, TunerConfig};
use convergent_core::ConvergentScheduler;
use convergent_machine::Machine;
use convergent_workloads::{jacobi, mxm, sha, MxmParams, ShaParams, StencilParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters: usize = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|k| args.get(k + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(80);

    // Training set: three small, structurally different kernels.
    let machine = Machine::raw(4);
    let training = vec![
        mxm(MxmParams::for_banks(4)),
        jacobi(StencilParams::for_banks(4)),
        sha(ShaParams { rounds: 12 }),
    ];

    // Start from Table 1(a) (minus the INITTIME anchor the tuner adds).
    let table1a = [
        PassSpec::PlaceProp,
        PassSpec::Load,
        PassSpec::Place,
        PassSpec::Path,
        PassSpec::PathProp,
        PassSpec::Level,
        PassSpec::PathProp,
        PassSpec::Comm,
        PassSpec::PathProp,
        PassSpec::EmphCp,
    ];

    let mut evals = 0usize;
    let result = tune(
        &table1a,
        TunerConfig {
            iterations: iters,
            max_len: 14,
            seed: 2002,
        },
        |seq| {
            evals += 1;
            let sched = scheduler_from(seq);
            let mut total = 0f64;
            for unit in &training {
                match executed_cycles(&sched, unit, &machine) {
                    Ok(c) => total += f64::from(c),
                    Err(_) => return f64::INFINITY,
                }
            }
            total
        },
    );

    println!("training objective (total cycles over 3 kernels @ 4 tiles):");
    println!("  Table 1(a): {:.0}", result.initial_score);
    println!(
        "  tuned     : {:.0}  ({} accepted mutations, {evals} evaluations)",
        result.best_score, result.accepted
    );
    println!("  tuned sequence: {:?}", to_sequence(&result.best).names());

    // Held-out check on the full 16-tile suite.
    let machine16 = Machine::raw(16);
    let stock = ConvergentScheduler::raw_default().with_time_priorities(false);
    let tuned =
        ConvergentScheduler::new(to_sequence(&result.best)).with_time_priorities(false);
    let mut stock_sp = Vec::new();
    let mut tuned_sp = Vec::new();
    for unit in convergent_workloads::raw_suite(16) {
        stock_sp.push(speedup(&stock, &unit, &machine16).expect("suite schedules"));
        tuned_sp.push(speedup(&tuned, &unit, &machine16).expect("suite schedules"));
    }
    println!();
    println!("held-out Raw suite @ 16 tiles (geomean speedup):");
    println!("  Table 1(a): {:.3}", geomean(&stock_sp));
    println!("  tuned     : {:.3}", geomean(&tuned_sp));
}

/// Rebuilds a scheduler around an already-built sequence by cloning
/// its pass roster through the spec vocabulary.
fn scheduler_from(seq: &convergent_core::Sequence) -> ConvergentScheduler {
    let specs: Vec<PassSpec> = seq
        .names()
        .iter()
        .filter_map(|name| match *name {
            "INITTIME" => None, // to_sequence re-anchors it
            "NOISE" => Some(PassSpec::Noise),
            "FIRST" => Some(PassSpec::First),
            "PATH" => Some(PassSpec::Path),
            "COMM" => Some(PassSpec::Comm),
            "PLACE" => Some(PassSpec::Place),
            "PLACEPROP" => Some(PassSpec::PlaceProp),
            "LOAD" => Some(PassSpec::Load),
            "LEVEL" => Some(PassSpec::Level),
            "PATHPROP" => Some(PassSpec::PathProp),
            "EMPHCP" => Some(PassSpec::EmphCp),
            "REGPRESS" => Some(PassSpec::RegPress),
            other => unreachable!("unknown pass {other}"),
        })
        .collect();
    ConvergentScheduler::new(to_sequence(&specs)).with_time_priorities(false)
}
