//! Property tests for the preference map: the paper's Section 3
//! invariants must survive arbitrary sequences of the basic
//! operations.

use convergent_scheduling::core::PreferenceMap;
use convergent_scheduling::ir::{ClusterId, InstrId};
use proptest::prelude::*;

/// One basic operation on the map.
#[derive(Clone, Debug)]
enum Op {
    Scale {
        i: usize,
        c: usize,
        t: usize,
        f: f64,
    },
    ScaleCluster {
        i: usize,
        c: usize,
        f: f64,
    },
    ScaleTime {
        i: usize,
        t: usize,
        f: f64,
    },
    Add {
        i: usize,
        c: usize,
        t: usize,
        d: f64,
    },
    Normalize {
        i: usize,
    },
    SetMarginal {
        i: usize,
        target: Vec<f64>,
    },
}

fn op_strategy(n_instrs: usize, n_clusters: usize, n_slots: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_instrs, 0..n_clusters, 0..n_slots, 0.0f64..50.0).prop_map(|(i, c, t, f)| Op::Scale {
            i,
            c,
            t,
            f
        }),
        (0..n_instrs, 0..n_clusters, 0.0f64..50.0).prop_map(|(i, c, f)| Op::ScaleCluster {
            i,
            c,
            f
        }),
        (0..n_instrs, 0..n_slots, 0.0f64..50.0).prop_map(|(i, t, f)| Op::ScaleTime { i, t, f }),
        (0..n_instrs, 0..n_clusters, 0..n_slots, -1.0f64..1.0).prop_map(|(i, c, t, d)| Op::Add {
            i,
            c,
            t,
            d
        }),
        (0..n_instrs).prop_map(|i| Op::Normalize { i }),
        (
            0..n_instrs,
            proptest::collection::vec(0.0f64..1.0, n_clusters)
        )
            .prop_map(|(i, target)| Op::SetMarginal { i, target }),
    ]
}

/// Reference implementation with *eager* normalization and fresh
/// marginal scans — the semantics the lazy `PreferenceMap` must match.
/// Deliberately naive: dense tensor, O(C·T) everywhere.
struct EagerMap {
    n_clusters: usize,
    n_slots: usize,
    w: Vec<f64>,
    window: Vec<(u32, u32)>,
    cluster_ok: Vec<bool>,
}

const EPS: f64 = 1e-12;

impl EagerMap {
    fn new(n_instrs: usize, n_clusters: usize, n_slots: usize) -> Self {
        let per = 1.0 / (n_clusters * n_slots) as f64;
        EagerMap {
            n_clusters,
            n_slots,
            w: vec![per; n_instrs * n_clusters * n_slots],
            window: vec![(0, n_slots as u32 - 1); n_instrs],
            cluster_ok: vec![true; n_instrs * n_clusters],
        }
    }

    fn idx(&self, i: usize, c: usize, t: usize) -> usize {
        (i * self.n_clusters + c) * self.n_slots + t
    }

    fn get(&self, i: usize, c: usize, t: usize) -> f64 {
        self.w[self.idx(i, c, t)]
    }

    fn cluster_weight(&self, i: usize, c: usize) -> f64 {
        (0..self.n_slots).map(|t| self.get(i, c, t)).sum()
    }

    fn time_weight(&self, i: usize, t: usize) -> f64 {
        (0..self.n_clusters).map(|c| self.get(i, c, t)).sum()
    }

    fn total(&self, i: usize) -> f64 {
        (0..self.n_clusters)
            .map(|c| self.cluster_weight(i, c))
            .sum()
    }

    fn scale(&mut self, i: usize, c: usize, t: usize, f: f64) {
        let k = self.idx(i, c, t);
        self.w[k] *= f;
    }

    fn scale_cluster(&mut self, i: usize, c: usize, f: f64) {
        for t in 0..self.n_slots {
            self.scale(i, c, t, f);
        }
    }

    fn scale_time(&mut self, i: usize, t: usize, f: f64) {
        for c in 0..self.n_clusters {
            self.scale(i, c, t, f);
        }
    }

    fn add(&mut self, i: usize, c: usize, t: usize, d: f64) {
        let k = self.idx(i, c, t);
        self.w[k] = (self.w[k] + d).max(0.0);
    }

    fn set_window(&mut self, i: usize, lo: u32, hi: u32) {
        let (old_lo, old_hi) = self.window[i];
        let (lo, hi) = (lo.max(old_lo), hi.min(old_hi));
        assert!(lo <= hi);
        self.window[i] = (lo, hi);
        for t in 0..self.n_slots {
            if (t as u32) < lo || (t as u32) > hi {
                for c in 0..self.n_clusters {
                    let k = self.idx(i, c, t);
                    self.w[k] = 0.0;
                }
            }
        }
    }

    fn forbid_cluster(&mut self, i: usize, c: usize) {
        self.cluster_ok[i * self.n_clusters + c] = false;
        self.scale_cluster(i, c, 0.0);
    }

    fn reset_uniform(&mut self, i: usize) {
        let (lo, hi) = self.window[i];
        let feasible: Vec<usize> = (0..self.n_clusters)
            .filter(|&c| self.cluster_ok[i * self.n_clusters + c])
            .collect();
        let clusters = if feasible.is_empty() {
            (0..self.n_clusters).collect()
        } else {
            feasible
        };
        let slots = (hi - lo + 1) as usize;
        let per = 1.0 / (clusters.len() * slots) as f64;
        for c in 0..self.n_clusters {
            for t in 0..self.n_slots {
                let k = self.idx(i, c, t);
                let inside = (t as u32) >= lo && (t as u32) <= hi;
                self.w[k] = if inside && clusters.contains(&c) {
                    per
                } else {
                    0.0
                };
            }
        }
    }

    fn normalize(&mut self, i: usize) {
        let tot = self.total(i);
        if tot > EPS {
            for c in 0..self.n_clusters {
                for t in 0..self.n_slots {
                    let k = self.idx(i, c, t);
                    self.w[k] /= tot;
                }
            }
        } else {
            self.reset_uniform(i);
        }
    }

    fn set_cluster_marginal(&mut self, i: usize, target: &[f64]) {
        let masked: Vec<f64> = (0..self.n_clusters)
            .map(|c| {
                if self.cluster_ok[i * self.n_clusters + c] {
                    target[c].max(0.0)
                } else {
                    0.0
                }
            })
            .collect();
        let sum: f64 = masked.iter().sum();
        if sum <= EPS {
            return;
        }
        let (lo, hi) = self.window[i];
        let slots = (hi - lo + 1) as f64;
        for (c, m) in masked.iter().enumerate() {
            let want = m / sum;
            let cur = self.cluster_weight(i, c);
            if cur > EPS {
                self.scale_cluster(i, c, want / cur);
            } else if want > EPS {
                for t in lo..=hi {
                    let k = self.idx(i, c, t as usize);
                    self.w[k] = want / slots;
                }
            }
        }
        self.normalize(i);
    }
}

/// An operation for the lazy-vs-eager differential test: the full op
/// vocabulary, including windows, forbids, resets, and materialize.
#[derive(Clone, Debug)]
enum DiffOp {
    Scale {
        i: usize,
        c: usize,
        t: usize,
        f: f64,
    },
    ScaleCluster {
        i: usize,
        c: usize,
        f: f64,
    },
    ScaleTime {
        i: usize,
        t: usize,
        f: f64,
    },
    Add {
        i: usize,
        c: usize,
        t: usize,
        d: f64,
    },
    Set {
        i: usize,
        c: usize,
        t: usize,
        v: f64,
    },
    SetWindow {
        i: usize,
        lo: usize,
        len: usize,
    },
    Forbid {
        i: usize,
        c: usize,
    },
    Reset {
        i: usize,
    },
    Materialize {
        i: usize,
    },
    Normalize {
        i: usize,
    },
    NormalizeAll,
    SetMarginal {
        i: usize,
        target: Vec<f64>,
    },
}

fn diff_op_strategy(
    n_instrs: usize,
    n_clusters: usize,
    n_slots: usize,
) -> impl Strategy<Value = DiffOp> {
    prop_oneof![
        (0..n_instrs, 0..n_clusters, 0..n_slots, 0.0f64..50.0)
            .prop_map(|(i, c, t, f)| DiffOp::Scale { i, c, t, f }),
        (0..n_instrs, 0..n_clusters, 0.0f64..50.0).prop_map(|(i, c, f)| DiffOp::ScaleCluster {
            i,
            c,
            f
        }),
        (0..n_instrs, 0..n_slots, 0.0f64..50.0).prop_map(|(i, t, f)| DiffOp::ScaleTime { i, t, f }),
        (0..n_instrs, 0..n_clusters, 0..n_slots, -1.0f64..1.0)
            .prop_map(|(i, c, t, d)| DiffOp::Add { i, c, t, d }),
        (0..n_instrs, 0..n_clusters, 0..n_slots, 0.0f64..2.0)
            .prop_map(|(i, c, t, v)| DiffOp::Set { i, c, t, v }),
        (0..n_instrs, 0..n_slots, 0..n_slots).prop_map(|(i, lo, len)| DiffOp::SetWindow {
            i,
            lo,
            len
        }),
        (0..n_instrs, 0..n_clusters).prop_map(|(i, c)| DiffOp::Forbid { i, c }),
        (0..n_instrs).prop_map(|i| DiffOp::Reset { i }),
        (0..n_instrs).prop_map(|i| DiffOp::Materialize { i }),
        (0..n_instrs).prop_map(|i| DiffOp::Normalize { i }),
        (0..n_instrs).prop_map(|_| DiffOp::NormalizeAll),
        (
            0..n_instrs,
            proptest::collection::vec(0.0f64..1.0, n_clusters)
        )
            .prop_map(|(i, target)| DiffOp::SetMarginal { i, target }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_survive_arbitrary_operations(
        ops in proptest::collection::vec(op_strategy(4, 3, 5), 1..60)
    ) {
        let mut w = PreferenceMap::new(4, 3, 5);
        for op in ops {
            match op {
                Op::Scale { i, c, t, f } => {
                    w.scale(InstrId::new(i as u32), ClusterId::new(c as u16), t as u32, f);
                }
                Op::ScaleCluster { i, c, f } => {
                    w.scale_cluster(InstrId::new(i as u32), ClusterId::new(c as u16), f);
                }
                Op::ScaleTime { i, t, f } => {
                    w.scale_time(InstrId::new(i as u32), t as u32, f);
                }
                Op::Add { i, c, t, d } => {
                    w.add(InstrId::new(i as u32), ClusterId::new(c as u16), t as u32, d);
                }
                Op::Normalize { i } => w.normalize(InstrId::new(i as u32)),
                Op::SetMarginal { i, target } => {
                    w.set_cluster_marginal(InstrId::new(i as u32), &target);
                }
            }
        }
        // Normalization must always restore the paper's invariants.
        w.normalize_all();
        w.assert_invariants(1e-6);
    }

    #[test]
    fn preferred_cluster_matches_marginal_argmax(
        scales in proptest::collection::vec((0usize..3, 0usize..4, 0.1f64..20.0), 1..20)
    ) {
        let mut w = PreferenceMap::new(3, 4, 3);
        for (i, c, f) in scales {
            w.scale_cluster(InstrId::new(i as u32), ClusterId::new(c as u16), f);
        }
        for i in 0..3u32 {
            let pref = w.preferred_cluster(InstrId::new(i));
            let best = (0..4u16)
                .map(|c| w.cluster_weight(InstrId::new(i), ClusterId::new(c)))
                .fold(f64::MIN, f64::max);
            let got = w.cluster_weight(InstrId::new(i), pref);
            prop_assert!((got - best).abs() < 1e-9, "i{i}: {got} vs {best}");
        }
    }

    #[test]
    fn confidence_is_at_least_one(
        scales in proptest::collection::vec((0usize..2, 0usize..3, 0.1f64..20.0), 0..16)
    ) {
        let mut w = PreferenceMap::new(2, 3, 4);
        for (i, c, f) in scales {
            w.scale_cluster(InstrId::new(i as u32), ClusterId::new(c as u16), f);
        }
        for i in 0..2u32 {
            // Top ÷ runner-up is ≥ 1 by definition.
            prop_assert!(w.confidence(InstrId::new(i)) >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn windows_are_never_resurrected(
        lo in 0u32..3,
        len in 0u32..3,
        ops in proptest::collection::vec((0usize..2, 0.0f64..10.0), 1..12)
    ) {
        let hi = lo + len;
        let mut w = PreferenceMap::new(1, 2, 8);
        let i = InstrId::new(0);
        w.set_window(i, lo, hi);
        for (c, f) in ops {
            w.scale_cluster(i, ClusterId::new(c as u16), f);
            w.normalize(i);
        }
        for t in 0..8u32 {
            if t < lo || t > hi {
                prop_assert_eq!(w.time_weight(i, t), 0.0, "slot {} leaked", t);
            }
        }
    }

    /// The heart of the lazy-normalization rework: under arbitrary op
    /// streams the lazy map must agree with an eagerly-normalized
    /// reference to 1e-9 — values, marginals, totals, windows, and the
    /// *value* of every cached argmax (argmax indices may differ only
    /// on sub-EPS ties, so they are compared by optimality, not id).
    #[test]
    fn lazy_map_matches_eager_reference(
        ops in proptest::collection::vec(diff_op_strategy(3, 3, 4), 1..80)
    ) {
        const N: usize = 3;
        const C: usize = 3;
        const T: usize = 4;
        let mut lazy = PreferenceMap::new(N, C, T);
        let mut eager = EagerMap::new(N, C, T);
        for op in ops {
            match op {
                DiffOp::Scale { i, c, t, f } => {
                    lazy.scale(InstrId::new(i as u32), ClusterId::new(c as u16), t as u32, f);
                    eager.scale(i, c, t, f);
                }
                DiffOp::ScaleCluster { i, c, f } => {
                    lazy.scale_cluster(InstrId::new(i as u32), ClusterId::new(c as u16), f);
                    eager.scale_cluster(i, c, f);
                }
                DiffOp::ScaleTime { i, t, f } => {
                    lazy.scale_time(InstrId::new(i as u32), t as u32, f);
                    eager.scale_time(i, t, f);
                }
                DiffOp::Add { i, c, t, d } => {
                    lazy.add(InstrId::new(i as u32), ClusterId::new(c as u16), t as u32, d);
                    eager.add(i, c, t, d);
                }
                DiffOp::Set { i, c, t, v } => {
                    lazy.set(InstrId::new(i as u32), ClusterId::new(c as u16), t as u32, v);
                    let k = eager.idx(i, c, t);
                    eager.w[k] = v;
                }
                DiffOp::SetWindow { i, lo, len } => {
                    let lo = lo as u32;
                    let hi = (lo + len as u32).min(T as u32 - 1);
                    // Skip proposals disjoint from the current window
                    // (both implementations would panic).
                    let (cur_lo, cur_hi) = eager.window[i];
                    if lo.max(cur_lo) <= hi.min(cur_hi) {
                        lazy.set_window(InstrId::new(i as u32), lo, hi);
                        eager.set_window(i, lo, hi);
                    }
                }
                DiffOp::Forbid { i, c } => {
                    lazy.forbid_cluster(InstrId::new(i as u32), ClusterId::new(c as u16));
                    eager.forbid_cluster(i, c);
                }
                DiffOp::Reset { i } => {
                    lazy.reset_uniform(InstrId::new(i as u32));
                    eager.reset_uniform(i);
                }
                DiffOp::Materialize { i } => {
                    // Eager has nothing pending: materialize is a pure
                    // no-op on the visible values.
                    lazy.materialize(InstrId::new(i as u32));
                }
                DiffOp::Normalize { i } => {
                    lazy.normalize(InstrId::new(i as u32));
                    eager.normalize(i);
                }
                DiffOp::NormalizeAll => {
                    lazy.normalize_all();
                    for i in 0..N {
                        eager.normalize(i);
                    }
                }
                DiffOp::SetMarginal { i, ref target } => {
                    lazy.set_cluster_marginal(InstrId::new(i as u32), target);
                    eager.set_cluster_marginal(i, target);
                }
            }
            // Full comparison after every op (the maps are tiny).
            for i in 0..N {
                let id = InstrId::new(i as u32);
                for c in 0..C {
                    let cid = ClusterId::new(c as u16);
                    for t in 0..T {
                        let a = lazy.get(id, cid, t as u32);
                        let b = eager.get(i, c, t);
                        prop_assert!((a - b).abs() < 1e-9,
                            "W[{i},{c},{t}]: lazy {a} vs eager {b} after {op:?}");
                    }
                    let (a, b) = (lazy.cluster_weight(id, cid), eager.cluster_weight(i, c));
                    prop_assert!((a - b).abs() < 1e-9,
                        "cluster[{i},{c}]: lazy {a} vs eager {b} after {op:?}");
                }
                for t in 0..T {
                    let (a, b) = (lazy.time_weight(id, t as u32), eager.time_weight(i, t));
                    prop_assert!((a - b).abs() < 1e-9,
                        "time[{i},{t}]: lazy {a} vs eager {b} after {op:?}");
                }
                let (a, b) = (lazy.total(id), eager.total(i));
                prop_assert!((a - b).abs() < 1e-9, "total[{i}]: {a} vs {b} after {op:?}");
                prop_assert_eq!(lazy.window(id), eager.window[i]);
                // Cached argmaxes must be value-optimal against the
                // eager marginals.
                let pref = lazy.cluster_weight(id, lazy.preferred_cluster(id));
                let best = (0..C).map(|c| eager.cluster_weight(i, c)).fold(f64::MIN, f64::max);
                prop_assert!((pref - best).abs() < 1e-9,
                    "preferred_cluster[{i}]: {pref} vs {best} after {op:?}");
                let tpref = lazy.time_weight(id, lazy.preferred_time(id).get());
                let tbest = (0..T).map(|t| eager.time_weight(i, t)).fold(f64::MIN, f64::max);
                prop_assert!((tpref - tbest).abs() < 1e-9,
                    "preferred_time[{i}]: {tpref} vs {tbest} after {op:?}");
            }
        }
    }

    /// The heart of the banded rework: the banded layout must agree
    /// with the retained dense reference layout **bit for bit** —
    /// weights, marginals, totals, windows, and every derived argmax
    /// quantity — under arbitrary op streams, including window shrinks
    /// (band compaction) and out-of-band absolute writes (band
    /// growth/re-anchoring). Exact equality, not a tolerance: identical
    /// op sequences must produce identical schedules.
    #[test]
    fn banded_map_matches_dense_reference_exactly(
        ops in proptest::collection::vec(diff_op_strategy(3, 3, 8), 1..80)
    ) {
        const N: usize = 3;
        const C: usize = 3;
        const T: usize = 8;
        let mut banded = PreferenceMap::new(N, C, T);
        let mut dense = PreferenceMap::new_dense(N, C, T);
        for op in ops {
            {
                let apply = |w: &mut PreferenceMap| match op {
                    DiffOp::Scale { i, c, t, f } => {
                        w.scale(InstrId::new(i as u32), ClusterId::new(c as u16), t as u32, f);
                    }
                    DiffOp::ScaleCluster { i, c, f } => {
                        w.scale_cluster(InstrId::new(i as u32), ClusterId::new(c as u16), f);
                    }
                    DiffOp::ScaleTime { i, t, f } => {
                        w.scale_time(InstrId::new(i as u32), t as u32, f);
                    }
                    DiffOp::Add { i, c, t, d } => {
                        w.add(InstrId::new(i as u32), ClusterId::new(c as u16), t as u32, d);
                    }
                    DiffOp::Set { i, c, t, v } => {
                        w.set(InstrId::new(i as u32), ClusterId::new(c as u16), t as u32, v);
                    }
                    DiffOp::SetWindow { i, lo, len } => {
                        let lo = lo as u32;
                        let hi = (lo + len as u32).min(T as u32 - 1);
                        // Skip proposals disjoint from the current
                        // window (both layouts would panic).
                        let (cur_lo, cur_hi) = w.window(InstrId::new(i as u32));
                        if lo.max(cur_lo) <= hi.min(cur_hi) {
                            w.set_window(InstrId::new(i as u32), lo, hi);
                        }
                    }
                    DiffOp::Forbid { i, c } => {
                        w.forbid_cluster(InstrId::new(i as u32), ClusterId::new(c as u16));
                    }
                    DiffOp::Reset { i } => w.reset_uniform(InstrId::new(i as u32)),
                    DiffOp::Materialize { i } => w.materialize(InstrId::new(i as u32)),
                    DiffOp::Normalize { i } => w.normalize(InstrId::new(i as u32)),
                    DiffOp::NormalizeAll => w.normalize_all(),
                    DiffOp::SetMarginal { i, ref target } => {
                        w.set_cluster_marginal(InstrId::new(i as u32), target);
                    }
                };
                apply(&mut banded);
                apply(&mut dense);
            }
            // Full bitwise comparison after every op.
            for i in 0..N {
                let id = InstrId::new(i as u32);
                prop_assert_eq!(banded.window(id), dense.window(id));
                for c in 0..C {
                    let cid = ClusterId::new(c as u16);
                    for t in 0..T {
                        let (a, b) = (banded.get(id, cid, t as u32), dense.get(id, cid, t as u32));
                        prop_assert_eq!(a.to_bits(), b.to_bits(),
                            "W[{},{},{}]: banded {} vs dense {} after {:?}", i, c, t, a, b, op);
                    }
                    let (a, b) = (banded.cluster_weight(id, cid), dense.cluster_weight(id, cid));
                    prop_assert_eq!(a.to_bits(), b.to_bits(),
                        "cluster[{},{}]: banded {} vs dense {} after {:?}", i, c, a, b, op);
                    prop_assert_eq!(banded.cluster_feasible(id, cid), dense.cluster_feasible(id, cid));
                }
                for t in 0..T {
                    let (a, b) = (banded.time_weight(id, t as u32), dense.time_weight(id, t as u32));
                    prop_assert_eq!(a.to_bits(), b.to_bits(),
                        "time[{},{}]: banded {} vs dense {} after {:?}", i, t, a, b, op);
                }
                prop_assert_eq!(banded.total(id).to_bits(), dense.total(id).to_bits());
                // Derived quantities decide schedules; they must match
                // exactly, not just up to value ties.
                prop_assert_eq!(banded.preferred_cluster(id), dense.preferred_cluster(id),
                    "preferred_cluster[{}] after {:?}", i, op);
                prop_assert_eq!(banded.runnerup_cluster(id), dense.runnerup_cluster(id),
                    "runnerup[{}] after {:?}", i, op);
                prop_assert_eq!(banded.preferred_time(id), dense.preferred_time(id),
                    "preferred_time[{}] after {:?}", i, op);
                prop_assert_eq!(banded.confidence(id).to_bits(), dense.confidence(id).to_bits(),
                    "confidence[{}] after {:?}", i, op);
                // The band must always cover every nonzero slot.
                let (blo, bhi) = banded.band(id);
                for t in 0..T as u32 {
                    if banded.time_weight(id, t) != 0.0 {
                        prop_assert!(blo <= t && t <= bhi,
                            "band [{},{}] misses live slot {} of i{}", blo, bhi, t, i);
                    }
                }
            }
        }
    }
}
