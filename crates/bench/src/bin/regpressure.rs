//! Register-pressure study (extension beyond the paper's evaluation).
//!
//! The paper names register pressure as part of its combined problem
//! ("cluster assignment, scheduling, and register pressure") but only
//! evaluates assignment quality. This harness measures the pressure
//! side: for each Raw-suite benchmark, the peak number of
//! simultaneously live values and the Belady-estimated spills under
//! (a) the Rawcc baseline, (b) the stock convergent sequence, and
//! (c) the convergent sequence with the REGPRESS pass appended and
//! converged times used as priorities.
//!
//! ```text
//! cargo run --release -p convergent-bench --bin regpressure [-- --regs N]
//! ```

use convergent_core::passes::{
    Comm, EmphCp, InitTime, LevelDistribute, LoadBalance, Path, PathProp, Place, PlaceProp,
    RegPressure,
};
use convergent_core::{ConvergentScheduler, Sequence};
use convergent_machine::Machine;
use convergent_schedulers::{RawccScheduler, Scheduler};
use convergent_sim::{analyze_pressure, validate};
use convergent_workloads::raw_suite;

fn raw_seq_with_regpress() -> Sequence {
    Sequence::new()
        .with(InitTime::new())
        .with(PlaceProp::new())
        .with(LoadBalance::new())
        .with(Place::new())
        .with(Path::new())
        .with(PathProp::new())
        .with(LevelDistribute::new())
        .with(PathProp::new())
        .with(Comm::new())
        .with(PathProp::new())
        .with(RegPressure::new())
        .with(EmphCp::new())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let regs: u32 = args
        .iter()
        .position(|a| a == "--regs")
        .and_then(|k| args.get(k + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let machine = Machine::raw(16).with_registers_per_cluster(regs);
    println!("register file: {regs} per tile\n");
    println!(
        "{:<14}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "bench", "peakR", "spillR", "peakC", "spillC", "peakC+RP", "spillC+RP"
    );
    for unit in raw_suite(16) {
        let r = RawccScheduler::new()
            .schedule(unit.dag(), &machine)
            .expect("rawcc schedules");
        validate(unit.dag(), &machine, &r).expect("valid");
        let pr = analyze_pressure(unit.dag(), &machine, &r);

        let c = Scheduler::schedule(&ConvergentScheduler::raw_default(), unit.dag(), &machine)
            .expect("convergent schedules");
        validate(unit.dag(), &machine, &c).expect("valid");
        let pc = analyze_pressure(unit.dag(), &machine, &c);

        let crp = Scheduler::schedule(
            &ConvergentScheduler::new(raw_seq_with_regpress()).with_time_priorities(true),
            unit.dag(),
            &machine,
        )
        .expect("convergent+regpress schedules");
        validate(unit.dag(), &machine, &crp).expect("valid");
        let prp = analyze_pressure(unit.dag(), &machine, &crp);

        println!(
            "{:<14}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}",
            unit.name(),
            pr.max_peak(),
            pr.total_spills(),
            pc.max_peak(),
            pc.total_spills(),
            prp.max_peak(),
            prp.total_spills(),
        );
    }
}
