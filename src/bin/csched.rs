//! `csched` — schedule a dependence graph from the command line.
//!
//! ```text
//! csched <input.cdag | --workload NAME> [options]
//! csched verify <input.cdag | --workload NAME> [options]
//! csched lint <input.cdag | --workload NAME | --all-workloads> [options]
//! csched analyze [--sequence raw|vliw|vliw-tuned] [options]
//! csched trace-check <trace.json> [--machine rawN|vliwN]
//!
//! options:
//!   --machine raw<N> | vliw<N>    target machine        (default vliw4)
//!   --scheduler convergent|uas|pcc|rawcc|bug            (default convergent)
//!   --workload NAME               use a built-in benchmark instead of a file
//!   --list-workloads              print the built-in benchmark names
//!   --dump                        print the input graph as .cdag and exit
//!   --dot                         print the input graph as Graphviz DOT and exit
//!   --pressure                    also report register pressure
//!   --profile                     print per-pass wall-clock breakdown
//!                                 (convergent scheduler only)
//!   --trace FILE                  write a Chrome trace-event JSON of the
//!                                 run (convergent scheduler only; load in
//!                                 Perfetto / chrome://tracing)
//!   --threads N                   intra-pass worker threads
//!                                 (convergent scheduler only)
//!   --shards N                    schedule graph regions concurrently
//!                                 (convergent only; identity when the
//!                                 graph fits one region)
//!   --region-size N               target instructions per region when
//!                                 sharding (convergent only; default
//!                                 tuned from the compile-time bench)
//!   --verbose                     print per-instruction placement
//! ```
//!
//! Examples:
//!
//! ```text
//! csched --workload mxm --machine raw16 --scheduler convergent
//! csched mygraph.cdag --machine vliw4 --scheduler uas --pressure
//! csched --workload sha --dump > sha.cdag
//! ```
//!
//! The `verify` subcommand replays a graph (typically a `.cdag` repro
//! dumped by the fuzz harness) through one scheduler — or all of them
//! when `--scheduler` is omitted — validating each schedule and
//! cross-checking the cycle-driven evaluator against the event-driven
//! oracle:
//!
//! ```text
//! csched verify repro.cdag --machine raw4
//! csched verify --workload fir --machine vliw8 --scheduler pcc
//! csched verify --workload mxm --json
//! ```
//!
//! With `--json`, `verify` emits a machine-readable run report
//! instead: lint diagnostics, per-scheduler referee results, and — for
//! the convergent scheduler — the run's telemetry (hot-path counter
//! totals and per-pass convergence metrics).
//!
//! `verify` lints its input first: a malformed `.cdag` (cycle,
//! dangling edge, impossible preplacement, …) is reported as `CSxxx`
//! diagnostics naming the offending instructions, before any
//! scheduler runs.
//!
//! The `lint` subcommand runs the static analyzer alone — no
//! scheduling — over a `.cdag` file, one workload, or every builtin
//! workload, and also verifies the machine-matched pass sequence
//! against its declared contracts:
//!
//! ```text
//! csched lint repro.cdag --machine raw4
//! csched lint --all-workloads --machine vliw4 --deny warnings
//! csched lint --workload mxm --json
//! ```
//!
//! Lint-specific options:
//!
//! ```text
//!   --all-workloads     lint every builtin workload
//!   --json              machine-readable report on stdout; also embeds
//!                       a convergent-run telemetry snapshot (counter
//!                       totals + convergence metrics) per clean target
//!   --deny warnings     exit nonzero on warnings, not just errors
//!   --pedantic          enable the advisory analyses (CS013/CS030/CS031)
//!   --region-size N     judge shardability (CS041) against this region
//!                       target instead of the scheduler default
//! ```
//!
//! The `analyze` subcommand runs the abstract pass-effect interpreter
//! over pass *sequences* — no input graph and no scheduler run at all.
//! Each pass's declared effect summary is symbolically executed to
//! prove (or statically refute) its contract clauses, and the whole
//! pipeline is checked for dataflow smells (`CS07x`: windows read
//! before established, dead passes, redundant trailing normalization,
//! noise after deterministic bias, undecidable confidence):
//!
//! ```text
//! csched analyze --machine raw4
//! csched analyze --sequence vliw-tuned --deny warnings
//! csched analyze --sequence raw --sequence vliw --json
//! ```
//!
//! Analyze-specific options:
//!
//! ```text
//!   --sequence NAME       analyze a builtin sequence (raw, vliw,
//!                         vliw-tuned; repeatable). Default: the
//!                         machine-matched sequence
//!   --json                machine-readable report on stdout
//!   --deny warnings       exit nonzero on warnings, not just errors
//!   --with-broken-probe   append a deliberately broken probe pass
//!                         (out-of-window absolute write) — exercises
//!                         the static refutation path end to end
//! ```
//!
//! The `trace-check` subcommand validates a `--trace` output file:
//! well-formed Chrome trace-event JSON, nondecreasing timestamps, and
//! a span for every pass of the machine-matched sequence.

use std::process::ExitCode;

use convergent_scheduling::analysis::{
    analyze_pipeline, lint_raw, lint_unit, prove_contract, ContractClaims, EffectOp, Interval,
    LintOptions, LintReport, PassEffect, PassSummary, Severity, Verdict,
};
use convergent_scheduling::core::telemetry::{
    validate_chrome_trace, ChromeTraceSink, CounterTotals, MultiSink, TelemetryBuffer,
    TelemetrySink,
};
use convergent_scheduling::core::{
    contract, ConvergentScheduler, CutVerdict, PassProfile, Sequence,
};
use convergent_scheduling::ir::Dag;
use convergent_scheduling::ir::{parse_raw, parse_unit, to_dot, to_text, SchedulingUnit};
use convergent_scheduling::machine::Machine;
use convergent_scheduling::schedulers::{
    BugScheduler, PccScheduler, RawccScheduler, Scheduler, UasScheduler,
};
use convergent_scheduling::sim::{analyze_pressure, cross_check, evaluate, validate};
use convergent_scheduling::workloads as wl;

struct Options {
    input: Option<String>,
    workload: Option<String>,
    machine: String,
    scheduler: String,
    threads: usize,
    shards: usize,
    region_size: Option<usize>,
    dump: bool,
    dot: bool,
    pressure: bool,
    profile: bool,
    trace: Option<String>,
    json: bool,
    verbose: bool,
}

fn usage() -> &'static str {
    "usage: csched [verify|lint|analyze|trace-check] <input.cdag | --workload NAME> [--machine rawN|vliwN] \
     [--scheduler convergent|uas|pcc|rawcc|bug] [--threads N] [--shards N] [--region-size N] [--dump] [--dot] [--pressure] \
     [--profile] [--trace FILE] [--verbose] [--list-workloads]\n\
     verify also: [--json]\n\
     lint only: [--all-workloads] [--json] [--deny warnings] [--pedantic] [--region-size N]\n\
     analyze: csched analyze [--machine rawN|vliwN] [--sequence raw|vliw|vliw-tuned] [--json] \
     [--deny warnings] [--with-broken-probe]\n\
     trace-check: csched trace-check <trace.json> [--machine rawN|vliwN]"
}

const WORKLOADS: &[&str] = &[
    "cholesky",
    "tomcatv",
    "vpenta",
    "mxm",
    "fpppp-kernel",
    "sha",
    "swim",
    "jacobi",
    "life",
    "vvmul",
    "rbsorf",
    "yuv",
    "fir",
];

fn builtin_workload(name: &str, banks: u16) -> Option<SchedulingUnit> {
    Some(match name {
        "cholesky" => wl::cholesky(wl::CholeskyParams::for_banks(banks)),
        "tomcatv" => wl::tomcatv(wl::StencilParams::for_banks(banks)),
        "vpenta" => wl::vpenta(wl::VpentaParams::for_banks(banks)),
        "mxm" => wl::mxm(wl::MxmParams::for_banks(banks)),
        "fpppp-kernel" => wl::fpppp_kernel(wl::FppppParams::small()),
        "sha" => wl::sha(wl::ShaParams::small()),
        "swim" => wl::swim(wl::StencilParams::for_banks(banks)),
        "jacobi" => wl::jacobi(wl::StencilParams::for_banks(banks)),
        "life" => wl::life(wl::StencilParams::for_banks(banks)),
        "vvmul" => wl::vvmul(wl::VvmulParams::for_banks(banks)),
        "rbsorf" => wl::rbsorf(wl::StencilParams::for_banks(banks)),
        "yuv" => wl::yuv(wl::YuvParams::for_banks(banks)),
        "fir" => wl::fir(wl::FirParams::for_banks(banks)),
        _ => return None,
    })
}

fn parse_machine(spec: &str) -> Option<Machine> {
    if let Some(n) = spec.strip_prefix("raw") {
        return n.parse().ok().map(Machine::raw);
    }
    if let Some(n) = spec.strip_prefix("vliw") {
        return n.parse().ok().map(Machine::chorus_vliw);
    }
    None
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        input: None,
        workload: None,
        machine: "vliw4".to_string(),
        scheduler: "convergent".to_string(),
        threads: 1,
        shards: 1,
        region_size: None,
        dump: false,
        dot: false,
        pressure: false,
        profile: false,
        trace: None,
        json: false,
        verbose: false,
    };
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--machine" => {
                k += 1;
                opts.machine = args.get(k).ok_or("--machine takes a value")?.clone();
            }
            "--scheduler" => {
                k += 1;
                opts.scheduler = args.get(k).ok_or("--scheduler takes a value")?.clone();
            }
            "--workload" => {
                k += 1;
                opts.workload = Some(args.get(k).ok_or("--workload takes a value")?.clone());
            }
            "--threads" => {
                k += 1;
                opts.threads = args
                    .get(k)
                    .ok_or("--threads takes a value")?
                    .parse()
                    .map_err(|_| "--threads takes a positive integer".to_string())?;
                if opts.threads == 0 {
                    return Err("--threads takes a positive integer".to_string());
                }
            }
            "--shards" => {
                k += 1;
                opts.shards = args
                    .get(k)
                    .ok_or("--shards takes a value")?
                    .parse()
                    .map_err(|_| "--shards takes a positive integer".to_string())?;
                if opts.shards == 0 {
                    return Err("--shards takes a positive integer".to_string());
                }
            }
            "--region-size" => {
                k += 1;
                let n: usize = args
                    .get(k)
                    .ok_or("--region-size takes a value")?
                    .parse()
                    .map_err(|_| "--region-size takes a positive integer".to_string())?;
                if n == 0 {
                    return Err("--region-size takes a positive integer".to_string());
                }
                opts.region_size = Some(n);
            }
            "--list-workloads" => {
                for w in WORKLOADS {
                    println!("{w}");
                }
                std::process::exit(0);
            }
            "--dump" => opts.dump = true,
            "--dot" => opts.dot = true,
            "--pressure" => opts.pressure = true,
            "--profile" => opts.profile = true,
            "--trace" => {
                k += 1;
                opts.trace = Some(args.get(k).ok_or("--trace takes a file path")?.clone());
            }
            "--json" => opts.json = true,
            "--verbose" => opts.verbose = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if !other.starts_with('-') => opts.input = Some(other.to_string()),
            other => return Err(format!("unknown option '{other}'")),
        }
        k += 1;
    }
    if opts.input.is_none() && opts.workload.is_none() {
        return Err("need an input file or --workload".to_string());
    }
    Ok(opts)
}

fn make_scheduler(
    name: &str,
    machine: &Machine,
    threads: usize,
    shards: usize,
    region_size: Option<usize>,
) -> Result<Box<dyn Scheduler>, String> {
    if threads > 1 && name != "convergent" {
        return Err(format!(
            "--threads applies to the convergent scheduler only (got '{name}')"
        ));
    }
    if shards > 1 && name != "convergent" {
        return Err(format!(
            "--shards applies to the convergent scheduler only (got '{name}')"
        ));
    }
    if region_size.is_some() && name != "convergent" {
        return Err(format!(
            "--region-size applies to the convergent scheduler only (got '{name}')"
        ));
    }
    Ok(match name {
        "convergent" => Box::new(convergent_driver(machine, threads, shards, region_size)),
        "uas" => Box::new(UasScheduler::new()),
        "pcc" => Box::new(PccScheduler::new()),
        "rawcc" => Box::new(RawccScheduler::new()),
        "bug" => Box::new(BugScheduler::new()),
        other => return Err(format!("unknown scheduler '{other}'")),
    })
}

/// The machine-matched concrete convergent driver — the `--profile` /
/// `--trace` / telemetry paths need the real type, not `dyn
/// Scheduler`.
fn convergent_driver(
    machine: &Machine,
    threads: usize,
    shards: usize,
    region_size: Option<usize>,
) -> ConvergentScheduler {
    let s = if machine.comm().register_mapped {
        ConvergentScheduler::raw_default()
    } else {
        ConvergentScheduler::vliw_tuned()
    };
    let s = s.with_threads(threads).with_shards(shards);
    match region_size {
        Some(n) => s.with_region_size(n),
        None => s,
    }
}

/// Renders a captured telemetry buffer as the `"telemetry"` JSON
/// object the `--json` reports embed: counter totals (plus the derived
/// argmax hit rate) and per-pass convergence metrics.
fn telemetry_to_json(buf: &TelemetryBuffer) -> String {
    let totals = buf.counter_total();
    let hit_rate = totals
        .argmax_hit_rate()
        .map_or_else(|| "null".to_string(), |r| format!("{r:.6}"));
    let convergence: Vec<String> = buf
        .convergence_entries()
        .map(|(path, m)| {
            format!(
                "{{\"pass\":\"{}\",\"metrics\":{}}}",
                escape_json(path),
                m.to_json()
            )
        })
        .collect();
    format!(
        "{{\"counters\":{},\"argmax_hit_rate\":{hit_rate},\"convergence\":[{}]}}",
        totals.to_json(),
        convergence.join(",")
    )
}

/// Runs the convergent driver over `dag` with a full-interest buffer
/// and returns the rendered telemetry JSON, or `null` when scheduling
/// fails (the caller reports the failure through its own channel).
fn convergent_telemetry_json(dag: &Dag, machine: &Machine) -> String {
    let mut buf = TelemetryBuffer::new();
    match convergent_driver(machine, 1, 1, None).schedule_with_sink(dag, machine, &mut buf) {
        Ok(_) => telemetry_to_json(&buf),
        Err(_) => "null".to_string(),
    }
}

fn resolve_unit(opts: &Options, machine: &Machine) -> Result<SchedulingUnit, String> {
    match (&opts.workload, &opts.input) {
        (Some(w), _) => builtin_workload(w, machine.n_clusters() as u16)
            .ok_or_else(|| format!("unknown workload '{w}' (try --list-workloads)")),
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            parse_unit(&text).map_err(|e| format!("parsing {path}: {e}"))
        }
        (None, None) => unreachable!("checked in parse_args"),
    }
}

struct LintArgs {
    input: Option<String>,
    workloads: Vec<String>,
    machine: String,
    json: bool,
    deny_warnings: bool,
    pedantic: bool,
    region_size: Option<usize>,
}

fn parse_lint_args(args: &[String]) -> Result<LintArgs, String> {
    let mut opts = LintArgs {
        input: None,
        workloads: Vec::new(),
        machine: "vliw4".to_string(),
        json: false,
        deny_warnings: false,
        pedantic: false,
        region_size: None,
    };
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--machine" => {
                k += 1;
                opts.machine = args.get(k).ok_or("--machine takes a value")?.clone();
            }
            "--workload" => {
                k += 1;
                opts.workloads
                    .push(args.get(k).ok_or("--workload takes a value")?.clone());
            }
            "--all-workloads" => {
                opts.workloads = WORKLOADS.iter().map(ToString::to_string).collect();
            }
            "--json" => opts.json = true,
            "--deny" => {
                k += 1;
                match args.get(k).map(String::as_str) {
                    Some("warnings") => opts.deny_warnings = true,
                    other => {
                        return Err(format!(
                            "--deny takes 'warnings', got {}",
                            other.unwrap_or("nothing")
                        ))
                    }
                }
            }
            "--pedantic" => opts.pedantic = true,
            "--region-size" => {
                k += 1;
                let n: usize = args
                    .get(k)
                    .ok_or("--region-size takes a value")?
                    .parse()
                    .map_err(|_| "--region-size takes a positive integer".to_string())?;
                if n == 0 {
                    return Err("--region-size takes a positive integer".to_string());
                }
                opts.region_size = Some(n);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if !other.starts_with('-') => opts.input = Some(other.to_string()),
            other => return Err(format!("unknown option '{other}'")),
        }
        k += 1;
    }
    if opts.input.is_none() && opts.workloads.is_empty() {
        return Err("need an input file, --workload, or --all-workloads".to_string());
    }
    Ok(opts)
}

/// Minimal JSON string escaping for target names.
fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// `csched lint`: run the static analyzer over the requested inputs
/// and verify the machine-matched pass sequence against its declared
/// contracts, without scheduling anything.
fn run_lint(args: &[String]) -> Result<(), String> {
    let opts = parse_lint_args(args)?;
    let machine = parse_machine(&opts.machine)
        .ok_or_else(|| format!("unknown machine '{}' (use rawN or vliwN)", opts.machine))?;
    let mut lint_opts = if opts.pedantic {
        LintOptions::pedantic()
    } else {
        LintOptions::default()
    };
    if let Some(rs) = opts.region_size {
        // The shardability analyses must judge cuts against the
        // region target the scheduler will actually run with.
        lint_opts = lint_opts.with_region_size(rs);
    }

    let mut targets: Vec<(String, LintReport, Option<SchedulingUnit>)> = Vec::new();
    if let Some(path) = &opts.input {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let raw = parse_raw(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        let report = lint_raw(&raw, &machine, lint_opts);
        let unit = (opts.json && report.errors().next().is_none())
            .then(|| raw.build())
            .and_then(Result::ok);
        targets.push((raw.name().to_string(), report, unit));
    }
    for w in &opts.workloads {
        let unit = builtin_workload(w, machine.n_clusters() as u16)
            .ok_or_else(|| format!("unknown workload '{w}' (try --list-workloads)"))?;
        let report = lint_unit(&unit, &machine, lint_opts);
        targets.push((w.clone(), report, opts.json.then_some(unit)));
    }

    // The sequence `csched` would run on this machine must honor the
    // pass contracts, or its diagnostics-over-panics guarantee is void.
    let sequence = if machine.comm().register_mapped {
        Sequence::raw()
    } else {
        Sequence::vliw_tuned()
    };
    let contract_diags = contract::verify_sequence(&sequence, &machine);

    if opts.json {
        let contracts: Vec<String> = contract_diags.iter().map(|d| d.to_json()).collect();
        let targets_json: Vec<String> = targets
            .iter()
            .map(|(name, report, unit)| {
                // The JSON run report also carries a telemetry snapshot
                // from one convergent run of each lint-clean target:
                // counter totals plus per-pass convergence metrics.
                let telemetry = unit.as_ref().map_or_else(
                    || "null".to_string(),
                    |u| convergent_telemetry_json(u.dag(), &machine),
                );
                format!(
                    "{{\"name\":\"{}\",\"diagnostics\":{},\"telemetry\":{telemetry}}}",
                    escape_json(name),
                    report.to_json()
                )
            })
            .collect();
        println!(
            "{{\"machine\":\"{}\",\"contracts\":[{}],\"targets\":[{}]}}",
            escape_json(machine.name()),
            contracts.join(","),
            targets_json.join(",")
        );
    } else {
        if contract_diags.is_empty() {
            println!(
                "machine {machine}: {} passes honor their contracts",
                sequence.len()
            );
        } else {
            println!("machine {machine}: pass contract violations:");
            for d in &contract_diags {
                println!("  {d}");
            }
        }
        for (name, report, _) in &targets {
            let (errors, warnings, notes) = report.counts();
            if report.is_empty() {
                println!("{name}: clean");
            } else {
                println!("{name}: {errors} error(s), {warnings} warning(s), {notes} note(s)");
                for d in report.diagnostics() {
                    println!("  {d}");
                }
            }
        }
    }

    // One exit-code rule for lint and analyze alike: nonzero iff any
    // diagnostic — target or contract — reaches the denied severity
    // (errors always; warnings too under `--deny warnings`; notes
    // never). Contract findings get the same threshold rather than
    // being unconditionally fatal.
    let threshold = deny_threshold(opts.deny_warnings);
    let dirty = targets
        .iter()
        .filter(|(_, r, _)| !r.is_clean(opts.deny_warnings))
        .count();
    let contract_dirty = contract_diags
        .iter()
        .filter(|d| d.severity >= threshold)
        .count();
    if dirty > 0 || contract_dirty > 0 {
        // Findings are the tool working as intended, not a usage
        // error: report and exit without the usage banner.
        eprintln!(
            "csched: lint failed: {dirty} of {} target(s) dirty, {contract_dirty} contract violation(s)",
            targets.len(),
        );
        std::process::exit(1);
    }
    Ok(())
}

/// The severity at which findings start failing the run.
fn deny_threshold(deny_warnings: bool) -> Severity {
    if deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    }
}

struct AnalyzeArgs {
    machine: String,
    sequences: Vec<String>,
    json: bool,
    deny_warnings: bool,
    with_broken_probe: bool,
}

fn parse_analyze_args(args: &[String]) -> Result<AnalyzeArgs, String> {
    let mut opts = AnalyzeArgs {
        machine: "vliw4".to_string(),
        sequences: Vec::new(),
        json: false,
        deny_warnings: false,
        with_broken_probe: false,
    };
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--machine" => {
                k += 1;
                opts.machine = args.get(k).ok_or("--machine takes a value")?.clone();
            }
            "--sequence" => {
                k += 1;
                opts.sequences
                    .push(args.get(k).ok_or("--sequence takes a value")?.clone());
            }
            "--json" => opts.json = true,
            "--deny" => {
                k += 1;
                match args.get(k).map(String::as_str) {
                    Some("warnings") => opts.deny_warnings = true,
                    other => {
                        return Err(format!(
                            "--deny takes 'warnings', got {}",
                            other.unwrap_or("nothing")
                        ))
                    }
                }
            }
            "--with-broken-probe" => opts.with_broken_probe = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
        k += 1;
    }
    Ok(opts)
}

fn builtin_sequence(name: &str) -> Option<Sequence> {
    Some(match name {
        "raw" => Sequence::raw(),
        "vliw" => Sequence::vliw(),
        "vliw-tuned" => Sequence::vliw_tuned(),
        _ => return None,
    })
}

/// A deliberately broken probe pass summary: an absolute write that
/// escapes the feasible window. The abstract interpreter must refute
/// `window_respecting` (`CS060`) without constructing a scheduler.
fn broken_probe_summary() -> PassSummary {
    PassSummary::new(
        "BROKEN-PROBE",
        ContractClaims::default(),
        PassEffect::new(vec![EffectOp::Absolute {
            in_window: false,
            value: Interval::new(0.0, 1.0),
            randomized: false,
            preserves_support: true,
        }]),
    )
}

fn verdict_str(v: Verdict) -> &'static str {
    match v {
        Verdict::Proven => "proven",
        Verdict::Unproven => "unproven",
        Verdict::RefutedStatic => "refuted",
    }
}

/// `csched analyze`: symbolically execute pass sequences through the
/// abstract interpreter — per-pass contract proofs plus pipeline
/// dataflow lints (`CS07x`) — without ever running a scheduler.
fn run_analyze(args: &[String]) -> Result<(), String> {
    let opts = parse_analyze_args(args)?;
    let machine = parse_machine(&opts.machine)
        .ok_or_else(|| format!("unknown machine '{}' (use rawN or vliwN)", opts.machine))?;
    let seq_names: Vec<String> = if opts.sequences.is_empty() {
        // The sequence `csched` would actually run on this machine.
        let name = if machine.comm().register_mapped {
            "raw"
        } else {
            "vliw-tuned"
        };
        vec![name.to_string()]
    } else {
        opts.sequences.clone()
    };

    let mut dirty = 0usize;
    let mut seq_json: Vec<String> = Vec::new();
    for name in &seq_names {
        let seq = builtin_sequence(name)
            .ok_or_else(|| format!("unknown sequence '{name}' (use raw, vliw, or vliw-tuned)"))?;
        let mut summaries = contract::summarize_sequence(&seq);
        if opts.with_broken_probe {
            summaries.push(broken_probe_summary());
        }

        let mut report = LintReport::new();
        let mut proven = 0usize;
        let mut unproven = 0usize;
        let mut refuted = 0usize;
        let mut pass_json: Vec<String> = Vec::new();
        let mut pass_lines: Vec<String> = Vec::new();
        for s in &summaries {
            let (proof, diags) = prove_contract(s);
            let (p, u, r) = proof.counts();
            proven += p;
            unproven += u;
            refuted += r;
            if opts.json {
                let clauses: Vec<String> = proof
                    .clauses()
                    .iter()
                    .map(|&(clause, v)| format!("\"{clause}\":\"{}\"", verdict_str(v)))
                    .collect();
                pass_json.push(format!(
                    "{{\"name\":\"{}\",\"clauses\":{{{}}}}}",
                    escape_json(&s.name),
                    clauses.join(",")
                ));
            } else if !proof.all_proven() {
                let fallbacks: Vec<String> = proof
                    .clauses()
                    .iter()
                    .filter(|&&(_, v)| v != Verdict::Proven)
                    .map(|&(clause, v)| format!("{clause}: {}", verdict_str(v)))
                    .collect();
                pass_lines.push(format!("  {}: {}", s.name, fallbacks.join(", ")));
            }
            for d in diags {
                report.push(d);
            }
        }
        report.merge(analyze_pipeline(&summaries, machine.n_clusters()));

        if opts.json {
            seq_json.push(format!(
                "{{\"sequence\":\"{}\",\"passes\":[{}],\"clauses\":{{\"proven\":{proven},\"unproven\":{unproven},\"refuted\":{refuted}}},\"diagnostics\":{}}}",
                escape_json(name),
                pass_json.join(","),
                report.to_json()
            ));
        } else {
            println!(
                "sequence {name} ({} passes): {proven} clause(s) proven, {unproven} unproven, {refuted} refuted",
                summaries.len()
            );
            for line in &pass_lines {
                println!("{line}");
            }
            for d in report.diagnostics() {
                println!("  {d}");
            }
        }
        if !report.is_clean(opts.deny_warnings) {
            dirty += 1;
        }
    }
    if opts.json {
        println!(
            "{{\"machine\":\"{}\",\"sequences\":[{}]}}",
            escape_json(machine.name()),
            seq_json.join(",")
        );
    }
    if dirty > 0 {
        eprintln!(
            "csched: analyze failed: {dirty} of {} sequence(s) dirty",
            seq_names.len()
        );
        std::process::exit(1);
    }
    Ok(())
}

/// `csched verify`: lint the input, then replay it through the
/// schedulers and hold every schedule to the full referee pair —
/// validation plus the evaluator/oracle cross-check the fuzz harness
/// relies on.
fn run_verify(args: &[String]) -> Result<(), String> {
    let explicit_scheduler = args.iter().any(|a| a == "--scheduler");
    let opts = parse_args(args)?;
    if opts.trace.is_some() {
        return Err("--trace applies to the schedule command, not verify".to_string());
    }
    let machine = parse_machine(&opts.machine)
        .ok_or_else(|| format!("unknown machine '{}' (use rawN or vliwN)", opts.machine))?;

    // Lint before scheduling: a malformed repro gets structured
    // diagnostics naming its instructions, not a scheduler panic.
    let (unit, report) = match (&opts.workload, &opts.input) {
        (Some(w), _) => {
            let unit = builtin_workload(w, machine.n_clusters() as u16)
                .ok_or_else(|| format!("unknown workload '{w}' (try --list-workloads)"))?;
            let report = lint_unit(&unit, &machine, LintOptions::default());
            (Some(unit), report)
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let raw = parse_raw(&text).map_err(|e| format!("parsing {path}: {e}"))?;
            let report = lint_raw(&raw, &machine, LintOptions::default());
            let unit = if report.errors().next().is_none() {
                Some(raw.build().map_err(|e| format!("building {path}: {e}"))?)
            } else {
                None
            };
            (unit, report)
        }
        (None, None) => unreachable!("checked in parse_args"),
    };
    if !opts.json {
        for d in report.diagnostics() {
            println!("lint: {d}");
        }
    }
    let Some(unit) = unit else {
        let (errors, _, _) = report.counts();
        return Err(format!(
            "input failed lint with {errors} error(s); not scheduling"
        ));
    };

    let names: Vec<String> = if explicit_scheduler {
        vec![opts.scheduler.clone()]
    } else {
        ["convergent", "uas", "pcc", "rawcc", "bug"]
            .iter()
            .map(ToString::to_string)
            .collect()
    };
    if !opts.json {
        println!(
            "{}: {} instrs, {} edges, machine {machine}",
            unit.name(),
            unit.dag().len(),
            unit.dag().edge_count()
        );
    }
    let mut failures = 0usize;
    let mut targets_json: Vec<String> = Vec::new();
    for name in &names {
        // The convergent driver runs through the telemetry entry point
        // so the JSON report can embed counter totals and per-pass
        // convergence metrics; the referee verdicts join the totals.
        let mut buf = (opts.json && name == "convergent").then(TelemetryBuffer::new);
        let scheduled = if let Some(buf) = buf.as_mut() {
            convergent_driver(&machine, 1, 1, None)
                .schedule_with_sink(unit.dag(), &machine, buf)
                .map(|out| out.into_schedule())
        } else {
            make_scheduler(name, &machine, 1, 1, None)?.schedule(unit.dag(), &machine)
        };
        let mut verdicts = CounterTotals::default();
        let mut cycles: Option<(u32, u32, u32)> = None;
        let outcome: Result<(), String> = match scheduled {
            Err(e) => Err(format!("scheduling: {e}")),
            Ok(schedule) => match validate(unit.dag(), &machine, &schedule) {
                Err(e) => {
                    verdicts.validate_fail = 1;
                    Err(format!("validation: {e}"))
                }
                Ok(()) => {
                    verdicts.validate_ok = 1;
                    match cross_check(unit.dag(), &machine, &schedule) {
                        Ok(Ok(report)) => {
                            verdicts.oracle_agree = 1;
                            cycles = Some((
                                report.makespan.get(),
                                report.nominal_makespan.get(),
                                report.network.stall_cycles,
                            ));
                            Ok(())
                        }
                        Ok(Err(e)) => {
                            verdicts.oracle_disagree = 1;
                            Err(format!("simulation: {e}"))
                        }
                        Err(d) => {
                            verdicts.oracle_disagree = 1;
                            Err(format!("cross-check: {d}"))
                        }
                    }
                }
            },
        };
        if opts.json {
            let telemetry = buf.map_or_else(
                || "null".to_string(),
                |mut buf| {
                    buf.counters("<referee>", &verdicts);
                    telemetry_to_json(&buf)
                },
            );
            let (status, error) = match &outcome {
                Ok(()) => ("ok".to_string(), "null".to_string()),
                Err(e) => ("fail".to_string(), format!("\"{}\"", escape_json(e))),
            };
            let cycles_json = cycles.map_or_else(
                || "null".to_string(),
                |(c, n, s)| format!("{{\"cycles\":{c},\"nominal\":{n},\"stall_cycles\":{s}}}"),
            );
            targets_json.push(format!(
                "{{\"scheduler\":\"{}\",\"status\":\"{status}\",\"error\":{error},\"result\":{cycles_json},\"telemetry\":{telemetry}}}",
                escape_json(name)
            ));
        } else {
            match (&outcome, cycles) {
                (Ok(()), Some((c, n, s))) => println!(
                    "{name:<12} ok: {c} cycles (nominal {n}), {s} stalls, simulators agree"
                ),
                (Err(e), _) => println!("{name:<12} FAIL {e}"),
                (Ok(()), None) => unreachable!("ok outcome always has a report"),
            }
        }
        if outcome.is_err() {
            failures += 1;
        }
    }
    if opts.json {
        let lint_json: Vec<String> = report.diagnostics().iter().map(|d| d.to_json()).collect();
        println!(
            "{{\"name\":\"{}\",\"machine\":\"{}\",\"instrs\":{},\"edges\":{},\"lint\":[{}],\"targets\":[{}]}}",
            escape_json(unit.name()),
            escape_json(machine.name()),
            unit.dag().len(),
            unit.dag().edge_count(),
            lint_json.join(","),
            targets_json.join(",")
        );
    }
    if failures > 0 {
        return Err(format!("{failures} of {} schedulers failed", names.len()));
    }
    Ok(())
}

/// `csched trace-check`: validate a `--trace` output file — parses as
/// Chrome trace-event JSON, timestamps nondecreasing, and every pass
/// of the machine-matched sequence has a span.
fn run_trace_check(args: &[String]) -> Result<(), String> {
    let mut file: Option<String> = None;
    let mut machine_spec = "vliw4".to_string();
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--machine" => {
                k += 1;
                machine_spec = args.get(k).ok_or("--machine takes a value")?.clone();
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => return Err(format!("unknown option '{other}'")),
        }
        k += 1;
    }
    let file = file.ok_or("trace-check needs a trace file")?;
    let machine = parse_machine(&machine_spec)
        .ok_or_else(|| format!("unknown machine '{machine_spec}' (use rawN or vliwN)"))?;
    let text = std::fs::read_to_string(&file).map_err(|e| format!("reading {file}: {e}"))?;
    let stats = validate_chrome_trace(&text).map_err(|e| format!("{file}: {e}"))?;
    let sequence = if machine.comm().register_mapped {
        Sequence::raw()
    } else {
        Sequence::vliw_tuned()
    };
    let missing: std::collections::BTreeSet<&str> = sequence
        .names()
        .into_iter()
        .filter(|n| !stats.span_names.contains(*n))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "{file}: trace names no span for pass(es) {missing:?} of the {machine} sequence"
        ));
    }
    println!(
        "{file}: ok — {} events ({} spans, {} counter samples), all {} passes named",
        stats.total_events,
        stats.span_events,
        stats.counter_events,
        sequence.len()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "verify") {
        return run_verify(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "lint") {
        return run_lint(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "analyze") {
        return run_analyze(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "trace-check") {
        return run_trace_check(&args[1..]);
    }
    let opts = parse_args(&args)?;

    let machine = parse_machine(&opts.machine)
        .ok_or_else(|| format!("unknown machine '{}' (use rawN or vliwN)", opts.machine))?;

    let unit = resolve_unit(&opts, &machine)?;

    if opts.dump {
        print!("{}", to_text(&unit));
        return Ok(());
    }
    if opts.dot {
        print!("{}", to_dot(unit.dag(), unit.name()));
        return Ok(());
    }

    if opts.json {
        return Err("--json applies to the verify and lint subcommands".to_string());
    }
    let scheduler = make_scheduler(
        &opts.scheduler,
        &machine,
        opts.threads,
        opts.shards,
        opts.region_size,
    )?;

    let mut trace_sink = opts.trace.as_ref().map(|_| ChromeTraceSink::new());
    let (schedule, profile, shard_note) = if opts.profile || trace_sink.is_some() {
        if opts.scheduler != "convergent" {
            return Err(
                "--profile/--trace are only supported for --scheduler convergent".to_string(),
            );
        }
        // Re-build the concrete driver: `Scheduler` has no telemetry
        // entry point, and only the convergent pipeline has passes.
        // `--profile` and `--trace` are just two sinks on one run.
        let sched = convergent_driver(&machine, opts.threads, opts.shards, opts.region_size);
        let mut profile = opts.profile.then(PassProfile::default);
        let out = {
            let mut multi = MultiSink::new();
            if let Some(p) = profile.as_mut() {
                multi.push(p);
            }
            if let Some(t) = trace_sink.as_mut() {
                multi.push(t);
            }
            sched
                .schedule_with_sink(unit.dag(), &machine, &mut multi)
                .map_err(|e| format!("scheduling failed: {e}"))?
        };
        let shard_note = match (out.shard_info(), out.governor()) {
            (Some(info), _) => Some(format!(
                "{} regions (sizes {:?}), {} boundary comm(s), {} cross edge(s), \
                 stitch {:.2}x critical path",
                info.shard_sizes.len(),
                info.shard_sizes,
                info.boundary_comms,
                info.cross_edges,
                info.stitch_ratio()
            )),
            (None, Some(a)) => Some(format!(
                "monolithic (governor rejected the cut: {}, {}/{} cross edges, \
                 largest region {} of {})",
                match a.verdict {
                    CutVerdict::RejectedCrossEdges => "cross-edge fraction",
                    CutVerdict::RejectedImbalance => "imbalance",
                    CutVerdict::Accepted => "accepted",
                },
                a.cross_edges,
                a.total_edges,
                a.largest_shard,
                unit.dag().len()
            )),
            (None, None) => None,
        };
        (out.into_schedule(), profile, shard_note)
    } else {
        let schedule = scheduler
            .schedule(unit.dag(), &machine)
            .map_err(|e| format!("scheduling failed: {e}"))?;
        (schedule, None, None)
    };
    validate(unit.dag(), &machine, &schedule)
        .map_err(|e| format!("produced schedule failed validation: {e}"))?;
    let report =
        evaluate(unit.dag(), &machine, &schedule).map_err(|e| format!("simulation failed: {e}"))?;

    let trace_note = if let (Some(t), Some(path)) = (trace_sink.as_mut(), opts.trace.as_ref()) {
        // The referee ran after the traced region; append its verdict
        // as a final counter sample, then write the file.
        t.note_counters(
            "referee",
            &CounterTotals {
                validate_ok: 1,
                ..CounterTotals::default()
            },
        );
        let events = t.len();
        t.save(path).map_err(|e| format!("writing {path}: {e}"))?;
        Some(format!("{path} ({events} events)"))
    } else {
        None
    };

    println!("{unit}");
    println!("machine:    {machine}");
    println!("scheduler:  {}", scheduler.name());
    if let Some(note) = &shard_note {
        println!("shards:     {note}");
    }
    println!(
        "cycles:     {} (nominal {})",
        report.makespan.get(),
        report.nominal_makespan
    );
    println!(
        "comm:       {} transfers, {} link-cycles, {} stall cycles",
        report.comm_ops, report.network.link_cycles, report.network.stall_cycles
    );
    println!("issue use:  {:.1}%", report.fu_utilization * 100.0);
    if let Some(note) = &trace_note {
        println!("trace:      {note}");
    }
    if opts.pressure {
        let p = analyze_pressure(unit.dag(), &machine, &schedule);
        println!(
            "registers:  peak {} of {}, {} spills",
            p.max_peak(),
            machine.registers_per_cluster(),
            p.total_spills()
        );
    }
    if let Some(p) = &profile {
        println!();
        print!("{}", p.render_table());
    }
    if opts.verbose {
        println!();
        for i in unit.dag().ids() {
            let op = schedule.op(i);
            println!(
                "  {i:>5} {:<8} {} @ {}",
                unit.dag().instr(i).opcode().to_string(),
                op.cluster,
                op.start
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("csched: {msg}");
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
