//! LEVEL — level distribution.
//!
//! "This pass distributes instructions at the same level across
//! clusters. … The primary goal is to distribute parallelism across
//! clusters. The second goal is to minimize potential communication.
//! To this end, the pass tries to distribute instructions that are far
//! apart, while keeping together instructions that are near each
//! other."
//!
//! Instructions in a band of `g` consecutive levels (the paper applies
//! it "every four levels on Raw" — four levels being roughly Raw's
//! minimum profitable parallelism granularity) are partitioned into
//! per-cluster *bins*. Bins are seeded with instructions already
//! confidently assigned (confidence > 2.0). The remaining instructions
//! are dealt out: instructions far (> `g`) from every bin — the
//! genuinely independent ones — are spread round-robin, each going to
//! the bin it is closest to (most isolated first when seeding an empty
//! bin); instructions near an existing bin simply join their closest
//! bin, keeping neighborhoods together. (The paper's pseudocode reads
//! `argmax{i ∈ Ig : distance(i, B)}` while naming the result
//! `iclosest`; we follow the name and the stated intent — nearest
//! wins — and flag the discrepancy here.)

use convergent_analysis::{EffectOp, Interval, PassEffect};
use convergent_ir::{ClusterId, InstrId, UNREACHABLE};

use crate::{Pass, PassContext};

/// The LEVEL pass. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct LevelDistribute {
    granularity: u32,
    confidence_threshold: f64,
    boost: f64,
}

impl LevelDistribute {
    /// Creates the pass with the paper's parameters: granularity 4,
    /// confidence threshold 2.0 (and a ×2 weight boost for the chosen
    /// bin).
    #[must_use]
    pub fn new() -> Self {
        LevelDistribute {
            granularity: 4,
            confidence_threshold: 2.0,
            boost: 2.0,
        }
    }

    /// Sets the level-band granularity `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is zero.
    #[must_use]
    pub fn with_granularity(mut self, g: u32) -> Self {
        assert!(g > 0, "granularity must be positive");
        self.granularity = g;
        self
    }

    /// Sets the confidence threshold above which instructions seed
    /// bins.
    #[must_use]
    pub fn with_confidence_threshold(mut self, t: f64) -> Self {
        self.confidence_threshold = t;
        self
    }
}

impl Default for LevelDistribute {
    fn default() -> Self {
        LevelDistribute::new()
    }
}

impl Pass for LevelDistribute {
    fn name(&self) -> &'static str {
        "LEVEL"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        let g = self.granularity;
        let max_level = ctx.dag.ids().map(|i| ctx.time.level(i)).max().unwrap_or(0);
        let mut rr: usize = 0; // round-robin cursor persists across bands
        let mut band_start = 0;
        while band_start <= max_level {
            let band: Vec<InstrId> = ctx
                .dag
                .ids()
                .filter(|&i| {
                    let l = ctx.time.level(i);
                    l >= band_start && l < band_start + g
                })
                .collect();
            if !band.is_empty() {
                self.distribute_band(ctx, &band, &mut rr);
            }
            band_start += g;
        }
    }

    fn effect(&self) -> PassEffect {
        // A constant boost of each instruction's chosen bin cluster;
        // the round-robin deal assigns different clusters to tied
        // instructions, breaking symmetry.
        PassEffect::new(vec![EffectOp::ScaleClusters {
            factor: Interval::point(self.boost),
        }])
        .breaks_symmetry()
    }
}

impl LevelDistribute {
    fn distribute_band(&self, ctx: &mut PassContext<'_>, band: &[InstrId], rr: &mut usize) {
        let n_clusters = ctx.weights.n_clusters();
        let mut bins: Vec<Vec<InstrId>> = vec![Vec::new(); n_clusters];
        let mut il: Vec<InstrId> = Vec::new();
        for &i in band {
            if ctx.weights.confidence(i) > self.confidence_threshold {
                bins[ctx.weights.preferred_cluster(i).index()].push(i);
            } else {
                il.push(i);
            }
        }
        let mut assigned: Vec<(InstrId, ClusterId)> = Vec::new();
        // A band spans `g` cycles, so a cluster can issue roughly
        // g × issue-width operations of it; past that, keeping
        // instructions "together" just serializes them. The cap also
        // never drops below an even share of the band, so distribution
        // degrades gracefully on oversubscribed machines. This
        // capacity is how the pass achieves its primary goal —
        // distributing parallelism — on graphs where every
        // instruction is graph-close to every other (e.g. fpppp).
        let fair_share = (band.len() * 3).div_ceil(2 * n_clusters); // even share + 50% slack
        let capacity: Vec<usize> = (0..n_clusters)
            .map(|c| {
                let width = ctx.machine.cluster(ClusterId::new(c as u16)).issue_width();
                (self.granularity as usize * width).max(fair_share)
            })
            .collect();

        // min distance from i to any member of bin b.
        let bin_dist = |ctx: &mut PassContext<'_>, i: InstrId, members: &[InstrId]| -> u32 {
            members
                .iter()
                .map(|&m| ctx.dist.distance(ctx.dag, i, m))
                .min()
                .unwrap_or(UNREACHABLE)
        };

        let mut skips = 0usize;
        while !il.is_empty() {
            if skips > 2 * n_clusters {
                // Capacity and feasibility conflict for everything
                // left: place each on its closest feasible bin and
                // stop (guaranteed progress).
                for i in il.drain(..) {
                    let mut best: Option<(u32, usize)> = None;
                    for c in 0..n_clusters {
                        if !ctx.weights.cluster_feasible(i, ClusterId::new(c as u16)) {
                            continue;
                        }
                        let key = (bin_dist(ctx, i, &bins[c]), c);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                    if let Some((_, c)) = best {
                        bins[c].push(i);
                        assigned.push((i, ClusterId::new(c as u16)));
                    }
                }
                break;
            }
            let nonempty: Vec<usize> = (0..n_clusters).filter(|&c| !bins[c].is_empty()).collect();
            // Ig: instructions farther than g from every nonempty bin.
            let ig: Vec<InstrId> = if nonempty.is_empty() {
                il.clone()
            } else {
                il.iter()
                    .copied()
                    .filter(|&i| {
                        nonempty
                            .iter()
                            .map(|&c| bin_dist(ctx, i, &bins[c]))
                            .min()
                            .unwrap_or(UNREACHABLE)
                            > self.granularity
                    })
                    .collect()
            };

            if ig.is_empty() {
                // Everyone left is near an existing bin: join the
                // closest bin that still has capacity. Full bins lose
                // to any bin with space — including still-empty ones —
                // so oversubscribed neighborhoods spill outward
                // instead of serializing on one cluster.
                for i in il.drain(..) {
                    let mut best: Option<(bool, u32, usize, usize)> = None;
                    for c in 0..n_clusters {
                        if !ctx.weights.cluster_feasible(i, ClusterId::new(c as u16)) {
                            continue;
                        }
                        let full = bins[c].len() >= capacity[c];
                        let key = (full, bin_dist(ctx, i, &bins[c]), bins[c].len(), c);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                    if let Some((_, _, _, c)) = best {
                        bins[c].push(i);
                        assigned.push((i, ClusterId::new(c as u16)));
                    }
                }
                break;
            }

            // Round-robin the bins; nearest Ig member joins (most
            // isolated seeds an empty bin). Full bins are skipped; if
            // every bin is full the capacity rule yields to progress.
            let b = *rr % n_clusters;
            *rr += 1;
            if bins[b].len() >= capacity[b]
                && bins
                    .iter()
                    .enumerate()
                    .any(|(c, bin)| bin.len() < capacity[c])
            {
                skips += 1;
                continue;
            }
            let feasible: Vec<InstrId> = ig
                .iter()
                .copied()
                .filter(|&i| ctx.weights.cluster_feasible(i, ClusterId::new(b as u16)))
                .collect();
            if feasible.is_empty() {
                // This bin's cluster can't take anyone; move on.
                skips += 1;
                continue;
            }
            let chosen = if bins[b].is_empty() {
                *feasible
                    .iter()
                    .max_by_key(|&&i| {
                        let isolation = nonempty
                            .iter()
                            .map(|&c| bin_dist(ctx, i, &bins[c]))
                            .min()
                            .unwrap_or(UNREACHABLE);
                        (isolation, std::cmp::Reverse(i))
                    })
                    .expect("feasible is non-empty")
            } else {
                *feasible
                    .iter()
                    .min_by_key(|&&i| (bin_dist(ctx, i, &bins[b]), i))
                    .expect("feasible is non-empty")
            };
            bins[b].push(chosen);
            il.retain(|&i| i != chosen);
            assigned.push((chosen, ClusterId::new(b as u16)));
            skips = 0;
        }

        for (i, c) in assigned {
            ctx.weights.scale_cluster(i, c, self.boost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::Rig;
    use convergent_ir::{DagBuilder, Opcode};
    use convergent_machine::Machine;

    fn c(k: u16) -> ClusterId {
        ClusterId::new(k)
    }

    #[test]
    fn independent_instructions_spread_out() {
        // Four disconnected instructions at level 0 on 4 tiles: LEVEL
        // must give each a distinct preferred cluster.
        let mut b = DagBuilder::new();
        let ids: Vec<_> = (0..4).map(|_| b.instr(Opcode::IntAlu)).collect();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(4));
        rig.run(&LevelDistribute::new());
        rig.weights.assert_invariants(1e-9);
        let mut prefs: Vec<u16> = ids
            .iter()
            .map(|&i| rig.weights.preferred_cluster(i).raw())
            .collect();
        prefs.sort_unstable();
        assert_eq!(prefs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn close_instructions_stay_together() {
        // Two tight pairs (siblings sharing a parent) and distance
        // > g between the pairs: each pair should land in one bin.
        let mut b = DagBuilder::new();
        // Pair A: parent at level 0 with two consumers.
        let pa = b.instr(Opcode::IntAlu);
        let a1 = b.instr(Opcode::IntAlu);
        let a2 = b.instr(Opcode::IntAlu);
        b.edge(pa, a1).unwrap();
        b.edge(pa, a2).unwrap();
        // Pair B: disconnected twin structure.
        let pb = b.instr(Opcode::IntAlu);
        let b1 = b.instr(Opcode::IntAlu);
        let b2 = b.instr(Opcode::IntAlu);
        b.edge(pb, b1).unwrap();
        b.edge(pb, b2).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.run(&LevelDistribute::new().with_granularity(4));
        // Siblings a1/a2 are 2 apart (via parent), so whoever joins
        // second lands in the same bin as the first.
        assert_eq!(
            rig.weights.preferred_cluster(a1),
            rig.weights.preferred_cluster(a2)
        );
        assert_eq!(
            rig.weights.preferred_cluster(b1),
            rig.weights.preferred_cluster(b2)
        );
        // And the two pairs land apart.
        assert_ne!(
            rig.weights.preferred_cluster(a1),
            rig.weights.preferred_cluster(b1)
        );
    }

    #[test]
    fn confident_instructions_seed_bins() {
        let mut b = DagBuilder::new();
        let seed = b.instr(Opcode::IntAlu);
        let near = b.instr(Opcode::IntAlu);
        b.edge(seed, near).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        // Pin the seed on cluster 1 with high confidence.
        rig.weights.scale_cluster(seed, c(1), 10.0);
        rig.weights.normalize_all();
        rig.run(&LevelDistribute::new());
        // `near` (distance 1 ≤ g) joins the seeded bin.
        assert_eq!(rig.weights.preferred_cluster(near), c(1));
    }

    #[test]
    fn granularity_zero_rejected() {
        assert!(std::panic::catch_unwind(|| LevelDistribute::new().with_granularity(0)).is_err());
    }
}
