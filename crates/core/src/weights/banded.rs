//! The banded core: per-instruction storage proportional to the
//! instruction's slack band instead of the full critical-path length.
//!
//! Each row is either [`Row::Uniform`] — a closed form for the state
//! every instruction starts in and returns to after `reset_uniform`,
//! costing O(1) storage — or a [`Band`]: `n_clusters × width` cells
//! anchored at `lo`. Reads outside the band return exactly `0.0`;
//! absolute writes outside it grow the band (with an amortized margin,
//! clamped to `[0, n_slots)`); `set_window` shrinks it.
//!
//! Every operation is written to be **bit-exact** with [`DenseCore`]
//! under identical op histories: the dense row is zero outside the
//! band, `x + 0.0 == x` for the non-negative raw weights, and all
//! marginal summations here visit cells in the same order the dense
//! loops do, so skipping the zeros changes no partial sum.
//!
//! [`DenseCore`]: super::dense::DenseCore

use std::cell::Cell;

use convergent_ir::{ClusterId, InstrId};

use super::argmax::{self, ArgmaxCache, EPS, NO_CLUSTER};
use super::{SCALE_FOLD_MAX, SCALE_FOLD_MIN};

/// A dense block of `n_clusters × width` raw cells anchored at `lo`.
#[derive(Clone, Debug)]
struct Band {
    lo: u32,
    /// Cluster-major cells: `(c, t)` lives at `c·width + (t − lo)`.
    w: Vec<f64>,
    /// Raw time marginals for the band slots (`width` entries).
    tsum: Vec<f64>,
}

impl Band {
    #[inline]
    fn width(&self) -> usize {
        self.tsum.len()
    }

    #[inline]
    fn hi(&self) -> u32 {
        self.lo + self.width() as u32 - 1
    }

    #[inline]
    fn contains(&self, t: u32) -> bool {
        t >= self.lo && t <= self.hi()
    }
}

/// One instruction's raw weights.
#[derive(Clone, Debug)]
enum Row {
    /// Every live cell inside the window holds `per`; the raw time
    /// marginal is `tsum` on every window slot and `0` elsewhere. A
    /// cluster is live iff its raw `cluster_sum` entry is nonzero
    /// (`cluster_ok` is *not* consulted: `forbid_cluster` flips the
    /// flag before squashing the weights, so the flag can be ahead of
    /// the cell state).
    Uniform {
        per: f64,
        tsum: f64,
    },
    Band(Band),
}

/// Grows `b` to cover slot `t`, padding new cells with exact zeros.
/// The growing side gets a margin of the current width (clamped to
/// `[0, n_slots)`) so `k` consecutive out-of-band writes reallocate
/// O(log k) times, not k.
fn grow_band(b: &mut Band, n_clusters: usize, n_slots: usize, t: usize) {
    let width = b.width();
    let cur_lo = b.lo as usize;
    let cur_hi = cur_lo + width - 1;
    if (cur_lo..=cur_hi).contains(&t) {
        return;
    }
    let new_lo = if t < cur_lo {
        t.saturating_sub(width)
    } else {
        cur_lo
    };
    let new_hi = if t > cur_hi {
        (t + width).min(n_slots - 1)
    } else {
        cur_hi
    };
    let new_w = new_hi - new_lo + 1;
    let off = cur_lo - new_lo;
    let mut w = vec![0.0; n_clusters * new_w];
    for c in 0..n_clusters {
        w[c * new_w + off..c * new_w + off + width]
            .copy_from_slice(&b.w[c * width..(c + 1) * width]);
    }
    let mut tsum = vec![0.0; new_w];
    tsum[off..off + width].copy_from_slice(&b.tsum);
    b.lo = new_lo as u32;
    b.w = w;
    b.tsum = tsum;
}

/// Shrinks `b` to exactly `[lo, hi]` (which the band always covers —
/// densification anchors at the window and growth only widens), in
/// place, returning whether any discarded cell was nonzero.
fn shrink_band(b: &mut Band, n_clusters: usize, lo: u32, hi: u32) -> bool {
    let bw = b.width();
    debug_assert!(b.lo <= lo && hi <= b.hi());
    if b.lo == lo && b.hi() == hi {
        return false;
    }
    let shift = (lo - b.lo) as usize;
    let new_w = (hi - lo + 1) as usize;
    let mut any_removed = false;
    for c in 0..n_clusters {
        for k in 0..bw {
            if (k < shift || k >= shift + new_w) && b.w[c * bw + k] != 0.0 {
                any_removed = true;
            }
        }
    }
    // Compact ascending: cluster c's destination `c·new_w` never
    // overruns cluster c+1's source `(c+1)·bw + shift`.
    for c in 0..n_clusters {
        b.w.copy_within(c * bw + shift..c * bw + shift + new_w, c * new_w);
    }
    b.w.truncate(n_clusters * new_w);
    b.tsum.copy_within(shift..shift + new_w, 0);
    b.tsum.truncate(new_w);
    b.lo = lo;
    any_removed
}

/// Banded storage with lazy normalization; the default representation
/// behind [`crate::PreferenceMap`].
#[derive(Clone, Debug)]
pub(crate) struct BandedCore {
    n_instrs: usize,
    n_clusters: usize,
    n_slots: usize,
    rows: Vec<Row>,
    /// Raw cluster marginals, flat `n_instrs × n_clusters`.
    cluster_sum: Vec<f64>,
    total: Vec<f64>,
    /// Pending per-instruction normalization factor.
    scale: Vec<f64>,
    window: Vec<(u32, u32)>,
    cluster_ok: Vec<bool>,
    argmax: Vec<Cell<ArgmaxCache>>,
}

impl BandedCore {
    pub(crate) fn new(n_instrs: usize, n_clusters: usize, n_slots: usize) -> Self {
        assert!(n_instrs > 0, "need at least one instruction");
        assert!(n_clusters > 0, "need at least one cluster");
        assert!(n_slots > 0, "need at least one time slot");
        assert!(n_clusters < NO_CLUSTER as usize, "too many clusters");
        let per = 1.0 / (n_clusters * n_slots) as f64;
        BandedCore {
            n_instrs,
            n_clusters,
            n_slots,
            rows: vec![
                Row::Uniform {
                    per,
                    tsum: per * n_clusters as f64,
                };
                n_instrs
            ],
            cluster_sum: vec![per * n_slots as f64; n_instrs * n_clusters],
            total: vec![1.0; n_instrs],
            scale: vec![1.0; n_instrs],
            window: vec![(0, n_slots as u32 - 1); n_instrs],
            cluster_ok: vec![true; n_instrs * n_clusters],
            argmax: vec![Cell::new(ArgmaxCache::INVALID); n_instrs],
        }
    }

    pub(crate) fn n_instrs(&self) -> usize {
        self.n_instrs
    }

    pub(crate) fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    pub(crate) fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// The raw (unscaled) cell value — exactly what the dense core
    /// holds at `(i, c, t)`.
    fn raw_get(&self, ii: usize, c: usize, t: usize) -> f64 {
        debug_assert!(ii < self.n_instrs && c < self.n_clusters && t < self.n_slots);
        match &self.rows[ii] {
            Row::Uniform { per, .. } => {
                let (lo, hi) = self.window[ii];
                if (t as u32) >= lo
                    && (t as u32) <= hi
                    && self.cluster_sum[ii * self.n_clusters + c] != 0.0
                {
                    *per
                } else {
                    0.0
                }
            }
            Row::Band(b) => {
                if b.contains(t as u32) {
                    b.w[c * b.width() + (t - b.lo as usize)]
                } else {
                    0.0
                }
            }
        }
    }

    /// The raw time marginal — exactly the dense core's `time_sum[t]`
    /// (zero outside the band, proven by the band invariant).
    fn raw_time(&self, ii: usize, t: usize) -> f64 {
        match &self.rows[ii] {
            Row::Uniform { tsum, .. } => {
                let (lo, hi) = self.window[ii];
                if (t as u32) >= lo && (t as u32) <= hi {
                    *tsum
                } else {
                    0.0
                }
            }
            Row::Band(b) => {
                if b.contains(t as u32) {
                    b.tsum[t - b.lo as usize]
                } else {
                    0.0
                }
            }
        }
    }

    /// Converts a `Uniform` row into an equivalent `Band` anchored at
    /// the current window (cells and marginals keep their exact bits).
    fn densify(&mut self, ii: usize) {
        if let Row::Uniform { per, tsum } = self.rows[ii] {
            let (lo, hi) = self.window[ii];
            let width = (hi - lo + 1) as usize;
            let mut w = vec![0.0; self.n_clusters * width];
            for c in 0..self.n_clusters {
                if self.cluster_sum[ii * self.n_clusters + c] != 0.0 {
                    w[c * width..(c + 1) * width].fill(per);
                }
            }
            self.rows[ii] = Row::Band(Band {
                lo,
                w,
                tsum: vec![tsum; width],
            });
        }
    }

    pub(crate) fn get(&self, i: InstrId, c: ClusterId, t: u32) -> f64 {
        self.raw_get(i.index(), c.index(), t as usize) * self.scale[i.index()]
    }

    pub(crate) fn set(&mut self, i: InstrId, c: ClusterId, t: u32, value: f64) {
        assert!(value.is_finite() && value >= 0.0, "weights are ≥ 0");
        let ii = i.index();
        let cc = c.index();
        let tt = t as usize;
        let raw = value / self.scale[ii];
        let delta = raw - self.raw_get(ii, cc, tt);
        if delta == 0.0 {
            return;
        }
        self.densify(ii);
        let n_clusters = self.n_clusters;
        let n_slots = self.n_slots;
        let Row::Band(b) = &mut self.rows[ii] else {
            unreachable!("densify leaves a band")
        };
        grow_band(b, n_clusters, n_slots, tt);
        let width = b.width();
        let off = tt - b.lo as usize;
        b.w[cc * width + off] = raw;
        b.tsum[off] += delta;
        self.cluster_sum[ii * n_clusters + cc] += delta;
        self.total[ii] += delta;
        argmax::note_cluster_write(&self.argmax[ii], cc, delta > 0.0);
        let lo = b.lo as usize;
        let tsum = &b.tsum;
        argmax::note_time_write(&self.argmax[ii], tt, delta > 0.0, self.scale[ii], |t| {
            if (lo..lo + tsum.len()).contains(&t) {
                tsum[t - lo]
            } else {
                0.0
            }
        });
    }

    pub(crate) fn scale(&mut self, i: InstrId, c: ClusterId, t: u32, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let ii = i.index();
        let cc = c.index();
        let tt = t as usize;
        let old = self.raw_get(ii, cc, tt);
        let new = old * factor;
        let delta = new - old;
        if delta == 0.0 {
            return;
        }
        // `delta ≠ 0` implies the cell is nonzero, hence in the band
        // (or in a live uniform window, which densify anchors over).
        self.densify(ii);
        let n_clusters = self.n_clusters;
        let Row::Band(b) = &mut self.rows[ii] else {
            unreachable!("densify leaves a band")
        };
        debug_assert!(b.contains(t));
        let width = b.width();
        let off = tt - b.lo as usize;
        b.w[cc * width + off] = new;
        b.tsum[off] += delta;
        self.cluster_sum[ii * n_clusters + cc] += delta;
        self.total[ii] += delta;
        argmax::note_cluster_write(&self.argmax[ii], cc, delta > 0.0);
        let lo = b.lo as usize;
        let tsum = &b.tsum;
        argmax::note_time_write(&self.argmax[ii], tt, delta > 0.0, self.scale[ii], |t| {
            if (lo..lo + tsum.len()).contains(&t) {
                tsum[t - lo]
            } else {
                0.0
            }
        });
    }

    pub(crate) fn scale_cluster(&mut self, i: InstrId, c: ClusterId, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let ii = i.index();
        let cc = c.index();
        let csk = ii * self.n_clusters + cc;
        if let Row::Uniform { per, .. } = &self.rows[ii] {
            let per = *per;
            if factor == 1.0 || per == 0.0 || self.cluster_sum[csk] == 0.0 {
                // The dense loop would find every cell unchanged.
                return;
            }
            if factor == 0.0 {
                // The cluster goes dead; the row stays uniform. The
                // per-slot delta the dense loop applies is the same on
                // every window slot, so one shared marginal suffices.
                if let Row::Uniform { tsum, .. } = &mut self.rows[ii] {
                    *tsum += 0.0 - per;
                }
                self.cluster_sum[csk] = 0.0;
                self.total[ii] = self.cluster_sum[ii * self.n_clusters..(ii + 1) * self.n_clusters]
                    .iter()
                    .sum();
                argmax::note_cluster_write(&self.argmax[ii], cc, false);
                argmax::invalidate_time(&self.argmax[ii]);
                return;
            }
            self.densify(ii);
        }
        let Row::Band(b) = &mut self.rows[ii] else {
            unreachable!("densify leaves a band")
        };
        let width = b.width();
        let old_sum = self.cluster_sum[csk];
        let mut new_sum = 0.0;
        let mut changed = false;
        for k in 0..width {
            let old = b.w[cc * width + k];
            let new = old * factor;
            if new != old {
                b.w[cc * width + k] = new;
                b.tsum[k] += new - old;
                changed = true;
            }
            new_sum += new;
        }
        if !changed {
            return;
        }
        // Same exact-rebuild discipline as the dense core: assign the
        // freshly accumulated marginal, re-sum the total.
        self.cluster_sum[csk] = new_sum;
        self.total[ii] = self.cluster_sum[ii * self.n_clusters..(ii + 1) * self.n_clusters]
            .iter()
            .sum();
        argmax::note_cluster_write(&self.argmax[ii], cc, new_sum > old_sum);
        argmax::invalidate_time(&self.argmax[ii]);
    }

    pub(crate) fn scale_time(&mut self, i: InstrId, t: u32, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let ii = i.index();
        let tt = t as usize;
        debug_assert!(tt < self.n_slots);
        if let Row::Uniform { per, .. } = &self.rows[ii] {
            let per = *per;
            let (lo, hi) = self.window[ii];
            let base = ii * self.n_clusters;
            let any_live = self.cluster_sum[base..base + self.n_clusters]
                .iter()
                .any(|&v| v != 0.0);
            if factor == 1.0 || per == 0.0 || !any_live || (t < lo || t > hi) {
                return; // dense: every cell at `t` unchanged
            }
            self.densify(ii);
        }
        let n_clusters = self.n_clusters;
        let Row::Band(b) = &mut self.rows[ii] else {
            unreachable!("densify leaves a band")
        };
        if !b.contains(t) {
            return; // all cells at `t` are zero
        }
        let width = b.width();
        let off = tt - b.lo as usize;
        let old_sum = b.tsum[off];
        let mut new_sum = 0.0;
        let mut changed = false;
        for c in 0..n_clusters {
            let old = b.w[c * width + off];
            let new = old * factor;
            if new != old {
                b.w[c * width + off] = new;
                self.cluster_sum[ii * n_clusters + c] += new - old;
                changed = true;
            }
            new_sum += new;
        }
        if !changed {
            return;
        }
        b.tsum[off] = new_sum;
        self.total[ii] += new_sum - old_sum;
        argmax::invalidate_cluster(&self.argmax[ii]);
        let lo = b.lo as usize;
        let tsum = &b.tsum;
        argmax::note_time_write(
            &self.argmax[ii],
            tt,
            new_sum > old_sum,
            self.scale[ii],
            |t| {
                if (lo..lo + tsum.len()).contains(&t) {
                    tsum[t - lo]
                } else {
                    0.0
                }
            },
        );
    }

    pub(crate) fn set_window(&mut self, i: InstrId, lo: u32, hi: u32) {
        assert!(lo <= hi, "window must be non-empty");
        assert!((hi as usize) < self.n_slots, "window exceeds time slots");
        let ii = i.index();
        let (old_lo, old_hi) = self.window[ii];
        let lo = lo.max(old_lo);
        let hi = hi.min(old_hi);
        assert!(lo <= hi, "window must be non-empty");
        self.window[ii] = (lo, hi);
        let n_clusters = self.n_clusters;
        let any_removed = match &mut self.rows[ii] {
            Row::Uniform { per, .. } => {
                let removed_slots = (old_hi - old_lo) != (hi - lo);
                let base = ii * n_clusters;
                let any_live = self.cluster_sum[base..base + n_clusters]
                    .iter()
                    .any(|&v| v != 0.0);
                removed_slots && *per != 0.0 && any_live
            }
            Row::Band(b) => shrink_band(b, n_clusters, lo, hi),
        };
        if any_removed {
            // Rebuild each cluster marginal from the surviving cells in
            // ascending `t` order, exactly as the dense core does (its
            // zeroed out-of-window cells contribute nothing bitwise).
            match &self.rows[ii] {
                Row::Uniform { per, .. } => {
                    let width = (hi - lo + 1) as usize;
                    let mut live_sum = 0.0;
                    for _ in 0..width {
                        live_sum += *per;
                    }
                    for c in 0..n_clusters {
                        if self.cluster_sum[ii * n_clusters + c] != 0.0 {
                            self.cluster_sum[ii * n_clusters + c] = live_sum;
                        }
                    }
                }
                Row::Band(b) => {
                    let width = b.width();
                    for c in 0..n_clusters {
                        let mut sum = 0.0;
                        for k in 0..width {
                            sum += b.w[c * width + k];
                        }
                        self.cluster_sum[ii * n_clusters + c] = sum;
                    }
                }
            }
            self.total[ii] = self.cluster_sum[ii * n_clusters..(ii + 1) * n_clusters]
                .iter()
                .sum();
            argmax::invalidate_cluster(&self.argmax[ii]);
            let cache = self.argmax[ii].get();
            if cache.time_valid && !(lo..=hi).contains(&cache.top_time) {
                argmax::invalidate_time(&self.argmax[ii]);
            }
        }
    }

    pub(crate) fn window(&self, i: InstrId) -> (u32, u32) {
        self.window[i.index()]
    }

    /// The current band extent of `i` (equals the window for rows
    /// still in uniform closed form).
    pub(crate) fn band(&self, i: InstrId) -> (u32, u32) {
        match &self.rows[i.index()] {
            Row::Uniform { .. } => self.window[i.index()],
            Row::Band(b) => (b.lo, b.hi()),
        }
    }

    /// Raw `f64` weight cells currently stored across all rows: one
    /// for a uniform row, `n_clusters × width` for a band.
    pub(crate) fn stored_cells(&self) -> usize {
        self.rows
            .iter()
            .map(|r| match r {
                Row::Uniform { .. } => 1,
                Row::Band(b) => b.w.len(),
            })
            .sum()
    }

    pub(crate) fn forbid_cluster(&mut self, i: InstrId, c: ClusterId) {
        self.cluster_ok[i.index() * self.n_clusters + c.index()] = false;
        self.scale_cluster(i, c, 0.0);
    }

    pub(crate) fn cluster_feasible(&self, i: InstrId, c: ClusterId) -> bool {
        self.cluster_ok[i.index() * self.n_clusters + c.index()]
    }

    pub(crate) fn cluster_weight(&self, i: InstrId, c: ClusterId) -> f64 {
        self.cluster_sum[i.index() * self.n_clusters + c.index()] * self.scale[i.index()]
    }

    pub(crate) fn time_weight(&self, i: InstrId, t: u32) -> f64 {
        self.raw_time(i.index(), t as usize) * self.scale[i.index()]
    }

    pub(crate) fn total(&self, i: InstrId) -> f64 {
        self.total[i.index()] * self.scale[i.index()]
    }

    pub(crate) fn top2(&self, i: InstrId) -> (u16, u16) {
        let ii = i.index();
        let base = ii * self.n_clusters;
        argmax::cluster_cache(
            &self.argmax[ii],
            &self.cluster_sum[base..base + self.n_clusters],
            self.scale[ii],
        )
    }

    pub(crate) fn top_time(&self, i: InstrId) -> u32 {
        let ii = i.index();
        let cell = &self.argmax[ii];
        let mut cache = cell.get();
        if !cache.time_valid {
            let s = self.scale[ii];
            let best = match &self.rows[ii] {
                Row::Uniform { tsum, .. } => {
                    let (lo, hi) = self.window[ii];
                    let v = *tsum;
                    if lo > 0 {
                        // Slot 0 (zero) leads; the first window slot
                        // takes over iff it clears the tie band, and
                        // later window slots only tie it.
                        if v * s > EPS {
                            lo as usize
                        } else {
                            0
                        }
                    } else if (hi as usize) + 1 < self.n_slots && 0.0 > v * s + EPS {
                        // A (numerically) negative marginal hands the
                        // lead to the first exactly-zero slot past the
                        // window, as the dense scan would.
                        hi as usize + 1
                    } else {
                        0
                    }
                }
                Row::Band(b) => {
                    let lo = b.lo as usize;
                    let mut best = 0usize;
                    let mut bestv = if lo == 0 { b.tsum[0] } else { 0.0 };
                    for (k, &v) in b.tsum.iter().enumerate() {
                        let t = lo + k;
                        if t == 0 {
                            continue;
                        }
                        if v * s > bestv * s + EPS {
                            best = t;
                            bestv = v;
                        }
                    }
                    // Dense also scans the exactly-zero slots past the
                    // band; they win only over a negative leader.
                    let after = lo + b.width();
                    if after < self.n_slots && 0.0 > bestv * s + EPS {
                        best = after;
                    }
                    best
                }
            };
            cache.top_time = best as u32;
            cache.time_valid = true;
            cell.set(cache);
        }
        cache.top_time
    }

    pub(crate) fn normalize(&mut self, i: InstrId) {
        let ii = i.index();
        let tot = self.total[ii] * self.scale[ii];
        if tot > EPS {
            let inv = 1.0 / self.total[ii];
            self.scale[ii] = inv;
            if !(SCALE_FOLD_MIN..=SCALE_FOLD_MAX).contains(&inv) {
                self.materialize(i);
            }
        } else {
            self.reset_uniform(i);
        }
    }

    pub(crate) fn materialize(&mut self, i: InstrId) {
        let ii = i.index();
        let s = self.scale[ii];
        if s == 1.0 {
            return;
        }
        match &mut self.rows[ii] {
            Row::Uniform { per, tsum } => {
                *per *= s;
                *tsum *= s;
            }
            Row::Band(b) => {
                for v in &mut b.w {
                    *v *= s;
                }
                for v in &mut b.tsum {
                    *v *= s;
                }
            }
        }
        for c in 0..self.n_clusters {
            self.cluster_sum[ii * self.n_clusters + c] *= s;
        }
        self.total[ii] *= s;
        self.scale[ii] = 1.0;
        // Visible values are unchanged, so cached argmaxes stay valid.
    }

    pub(crate) fn reset_uniform(&mut self, i: InstrId) {
        let ii = i.index();
        let (lo, hi) = self.window[ii];
        let n_feasible = self.cluster_ok[ii * self.n_clusters..(ii + 1) * self.n_clusters]
            .iter()
            .filter(|&&ok| ok)
            .count();
        // A machine mismatch could leave no feasible cluster; fall back
        // to all clusters rather than a degenerate all-zero row.
        let use_all = n_feasible == 0;
        let n_live = if use_all { self.n_clusters } else { n_feasible };
        let slots = (hi - lo + 1) as usize;
        let per = 1.0 / (n_live * slots) as f64;
        for c in 0..self.n_clusters {
            let live = use_all || self.cluster_ok[ii * self.n_clusters + c];
            self.cluster_sum[ii * self.n_clusters + c] =
                if live { per * slots as f64 } else { 0.0 };
        }
        // Back to the O(1) closed form — this also releases the band.
        self.rows[ii] = Row::Uniform {
            per,
            tsum: per * n_live as f64,
        };
        self.total[ii] = 1.0;
        self.scale[ii] = 1.0;
        self.argmax[ii].set(ArgmaxCache::INVALID);
    }
}
