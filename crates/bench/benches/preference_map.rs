//! Criterion microbenchmarks of the preference map's basic
//! operations — the inner loop of every pass, which the paper requires
//! to be cheap ("the system incrementally keeps track of the sums of
//! the weights over both space and time").

use convergent_core::PreferenceMap;
use convergent_ir::{ClusterId, InstrId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("preference_map");
    for &(n, clusters, slots) in &[(100usize, 4usize, 32usize), (500, 16, 64)] {
        let label = format!("{n}x{clusters}x{slots}");
        group.bench_function(BenchmarkId::new("scale_cluster_all", &label), |b| {
            let mut w = PreferenceMap::new(n, clusters, slots);
            b.iter(|| {
                for i in 0..n {
                    w.scale_cluster(
                        InstrId::new(i as u32),
                        ClusterId::new((i % clusters) as u16),
                        black_box(1.01),
                    );
                }
            });
        });
        group.bench_function(BenchmarkId::new("normalize_all", &label), |b| {
            let mut w = PreferenceMap::new(n, clusters, slots);
            for i in 0..n {
                w.scale_cluster(InstrId::new(i as u32), ClusterId::new(0), 3.0);
            }
            b.iter(|| {
                w.normalize_all();
                black_box(&w);
            });
        });
        group.bench_function(BenchmarkId::new("preferred_and_confidence", &label), |b| {
            let w = PreferenceMap::new(n, clusters, slots);
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..n {
                    let id = InstrId::new(i as u32);
                    acc += w.confidence(id) + f64::from(w.preferred_cluster(id).raw());
                }
                black_box(acc)
            });
        });
        // A pass-shaped cycle on the lazy path: sparse multiplicative
        // writes, then the O(N) normalize_all a driver issues after
        // every pass.
        group.bench_function(BenchmarkId::new("pass_cycle_lazy", &label), |b| {
            let mut w = PreferenceMap::new(n, clusters, slots);
            b.iter(|| {
                for i in 0..n {
                    w.scale_cluster(
                        InstrId::new(i as u32),
                        ClusterId::new((i % clusters) as u16),
                        black_box(1.25),
                    );
                }
                w.normalize_all();
                black_box(&w);
            });
        });
        // Repeated argmax reads with no intervening writes — the
        // driver's per-pass convergence trace. Served from the
        // incremental caches after the first scan.
        group.bench_function(BenchmarkId::new("cached_argmax_reads", &label), |b| {
            let mut w = PreferenceMap::new(n, clusters, slots);
            for i in 0..n {
                w.scale_cluster(
                    InstrId::new(i as u32),
                    ClusterId::new((i % clusters) as u16),
                    4.0,
                );
            }
            w.normalize_all();
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..n {
                    let id = InstrId::new(i as u32);
                    acc += u64::from(w.preferred_cluster(id).raw())
                        + u64::from(w.preferred_time(id).get());
                }
                black_box(acc)
            });
        });
        // materialize_all is the escape hatch back to eager rows; its
        // cost bounds what the lazy representation can ever owe.
        group.bench_function(BenchmarkId::new("materialize_all", &label), |b| {
            let mut w = PreferenceMap::new(n, clusters, slots);
            b.iter(|| {
                for i in 0..n {
                    w.scale_cluster(InstrId::new(i as u32), ClusterId::new(0), black_box(2.0));
                }
                w.normalize_all();
                w.materialize_all();
                black_box(&w);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
