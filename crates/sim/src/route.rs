//! Dimension-ordered (XY) routing on mesh machines.
//!
//! Raw's static network is compiler-routed: each transfer follows a
//! deterministic path of switch-to-switch links. We reproduce the
//! standard dimension-ordered route (travel along X first, then Y) and
//! track per-link, per-cycle occupancy so [`crate::evaluate`] can charge
//! contention stalls when two routes need the same wire in the same
//! cycle.

use std::collections::HashSet;

use convergent_ir::ClusterId;
use convergent_machine::{Machine, Topology};

/// A directed mesh link between two adjacent tile coordinates, plus the
/// self-link `(a, a)` used to model each tile's injection port.
pub(crate) type Link = ((u16, u16), (u16, u16));

/// The XY route from `from` to `to` as a list of directed links
/// (including the injection self-link first). Empty when `from == to`.
///
/// For non-mesh topologies the route is a single logical link, since a
/// clustered VLIW's transfer bus has no intermediate hops.
#[must_use]
pub fn route_hops(
    machine: &Machine,
    from: ClusterId,
    to: ClusterId,
) -> Vec<((u16, u16), (u16, u16))> {
    if from == to {
        return Vec::new();
    }
    let topo = machine.topology();
    match topo {
        Topology::Mesh { .. } => {
            let (mut x, mut y) = topo.coords(from);
            let (tx, ty) = topo.coords(to);
            let mut links = vec![((x, y), (x, y))]; // injection port
            while x != tx {
                let nx = if tx > x { x + 1 } else { x - 1 };
                links.push(((x, y), (nx, y)));
                x = nx;
            }
            while y != ty {
                let ny = if ty > y { y + 1 } else { y - 1 };
                links.push(((x, y), (x, ny)));
                y = ny;
            }
            links
        }
        Topology::PointToPoint => {
            vec![(topo.coords(from), topo.coords(to))]
        }
    }
}

/// Tracks link occupancy and computes contention-adjusted injections.
#[derive(Clone, Debug, Default)]
pub(crate) struct Router {
    busy: HashSet<(Link, u32)>,
}

impl Router {
    pub(crate) fn new() -> Self {
        Router::default()
    }

    /// Injects a route at the earliest cycle `>= ready` at which every
    /// link along the path is free (link `k` is used at `injection + k`).
    /// Marks the links busy and returns the injection cycle.
    pub(crate) fn inject(&mut self, path: &[Link], ready: u32) -> u32 {
        if path.is_empty() {
            return ready;
        }
        let mut s = ready;
        'search: loop {
            for (k, link) in path.iter().enumerate() {
                if self.busy.contains(&(*link, s + k as u32)) {
                    s += 1;
                    continue 'search;
                }
            }
            break;
        }
        for (k, link) in path.iter().enumerate() {
            self.busy.insert((*link, s + k as u32));
        }
        s
    }
}

/// Summary of network behaviour produced by [`crate::evaluate`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterReport {
    /// Total cycles transfers waited for busy links.
    pub stall_cycles: u32,
    /// Number of transfers routed.
    pub routes: usize,
    /// Total link-cycles consumed (communication volume × distance).
    pub link_cycles: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_route_on_mesh() {
        let m = Machine::raw(16); // 4x4
        let path = route_hops(&m, ClusterId::new(0), ClusterId::new(15));
        // Injection port + 3 X-hops + 3 Y-hops.
        assert_eq!(path.len(), 7);
        assert_eq!(path[0], ((0, 0), (0, 0)));
        assert_eq!(path[1], ((0, 0), (1, 0)));
        assert_eq!(path.last().unwrap().1, (3, 3));
        // Same tile: empty.
        assert!(route_hops(&m, ClusterId::new(3), ClusterId::new(3)).is_empty());
    }

    #[test]
    fn xy_route_goes_x_first() {
        let m = Machine::raw(16);
        // 0 -> 5 is (0,0) -> (1,1): X then Y.
        let path = route_hops(&m, ClusterId::new(0), ClusterId::new(5));
        assert_eq!(
            path,
            vec![((0, 0), (0, 0)), ((0, 0), (1, 0)), ((1, 0), (1, 1)),]
        );
    }

    #[test]
    fn router_charges_contention() {
        let m = Machine::raw(16);
        let path = route_hops(&m, ClusterId::new(0), ClusterId::new(1));
        let mut r = Router::new();
        let first = r.inject(&path, 5);
        assert_eq!(first, 5);
        // Same path, same cycle: must stall one cycle.
        let second = r.inject(&path, 5);
        assert_eq!(second, 6);
        // Disjoint path at the same time: no stall.
        let other = route_hops(&m, ClusterId::new(10), ClusterId::new(11));
        assert_eq!(r.inject(&other, 5), 5);
    }

    #[test]
    fn pipelined_routes_share_links_across_cycles() {
        let m = Machine::raw(16);
        // Route A occupies link (0,0)->(1,0) at its injection cycle.
        let a = route_hops(&m, ClusterId::new(0), ClusterId::new(1));
        let mut r = Router::new();
        assert_eq!(r.inject(&a, 0), 0);
        // A route injected the next cycle reuses the link pipeline-style.
        assert_eq!(r.inject(&a, 1), 1);
    }

    #[test]
    fn point_to_point_route_is_single_link() {
        let m = Machine::chorus_vliw(4);
        let path = route_hops(&m, ClusterId::new(0), ClusterId::new(2));
        assert_eq!(path.len(), 1);
    }
}
