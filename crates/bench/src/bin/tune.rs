//! Systematic heuristic selection in action — the paper's future-work
//! section, run as an experiment.
//!
//! Starting from the Table 1(a) Raw sequence, hill-climb pass
//! sequences against total executed cycles on a small training set,
//! then evaluate the winner on the full Raw suite (held-out sizes).
//!
//! The hill-climb itself is sequential (each mutation depends on the
//! previous accept/reject), but each objective evaluation fans its
//! training kernels out over the parallel harness, as does the final
//! held-out sweep. Pass sequences hold `Box<dyn Pass>` and are not
//! `Sync`, so worker cells rebuild their scheduler from the plain
//! `PassSpec` list — which also keeps every cell deterministic.
//!
//! ```text
//! cargo run --release -p convergent-bench --bin tune [-- --iters N] [-- --jobs N]
//! ```

use convergent_bench::parallel::{default_jobs, jobs_from_args, run_cells};
use convergent_bench::{executed_cycles, geomean, speedup};
use convergent_core::tuner::{to_sequence, tune, PassSpec, TunerConfig};
use convergent_core::ConvergentScheduler;
use convergent_machine::Machine;
use convergent_workloads::{jacobi, mxm, sha, MxmParams, ShaParams, StencilParams};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let jobs = jobs_from_args(&mut args, default_jobs());
    let iters: usize = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|k| args.get(k + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(80);

    // Training set: three small, structurally different kernels.
    let machine = Machine::raw(4);
    let training = vec![
        mxm(MxmParams::for_banks(4)),
        jacobi(StencilParams::for_banks(4)),
        sha(ShaParams { rounds: 12 }),
    ];

    // Start from Table 1(a) (minus the INITTIME anchor the tuner adds).
    let table1a = [
        PassSpec::PlaceProp,
        PassSpec::Load,
        PassSpec::Place,
        PassSpec::Path,
        PassSpec::PathProp,
        PassSpec::Level,
        PassSpec::PathProp,
        PassSpec::Comm,
        PassSpec::PathProp,
        PassSpec::EmphCp,
    ];

    let mut evals = 0usize;
    let result = tune(
        &table1a,
        TunerConfig {
            iterations: iters,
            max_len: 14,
            seed: 2002,
        },
        |seq| {
            evals += 1;
            // Capture plain specs, not the sequence: each worker cell
            // rebuilds its own scheduler.
            let specs = specs_from(seq);
            let cycles = run_cells(&training, jobs, |unit| {
                let sched = scheduler_with(&specs);
                executed_cycles(&sched, unit, &machine).ok()
            });
            let mut total = 0f64;
            for c in cycles {
                match c {
                    Some(c) => total += f64::from(c),
                    None => return f64::INFINITY,
                }
            }
            total
        },
    );

    println!("training objective (total cycles over 3 kernels @ 4 tiles):");
    println!("  Table 1(a): {:.0}", result.initial_score);
    println!(
        "  tuned     : {:.0}  ({} accepted mutations, {evals} evaluations)",
        result.best_score, result.accepted
    );
    println!("  tuned sequence: {:?}", to_sequence(&result.best).names());

    // Held-out check on the full 16-tile suite.
    let machine16 = Machine::raw(16);
    let stock_specs = table1a.to_vec();
    let tuned_specs = result.best.clone();
    let suite16 = convergent_workloads::raw_suite(16);
    let held_out: Vec<(f64, f64)> = run_cells(&suite16, jobs, |unit| {
        let stock = scheduler_with(&stock_specs);
        let tuned = scheduler_with(&tuned_specs);
        (
            speedup(&stock, unit, &machine16).expect("suite schedules"),
            speedup(&tuned, unit, &machine16).expect("suite schedules"),
        )
    });
    let stock_sp: Vec<f64> = held_out.iter().map(|&(s, _)| s).collect();
    let tuned_sp: Vec<f64> = held_out.iter().map(|&(_, t)| t).collect();
    println!();
    println!("held-out Raw suite @ 16 tiles (geomean speedup):");
    println!("  Table 1(a): {:.3}", geomean(&stock_sp));
    println!("  tuned     : {:.3}", geomean(&tuned_sp));
}

/// Builds a scheduler from plain specs (`to_sequence` re-anchors the
/// INITTIME pass).
fn scheduler_with(specs: &[PassSpec]) -> ConvergentScheduler {
    ConvergentScheduler::new(to_sequence(specs)).with_time_priorities(false)
}

/// Recovers the spec list from an already-built sequence by name.
fn specs_from(seq: &convergent_core::Sequence) -> Vec<PassSpec> {
    seq.names()
        .iter()
        .filter_map(|name| match *name {
            "INITTIME" => None, // to_sequence re-anchors it
            "NOISE" => Some(PassSpec::Noise),
            "FIRST" => Some(PassSpec::First),
            "PATH" => Some(PassSpec::Path),
            "COMM" => Some(PassSpec::Comm),
            "PLACE" => Some(PassSpec::Place),
            "PLACEPROP" => Some(PassSpec::PlaceProp),
            "LOAD" => Some(PassSpec::Load),
            "LEVEL" => Some(PassSpec::Level),
            "PATHPROP" => Some(PassSpec::PathProp),
            "EMPHCP" => Some(PassSpec::EmphCp),
            "REGPRESS" => Some(PassSpec::RegPress),
            other => unreachable!("unknown pass {other}"),
        })
        .collect()
}
