//! Figure 7: convergence of spatial assignments on Raw — "the
//! percentage of instructions whose preferred tiles are changed by
//! each convergent pass", static counts, excluding passes that only
//! modify temporal preferences (EMPHCP).
//!
//! ```text
//! cargo run --release -p convergent-bench --bin figure7
//! ```

use convergent_core::ConvergentScheduler;
use convergent_machine::Machine;
use convergent_workloads::raw_suite;

fn main() {
    let machine = Machine::raw(16);
    let scheduler = ConvergentScheduler::raw_default();
    let suite = raw_suite(16);

    // Header: the spatial passes in sequence order.
    let first = scheduler
        .assign(suite[0].dag(), &machine)
        .expect("suite schedules");
    let pass_names: Vec<&str> = first.trace().spatial().map(|r| r.name).collect();
    print!("{:<14}", "benchmark");
    for n in &pass_names {
        print!("{n:>11}");
    }
    println!();

    for unit in &suite {
        let outcome = scheduler
            .assign(unit.dag(), &machine)
            .unwrap_or_else(|e| panic!("{}: {e}", unit.name()));
        print!("{:<14}", unit.name());
        for r in outcome.trace().spatial() {
            print!("{:>10.0}%", r.changed_fraction * 100.0);
        }
        println!();
    }
    println!();
    println!(
        "(rows = fraction of instructions whose preferred tile changed; \
         benchmarks with rich preplacement converge in the first passes, \
         fpppp-kernel and sha keep moving through LEVEL/COMM)"
    );
}
