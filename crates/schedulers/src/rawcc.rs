//! Rawcc-style space-time scheduling: the Table 2 baseline.
//!
//! Rawcc (Lee et al., ASPLOS 1998) leverages multiprocessor task-graph
//! techniques and assigns instructions in three steps:
//!
//! 1. **Clustering** — group instructions with little parallelism
//!    between them into *virtual clusters*, zeroing the communication
//!    cost inside a cluster (a dominant-sequence-clustering flavour:
//!    each instruction joins the predecessor cluster that minimizes its
//!    estimated start time, or starts a new cluster).
//! 2. **Merging** — reduce the number of virtual clusters to the
//!    machine's tile count, merging by edge affinity and load, and
//!    never merging two clusters pinned to different homes.
//! 3. **Placement** — map virtual clusters to tiles: pinned clusters
//!    go to their home tile, the rest greedily minimize
//!    communication-weighted hop distance.
//!
//! Temporal scheduling is the shared [`ListScheduler`], as in Rawcc.

use convergent_ir::{ClusterId, Dag, InstrId};
use convergent_machine::Machine;
use convergent_sim::{Assignment, SpaceTimeSchedule};

use crate::list::check_assignment;
use crate::{ListScheduler, ScheduleError, Scheduler};

/// The Rawcc-style baseline scheduler. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct RawccScheduler {
    _private: (),
}

impl RawccScheduler {
    /// Creates a Rawcc-style scheduler.
    #[must_use]
    pub fn new() -> Self {
        RawccScheduler::default()
    }

    /// Computes the three-step cluster assignment without the final
    /// list-scheduling pass.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] when the graph cannot be mapped to
    /// the machine.
    pub fn assign(&self, dag: &Dag, machine: &Machine) -> Result<Assignment, ScheduleError> {
        crate::precondition::check_inputs(dag, machine)?;
        let mut vcs = cluster_step(dag, machine)?;
        merge_step(machine, &mut vcs);
        let assignment = place_step(dag, machine, &vcs)?;
        check_assignment(dag, machine, &assignment)?;
        Ok(assignment)
    }
}

impl Scheduler for RawccScheduler {
    fn name(&self) -> &str {
        "rawcc"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> Result<SpaceTimeSchedule, ScheduleError> {
        let assignment = self.assign(dag, machine)?;
        ListScheduler::new().schedule_with_cp(dag, machine, &assignment)
    }
}

/// Virtual clusters under construction.
#[derive(Clone, Debug)]
struct VirtualClusters {
    /// Virtual-cluster id per instruction.
    of: Vec<usize>,
    /// Live cluster ids (merging tombstones the losers).
    alive: Vec<bool>,
    /// Home tile constraint per virtual cluster, if any.
    home: Vec<Option<ClusterId>>,
    /// Member count per virtual cluster.
    load: Vec<usize>,
}

impl VirtualClusters {
    fn n_alive(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }
}

/// Step 1: DSC-flavoured clustering.
///
/// Joining a predecessor's cluster zeroes the communication cost but
/// serializes with that cluster's other work, so the start-time
/// estimate accounts for single-issue occupancy (`free[vc]`): a
/// cluster that is already busy at the instruction's data-ready time
/// is less attractive than paying for communication — this is what
/// lets clustering *discover* parallelism (DSC's core idea) instead of
/// greedily collapsing everything onto one tile.
fn cluster_step(dag: &Dag, machine: &Machine) -> Result<VirtualClusters, ScheduleError> {
    // Estimated communication cost between clusters (the clustering
    // abstraction: uniform cost, zero inside a cluster).
    let comm = machine.comm().latency_for_hops(1);
    let n = dag.len();
    let mut vc_of: Vec<usize> = vec![usize::MAX; n];
    let mut home: Vec<Option<ClusterId>> = Vec::new();
    let mut load: Vec<usize> = Vec::new();
    let mut est: Vec<u32> = vec![0; n];
    // Earliest issue slot still free on each virtual cluster, under a
    // one-op-per-cycle occupancy approximation.
    let mut free: Vec<u32> = Vec::new();

    for &i in dag.topo_order() {
        let instr = dag.instr(i);
        let my_home = instr.preplacement();
        let finish = |p: InstrId, est: &[u32]| est[p.index()] + machine.latency_of(dag.instr(p));
        // Start time if i joins virtual cluster vc: data arrival plus
        // waiting for the cluster's issue slot.
        let est_in = |vc: usize, est: &[u32], free: &[u32]| -> u32 {
            let data = dag
                .preds(i)
                .iter()
                .map(|&p| {
                    let cost = if vc_of[p.index()] == vc { 0 } else { comm };
                    finish(p, est) + cost
                })
                .max()
                .unwrap_or(0);
            data.max(free[vc])
        };
        let est_new: u32 = dag
            .preds(i)
            .iter()
            .map(|&p| finish(p, &est) + comm)
            .max()
            .unwrap_or(0);

        let compatible = |vc: usize| match (home[vc], my_home) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        };
        // Candidate clusters: those of predecessors (joining anything
        // else is never better than a fresh cluster).
        let mut cand: Vec<usize> = dag
            .preds(i)
            .iter()
            .map(|&p| vc_of[p.index()])
            .filter(|&vc| compatible(vc))
            .collect();
        cand.sort_unstable();
        cand.dedup();
        let best = cand
            .into_iter()
            .map(|vc| (est_in(vc, &est, &free), load[vc], vc))
            .min();
        match best {
            Some((e, _, vc)) if e <= est_new => {
                vc_of[i.index()] = vc;
                est[i.index()] = e;
                load[vc] += 1;
                free[vc] = e + 1;
                if home[vc].is_none() {
                    home[vc] = my_home;
                }
            }
            _ => {
                let vc = home.len();
                home.push(my_home);
                load.push(1);
                free.push(est_new + 1);
                vc_of[i.index()] = vc;
                est[i.index()] = est_new;
            }
        }
    }
    let alive = vec![true; home.len()];
    Ok(VirtualClusters {
        of: vc_of,
        alive,
        home,
        load,
    })
}

/// Edge counts between virtual clusters.
fn affinity(dag: &Dag, vcs: &VirtualClusters, a: usize, b: usize) -> usize {
    dag.edges()
        .filter(|e| {
            let (x, y) = (vcs.of[e.src.index()], vcs.of[e.dst.index()]);
            (x == a && y == b) || (x == b && y == a)
        })
        .count()
}

fn merge_into(vcs: &mut VirtualClusters, winner: usize, loser: usize) {
    for slot in &mut vcs.of {
        if *slot == loser {
            *slot = winner;
        }
    }
    vcs.load[winner] += vcs.load[loser];
    vcs.load[loser] = 0;
    vcs.alive[loser] = false;
    if vcs.home[winner].is_none() {
        vcs.home[winner] = vcs.home[loser];
    }
}

/// Step 2: merge to at most the machine's cluster count.
fn merge_step(machine: &Machine, vcs: &mut VirtualClusters) {
    let target = machine.n_clusters();
    // First merge clusters sharing the same home: on hard machines
    // they must coexist on one tile anyway.
    for c in machine.cluster_ids() {
        let mut homed: Vec<usize> = (0..vcs.home.len())
            .filter(|&vc| vcs.alive[vc] && vcs.home[vc] == Some(c))
            .collect();
        if let Some(&first) = homed.first() {
            for &other in &homed[1..] {
                merge_into(vcs, first, other);
            }
            homed.truncate(1);
        }
    }
    while vcs.n_alive() > target {
        // Rawcc's merging phase "reduces the number of clusters
        // through merging" driven by load balance: the two smallest
        // compatible clusters merge. (Communication between clusters
        // is placement's problem in Rawcc's phase ordering — this is
        // precisely the kind of early, locally-blind decision the
        // convergent-scheduling paper contrasts itself against.)
        let alive: Vec<usize> = (0..vcs.home.len()).filter(|&vc| vcs.alive[vc]).collect();
        let &small = alive
            .iter()
            .min_by_key(|&&vc| (vcs.load[vc], vc))
            .expect("n_alive > target >= 1");
        let partner = alive
            .iter()
            .copied()
            .filter(|&vc| vc != small)
            .filter(|&vc| match (vcs.home[vc], vcs.home[small]) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            })
            .min_by_key(|&vc| (vcs.load[vc], vc));
        match partner {
            Some(p) => {
                // Keep the homed one as winner so the pin survives.
                if vcs.home[small].is_some() && vcs.home[p].is_none() {
                    merge_into(vcs, small, p);
                } else {
                    merge_into(vcs, p, small);
                }
            }
            None => break, // everything left is pinned apart
        }
    }
}

/// Step 3: map virtual clusters to physical clusters.
///
/// A machine with zero clusters has no legal placement for anything;
/// that is reported as [`ScheduleError::EmptyMachine`] rather than a
/// panic.
fn place_step(
    dag: &Dag,
    machine: &Machine,
    vcs: &VirtualClusters,
) -> Result<Assignment, ScheduleError> {
    let n_phys = machine.n_clusters();
    let alive: Vec<usize> = (0..vcs.home.len()).filter(|&vc| vcs.alive[vc]).collect();
    let mut phys_of: Vec<Option<ClusterId>> = vec![None; vcs.home.len()];
    let mut used = vec![false; n_phys];
    // Pinned clusters first.
    for &vc in &alive {
        if let Some(h) = vcs.home[vc] {
            phys_of[vc] = Some(h);
            used[h.index()] = true;
        }
    }
    // Others: heaviest first, minimizing hop-weighted affinity to the
    // already placed.
    let mut rest: Vec<usize> = alive
        .iter()
        .copied()
        .filter(|&vc| phys_of[vc].is_none())
        .collect();
    rest.sort_by_key(|&vc| (std::cmp::Reverse(vcs.load[vc]), vc));
    for vc in rest {
        let candidates: Vec<ClusterId> =
            machine.cluster_ids().filter(|c| !used[c.index()]).collect();
        let pool = if candidates.is_empty() {
            machine.cluster_ids().collect::<Vec<_>>()
        } else {
            candidates
        };
        let best = pool
            .into_iter()
            .min_by_key(|&c| {
                let cost: u32 = alive
                    .iter()
                    .filter_map(|&other| phys_of[other].map(|pc| (other, pc)))
                    .map(|(other, pc)| affinity(dag, vcs, vc, other) as u32 * machine.hops(c, pc))
                    .sum();
                (cost, c)
            })
            .ok_or(ScheduleError::EmptyMachine)?;
        phys_of[vc] = Some(best);
        used[best.index()] = true;
    }
    Ok(dag
        .ids()
        .map(|i| phys_of[vcs.of[i.index()]].expect("all virtual clusters placed"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::{DagBuilder, Opcode};
    use convergent_sim::validate;

    fn c(i: u16) -> ClusterId {
        ClusterId::new(i)
    }

    #[test]
    fn chain_collapses_to_one_cluster() {
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 0..7 {
            let nxt = b.instr(Opcode::IntAlu);
            b.edge(prev, nxt).unwrap();
            prev = nxt;
        }
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let asg = RawccScheduler::new().assign(&dag, &m).unwrap();
        assert_eq!(asg.cut_edges(&dag), 0);
    }

    #[test]
    fn independent_chains_get_separate_tiles() {
        let mut b = DagBuilder::new();
        for _ in 0..4 {
            let mut prev = b.instr(Opcode::IntAlu);
            for _ in 0..5 {
                let nxt = b.instr(Opcode::IntAlu);
                b.edge(prev, nxt).unwrap();
                prev = nxt;
            }
        }
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let asg = RawccScheduler::new().assign(&dag, &m).unwrap();
        let loads = asg.loads(4);
        assert_eq!(loads, vec![6, 6, 6, 6]);
        assert_eq!(asg.cut_edges(&dag), 0);
    }

    #[test]
    fn preplacement_pins_virtual_clusters() {
        let mut b = DagBuilder::new();
        let l0 = b.preplaced_instr(Opcode::Load, c(0));
        let l3 = b.preplaced_instr(Opcode::Load, c(3));
        let a0 = b.instr(Opcode::IntAlu);
        let a3 = b.instr(Opcode::IntAlu);
        b.edge(l0, a0).unwrap();
        b.edge(l3, a3).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let asg = RawccScheduler::new().assign(&dag, &m).unwrap();
        assert!(asg.respects_preplacement(&dag));
        // Dependents follow their producers' home tiles.
        assert_eq!(asg.cluster(a0), c(0));
        assert_eq!(asg.cluster(a3), c(3));
    }

    #[test]
    fn merging_reaches_machine_size() {
        // 10 independent instructions = 10 virtual clusters on a
        // 2-tile machine: merging must get down to <= 2.
        let mut b = DagBuilder::new();
        for _ in 0..10 {
            b.instr(Opcode::IntAlu);
        }
        let dag = b.build().unwrap();
        let m = Machine::raw(2);
        let asg = RawccScheduler::new().assign(&dag, &m).unwrap();
        let loads = asg.loads(2);
        assert_eq!(loads.iter().sum::<usize>(), 10);
        assert!(loads.iter().all(|&l| l > 0));
    }

    #[test]
    fn full_schedule_validates() {
        let mut b = DagBuilder::new();
        let mut sums = Vec::new();
        for k in 0..4u16 {
            let ld = b.preplaced_instr(Opcode::Load, c(k));
            let mu = b.instr(Opcode::FMul);
            b.edge(ld, mu).unwrap();
            sums.push(mu);
        }
        let s1 = b.instr(Opcode::FAdd);
        b.edge(sums[0], s1).unwrap();
        b.edge(sums[1], s1).unwrap();
        let s2 = b.instr(Opcode::FAdd);
        b.edge(sums[2], s2).unwrap();
        b.edge(sums[3], s2).unwrap();
        let s3 = b.instr(Opcode::FAdd);
        b.edge(s1, s3).unwrap();
        b.edge(s2, s3).unwrap();
        let dag = b.build().unwrap();
        for m in [Machine::raw(4), Machine::chorus_vliw(4)] {
            let s = RawccScheduler::new().schedule(&dag, &m).unwrap();
            validate(&dag, &m, &s).unwrap();
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(RawccScheduler::new().name(), "rawcc");
    }

    #[test]
    fn place_step_reports_empty_machine_instead_of_panicking() {
        // `Machine::new` rejects zero-cluster machines, so this guard
        // is unreachable through the public constructors — but the
        // placement loop itself must degrade to a structured error,
        // not an `expect`, if that invariant ever changes.
        let mut b = DagBuilder::new();
        b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let m = Machine::raw(1);
        // With a real machine the path succeeds; the error variant
        // itself renders meaningfully for callers that hit it through
        // future machine descriptions.
        assert!(RawccScheduler::new().assign(&dag, &m).is_ok());
        assert_eq!(
            ScheduleError::EmptyMachine.to_string(),
            "machine has no clusters"
        );
    }
}
