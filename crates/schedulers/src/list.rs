//! The shared, resource-accurate list scheduler.
//!
//! Every assignment technique in the workspace (convergent scheduling,
//! PCC, Rawcc-style, BUG) delegates temporal scheduling to this engine,
//! mirroring the paper's setup where "both Chorus and Rawcc use the
//! spatial assignments given by the convergent scheduler" and a
//! conventional list scheduler orders instructions in time.
//!
//! Given a fixed instruction→cluster assignment and a priority vector,
//! the scheduler walks cycles forward, issuing ready instructions in
//! priority order onto free, capable functional units, and inserts the
//! communication each cross-cluster dependence needs:
//!
//! * on register-mapped machines (Raw) a route is injected the cycle
//!   the producer finishes, and the consumer may start after the
//!   network latency;
//! * on clustered VLIWs an explicit copy is placed on the earliest free
//!   transfer unit of the producer's cluster, and the consumer may
//!   start one cycle after the copy issues.

use std::collections::{BinaryHeap, HashMap, HashSet};

use convergent_ir::{ClusterId, Cycle, Dag, InstrId, OpClass};
use convergent_machine::Machine;
use convergent_sim::{effective_latency_in, Assignment, ScheduleBuilder, SpaceTimeSchedule};

use crate::ScheduleError;

/// A growable bitmap over cycle numbers: the occupancy set of one
/// functional unit. `HashSet<u32>` semantics at a fraction of the
/// lookup cost — `free_fu` probes run once per pending instruction per
/// cycle, which made hashing the list scheduler's hottest operation on
/// wide graphs.
#[derive(Clone, Debug, Default)]
pub(crate) struct CycleSet {
    words: Vec<u64>,
}

impl CycleSet {
    pub(crate) fn contains(&self, t: u32) -> bool {
        self.words
            .get((t / 64) as usize)
            .is_some_and(|w| w >> (t % 64) & 1 == 1)
    }

    /// Inserts `t`, returning whether it was newly added.
    pub(crate) fn insert(&mut self, t: u32) -> bool {
        let w = (t / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (t % 64);
        let had = self.words[w] & bit != 0;
        self.words[w] |= bit;
        !had
    }
}

/// Per-functional-unit issue-slot occupancy.
#[derive(Clone, Debug)]
pub(crate) struct ResourceState {
    busy: Vec<Vec<CycleSet>>,
}

impl ResourceState {
    pub(crate) fn new(machine: &Machine) -> Self {
        ResourceState {
            busy: machine
                .cluster_ids()
                .map(|c| vec![CycleSet::default(); machine.cluster(c).issue_width()])
                .collect(),
        }
    }

    /// A free functional unit on `cluster` capable of `class` at cycle
    /// `t`, if any (lowest index wins, so VLIW ops prefer the most
    /// specialized capable unit listed first).
    pub(crate) fn free_fu(
        &self,
        machine: &Machine,
        cluster: ClusterId,
        class: OpClass,
        t: u32,
    ) -> Option<usize> {
        machine
            .cluster(cluster)
            .fus()
            .iter()
            .enumerate()
            .find(|(fu, kind)| {
                kind.can_execute(class) && !self.busy[cluster.index()][*fu].contains(t)
            })
            .map(|(fu, _)| fu)
    }

    /// Earliest `(fu, cycle)` at or after `from` where `class` can
    /// issue on `cluster`. Returns `None` if the cluster cannot
    /// execute the class at all.
    pub(crate) fn earliest_slot(
        &self,
        machine: &Machine,
        cluster: ClusterId,
        class: OpClass,
        from: u32,
    ) -> Option<(usize, u32)> {
        if !machine.cluster_can_execute(cluster, class) {
            return None;
        }
        let mut t = from;
        loop {
            if let Some(fu) = self.free_fu(machine, cluster, class, t) {
                return Some((fu, t));
            }
            t += 1;
        }
    }

    pub(crate) fn reserve(&mut self, cluster: ClusterId, fu: usize, t: u32) {
        let inserted = self.busy[cluster.index()][fu].insert(t);
        debug_assert!(inserted, "double-booked {cluster} fu{fu} at {t}");
    }
}

/// Tracks inserted communication and cross-cluster value arrivals.
#[derive(Clone, Debug, Default)]
pub(crate) struct CommTracker {
    /// (producer, destination cluster) → first cycle the value is
    /// usable there.
    arrival: HashMap<(InstrId, usize), u32>,
    /// Recorded comm ops: (producer, from, to, start, fu).
    ops: Vec<(InstrId, ClusterId, ClusterId, u32, Option<usize>)>,
}

impl CommTracker {
    pub(crate) fn new() -> Self {
        CommTracker::default()
    }

    pub(crate) fn arrival(&self, producer: InstrId, to: ClusterId) -> Option<u32> {
        self.arrival.get(&(producer, to.index())).copied()
    }

    pub(crate) fn record(
        &mut self,
        producer: InstrId,
        from: ClusterId,
        to: ClusterId,
        start: u32,
        fu: Option<usize>,
        arrival: u32,
    ) {
        self.ops.push((producer, from, to, start, fu));
        let slot = self
            .arrival
            .entry((producer, to.index()))
            .or_insert(arrival);
        *slot = (*slot).min(arrival);
    }

    pub(crate) fn emit_into(&self, builder: &mut ScheduleBuilder<'_>) {
        for &(producer, from, to, start, fu) in &self.ops {
            builder.comm(producer, from, to, Cycle::new(start), fu);
        }
    }
}

/// Ensures the value of `producer` (already placed, finishing at
/// `finish` on `from`) reaches cluster `to`, inserting a transfer if
/// none exists. Returns the arrival cycle.
///
/// On a copy-based machine a cluster with no copy-capable unit cannot
/// source a transfer; that is a property of the machine description,
/// reported as [`ScheduleError::NoTransferUnit`] rather than a panic
/// (lint `CS052` rejects such machines up front, this is the backstop).
pub(crate) fn ensure_comm(
    machine: &Machine,
    resources: &mut ResourceState,
    comms: &mut CommTracker,
    producer: InstrId,
    from: ClusterId,
    finish: u32,
    to: ClusterId,
) -> Result<u32, ScheduleError> {
    debug_assert_ne!(from, to);
    if let Some(a) = comms.arrival(producer, to) {
        return Ok(a);
    }
    let latency = machine.comm_latency(from, to);
    if machine.comm().register_mapped {
        let arrival = finish + latency;
        comms.record(producer, from, to, finish, None, arrival);
        Ok(arrival)
    } else {
        let (fu, start) = resources
            .earliest_slot(machine, from, OpClass::Copy, finish)
            .ok_or(ScheduleError::NoTransferUnit { cluster: from })?;
        resources.reserve(from, fu, start);
        let arrival = start + latency;
        comms.record(producer, from, to, start, Some(fu), arrival);
        Ok(arrival)
    }
}

/// Checks an externally supplied assignment for machine legality.
pub(crate) fn check_assignment(
    dag: &Dag,
    machine: &Machine,
    assignment: &Assignment,
) -> Result<(), ScheduleError> {
    if assignment.len() != dag.len() {
        return Err(ScheduleError::LengthMismatch {
            expected: dag.len(),
            actual: assignment.len(),
        });
    }
    let hard = machine.memory().preplacement_is_hard();
    for i in dag.ids() {
        let instr = dag.instr(i);
        if let Some(home) = instr.preplacement() {
            if home.index() >= machine.n_clusters() {
                return Err(ScheduleError::BadHomeCluster { instr: i, home });
            }
            if hard && assignment.cluster(i) != home {
                return Err(ScheduleError::PreplacementConflict {
                    instr: i,
                    home,
                    assigned: assignment.cluster(i),
                });
            }
        }
        if !machine.cluster_can_execute(assignment.cluster(i), instr.class()) {
            return Err(ScheduleError::NoCapableCluster(i));
        }
    }
    Ok(())
}

/// A conservative upper bound on schedule length, used as a
/// no-progress guard.
pub(crate) fn cycle_limit(dag: &Dag, machine: &Machine) -> u32 {
    let total_lat: u32 = dag.instrs().iter().map(|i| machine.latency_of(i) + 1).sum();
    let max_comm = machine
        .cluster_ids()
        .map(|c| machine.comm_latency(ClusterId::new(0), c))
        .max()
        .unwrap_or(0);
    total_lat + (dag.edge_count() as u32 + 1) * (max_comm + 1) + 64
}

/// The shared cycle-driven list scheduler.
///
/// # Example
///
/// ```
/// use convergent_ir::{ClusterId, DagBuilder, Opcode};
/// use convergent_machine::Machine;
/// use convergent_schedulers::ListScheduler;
/// use convergent_sim::Assignment;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DagBuilder::new();
/// let a = b.instr(Opcode::Load);
/// let c = b.instr(Opcode::IntAlu);
/// b.edge(a, c)?;
/// let dag = b.build()?;
/// let machine = Machine::chorus_vliw(2);
/// let assignment = Assignment::uniform(dag.len(), ClusterId::new(0));
///
/// let schedule = ListScheduler::new().schedule_with_cp(&dag, &machine, &assignment)?;
/// assert_eq!(schedule.makespan().get(), 4); // load(3) then add(1)
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct ListScheduler {
    _private: (),
}

impl ListScheduler {
    /// Creates a list scheduler.
    #[must_use]
    pub fn new() -> Self {
        ListScheduler::default()
    }

    /// Schedules `dag` under a fixed `assignment`, ordering the ready
    /// list by `priorities` (lower value = scheduled earlier; ties
    /// break on instruction id).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::LengthMismatch`] for wrong-sized
    /// inputs, [`ScheduleError::PreplacementConflict`] /
    /// [`ScheduleError::BadHomeCluster`] /
    /// [`ScheduleError::NoCapableCluster`] for illegal assignments, and
    /// [`ScheduleError::NoProgress`] if the internal guard trips.
    pub fn schedule(
        &self,
        dag: &Dag,
        machine: &Machine,
        assignment: &Assignment,
        priorities: &[u32],
    ) -> Result<SpaceTimeSchedule, ScheduleError> {
        if priorities.len() != dag.len() {
            return Err(ScheduleError::LengthMismatch {
                expected: dag.len(),
                actual: priorities.len(),
            });
        }
        check_assignment(dag, machine, assignment)?;

        // Secondary key: urgency (latest start). Caller priorities
        // rank first; among equals the zero-slack instruction goes
        // ahead of the relaxed one.
        let time = convergent_ir::TimeAnalysis::compute(dag, |i| machine.latency_of(i));
        let urgency: Vec<u32> = dag.ids().map(|i| time.latest_start(i)).collect();

        let n = dag.len();
        let mut resources = ResourceState::new(machine);
        let mut comms = CommTracker::new();
        let mut start: Vec<Option<u32>> = vec![None; n];
        let mut finish: Vec<u32> = vec![0; n];
        let mut fu_of: Vec<usize> = vec![0; n];
        let mut unsched_preds: Vec<usize> = dag.ids().map(|i| dag.preds(i).len()).collect();

        // Whether an instruction can issue at cycle `t` depends only on
        // its (cluster, op class) pair and the reservations made so
        // far, and reservations only accumulate within a cycle — so one
        // witnessed `free_fu` failure rules the whole pair out for the
        // rest of the cycle. The ready set is therefore kept as one
        // min-heap on (priority, urgency, id) *per pair*: each issue
        // decision arbitrates across the heap tops of the pairs not yet
        // ruled out, which reproduces exactly the historical
        // sort-after-every-issue scan ("always issue the best-ranked
        // eligible instruction") without ever touching the candidates
        // queued behind a blocked pair. The id is unique, so ordering
        // is total and the issue sequence — and with it every schedule
        // — is unchanged.
        let n_classes = OpClass::ALL.len();
        let pair_of: Vec<usize> = dag
            .ids()
            .map(|i| {
                let class = dag.instr(i).class();
                let k = OpClass::ALL
                    .iter()
                    .position(|&c| c == class)
                    .expect("every class appears in OpClass::ALL");
                assignment.cluster(i).index() * n_classes + k
            })
            .collect();
        let n_pairs = machine.n_clusters() * n_classes;
        let mut ready: Vec<BinaryHeap<std::cmp::Reverse<(u32, u32, InstrId)>>> =
            (0..n_pairs).map(|_| BinaryHeap::new()).collect();
        for i in dag.ids().filter(|&i| unsched_preds[i.index()] == 0) {
            ready[pair_of[i.index()]].push(std::cmp::Reverse((
                priorities[i.index()],
                urgency[i.index()],
                i,
            )));
        }
        // Instructions released with operands still in flight wait in a
        // bucket for their arrival cycle instead of churning through
        // the ready heaps every cycle in between.
        let mut arrivals: Vec<Vec<InstrId>> = Vec::new();
        let mut blocked: Vec<bool> = vec![false; n_pairs];
        let mut n_placed = 0usize;
        let limit = cycle_limit(dag, machine);

        let mut t: u32 = 0;
        while n_placed < n {
            if t > limit {
                return Err(ScheduleError::NoProgress { cycle: t });
            }
            if let Some(bucket) = arrivals.get_mut(t as usize) {
                for i in bucket.drain(..) {
                    ready[pair_of[i.index()]].push(std::cmp::Reverse((
                        priorities[i.index()],
                        urgency[i.index()],
                        i,
                    )));
                }
            }
            blocked.fill(false);
            // Issue as many ready instructions as resources allow.
            loop {
                let mut best: Option<(usize, (u32, u32, InstrId))> = None;
                for (p, h) in ready.iter().enumerate() {
                    if blocked[p] {
                        continue;
                    }
                    if let Some(&std::cmp::Reverse(key)) = h.peek() {
                        if best.is_none_or(|(_, b)| key < b) {
                            best = Some((p, key));
                        }
                    }
                }
                let Some((p, (_, _, i))) = best else { break };
                let cluster = assignment.cluster(i);
                let class = dag.instr(i).class();
                match resources.free_fu(machine, cluster, class, t) {
                    Some(fu) => {
                        ready[p].pop();
                        resources.reserve(cluster, fu, t);
                        start[i.index()] = Some(t);
                        fu_of[i.index()] = fu;
                        finish[i.index()] = t + effective_latency_in(dag, machine, i, cluster);
                        n_placed += 1;
                        // Move the produced value toward every consumer
                        // cluster as soon as it exists.
                        let mut dest_seen: HashSet<usize> = HashSet::new();
                        for &s in dag.succs(i) {
                            let sc = assignment.cluster(s);
                            if sc != cluster && dest_seen.insert(sc.index()) {
                                ensure_comm(
                                    machine,
                                    &mut resources,
                                    &mut comms,
                                    i,
                                    cluster,
                                    finish[i.index()],
                                    sc,
                                )?;
                            }
                        }
                        // Release consumers whose last producer this
                        // was. A zero-latency producer can release a
                        // consumer into the current cycle; entering its
                        // ready heap it contends in rank order with
                        // everything not yet issued, as before. (A
                        // release into a blocked pair stays queued: it
                        // could not have issued this cycle anyway.)
                        for &s in dag.succs(i) {
                            unsched_preds[s.index()] -= 1;
                            if unsched_preds[s.index()] == 0 {
                                let sc = assignment.cluster(s);
                                let arrive = dag
                                    .preds(s)
                                    .iter()
                                    .map(|&pr| {
                                        let pc = assignment.cluster(pr);
                                        if pc == sc {
                                            finish[pr.index()]
                                        } else {
                                            comms
                                                .arrival(pr, sc)
                                                .expect("comm inserted when producer placed")
                                        }
                                    })
                                    .max()
                                    .unwrap_or(0);
                                if arrive > t {
                                    let slot = arrive as usize;
                                    if slot >= arrivals.len() {
                                        arrivals.resize_with(slot + 1, Vec::new);
                                    }
                                    arrivals[slot].push(s);
                                } else {
                                    ready[pair_of[s.index()]].push(std::cmp::Reverse((
                                        priorities[s.index()],
                                        urgency[s.index()],
                                        s,
                                    )));
                                }
                            }
                        }
                    }
                    None => blocked[p] = true,
                }
            }
            t += 1;
        }

        let mut builder = ScheduleBuilder::new(dag);
        for i in dag.ids() {
            builder.place(
                i,
                assignment.cluster(i),
                fu_of[i.index()],
                Cycle::new(start[i.index()].expect("all placed")),
            );
        }
        comms.emit_into(&mut builder);
        builder
            .build(machine)
            .map_err(|e| ScheduleError::ProducedInvalid(e.to_string()))
    }

    /// Schedules with classic critical-path priorities
    /// ([`crate::cp_priorities`]).
    ///
    /// # Errors
    ///
    /// Same as [`ListScheduler::schedule`].
    pub fn schedule_with_cp(
        &self,
        dag: &Dag,
        machine: &Machine,
        assignment: &Assignment,
    ) -> Result<SpaceTimeSchedule, ScheduleError> {
        let p = crate::cp_priorities(dag, machine);
        self.schedule(dag, machine, assignment, &p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::{DagBuilder, Opcode};
    use convergent_sim::validate;

    fn c(i: u16) -> ClusterId {
        ClusterId::new(i)
    }

    #[test]
    fn serial_chain_on_one_cluster() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::Load);
        let d = b.instr(Opcode::IntAlu);
        b.edge(a, d).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let asg = Assignment::uniform(2, c(0));
        let s = ListScheduler::new()
            .schedule_with_cp(&dag, &m, &asg)
            .unwrap();
        validate(&dag, &m, &s).unwrap();
        assert_eq!(s.makespan().get(), 4);
        assert_eq!(s.comm_count(), 0);
    }

    #[test]
    fn cross_cluster_copy_inserted_on_vliw() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let d = b.instr(Opcode::IntAlu);
        b.edge(a, d).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let asg = Assignment::from_vec(vec![c(0), c(1)]);
        let s = ListScheduler::new()
            .schedule_with_cp(&dag, &m, &asg)
            .unwrap();
        validate(&dag, &m, &s).unwrap();
        // a: 0..1, copy at 1 arrives 2, d: 2..3.
        assert_eq!(s.makespan().get(), 3);
        assert_eq!(s.comm_count(), 1);
        assert_eq!(s.comms()[0].fu, Some(3)); // the transfer unit
    }

    #[test]
    fn raw_route_inserted() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let d = b.instr(Opcode::IntAlu);
        b.edge(a, d).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let asg = Assignment::from_vec(vec![c(0), c(1)]);
        let s = ListScheduler::new()
            .schedule_with_cp(&dag, &m, &asg)
            .unwrap();
        validate(&dag, &m, &s).unwrap();
        // a: 0..1, route arrives 1+3=4, d: 4..5.
        assert_eq!(s.makespan().get(), 5);
        assert_eq!(s.comms()[0].fu, None);
    }

    #[test]
    fn one_copy_serves_multiple_consumers_on_one_cluster() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let d1 = b.instr(Opcode::IntAlu);
        let d2 = b.instr(Opcode::IntAlu);
        b.edge(a, d1).unwrap();
        b.edge(a, d2).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let asg = Assignment::from_vec(vec![c(0), c(1), c(1)]);
        let s = ListScheduler::new()
            .schedule_with_cp(&dag, &m, &asg)
            .unwrap();
        validate(&dag, &m, &s).unwrap();
        assert_eq!(s.comm_count(), 1);
    }

    #[test]
    fn priorities_order_contending_instructions() {
        // Two independent ops contend for the single int-alu... use Raw
        // single-issue so only one issues per cycle.
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let m = Machine::raw(1);
        let asg = Assignment::uniform(2, c(0));
        // Favor y.
        let s = ListScheduler::new()
            .schedule(&dag, &m, &asg, &[5, 0])
            .unwrap();
        assert_eq!(s.op(y).start.get(), 0);
        assert_eq!(s.op(x).start.get(), 1);
        // Favor x.
        let s = ListScheduler::new()
            .schedule(&dag, &m, &asg, &[0, 5])
            .unwrap();
        assert_eq!(s.op(x).start.get(), 0);
        assert_eq!(s.op(y).start.get(), 1);
    }

    #[test]
    fn fu_capability_respected() {
        // FMul and IntAlu on a chorus cluster can co-issue (different
        // units); two FMuls cannot.
        let mut b = DagBuilder::new();
        let f1 = b.instr(Opcode::FMul);
        let f2 = b.instr(Opcode::FMul);
        let a = b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(1);
        let asg = Assignment::uniform(3, c(0));
        let s = ListScheduler::new()
            .schedule_with_cp(&dag, &m, &asg)
            .unwrap();
        validate(&dag, &m, &s).unwrap();
        let starts: Vec<u32> = [f1, f2, a].iter().map(|&i| s.op(i).start.get()).collect();
        assert_eq!(starts[2], 0); // int op co-issues
        assert_eq!(starts.iter().filter(|&&t| t == 0).count(), 2); // one fmul waits
    }

    #[test]
    fn hard_preplacement_conflict_rejected() {
        let mut b = DagBuilder::new();
        b.preplaced_instr(Opcode::Load, c(1));
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let asg = Assignment::uniform(1, c(0));
        let err = ListScheduler::new()
            .schedule_with_cp(&dag, &m, &asg)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::PreplacementConflict { .. }));
    }

    #[test]
    fn bad_home_cluster_rejected() {
        let mut b = DagBuilder::new();
        b.preplaced_instr(Opcode::Load, c(7));
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let asg = Assignment::uniform(1, c(0));
        let err = ListScheduler::new()
            .schedule_with_cp(&dag, &m, &asg)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::BadHomeCluster { .. }));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let m = Machine::raw(1);
        let asg = Assignment::uniform(2, c(0));
        assert!(matches!(
            ListScheduler::new().schedule_with_cp(&dag, &m, &asg),
            Err(ScheduleError::LengthMismatch { .. })
        ));
        let asg = Assignment::uniform(1, c(0));
        assert!(matches!(
            ListScheduler::new().schedule(&dag, &m, &asg, &[]),
            Err(ScheduleError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn wide_parallel_graph_saturates_machine() {
        // 8 independent int ops on 4 Raw tiles: 2 cycles.
        let mut b = DagBuilder::new();
        for _ in 0..8 {
            b.instr(Opcode::IntAlu);
        }
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let asg: Assignment = (0..8).map(|k| c(k % 4)).collect();
        let s = ListScheduler::new()
            .schedule_with_cp(&dag, &m, &asg)
            .unwrap();
        validate(&dag, &m, &s).unwrap();
        assert_eq!(s.makespan().get(), 2);
    }

    #[test]
    fn remote_memory_pays_penalty_in_schedule() {
        let mut b = DagBuilder::new();
        let ld = b.preplaced_instr(Opcode::Load, c(1));
        let use_ = b.instr(Opcode::IntAlu);
        b.edge(ld, use_).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        // Both on cluster 0: load runs remotely (latency 4).
        let asg = Assignment::uniform(2, c(0));
        let s = ListScheduler::new()
            .schedule_with_cp(&dag, &m, &asg)
            .unwrap();
        validate(&dag, &m, &s).unwrap();
        assert_eq!(s.makespan().get(), 5);
        // Both on home cluster 1: local load (latency 3).
        let asg = Assignment::uniform(2, c(1));
        let s = ListScheduler::new()
            .schedule_with_cp(&dag, &m, &asg)
            .unwrap();
        assert_eq!(s.makespan().get(), 4);
    }

    #[test]
    fn missing_transfer_unit_is_an_error_not_a_panic() {
        use convergent_machine::{Cluster, CommModel, FuKind, LatencyTable, MemoryModel, Topology};
        // Copy-based comm model, but no cluster owns a copy-capable
        // unit: a cross-cluster value has no way to travel. The list
        // scheduler must report this, not unwind.
        let m = Machine::new(
            "no-transfer",
            vec![
                Cluster::new(vec![FuKind::IntAlu, FuKind::IntAluMem]),
                Cluster::new(vec![FuKind::IntAlu, FuKind::IntAluMem]),
            ],
            Topology::PointToPoint,
            CommModel::vliw_transfer(),
            LatencyTable::r4000(),
            MemoryModel::chorus(),
        );
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let d = b.instr(Opcode::IntAlu);
        b.edge(a, d).unwrap();
        let dag = b.build().unwrap();
        let asg = Assignment::from_vec(vec![c(0), c(1)]);
        let err = ListScheduler::new()
            .schedule_with_cp(&dag, &m, &asg)
            .unwrap_err();
        assert_eq!(err, ScheduleError::NoTransferUnit { cluster: c(0) });
        assert!(err.to_string().contains("copy-capable"));
    }
}
