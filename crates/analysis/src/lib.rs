//! Static analysis for convergent scheduling inputs.
//!
//! The schedulers in this workspace trust that the dependence graph,
//! the machine model, and each convergent pass are well-formed; before
//! this crate, a cyclic DAG or an infeasible preplacement was only
//! caught — if at all — deep inside `evaluate()` or by the fuzz
//! shrinker. `convergent-analysis` checks the `(DAG, machine)` half of
//! that triple *statically*, without running a scheduler, and reports
//! problems as structured [`Diagnostic`]s under a stable `CSxxx`
//! [`Code`] catalogue (see `docs/DIAGNOSTICS.md` at the workspace
//! root).
//!
//! The third leg of the triple — the pass sequence — is verified by
//! `convergent_core::contract`, which records every `PreferenceMap`
//! write a pass performs on small probe graphs and emits the `CS06x`
//! codes defined here. The `csched lint` subcommand composes both
//! layers.
//!
//! Entry points:
//!
//! * [`lint_raw`] — lint a parsed-but-unvalidated [`RawUnit`]
//!   (cycles with a witness path, dangling/self/duplicate edges, …).
//! * [`lint_dag`] — lint a validated [`Dag`] against a [`Machine`]
//!   (feasible windows, preplacement, op-class coverage, latency
//!   table, dead code, register pressure).
//! * [`lint_unit`] — convenience wrapper over [`lint_dag`] for a
//!   [`SchedulingUnit`].
//!
//! [`RawUnit`]: convergent_ir::RawUnit
//! [`Dag`]: convergent_ir::Dag
//! [`Machine`]: convergent_machine::Machine
//! [`SchedulingUnit`]: convergent_ir::SchedulingUnit

#![warn(missing_docs)]

mod codes;
mod diag;
mod facts;
mod lint;

pub use codes::Code;
pub use diag::{Diagnostic, LintReport, Severity};
pub use facts::GraphFacts;
pub use lint::{lint_dag, lint_raw, lint_unit, LintOptions};
