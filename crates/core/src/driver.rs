//! The convergent-scheduling driver.
//!
//! The driver runs a [`Sequence`] over a fresh [`PreferenceMap`],
//! normalizing after every pass, then reads off the converged
//! decisions: each instruction's *preferred cluster* becomes its
//! spatial assignment and its *preferred time* becomes its priority
//! for the shared list scheduler — exactly the interface Section 5
//! describes between the convergent scheduler and the existing Rawcc
//! and Chorus back ends.
//!
//! A [`ConvergenceTrace`] records, for every pass, the fraction of
//! instructions whose preferred cluster changed — the quantity plotted
//! in the paper's Figures 7 and 9.

use std::time::Instant;

use convergent_ir::{
    decompose_with, ClusterId, Dag, DistanceOracle, RegionPolicy, Shard, TimeAnalysis,
};
use convergent_machine::Machine;
use convergent_schedulers::{ListScheduler, ScheduleError, Scheduler};
use convergent_sim::{stitch, Assignment, SpaceTimeSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::governor::{self, CutAssessment, CutVerdict};
use crate::telemetry::{
    measure, ConvergenceMetrics, CounterTotals, SinkInterest, SpanKind, TelemetryBuffer,
    TelemetrySink,
};
use crate::{PassContext, PassProfile, PassScratch, PreferenceMap, Sequence};

/// Per-pass convergence measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct PassRecord {
    /// Pass name (paper spelling).
    pub name: &'static str,
    /// Fraction of instructions whose preferred cluster changed
    /// during this pass.
    pub changed_fraction: f64,
    /// `true` for passes that only adjust temporal preferences
    /// (excluded from the paper's Figures 7 and 9).
    pub time_only: bool,
    /// Full convergence metrics for this pass, populated only when a
    /// telemetry sink declared [`SinkInterest::convergence`] (the
    /// sweep costs a pass worth of map reads). `None` merges shard
    /// traces and plain runs.
    pub metrics: Option<ConvergenceMetrics>,
}

/// The driver's internal telemetry handle: one sink, the run epoch
/// every span timestamp is relative to, and the sink's interest
/// (cached once so hot paths never re-ask).
struct Telemetry<'a> {
    sink: &'a mut dyn TelemetrySink,
    epoch: Instant,
    interest: SinkInterest,
}

impl<'a> Telemetry<'a> {
    fn new(sink: &'a mut dyn TelemetrySink) -> Self {
        let interest = sink.interest();
        Telemetry {
            sink,
            epoch: Instant::now(),
            interest,
        }
    }

    /// A handle sharing another run's epoch — how per-shard buffers
    /// keep timestamps on the parent run's clock.
    fn with_epoch(sink: &'a mut dyn TelemetrySink, epoch: Instant) -> Self {
        let interest = sink.interest();
        Telemetry {
            sink,
            epoch,
            interest,
        }
    }

    /// Emits a span from `start` to now.
    fn span_from(&mut self, path: &str, kind: SpanKind, start: Instant) {
        self.span_between(path, kind, start, Instant::now());
    }

    /// Emits a span with an explicit end.
    fn span_between(&mut self, path: &str, kind: SpanKind, start: Instant, end: Instant) {
        let start_secs = start.saturating_duration_since(self.epoch).as_secs_f64();
        let dur_secs = end.saturating_duration_since(start).as_secs_f64();
        self.sink.span(path, kind, start_secs, dur_secs);
    }
}

/// The per-pass convergence history of one scheduling run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConvergenceTrace {
    records: Vec<PassRecord>,
}

impl ConvergenceTrace {
    /// All records, in pass order.
    #[must_use]
    pub fn records(&self) -> &[PassRecord] {
        &self.records
    }

    /// Records for space-affecting passes only (what Figures 7 and 9
    /// plot).
    pub fn spatial(&self) -> impl Iterator<Item = &PassRecord> + '_ {
        self.records.iter().filter(|r| !r.time_only)
    }
}

/// Result of running the passes: an assignment plus time priorities.
#[derive(Clone, Debug)]
pub struct AssignOutcome {
    assignment: Assignment,
    priorities: Vec<u32>,
    trace: ConvergenceTrace,
}

impl AssignOutcome {
    /// The converged instruction→cluster assignment.
    #[must_use]
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Preferred times, used as list-scheduling priorities.
    #[must_use]
    pub fn priorities(&self) -> &[u32] {
        &self.priorities
    }

    /// The convergence history.
    #[must_use]
    pub fn trace(&self) -> &ConvergenceTrace {
        &self.trace
    }
}

/// How a sharded run split the graph and reassembled the schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// Instructions per shard, in shard order.
    pub shard_sizes: Vec<usize>,
    /// Cycle offset the stitch phase applied to each shard.
    pub offsets: Vec<u32>,
    /// Cross-shard transfers inserted by the boundary COMM fix-up.
    pub boundary_comms: usize,
    /// Dependence edges crossing shard boundaries.
    pub cross_edges: usize,
    /// Makespan of the stitched schedule.
    pub stitched_makespan: u32,
    /// The graph's critical-path length — a machine-independent lower
    /// bound on any schedule's makespan, what the cut governor compares
    /// the stitched makespan against.
    pub cp_lower_bound: u32,
}

impl ShardInfo {
    /// Stitched makespan over the critical-path lower bound (≥ 1.0);
    /// how much schedule length the cut cost at worst.
    #[must_use]
    pub fn stitch_ratio(&self) -> f64 {
        f64::from(self.stitched_makespan) / f64::from(self.cp_lower_bound.max(1))
    }
}

/// Result of a full schedule: assignment, priorities, and the final
/// space-time schedule.
#[derive(Clone, Debug)]
pub struct ScheduleOutcome {
    schedule: SpaceTimeSchedule,
    assignment: Assignment,
    trace: ConvergenceTrace,
    shard_info: Option<ShardInfo>,
    governor: Option<CutAssessment>,
}

impl ScheduleOutcome {
    /// The final space-time schedule.
    #[must_use]
    pub fn schedule(&self) -> &SpaceTimeSchedule {
        &self.schedule
    }

    /// The converged assignment.
    #[must_use]
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The convergence history.
    #[must_use]
    pub fn trace(&self) -> &ConvergenceTrace {
        &self.trace
    }

    /// Shard metadata when the run actually split the graph (`None`
    /// for monolithic runs and for sharded runs the decomposer or cut
    /// governor refused).
    #[must_use]
    pub fn shard_info(&self) -> Option<&ShardInfo> {
        self.shard_info.as_ref()
    }

    /// The cut governor's assessment, when a sharded run projected a
    /// non-trivial decomposition: `Accepted` on sharded outcomes,
    /// a rejection on runs that fell back to the monolithic path
    /// because the cut was degenerate. `None` when no cut was ever on
    /// the table (monolithic runs, trivial decompositions).
    #[must_use]
    pub fn governor(&self) -> Option<&CutAssessment> {
        self.governor.as_ref()
    }

    /// Extracts the schedule, discarding the rest.
    #[must_use]
    pub fn into_schedule(self) -> SpaceTimeSchedule {
        self.schedule
    }
}

/// The convergent scheduler: a [`Sequence`] plus a noise seed.
///
/// # Example
///
/// ```
/// use convergent_core::ConvergentScheduler;
/// use convergent_ir::{DagBuilder, Opcode};
/// use convergent_machine::Machine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DagBuilder::new();
/// let x = b.instr(Opcode::Load);
/// let y = b.instr(Opcode::FMul);
/// b.edge(x, y)?;
/// let dag = b.build()?;
///
/// let machine = Machine::chorus_vliw(4);
/// let outcome = ConvergentScheduler::vliw_default().schedule(&dag, &machine)?;
/// convergent_sim::validate(&dag, &machine, outcome.schedule())?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ConvergentScheduler {
    sequence: Sequence,
    seed: u64,
    use_time_priorities: bool,
    reference_map: bool,
    threads: usize,
    shards: usize,
    region_size: Option<usize>,
}

impl ConvergentScheduler {
    /// Creates a scheduler running `sequence`.
    #[must_use]
    pub fn new(sequence: Sequence) -> Self {
        ConvergentScheduler {
            sequence,
            seed: 42,
            use_time_priorities: true,
            reference_map: false,
            threads: 1,
            shards: 1,
            region_size: None,
        }
    }

    /// The paper's Raw configuration (Table 1a).
    ///
    /// Matching Section 5 — "For Rawcc, however, the temporal
    /// assignments are computed independently by its own instruction
    /// scheduler" — this preset takes only the *spatial* assignment
    /// from the preference map and lets the list scheduler use its own
    /// critical-path priorities.
    #[must_use]
    pub fn raw_default() -> Self {
        let mut s = ConvergentScheduler::new(Sequence::raw());
        s.use_time_priorities = false;
        s
    }

    /// The paper's clustered-VLIW configuration (Table 1b).
    ///
    /// "Chorus uses the temporal assignments as priorities for the
    /// list scheduler", so this preset keeps the converged times.
    #[must_use]
    pub fn vliw_default() -> Self {
        ConvergentScheduler::new(Sequence::vliw())
    }

    /// The clustered-VLIW configuration re-tuned for this workspace's
    /// cost model ([`Sequence::vliw_tuned`]); used by the Figure 8
    /// experiment.
    #[must_use]
    pub fn vliw_tuned() -> Self {
        ConvergentScheduler::new(Sequence::vliw_tuned())
    }

    /// Chooses whether the converged preferred times drive the list
    /// scheduler (`true`, Chorus-style) or the list scheduler computes
    /// its own critical-path priorities (`false`, Rawcc-style).
    #[must_use]
    pub fn with_time_priorities(mut self, on: bool) -> Self {
        self.use_time_priorities = on;
        self
    }

    /// Sets the seed for the NOISE pass (runs are deterministic for a
    /// fixed seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs on the dense reference [`PreferenceMap`] layout instead of
    /// the banded default. The two layouts are bit-for-bit equivalent,
    /// so this exists for differential testing and perf comparison
    /// only.
    #[must_use]
    pub fn with_reference_map(mut self, on: bool) -> Self {
        self.reference_map = on;
        self
    }

    /// Sets the number of worker threads for intra-pass parallelism.
    ///
    /// With `threads > 1`, passes that implement
    /// [`Pass::row_kernel`](crate::Pass::row_kernel) run their
    /// sequential prologue once and then apply the kernel to disjoint
    /// [`crate::WeightRows`] chunks of the preference map across a
    /// thread scope. Row independence makes the result bit-identical
    /// to the single-threaded run for any thread count; passes without
    /// a kernel fall back to their sequential `run`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "threads must be at least 1");
        self.threads = threads;
        self
    }

    /// Sets the shard budget for region-sharded scheduling.
    ///
    /// With `shards > 1`, [`ConvergentScheduler::schedule`] first
    /// decomposes the graph ([`convergent_ir::decompose_with`]) into
    /// region shards — weakly-connected components packed into at most
    /// `shards` bins, with any region above the size target
    /// ([`ConvergentScheduler::with_region_size`]) recursively cut —
    /// runs the full pass pipeline plus list scheduling on every shard
    /// concurrently, and stitches the per-shard schedules back together
    /// with a boundary COMM fix-up ([`convergent_sim::stitch`]).
    ///
    /// Connected graphs at or under the region target are never split,
    /// so their schedules stay byte-identical to the monolithic driver
    /// at any shard count. Larger connected graphs are cut for
    /// compile-time, trading byte-identity for bounded region size; a
    /// cut governor ([`crate::assess`]) rejects degenerate cuts,
    /// coarsening the region target (doubling it) while the rejection
    /// is for cross edges before falling back to the monolithic path.
    /// Composes with
    /// [`ConvergentScheduler::with_threads`]: each shard still applies
    /// its row kernels across the configured thread count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shards must be at least 1");
        self.shards = shards;
        self
    }

    /// Sets the region-size target for sharded scheduling: regions
    /// larger than this are recursively cut while a profitable cut
    /// exists. Defaults to [`convergent_ir::DEFAULT_REGION_SIZE`].
    /// Has no effect unless the shard budget is above one. The target
    /// is a starting point, not a ceiling: when the cut governor
    /// rejects a cut for excessive cross edges the driver doubles the
    /// target and retries, so wide layered graphs settle on the
    /// finest granularity the governor will accept.
    ///
    /// # Panics
    ///
    /// Panics if `region_size` is zero.
    #[must_use]
    pub fn with_region_size(mut self, region_size: usize) -> Self {
        assert!(region_size > 0, "region size must be at least 1");
        self.region_size = Some(region_size);
        self
    }

    /// The configured sequence.
    #[must_use]
    pub fn sequence(&self) -> &Sequence {
        &self.sequence
    }

    /// Runs the passes and reads off assignment + priorities.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::BadHomeCluster`] for preplacements
    /// referencing nonexistent clusters and
    /// [`ScheduleError::NoCapableCluster`] when an operation cannot
    /// execute anywhere on the machine.
    pub fn assign(&self, dag: &Dag, machine: &Machine) -> Result<AssignOutcome, ScheduleError> {
        self.assign_with_observer(dag, machine, |_, _, _| {})
    }

    /// Like [`ConvergentScheduler::assign`], invoking `observer` after
    /// the initial map is built (pass index 0, name `"<init>"`) and
    /// after each pass completes — the hook behind the paper's
    /// Figure 4 visualization.
    ///
    /// # Errors
    ///
    /// Same as [`ConvergentScheduler::assign`].
    pub fn assign_with_observer(
        &self,
        dag: &Dag,
        machine: &Machine,
        observer: impl FnMut(usize, &str, &PreferenceMap),
    ) -> Result<AssignOutcome, ScheduleError> {
        self.assign_impl(dag, machine, observer, None)
    }

    /// Like [`ConvergentScheduler::assign`], also collecting a per-pass
    /// wall-clock [`PassProfile`] (spans `"<init>"`, one per pass, and
    /// `"<readoff>"`).
    ///
    /// # Errors
    ///
    /// Same as [`ConvergentScheduler::assign`].
    pub fn assign_profiled(
        &self,
        dag: &Dag,
        machine: &Machine,
    ) -> Result<(AssignOutcome, PassProfile), ScheduleError> {
        let mut profile = PassProfile::default();
        let outcome = {
            let mut tel = Telemetry::new(&mut profile);
            self.assign_impl(dag, machine, |_, _, _| {}, Some(&mut tel))?
        };
        Ok((outcome, profile))
    }

    /// Like [`ConvergentScheduler::assign`], streaming telemetry into
    /// `sink`: stage/pass spans, plus per-pass counter deltas and
    /// convergence metrics when the sink's
    /// [interest](TelemetrySink::interest) asks for them. The whole
    /// call is wrapped in a `"<run>"` span. Telemetry never changes
    /// the result — the assignment is bit-identical to
    /// [`ConvergentScheduler::assign`].
    ///
    /// # Errors
    ///
    /// Same as [`ConvergentScheduler::assign`].
    pub fn assign_with_sink(
        &self,
        dag: &Dag,
        machine: &Machine,
        sink: &mut dyn TelemetrySink,
    ) -> Result<AssignOutcome, ScheduleError> {
        let mut tel = Telemetry::new(sink);
        let t0 = tel.epoch;
        let outcome = self.assign_impl(dag, machine, |_, _, _| {}, Some(&mut tel))?;
        tel.span_from("<run>", SpanKind::Run, t0);
        Ok(outcome)
    }

    fn assign_impl(
        &self,
        dag: &Dag,
        machine: &Machine,
        mut observer: impl FnMut(usize, &str, &PreferenceMap),
        mut tel: Option<&mut Telemetry>,
    ) -> Result<AssignOutcome, ScheduleError> {
        let interest = tel
            .as_deref()
            .map_or_else(SinkInterest::spans_only, |t| t.interest);
        let t_init = Instant::now();
        convergent_schedulers::check_inputs(dag, machine)?;

        let time = TimeAnalysis::compute(dag, |i| machine.latency_of(i));
        let n_slots = (time.critical_path_length().max(1)) as usize;
        let mut weights = if self.reference_map {
            PreferenceMap::new_dense(dag.len(), machine.n_clusters(), n_slots)
        } else {
            PreferenceMap::new(dag.len(), machine.n_clusters(), n_slots)
        };
        if interest.counters {
            weights.enable_counters();
        }
        let mut dist = DistanceOracle::new();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut scratch = PassScratch::default();
        let mut trace = ConvergenceTrace::default();
        observer(0, "<init>", &weights);
        if let Some(t) = tel.as_deref_mut() {
            t.span_from("<init>", SpanKind::Stage, t_init);
            if t.interest.counters {
                // Static contract coverage of the sequence about to
                // run: clauses the abstract interpreter proved vs.
                // clauses left to the empirical probes. Sampled once
                // per region (per driver run), so sharded schedules
                // report per-region coverage.
                let (proven, unproven) = crate::contract::sequence_proof_counts(&self.sequence);
                if proven + unproven > 0 {
                    t.sink.counters(
                        "<contracts>",
                        &CounterTotals {
                            contracts_proven: proven,
                            contracts_unproven: unproven,
                            ..CounterTotals::default()
                        },
                    );
                }
            }
        }
        let mut counter_base = weights.counter_totals();

        let mut preferred: Vec<ClusterId> =
            dag.ids().map(|i| weights.preferred_cluster(i)).collect();
        for (k, pass) in self.sequence.passes().iter().enumerate() {
            let t_pass = Instant::now();
            // With threads > 1, split kernel-capable passes into their
            // sequential prologue plus a row kernel applied to
            // disjoint row chunks across a thread scope. Rows are
            // independent, so any split produces the bit-identical
            // map; passes without a kernel run sequentially.
            let mut ran_parallel = false;
            if self.threads > 1 {
                if let Some(kernel) =
                    pass.row_kernel(dag, machine, &time, &mut rng, &weights, &mut scratch)
                {
                    let t_kernel = Instant::now();
                    if let Some(t) = tel.as_deref_mut() {
                        t.span_between(
                            &format!("{}/<prologue>", pass.name()),
                            SpanKind::Phase,
                            t_pass,
                            t_kernel,
                        );
                    }
                    let kernel = &*kernel;
                    let chunks = weights.rows_mut(self.threads);
                    std::thread::scope(|scope| {
                        for mut chunk in chunks {
                            scope.spawn(move || kernel.apply(&mut chunk));
                        }
                    });
                    if let Some(t) = tel.as_deref_mut() {
                        t.span_from(
                            &format!("{}/<kernel>", pass.name()),
                            SpanKind::Phase,
                            t_kernel,
                        );
                    }
                    ran_parallel = true;
                }
            }
            if !ran_parallel {
                let mut ctx = PassContext {
                    dag,
                    machine,
                    time: &time,
                    dist: &mut dist,
                    rng: &mut rng,
                    weights: &mut weights,
                    scratch: &mut scratch,
                };
                pass.run(&mut ctx);
            }
            // O(N) on the lazy path: only per-instruction scale
            // factors move (see the PreferenceMap module docs).
            weights.normalize_all();
            // The changed-fraction scan reads the map's incremental
            // argmax caches — instructions a pass didn't perturb cost
            // O(1) here instead of an O(C) marginal scan.
            let mut changed = 0usize;
            for i in dag.ids() {
                let now = weights.preferred_cluster(i);
                if now != preferred[i.index()] {
                    changed += 1;
                    preferred[i.index()] = now;
                }
            }
            let changed_fraction = changed as f64 / dag.len() as f64;
            // Expensive telemetry, gated on interest: the counter
            // delta this pass produced, and a convergence sweep over
            // the map. Computed before the pass span is emitted so
            // the span covers them; *emitted* after it so exporters
            // see the span first.
            let t_metrics = Instant::now();
            let delta = interest
                .counters
                .then(|| weights.counter_totals().delta_since(&counter_base));
            let metrics = interest
                .convergence
                .then(|| measure(dag, &weights, changed_fraction));
            let t_metrics_end = Instant::now();
            trace.records.push(PassRecord {
                name: pass.name(),
                changed_fraction,
                time_only: pass.is_time_only(),
                metrics,
            });
            observer(k + 1, pass.name(), &weights);
            if let Some(t) = tel.as_deref_mut() {
                t.span_from(pass.name(), SpanKind::Pass, t_pass);
                if delta.is_some() || metrics.is_some() {
                    t.span_between(
                        &format!("{}/<metrics>", pass.name()),
                        SpanKind::Phase,
                        t_metrics,
                        t_metrics_end,
                    );
                }
                if let Some(delta) = &delta {
                    if !delta.is_zero() {
                        t.sink.counters(pass.name(), delta);
                    }
                }
                if let Some(m) = &metrics {
                    t.sink.convergence(pass.name(), m);
                }
            }
            if interest.counters {
                // Re-snapshot after the metrics sweep so its argmax
                // reads never pollute the next pass's delta.
                counter_base = weights.counter_totals();
            }
        }

        // Read off the converged decisions. Preplacement is a
        // correctness constraint: on hard-memory machines the final
        // assignment is forced home no matter what the heuristics
        // said (PLACE's ×100 makes disagreement rare).
        let t_readoff = Instant::now();
        let hard = machine.memory().preplacement_is_hard();
        let assignment: Assignment = dag
            .ids()
            .map(|i| match (dag.instr(i).preplacement(), hard) {
                (Some(home), true) => home,
                _ => weights.preferred_cluster(i),
            })
            .collect();
        let priorities: Vec<u32> = dag.ids().map(|i| weights.preferred_time(i).get()).collect();
        if let Some(t) = tel.as_mut() {
            t.span_from("<readoff>", SpanKind::Stage, t_readoff);
            if interest.counters {
                let delta = weights.counter_totals().delta_since(&counter_base);
                if !delta.is_zero() {
                    t.sink.counters("<readoff>", &delta);
                }
            }
        }
        Ok(AssignOutcome {
            assignment,
            priorities,
            trace,
        })
    }

    /// Runs the passes and list-schedules the result.
    ///
    /// With a shard budget above one
    /// ([`ConvergentScheduler::with_shards`]) and a graph that actually
    /// decomposes, the pipeline runs per shard concurrently and the
    /// per-shard schedules are stitched with a boundary COMM fix-up;
    /// otherwise this is the monolithic driver.
    ///
    /// # Errors
    ///
    /// Same as [`ConvergentScheduler::assign`], plus any
    /// [`ScheduleError`] from the list scheduler; sharded runs report
    /// stitch failures as [`ScheduleError::ProducedInvalid`].
    pub fn schedule(&self, dag: &Dag, machine: &Machine) -> Result<ScheduleOutcome, ScheduleError> {
        self.schedule_impl(dag, machine, None)
    }

    /// Like [`ConvergentScheduler::schedule`], also collecting a
    /// per-pass wall-clock [`PassProfile`] (the final list-scheduling
    /// step appears as the `"<listsched>"` span; sharded runs add
    /// `"<decompose>"`, `"<stitch>"`, and per-shard spans under a
    /// `shard{k}/` prefix).
    ///
    /// # Errors
    ///
    /// Same as [`ConvergentScheduler::schedule`].
    pub fn schedule_profiled(
        &self,
        dag: &Dag,
        machine: &Machine,
    ) -> Result<(ScheduleOutcome, PassProfile), ScheduleError> {
        let mut profile = PassProfile::default();
        let out = {
            let mut tel = Telemetry::new(&mut profile);
            self.schedule_impl(dag, machine, Some(&mut tel))?
        };
        Ok((out, profile))
    }

    /// Like [`ConvergentScheduler::schedule`], streaming telemetry
    /// into `sink` (see [`ConvergentScheduler::assign_with_sink`]).
    /// Sharded runs buffer per-shard events on the worker threads and
    /// replay them in shard order after the join, so event order is
    /// deterministic; a synthetic `shard{k}` container span brackets
    /// each shard's events. The whole call is wrapped in a `"<run>"`
    /// span. Telemetry never changes the schedule — a suite-wide test
    /// holds it byte-identical to [`ConvergentScheduler::schedule`].
    ///
    /// # Errors
    ///
    /// Same as [`ConvergentScheduler::schedule`].
    pub fn schedule_with_sink(
        &self,
        dag: &Dag,
        machine: &Machine,
        sink: &mut dyn TelemetrySink,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        let mut tel = Telemetry::new(sink);
        let t0 = tel.epoch;
        let out = self.schedule_impl(dag, machine, Some(&mut tel))?;
        tel.span_from("<run>", SpanKind::Run, t0);
        Ok(out)
    }

    fn schedule_impl(
        &self,
        dag: &Dag,
        machine: &Machine,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        let (sharded, assessment) = self.try_schedule_sharded(dag, machine, tel.as_deref_mut())?;
        if let Some(out) = sharded {
            return Ok(out);
        }
        let outcome = self.assign_impl(dag, machine, |_, _, _| {}, tel.as_deref_mut())?;
        let t0 = Instant::now();
        let mut out = self.listsched(dag, machine, outcome)?;
        // A rejected cut still surfaces what the governor measured.
        out.governor = assessment;
        if let Some(t) = tel {
            t.span_from("<listsched>", SpanKind::Stage, t0);
        }
        Ok(out)
    }

    /// The sharded scheduling path. Returns `(None, _)` when sharding
    /// does not apply — shard budget of one, a graph the decomposer
    /// refuses to split (connected and under the region target, or no
    /// profitable cut), or no decomposition the cut governor accepts
    /// even after coarsening the region target — in which case the
    /// caller must run the monolithic path, keeping those runs
    /// byte-identical to an unsharded driver. The second element
    /// carries the governor's assessment of the committed cut, or of
    /// the last rejected cut when the run fell back.
    fn try_schedule_sharded(
        &self,
        dag: &Dag,
        machine: &Machine,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<(Option<ScheduleOutcome>, Option<CutAssessment>), ScheduleError> {
        if self.shards <= 1 {
            return Ok((None, None));
        }
        convergent_schedulers::check_inputs(dag, machine)?;
        let t0 = Instant::now();
        // Governor-driven coarsening. A cut rejected for cross edges
        // means the region target is finer than the graph's layer
        // width supports — pieces span too few topological levels, so
        // most dependence edges cross a boundary no matter how the cut
        // planes are aligned. Doubling the target widens every piece
        // (halving the cross fraction on layered graphs), so either
        // some coarser cut passes the governor or the decomposer stops
        // cutting and the run falls back to the monolithic path,
        // carrying the last rejected assessment as its verdict.
        // Imbalance rejections never coarsen: a larger target only
        // makes the dominant shard bigger.
        let mut target = self
            .region_size
            .unwrap_or(convergent_ir::DEFAULT_REGION_SIZE)
            .max(1);
        let mut rejects = 0u64;
        let mut last_rejected: Option<CutAssessment> = None;
        let (dec, assessment) = loop {
            let policy = RegionPolicy::new(self.shards).with_region_size(target);
            let dec = decompose_with(dag, &policy);
            if dec.is_trivial() {
                break (dec, last_rejected);
            }
            let a = governor::assess(dag, &dec);
            if a.accepted() {
                break (dec, Some(a));
            }
            rejects += 1;
            last_rejected = Some(a);
            if a.verdict != CutVerdict::RejectedCrossEdges || target >= dag.len() {
                break (dec, last_rejected);
            }
            target = target.saturating_mul(2);
        };
        let accepted = assessment.is_some_and(|a| a.accepted());
        if let Some(t) = tel.as_deref_mut() {
            t.span_from("<decompose>", SpanKind::Stage, t0);
            if t.interest.counters && (accepted || rejects > 0) {
                let delta = CounterTotals {
                    governor_accepts: u64::from(accepted),
                    governor_rejects: rejects,
                    ..CounterTotals::default()
                };
                t.sink.counters("<decompose>", &delta);
            }
        }
        if !accepted {
            return Ok((None, assessment));
        }
        let shards = dec.shards();
        let interest = tel
            .as_deref()
            .map_or_else(SinkInterest::spans_only, |t| t.interest);
        let epoch = tel.as_deref().map(|t| t.epoch);

        // Full pipeline (passes + list scheduling) per shard, run
        // concurrently; each shard still applies row kernels across
        // `self.threads`. Workers are capped at the host's parallelism:
        // oversubscribing (one thread per shard regardless of cores)
        // thrashes caches badly enough to erase the whole win on small
        // hosts. Results land in per-shard slots, so scheduling order
        // never affects output, and errors surface in shard order.
        // Telemetry from worker threads lands in a per-shard
        // TelemetryBuffer (timestamps on the parent epoch) and is
        // replayed into the real sink in shard order after the join.
        type ShardResult = Result<(ScheduleOutcome, Option<TelemetryBuffer>), ScheduleError>;
        let run_one = |shard: &Shard| -> ShardResult {
            if let Some(epoch) = epoch {
                let mut buf = TelemetryBuffer::with_interest(interest);
                let out = {
                    let mut t = Telemetry::with_epoch(&mut buf, epoch);
                    let outcome =
                        self.assign_impl(shard.dag(), machine, |_, _, _| {}, Some(&mut t))?;
                    let t0 = Instant::now();
                    let out = self.listsched(shard.dag(), machine, outcome)?;
                    t.span_from("<listsched>", SpanKind::Stage, t0);
                    out
                };
                Ok((out, Some(buf)))
            } else {
                let outcome = self.assign_impl(shard.dag(), machine, |_, _, _| {}, None)?;
                Ok((self.listsched(shard.dag(), machine, outcome)?, None))
            }
        };
        let workers = std::thread::available_parallelism()
            .map_or(1, usize::from)
            .min(shards.len());
        let results: Vec<ShardResult> = if workers <= 1 {
            shards.iter().map(run_one).collect()
        } else {
            let slots: Vec<std::sync::Mutex<Option<ShardResult>>> =
                shards.iter().map(|_| std::sync::Mutex::new(None)).collect();
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(shard) = shards.get(k) else { break };
                        let res = run_one(shard);
                        *slots[k].lock().expect("no panics hold the slot lock") = Some(res);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("no panics hold the slot lock")
                        .expect("every shard index was claimed exactly once")
                })
                .collect()
        };

        let mut parts = Vec::with_capacity(shards.len());
        let mut traces = Vec::with_capacity(shards.len());
        for (k, res) in results.into_iter().enumerate() {
            let (out, buf) = res?;
            if let (Some(t), Some(buf)) = (tel.as_deref_mut(), buf.as_ref()) {
                // Synthetic container span bracketing the shard's own
                // events, then the events themselves under `shard{k}/`.
                if let Some((lo, hi)) = buf.span_extent() {
                    t.sink
                        .span(&format!("shard{k}"), SpanKind::Shard, lo, hi - lo);
                }
                buf.replay_into(&format!("shard{k}/"), t.sink);
            }
            traces.push(out.trace().clone());
            parts.push(out.into_schedule());
        }

        let t0 = Instant::now();
        let report = stitch(dag, machine, &dec, &parts)
            .map_err(|e| ScheduleError::ProducedInvalid(format!("stitch failed: {e}")))?;
        if let Some(t) = tel.as_mut() {
            t.span_from("<stitch>", SpanKind::Stage, t0);
            if t.interest.counters && report.boundary_comms > 0 {
                t.sink.counters(
                    "<stitch>",
                    &CounterTotals {
                        boundary_comms: report.boundary_comms as u64,
                        ..CounterTotals::default()
                    },
                );
            }
        }

        // Aggregate the per-shard convergence traces, weighted by shard
        // size, so the merged trace still reads like one run of the
        // sequence.
        let total = dag.len() as f64;
        let mut records: Vec<PassRecord> = Vec::new();
        for (k, trace) in traces.iter().enumerate() {
            let w = shards[k].len() as f64 / total;
            for (j, r) in trace.records().iter().enumerate() {
                if records.len() <= j {
                    records.push(PassRecord {
                        name: r.name,
                        changed_fraction: 0.0,
                        time_only: r.time_only,
                        metrics: None,
                    });
                }
                records[j].changed_fraction += w * r.changed_fraction;
            }
        }

        // The governor's post-hoc quality record: stitched makespan
        // against the graph-wide critical-path lower bound.
        let cp_lower_bound = TimeAnalysis::compute(dag, |i| machine.latency_of(i))
            .critical_path_length()
            .max(1);
        let shard_info = ShardInfo {
            shard_sizes: shards.iter().map(convergent_ir::Shard::len).collect(),
            offsets: report.offsets,
            boundary_comms: report.boundary_comms,
            cross_edges: dec.cross_edges().len(),
            stitched_makespan: report.schedule.makespan().get(),
            cp_lower_bound,
        };
        let assignment = report.schedule.assignment();
        Ok((
            Some(ScheduleOutcome {
                schedule: report.schedule,
                assignment,
                trace: ConvergenceTrace { records },
                shard_info: Some(shard_info),
                governor: assessment,
            }),
            assessment,
        ))
    }

    fn listsched(
        &self,
        dag: &Dag,
        machine: &Machine,
        outcome: AssignOutcome,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        let schedule = if self.use_time_priorities {
            ListScheduler::new().schedule(dag, machine, &outcome.assignment, &outcome.priorities)?
        } else {
            ListScheduler::new().schedule_with_cp(dag, machine, &outcome.assignment)?
        };
        Ok(ScheduleOutcome {
            schedule,
            assignment: outcome.assignment,
            trace: outcome.trace,
            shard_info: None,
            governor: None,
        })
    }
}

impl Scheduler for ConvergentScheduler {
    fn name(&self) -> &str {
        "convergent"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> Result<SpaceTimeSchedule, ScheduleError> {
        ConvergentScheduler::schedule(self, dag, machine).map(ScheduleOutcome::into_schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::{DagBuilder, InstrId, Opcode};
    use convergent_sim::validate;

    fn c(k: u16) -> ClusterId {
        ClusterId::new(k)
    }

    fn star_with_preplacement() -> Dag {
        // Four banked loads feeding a reduction tree.
        let mut b = DagBuilder::new();
        let mut muls = Vec::new();
        for k in 0..4u16 {
            let ld = b.preplaced_instr(Opcode::Load, c(k));
            let mu = b.instr(Opcode::FMul);
            b.edge(ld, mu).unwrap();
            muls.push(mu);
        }
        let a1 = b.instr(Opcode::FAdd);
        let a2 = b.instr(Opcode::FAdd);
        let a3 = b.instr(Opcode::FAdd);
        b.edge(muls[0], a1).unwrap();
        b.edge(muls[1], a1).unwrap();
        b.edge(muls[2], a2).unwrap();
        b.edge(muls[3], a2).unwrap();
        b.edge(a1, a3).unwrap();
        b.edge(a2, a3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn raw_schedule_validates_and_honors_preplacement() {
        let dag = star_with_preplacement();
        let m = Machine::raw(4);
        let out = ConvergentScheduler::raw_default()
            .schedule(&dag, &m)
            .unwrap();
        validate(&dag, &m, out.schedule()).unwrap();
        assert!(out.assignment().respects_preplacement(&dag));
        // Each multiply follows its load's home tile.
        for k in 0..4u32 {
            let ld = InstrId::new(k * 2);
            let mu = InstrId::new(k * 2 + 1);
            assert_eq!(out.assignment().cluster(mu), out.assignment().cluster(ld));
        }
    }

    #[test]
    fn vliw_schedule_validates() {
        let dag = star_with_preplacement();
        let m = Machine::chorus_vliw(4);
        let out = ConvergentScheduler::vliw_default()
            .schedule(&dag, &m)
            .unwrap();
        validate(&dag, &m, out.schedule()).unwrap();
    }

    #[test]
    fn trace_covers_every_pass() {
        let dag = star_with_preplacement();
        let m = Machine::raw(4);
        let out = ConvergentScheduler::raw_default().assign(&dag, &m).unwrap();
        assert_eq!(out.trace().records().len(), Sequence::raw().len());
        // EMPHCP is time-only and excluded from the spatial trace.
        assert_eq!(out.trace().spatial().count(), Sequence::raw().len() - 1);
        for r in out.trace().records() {
            assert!((0.0..=1.0).contains(&r.changed_fraction), "{r:?}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let dag = star_with_preplacement();
        let m = Machine::chorus_vliw(4);
        let s1 = ConvergentScheduler::vliw_default().with_seed(9);
        let s2 = ConvergentScheduler::vliw_default().with_seed(9);
        let a = s1.assign(&dag, &m).unwrap();
        let b = s2.assign(&dag, &m).unwrap();
        assert_eq!(a.assignment(), b.assignment());
        assert_eq!(a.priorities(), b.priorities());
    }

    #[test]
    fn observer_sees_init_plus_each_pass() {
        let dag = star_with_preplacement();
        let m = Machine::chorus_vliw(4);
        let mut names = Vec::new();
        ConvergentScheduler::vliw_default()
            .assign_with_observer(&dag, &m, |_, name, w| {
                w.assert_invariants(1e-6);
                names.push(name.to_string());
            })
            .unwrap();
        assert_eq!(names.len(), Sequence::vliw().len() + 1);
        assert_eq!(names[0], "<init>");
        assert_eq!(names[1], "INITTIME");
    }

    #[test]
    fn bad_home_rejected() {
        let mut b = DagBuilder::new();
        b.preplaced_instr(Opcode::Load, c(9));
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        assert!(matches!(
            ConvergentScheduler::vliw_default().assign(&dag, &m),
            Err(ScheduleError::BadHomeCluster { .. })
        ));
    }

    #[test]
    fn empty_sequence_still_schedules() {
        // With no passes everything defaults to cluster 0 — legal,
        // just serial.
        let dag = star_with_preplacement();
        let m = Machine::chorus_vliw(4);
        let out = ConvergentScheduler::new(Sequence::new())
            .schedule(&dag, &m)
            .unwrap();
        validate(&dag, &m, out.schedule()).unwrap();
    }

    #[test]
    fn single_cluster_machine_degenerates_gracefully() {
        // With one cluster there is no spatial choice; confidence is
        // infinite everywhere and the pipeline still produces a valid,
        // serial-resource-bound schedule.
        let dag = star_with_preplacement();
        let folded = {
            // Fold homes onto cluster 0 for the 1-cluster machine.
            let mut b = convergent_ir::DagBuilder::new();
            for instr in dag.instrs() {
                let new = match instr.preplacement() {
                    Some(_) => {
                        convergent_ir::Instruction::preplaced(instr.opcode(), ClusterId::new(0))
                    }
                    None => convergent_ir::Instruction::new(instr.opcode()),
                };
                b.push(new);
            }
            for e in dag.edges() {
                b.edge(e.src, e.dst).unwrap();
            }
            b.build().unwrap()
        };
        let m = Machine::raw(1);
        let out = ConvergentScheduler::raw_default()
            .schedule(&folded, &m)
            .unwrap();
        validate(&folded, &m, out.schedule()).unwrap();
        // Single-issue tile: makespan at least the instruction count.
        assert!(out.schedule().makespan().get() >= folded.len() as u32);
    }

    #[test]
    fn single_instruction_graph_schedules() {
        let mut b = convergent_ir::DagBuilder::new();
        b.instr(convergent_ir::Opcode::FDiv);
        let dag = b.build().unwrap();
        for m in [Machine::raw(4), Machine::chorus_vliw(4)] {
            let out = ConvergentScheduler::raw_default()
                .schedule(&dag, &m)
                .unwrap();
            validate(&dag, &m, out.schedule()).unwrap();
            assert_eq!(out.schedule().op(InstrId::new(0)).start.get(), 0);
        }
    }

    #[test]
    fn profiled_schedule_matches_plain_and_reports_spans() {
        let dag = star_with_preplacement();
        let m = Machine::chorus_vliw(4);
        let plain = ConvergentScheduler::vliw_default()
            .schedule(&dag, &m)
            .unwrap();
        let (out, profile) = ConvergentScheduler::vliw_default()
            .schedule_profiled(&dag, &m)
            .unwrap();
        assert_eq!(plain.assignment(), out.assignment());
        assert_eq!(plain.schedule(), out.schedule());
        let names: Vec<_> = profile.spans().map(|(n, _, _)| n).collect();
        assert_eq!(names.first(), Some(&"<init>"));
        assert!(names.contains(&"INITTIME"));
        assert!(names.contains(&"<readoff>"));
        assert_eq!(names.last(), Some(&"<listsched>"));
        assert!(profile.spans().all(|(_, s, _)| s >= 0.0));
    }

    #[test]
    fn reference_map_produces_identical_schedules() {
        let dag = star_with_preplacement();
        for (m, mk) in [
            (
                Machine::raw(4),
                ConvergentScheduler::raw_default as fn() -> _,
            ),
            (Machine::chorus_vliw(4), ConvergentScheduler::vliw_tuned),
        ] {
            let banded = mk().schedule(&dag, &m).unwrap();
            let dense = mk().with_reference_map(true).schedule(&dag, &m).unwrap();
            assert_eq!(banded.assignment(), dense.assignment());
            assert_eq!(banded.schedule(), dense.schedule());
            assert_eq!(banded.trace(), dense.trace());
        }
    }

    #[test]
    fn scheduler_trait_is_implemented() {
        let s = ConvergentScheduler::raw_default();
        assert_eq!(Scheduler::name(&s), "convergent");
        let dag = star_with_preplacement();
        let m = Machine::raw(4);
        let schedule = Scheduler::schedule(&s, &dag, &m).unwrap();
        validate(&dag, &m, &schedule).unwrap();
    }

    /// Two independent reduction trees plus a loose chain: three
    /// weakly-connected components, no preplacement.
    fn multi_component_dag() -> Dag {
        let mut b = DagBuilder::new();
        for _ in 0..2 {
            let mut muls = Vec::new();
            for _ in 0..4 {
                let ld = b.instr(Opcode::Load);
                let mu = b.instr(Opcode::FMul);
                b.edge(ld, mu).unwrap();
                muls.push(mu);
            }
            let a1 = b.instr(Opcode::FAdd);
            let a2 = b.instr(Opcode::FAdd);
            let a3 = b.instr(Opcode::FAdd);
            b.edge(muls[0], a1).unwrap();
            b.edge(muls[1], a1).unwrap();
            b.edge(muls[2], a2).unwrap();
            b.edge(muls[3], a2).unwrap();
            b.edge(a1, a3).unwrap();
            b.edge(a2, a3).unwrap();
        }
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 0..5 {
            let n = b.instr(Opcode::IntAlu);
            b.edge(prev, n).unwrap();
            prev = n;
        }
        b.build().unwrap()
    }

    #[test]
    fn sharding_is_identity_on_connected_graphs() {
        // A single weakly-connected component under the region target
        // is never cut, so ANY shard budget must produce the
        // byte-identical schedule.
        let dag = star_with_preplacement();
        for m in [Machine::raw(4), Machine::chorus_vliw(4)] {
            let plain = ConvergentScheduler::raw_default()
                .schedule(&dag, &m)
                .unwrap();
            for shards in [1, 2, 8] {
                let out = ConvergentScheduler::raw_default()
                    .with_shards(shards)
                    .schedule(&dag, &m)
                    .unwrap();
                assert_eq!(plain.schedule(), out.schedule(), "shards={shards}");
                assert_eq!(plain.assignment(), out.assignment());
                assert_eq!(plain.trace(), out.trace());
                assert!(out.shard_info().is_none());
            }
        }
    }

    #[test]
    fn sharded_multi_component_schedule_validates() {
        let dag = multi_component_dag();
        for m in [Machine::raw(4), Machine::chorus_vliw(4)] {
            for shards in [2, 3, 8] {
                let out = ConvergentScheduler::vliw_default()
                    .with_shards(shards)
                    .schedule(&dag, &m)
                    .unwrap();
                validate(&dag, &m, out.schedule()).unwrap();
                let info = out.shard_info().expect("graph decomposes");
                assert!(info.shard_sizes.len() >= 2);
                assert_eq!(info.shard_sizes.iter().sum::<usize>(), dag.len());
                assert_eq!(info.offsets.len(), info.shard_sizes.len());
                assert_eq!(info.offsets[0], 0);
            }
        }
    }

    #[test]
    fn sharded_trace_is_size_weighted_merge() {
        let dag = multi_component_dag();
        let m = Machine::chorus_vliw(4);
        let out = ConvergentScheduler::vliw_default()
            .with_shards(3)
            .schedule(&dag, &m)
            .unwrap();
        assert_eq!(out.trace().records().len(), Sequence::vliw().len());
        for r in out.trace().records() {
            assert!((0.0..=1.0).contains(&r.changed_fraction), "{r:?}");
        }
    }

    #[test]
    fn sharded_profile_reports_shard_and_stitch_spans() {
        let dag = multi_component_dag();
        let m = Machine::chorus_vliw(4);
        let (out, profile) = ConvergentScheduler::vliw_default()
            .with_shards(3)
            .schedule_profiled(&dag, &m)
            .unwrap();
        assert!(out.shard_info().is_some());
        let names: Vec<_> = profile.spans().map(|(n, _, _)| n).collect();
        assert_eq!(names.first(), Some(&"<decompose>"));
        assert_eq!(names.last(), Some(&"<stitch>"));
        assert!(names.iter().any(|n| n.starts_with("shard0/")));
        assert!(names.contains(&"shard0/<listsched>"));
        // Plain and profiled sharded runs agree.
        let plain = ConvergentScheduler::vliw_default()
            .with_shards(3)
            .schedule(&dag, &m)
            .unwrap();
        assert_eq!(plain.schedule(), out.schedule());
    }

    #[test]
    fn sink_run_is_bit_identical_and_emits_run_span() {
        use crate::telemetry::{SinkInterest, TelemetryBuffer, TelemetryEvent};
        let dag = star_with_preplacement();
        let m = Machine::chorus_vliw(4);
        let plain = ConvergentScheduler::vliw_default()
            .schedule(&dag, &m)
            .unwrap();
        let mut buf = TelemetryBuffer::new();
        let out = ConvergentScheduler::vliw_default()
            .schedule_with_sink(&dag, &m, &mut buf)
            .unwrap();
        assert_eq!(plain.schedule(), out.schedule());
        assert_eq!(plain.assignment(), out.assignment());
        // Structure: <init> first, <run> last, one Pass span per pass,
        // counters and convergence for every pass.
        let spans: Vec<_> = buf
            .events()
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Span { path, kind, .. } => Some((path.as_str(), *kind)),
                _ => None,
            })
            .collect();
        assert_eq!(spans.first(), Some(&("<init>", SpanKind::Stage)));
        assert_eq!(spans.last(), Some(&("<run>", SpanKind::Run)));
        let passes = spans.iter().filter(|(_, k)| *k == SpanKind::Pass).count();
        assert_eq!(passes, Sequence::vliw().len());
        assert_eq!(
            buf.convergence_entries().count(),
            Sequence::vliw().len(),
            "one convergence measurement per pass"
        );
        let totals = buf.counter_total();
        assert!(totals.weight_ops() > 0);
        assert!(totals.argmax_hits + totals.argmax_misses > 0);
        // The trace records carry the same metrics.
        assert!(out.trace().records().iter().all(|r| r.metrics.is_some()));
        // Spans-only interest produces no counters/convergence and
        // leaves the trace metrics empty.
        let mut lean = TelemetryBuffer::with_interest(SinkInterest::spans_only());
        let out2 = ConvergentScheduler::vliw_default()
            .schedule_with_sink(&dag, &m, &mut lean)
            .unwrap();
        assert_eq!(plain.schedule(), out2.schedule());
        assert!(lean.counter_total().is_zero());
        assert_eq!(lean.convergence_entries().count(), 0);
        assert!(out2.trace().records().iter().all(|r| r.metrics.is_none()));
    }

    #[test]
    fn sink_sharded_run_replays_in_shard_order() {
        use crate::telemetry::{split_shard_prefix, TelemetryBuffer, TelemetryEvent};
        let dag = multi_component_dag();
        let m = Machine::chorus_vliw(4);
        let plain = ConvergentScheduler::vliw_default()
            .with_shards(3)
            .schedule(&dag, &m)
            .unwrap();
        let mut buf = TelemetryBuffer::new();
        let out = ConvergentScheduler::vliw_default()
            .with_shards(3)
            .schedule_with_sink(&dag, &m, &mut buf)
            .unwrap();
        assert_eq!(plain.schedule(), out.schedule());
        let info = out.shard_info().expect("graph decomposes");
        // Shard indices appear in nondecreasing order across events,
        // regardless of worker scheduling.
        let mut last = 0usize;
        let mut seen = 0usize;
        for ev in buf.events() {
            if let TelemetryEvent::Span { path, kind, .. } = ev {
                if *kind == SpanKind::Shard {
                    let (k, rest) = split_shard_prefix(path);
                    assert_eq!(rest, "");
                    let k = k.expect("shard span path");
                    assert!(k >= last, "shard spans out of order");
                    last = k;
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, info.shard_sizes.len());
        // The stitch counter delta reports the boundary COMMs.
        assert_eq!(
            buf.counter_total().boundary_comms as usize,
            info.boundary_comms
        );
    }

    #[test]
    fn sharding_composes_with_threads() {
        let dag = multi_component_dag();
        let m = Machine::raw(4);
        let one = ConvergentScheduler::raw_default()
            .with_shards(4)
            .schedule(&dag, &m)
            .unwrap();
        let four = ConvergentScheduler::raw_default()
            .with_shards(4)
            .with_threads(4)
            .schedule(&dag, &m)
            .unwrap();
        assert_eq!(one.schedule(), four.schedule());
        assert_eq!(one.assignment(), four.assignment());
    }
}
