//! PATH — critical path strengthening.
//!
//! "This pass tries to keep all the instructions on a critical path in
//! the same cluster. If instructions in the paths have bias for a
//! particular cluster, the path is moved to that cluster. Otherwise
//! the least loaded cluster is selected. If different portions of the
//! paths have strong bias toward different clusters (e.g., when there
//! are two or more preplaced instructions on the path), the critical
//! path is broken in two or more pieces and kept locally close to the
//! relevant home clusters."
//!
//! ```text
//! ∀ (i ∈ CP, t):  W[i, t, cc(i)] ← 3 · W[i, t, cc(i)]
//! ```

use convergent_analysis::{EffectOp, Interval, PassEffect};
use convergent_ir::{ClusterId, CriticalPath, InstrId};

use crate::{Pass, PassContext};

/// The PATH pass. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct Path {
    factor: f64,
    /// Minimum top-to-second cluster-bias ratio for the path to follow
    /// its own bias instead of the least-loaded cluster.
    bias_threshold: f64,
}

impl Path {
    /// Creates the pass with the paper's boost factor of 3.
    #[must_use]
    pub fn new() -> Self {
        Path {
            factor: 3.0,
            bias_threshold: 1.05,
        }
    }

    /// Overrides the boost factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a positive finite number.
    #[must_use]
    pub fn with_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        self.factor = factor;
        self
    }
}

impl Default for Path {
    fn default() -> Self {
        Path::new()
    }
}

impl Pass for Path {
    fn name(&self) -> &'static str {
        "PATH"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        let cp = CriticalPath::extract(ctx.dag, ctx.time);
        let path = cp.instrs();
        if path.is_empty() {
            return;
        }

        // Break the path at preplaced instructions: each segment is
        // anchored by the preplaced instruction it contains (segment
        // boundaries fall midway between consecutive anchors).
        let anchors: Vec<(usize, ClusterId)> = path
            .iter()
            .enumerate()
            .filter_map(|(k, &i)| ctx.dag.instr(i).preplacement().map(|h| (k, h)))
            .filter(|(_, h)| h.index() < ctx.weights.n_clusters())
            .collect();

        if anchors.is_empty() {
            let cc = self.whole_path_cluster(ctx, path);
            for &i in path {
                self.boost(ctx, i, cc);
            }
            return;
        }

        // Midpoints between consecutive anchors split the path.
        for (k, &i) in path.iter().enumerate() {
            let cc = anchors
                .iter()
                .min_by_key(|(pos, _)| (pos.abs_diff(k), *pos))
                .map(|&(_, h)| h)
                .expect("anchors is non-empty");
            self.boost(ctx, i, cc);
        }
    }

    fn effect(&self) -> PassEffect {
        // A constant, feasibility-guarded boost of each critical-path
        // instruction's chosen cluster column.
        PassEffect::new(vec![EffectOp::ScaleClusters {
            factor: Interval::point(self.factor),
        }])
        .breaks_symmetry()
    }
}

impl Path {
    fn boost(&self, ctx: &mut PassContext<'_>, i: InstrId, cc: ClusterId) {
        if ctx.weights.cluster_feasible(i, cc) {
            ctx.weights.scale_cluster(i, cc, self.factor);
        }
    }

    /// Chooses the cluster for an anchor-free path: the path's own
    /// bias when clear, otherwise the least loaded cluster.
    fn whole_path_cluster(&self, ctx: &PassContext<'_>, path: &[InstrId]) -> ClusterId {
        let n_clusters = ctx.weights.n_clusters();
        let mut bias = vec![0.0f64; n_clusters];
        for &i in path {
            let tot = ctx.weights.total(i).max(f64::MIN_POSITIVE);
            for c in 0..n_clusters {
                bias[c] += ctx.weights.cluster_weight(i, ClusterId::new(c as u16)) / tot;
            }
        }
        let mut order: Vec<usize> = (0..n_clusters).collect();
        order.sort_by(|&a, &b| bias[b].partial_cmp(&bias[a]).expect("weights are finite"));
        let top = order[0];
        let clear = n_clusters == 1
            || bias[order[1]] <= f64::MIN_POSITIVE
            || bias[top] / bias[order[1]] >= self.bias_threshold;
        if clear {
            return ClusterId::new(top as u16);
        }
        // Least loaded: smallest total expected weight across all
        // instructions.
        let mut load = vec![0.0f64; n_clusters];
        for i in ctx.dag.ids() {
            let tot = ctx.weights.total(i).max(f64::MIN_POSITIVE);
            for c in 0..n_clusters {
                load[c] += ctx.weights.cluster_weight(i, ClusterId::new(c as u16)) / tot;
            }
        }
        let least = (0..n_clusters)
            .min_by(|&a, &b| load[a].partial_cmp(&load[b]).expect("finite"))
            .expect("at least one cluster");
        ClusterId::new(least as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::Rig;
    use crate::passes::Place;
    use convergent_ir::{DagBuilder, Opcode};
    use convergent_machine::Machine;

    fn c(k: u16) -> ClusterId {
        ClusterId::new(k)
    }

    #[test]
    fn path_follows_existing_bias() {
        // Chain x -> y -> z with x biased toward cluster 2.
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        let z = b.instr(Opcode::IntAlu);
        b.edge(x, y).unwrap();
        b.edge(y, z).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(4));
        rig.weights.scale_cluster(x, c(2), 10.0);
        rig.weights.normalize_all();
        rig.run(&Path::new());
        rig.weights.assert_invariants(1e-9);
        for i in [x, y, z] {
            assert_eq!(rig.weights.preferred_cluster(i), c(2), "{i}");
        }
    }

    #[test]
    fn unbiased_path_takes_least_loaded_cluster() {
        // Chain plus heavy off-path bias toward cluster 0 on an
        // island: the path should avoid cluster 0.
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        b.edge(x, y).unwrap();
        let island = b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.weights.scale_cluster(island, c(0), 50.0);
        rig.weights.normalize_all();
        rig.run(&Path::new());
        assert_eq!(rig.weights.preferred_cluster(x), c(1));
        assert_eq!(rig.weights.preferred_cluster(y), c(1));
    }

    #[test]
    fn preplaced_anchors_split_the_path() {
        // ld@c0 -> a -> b -> st@c3 : first half pulls to 0, second to 3.
        let mut b = DagBuilder::new();
        let ld = b.preplaced_instr(Opcode::Load, c(0));
        let a1 = b.instr(Opcode::IntAlu);
        let a2 = b.instr(Opcode::IntAlu);
        let st = b.preplaced_instr(Opcode::Store, c(3));
        b.edge(ld, a1).unwrap();
        b.edge(a1, a2).unwrap();
        b.edge(a2, st).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(4));
        rig.run(&Place::new());
        rig.run(&Path::new());
        rig.weights.assert_invariants(1e-9);
        assert_eq!(rig.weights.preferred_cluster(ld), c(0));
        assert_eq!(rig.weights.preferred_cluster(a1), c(0));
        assert_eq!(rig.weights.preferred_cluster(a2), c(3));
        assert_eq!(rig.weights.preferred_cluster(st), c(3));
    }

    #[test]
    fn two_component_graph_boosts_only_the_critical_component() {
        // A long FMul chain (the global critical path) next to a short
        // IntAlu chain in a separate weakly-connected component. PATH
        // must handle the disconnected component without leaking
        // sentinels: the off-path component's weights stay untouched.
        let mut b = DagBuilder::new();
        let m1 = b.instr(Opcode::FMul);
        let m2 = b.instr(Opcode::FMul);
        b.edge(m1, m2).unwrap();
        let a1 = b.instr(Opcode::IntAlu);
        let a2 = b.instr(Opcode::IntAlu);
        b.edge(a1, a2).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::chorus_vliw(2));
        rig.run(&Path::new());
        rig.weights.assert_invariants(1e-9);
        for i in [m1, m2] {
            assert!(rig.weights.confidence(i) > 1.0, "{i} is on the CP");
        }
        for i in [a1, a2] {
            assert!(
                (rig.weights.confidence(i) - 1.0).abs() < 1e-9,
                "{i} is off the CP"
            );
        }
    }

    #[test]
    fn off_path_instructions_untouched() {
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::FMul); // critical (7 cycles)
        let y = b.instr(Opcode::IntAlu); // slack
        let _ = y;
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::chorus_vliw(2));
        rig.run(&Path::new());
        // x boosted somewhere; y untouched (confidence 1).
        assert!(rig.weights.confidence(x) > 1.0);
        assert!((rig.weights.confidence(y) - 1.0).abs() < 1e-9);
    }
}
