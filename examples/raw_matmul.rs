//! Schedule an unrolled matrix-multiply kernel onto a 16-tile Raw
//! machine, comparing convergent scheduling against the Rawcc-style
//! baseline — a single cell of the paper's Table 2.
//!
//! ```text
//! cargo run --release --example raw_matmul
//! ```

use convergent_scheduling::prelude::*;
use convergent_scheduling::schedulers::Scheduler;
use convergent_scheduling::sim::evaluate;
use convergent_scheduling::workloads::{self, MxmParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tiles = 16;
    let machine = Machine::raw(tiles);
    let unit = workloads::mxm(MxmParams::for_banks(tiles));
    println!("{unit}");

    // Rawcc-style baseline: cluster, merge, place, then list-schedule.
    let rawcc = RawccScheduler::new();
    let base = rawcc.schedule(unit.dag(), &machine)?;
    validate(unit.dag(), &machine, &base)?;
    let base_eval = evaluate(unit.dag(), &machine, &base)?;

    // Convergent scheduling with the paper's Raw sequence.
    let conv = ConvergentScheduler::raw_default().schedule(unit.dag(), &machine)?;
    validate(unit.dag(), &machine, conv.schedule())?;
    let conv_eval = evaluate(unit.dag(), &machine, conv.schedule())?;

    println!(
        "rawcc:      {} cycles ({} transfers, {} network stall cycles)",
        base_eval.makespan.get(),
        base.comm_count(),
        base_eval.network.stall_cycles
    );
    println!(
        "convergent: {} cycles ({} transfers, {} network stall cycles)",
        conv_eval.makespan.get(),
        conv.schedule().comm_count(),
        conv_eval.network.stall_cycles
    );
    println!(
        "convergent/rawcc cycle ratio: {:.2}×",
        f64::from(base_eval.makespan.get()) / f64::from(conv_eval.makespan.get())
    );

    // Every preplaced memory op really is on its home tile (a hard
    // correctness rule on Raw).
    assert!(conv.assignment().respects_preplacement(unit.dag()));
    println!("all preplaced memory operations are on their home tiles ✓");
    Ok(())
}
