//! Empirical pass-contract verification.
//!
//! A [`crate::Pass`] declares a [`PassContract`]; this module checks
//! the declaration by *running* the pass on small probe graphs with
//! the recording `PreferenceMap` proxy enabled and inspecting the
//! captured [`WeightOp`] log. A contract-violating pass is thereby
//! flagged at `csched lint` time — as a structured `CS06x` diagnostic
//! — rather than surfacing later as a fuzz counterexample or a wrong
//! schedule.
//!
//! The probes are deliberately tiny (a latency-diverse chain and a
//! preplaced diamond) so the whole builtin sequence verifies in well
//! under a millisecond; they are not meant to be adversarial
//! workloads but to exercise the operations every heuristic performs:
//! windows, preplacement, cross-cluster tension, and slack.

use std::collections::HashSet;

use convergent_analysis::{Code, Diagnostic};
use convergent_ir::{ClusterId, Dag, DagBuilder, DistanceOracle, Opcode, TimeAnalysis};
use convergent_machine::Machine;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::passes::InitTime;
use crate::weights::WeightOp;
use crate::{Pass, PassContext, PassContract, PreferenceMap, Sequence};

/// Seed for the pass under test; fixed so two recorded runs are
/// comparable bit for bit.
const PROBE_SEED: u64 = 0x5EED_CA11;

/// Tolerance for the post-run invariant check — looser than the unit
/// tests' `1e-9` since a whole pass may legitimately accumulate a few
/// ulps of drift across marginals.
const INVARIANT_TOL: f64 = 1e-6;

/// One recorded execution of a pass on a probe.
struct RecordedRun {
    /// The primitive operations the pass performed.
    log: Vec<WeightOp>,
    /// Feasible window per instruction at the moment the pass started.
    windows_before: Vec<(u32, u32)>,
    /// The map after the pass ran and the driver normalized.
    weights: PreferenceMap,
}

/// The probe graphs: `(name, dag)` pairs valid on any machine with at
/// least one cluster.
fn probes(machine: &Machine) -> Vec<(&'static str, Dag)> {
    // A latency-diverse chain: tight single-slot windows.
    let mut b = DagBuilder::new();
    let ld = b.instr(Opcode::Load);
    let ad = b.instr(Opcode::IntAlu);
    let fm = b.instr(Opcode::FMul);
    let st = b.instr(Opcode::Store);
    b.edge(ld, ad).unwrap();
    b.edge(ad, fm).unwrap();
    b.edge(fm, st).unwrap();
    let chain = b.build().unwrap();

    // A diamond with memory ops preplaced on two different banks plus
    // a slack-rich side chain — exercises preplacement handling and
    // non-trivial windows.
    let other = ClusterId::new((1 % machine.n_clusters()) as u16);
    let mut b = DagBuilder::new();
    let l0 = b.preplaced_instr(Opcode::Load, ClusterId::new(0));
    let l1 = b.preplaced_instr(Opcode::Load, other);
    let fm = b.instr(Opcode::FMul);
    let st = b.preplaced_instr(Opcode::Store, ClusterId::new(0));
    let side = b.instr(Opcode::IntAlu);
    b.edge(l0, fm).unwrap();
    b.edge(l1, fm).unwrap();
    b.edge(fm, st).unwrap();
    b.edge(l0, side).unwrap();
    b.edge(side, st).unwrap();
    let diamond = b.build().unwrap();

    vec![("chain", chain), ("preplaced-diamond", diamond)]
}

/// Runs `pass` once on `(dag, machine)` with recording enabled,
/// mirroring the driver: INITTIME first (for passes that expect
/// established windows), normalization afterwards.
fn run_recorded(
    pass: &dyn Pass,
    contract: &PassContract,
    dag: &Dag,
    machine: &Machine,
) -> RecordedRun {
    let time = TimeAnalysis::compute(dag, |i| machine.latency_of(i));
    let slots = time.critical_path_length().max(1) as usize;
    let mut weights = PreferenceMap::new(dag.len(), machine.n_clusters(), slots);
    let mut dist = DistanceOracle::new();
    let mut scratch = crate::PassScratch::default();
    if !contract.establishes_windows {
        let mut rng = StdRng::seed_from_u64(PROBE_SEED);
        let mut ctx = PassContext {
            dag,
            machine,
            time: &time,
            dist: &mut dist,
            rng: &mut rng,
            weights: &mut weights,
            scratch: &mut scratch,
        };
        InitTime::new().run(&mut ctx);
        weights.normalize_all();
    }
    let windows_before: Vec<(u32, u32)> = dag.ids().map(|i| weights.window(i)).collect();
    weights.record();
    let mut rng = StdRng::seed_from_u64(PROBE_SEED);
    let mut ctx = PassContext {
        dag,
        machine,
        time: &time,
        dist: &mut dist,
        rng: &mut rng,
        weights: &mut weights,
        scratch: &mut scratch,
    };
    pass.run(&mut ctx);
    let log = weights.take_recording();
    weights.normalize_all();
    RecordedRun {
        log,
        windows_before,
        weights,
    }
}

/// Verifies `pass` against its declared [`PassContract`] on the probe
/// graphs, returning one `CS06x` diagnostic per violated clause per
/// probe.
#[must_use]
pub fn verify_pass(pass: &dyn Pass, machine: &Machine) -> Vec<Diagnostic> {
    let contract = pass.contract();
    let name = pass.name();
    let mut diags = Vec::new();
    for (probe, dag) in probes(machine) {
        let run = run_recorded(pass, &contract, &dag, machine);

        if contract.window_respecting && !contract.establishes_windows {
            let mut windows = run.windows_before.clone();
            for op in &run.log {
                match *op {
                    WeightOp::SetWindow { i, lo, hi } => {
                        // Tightening is always legal (intersect
                        // semantics); track it for later writes.
                        let w = &mut windows[i.index()];
                        w.0 = w.0.max(lo);
                        w.1 = w.1.min(hi);
                    }
                    WeightOp::Set { i, c, t, value } if value > 0.0 => {
                        let (lo, hi) = windows[i.index()];
                        if t < lo || t > hi {
                            diags.push(
                                Diagnostic::new(
                                    Code::OutOfWindowWrite,
                                    vec![i],
                                    format!(
                                        "pass {name} wrote W[{i},{c},t{t}] = {value} outside the feasible window [{lo}, {hi}] on probe `{probe}`"
                                    ),
                                )
                                .with_witness(format!("set({i}, {c}, {t}, {value})")),
                            );
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }

        if contract.preplacement_monotone {
            for op in &run.log {
                let (i, c, what) = match *op {
                    WeightOp::ForbidCluster { i, c } => (i, c, format!("forbid_cluster({i}, {c})")),
                    WeightOp::ScaleCluster { i, c, factor: 0.0 } => {
                        (i, c, format!("scale_cluster({i}, {c}, 0)"))
                    }
                    _ => continue,
                };
                let instr = dag.instr(i);
                if instr.preplacement() == Some(c) && machine.cluster_can_execute(c, instr.class())
                {
                    diags.push(
                        Diagnostic::new(
                            Code::PreplacementDemoted,
                            vec![i],
                            format!(
                                "pass {name} zeroed the home cluster {c} of preplaced {i} on probe `{probe}`"
                            ),
                        )
                        .with_witness(what),
                    );
                    break;
                }
            }
        }

        if contract.normalization_preserving {
            if let Err(msg) = run.weights.check_invariants(INVARIANT_TOL) {
                diags.push(Diagnostic::new(
                    Code::BrokenNormalization,
                    vec![],
                    format!(
                        "pass {name} broke preference-map invariants on probe `{probe}`: {msg}"
                    ),
                ));
            }
        }

        if contract.deterministic {
            let rerun = run_recorded(pass, &contract, &dag, machine);
            if rerun.log != run.log {
                diags.push(Diagnostic::new(
                    Code::NondeterministicPass,
                    vec![],
                    format!(
                        "pass {name} produced a different operation log on an identical re-run (same seed) on probe `{probe}`"
                    ),
                ));
            }
        }
    }
    diags
}

/// Verifies every pass of `seq`, deduplicating identical findings
/// from repeated pass instances (the builtin sequences run PATHPROP
/// several times).
#[must_use]
pub fn verify_sequence(seq: &Sequence, machine: &Machine) -> Vec<Diagnostic> {
    let mut seen: HashSet<(Code, String)> = HashSet::new();
    let mut out = Vec::new();
    for pass in seq.passes() {
        for d in verify_pass(pass.as_ref(), machine) {
            if seen.insert((d.code, d.message.clone())) {
                out.push(d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_sequences_honor_their_contracts() {
        for (seq, machine) in [
            (Sequence::raw(), Machine::raw(4)),
            (Sequence::raw(), Machine::raw(16)),
            (Sequence::vliw(), Machine::chorus_vliw(4)),
            (Sequence::vliw_tuned(), Machine::chorus_vliw(4)),
            (Sequence::vliw(), Machine::single_cluster()),
        ] {
            let diags = verify_sequence(&seq, &machine);
            assert!(
                diags.is_empty(),
                "{} on {}: {diags:?}",
                seq.names().join(","),
                machine.name()
            );
        }
    }
}
