//! The telemetry layer's central promise, end to end: observing a run
//! never changes it. Every builtin workload (the Raw and clustered-VLIW
//! suites) is scheduled twice — once plainly, once through
//! `schedule_with_sink` with a full-interest sink (spans + hot-path
//! counters + convergence metrics) — and the complete space-time
//! schedules must be bit-identical. The sweep crosses `--threads` and
//! `--shards` because those paths buffer and replay telemetry from
//! worker threads, which is exactly where instrumentation could
//! plausibly perturb ordering.

use convergent_core::telemetry::{TelemetryBuffer, TelemetryEvent};
use convergent_core::ConvergentScheduler;
use convergent_machine::Machine;
use convergent_workloads::{raw_suite, vliw_suite};

fn assert_identical(
    sched: ConvergentScheduler,
    unit: &convergent_ir::SchedulingUnit,
    machine: &Machine,
    what: &str,
) {
    let plain = sched
        .schedule(unit.dag(), machine)
        .unwrap_or_else(|e| panic!("{} ({what}): {e}", unit.name()));
    let mut buf = TelemetryBuffer::new();
    let observed = sched
        .schedule_with_sink(unit.dag(), machine, &mut buf)
        .unwrap_or_else(|e| panic!("{} ({what}, observed): {e}", unit.name()));
    assert_eq!(
        plain.schedule(),
        observed.schedule(),
        "{} diverged under telemetry ({what})",
        unit.name()
    );
    // The observed run must actually have been observed: at least one
    // pass span and one counter delta, or the test proves nothing.
    assert!(
        buf.events()
            .iter()
            .any(|e| matches!(e, TelemetryEvent::Span { .. })),
        "{} ({what}): no spans recorded",
        unit.name()
    );
    assert!(
        buf.counter_total().weight_ops() > 0,
        "{} ({what}): no weight ops counted",
        unit.name()
    );
}

#[test]
fn vliw_suite_is_bit_identical_with_telemetry_on() {
    let machine = Machine::chorus_vliw(4);
    for unit in vliw_suite(4) {
        for threads in [1, 8] {
            for shards in [1, 8] {
                let sched = ConvergentScheduler::vliw_default()
                    .with_threads(threads)
                    .with_shards(shards);
                assert_identical(
                    sched,
                    &unit,
                    &machine,
                    &format!("threads {threads}, shards {shards}"),
                );
            }
        }
    }
}

#[test]
fn raw_suite_is_bit_identical_with_telemetry_on() {
    let machine = Machine::raw(4);
    for unit in raw_suite(4) {
        for threads in [1, 8] {
            for shards in [1, 8] {
                let sched = ConvergentScheduler::raw_default()
                    .with_threads(threads)
                    .with_shards(shards);
                assert_identical(
                    sched,
                    &unit,
                    &machine,
                    &format!("threads {threads}, shards {shards}"),
                );
            }
        }
    }
}
