//! Scheduler error type.

use std::error::Error;
use std::fmt;

use convergent_ir::{ClusterId, InstrId};

/// Errors a scheduler can report.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// No cluster on the machine can execute this instruction.
    NoCapableCluster(InstrId),
    /// A preplaced instruction references a cluster the machine does
    /// not have.
    BadHomeCluster {
        /// The preplaced instruction.
        instr: InstrId,
        /// Its (out-of-range) home cluster.
        home: ClusterId,
    },
    /// An externally supplied assignment puts a hard-preplaced
    /// instruction away from its home.
    PreplacementConflict {
        /// The misassigned instruction.
        instr: InstrId,
        /// Required home.
        home: ClusterId,
        /// Assigned cluster.
        assigned: ClusterId,
    },
    /// An externally supplied assignment or priority vector has the
    /// wrong length.
    LengthMismatch {
        /// Expected number of instructions.
        expected: usize,
        /// Supplied length.
        actual: usize,
    },
    /// The scheduler failed to converge (internal guard tripped).
    NoProgress {
        /// Cycle at which progress stopped.
        cycle: u32,
    },
    /// The produced schedule failed validation (internal bug guard).
    ProducedInvalid(String),
    /// Static analysis found the inputs malformed before scheduling
    /// started (see [`crate::precondition::check_inputs`]).
    Lint {
        /// The error-severity diagnostics, in lint order.
        diagnostics: Vec<convergent_analysis::Diagnostic>,
    },
    /// A cross-cluster value needs a copy-capable functional unit on
    /// `cluster`, but the cluster has none (degenerate machine on a
    /// copy-based communication model).
    NoTransferUnit {
        /// Cluster lacking a copy-capable unit.
        cluster: ClusterId,
    },
    /// The machine has no clusters at all, so nothing can be placed.
    EmptyMachine,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoCapableCluster(i) => {
                write!(f, "no cluster can execute instruction {i}")
            }
            ScheduleError::BadHomeCluster { instr, home } => {
                write!(
                    f,
                    "instruction {instr} is preplaced on nonexistent cluster {home}"
                )
            }
            ScheduleError::PreplacementConflict {
                instr,
                home,
                assigned,
            } => write!(
                f,
                "instruction {instr} must run on {home} but the assignment puts it on {assigned}"
            ),
            ScheduleError::LengthMismatch { expected, actual } => {
                write!(f, "expected {expected} entries, got {actual}")
            }
            ScheduleError::NoProgress { cycle } => {
                write!(f, "scheduler made no progress by cycle {cycle}")
            }
            ScheduleError::ProducedInvalid(msg) => {
                write!(f, "scheduler produced an invalid schedule: {msg}")
            }
            ScheduleError::Lint { diagnostics } => {
                let rendered: Vec<String> = diagnostics.iter().map(|d| d.to_string()).collect();
                write!(f, "input failed lint: {}", rendered.join("; "))
            }
            ScheduleError::NoTransferUnit { cluster } => {
                write!(
                    f,
                    "cluster {cluster} has no copy-capable transfer unit to carry a cross-cluster value"
                )
            }
            ScheduleError::EmptyMachine => write!(f, "machine has no clusters"),
        }
    }
}

impl Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_meaningful() {
        let e = ScheduleError::PreplacementConflict {
            instr: InstrId::new(3),
            home: ClusterId::new(1),
            assigned: ClusterId::new(2),
        };
        let s = e.to_string();
        assert!(s.contains("i3") && s.contains("c1") && s.contains("c2"));
        assert!(!ScheduleError::NoCapableCluster(InstrId::new(0))
            .to_string()
            .is_empty());
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<ScheduleError>();
    }
}
