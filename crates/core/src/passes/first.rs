//! FIRST — push to first cluster.
//!
//! "In our clustered VLIW infrastructure, an invariant is that all the
//! data are available in the first cluster at the beginning of every
//! scheduling unit. For this architecture, we want to give advantage
//! to a schedule utilizing more the first cluster, where data are
//! already available":
//!
//! ```text
//! ∀ (i, t):  W[i, t, 1] ← 1.2 · W[i, t, 1]
//! ```
//!
//! The pass is a no-op on machines without a data-home cluster (Raw).

use convergent_analysis::{EffectOp, Interval, PassEffect};
use convergent_ir::{Dag, TimeAnalysis};
use convergent_machine::Machine;
use rand::rngs::StdRng;

use crate::weights::RowOps;
use crate::{Pass, PassContext, PassScratch, PreferenceMap, RowKernel};

/// The FIRST pass. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct First {
    factor: f64,
}

impl First {
    /// Creates the pass with the paper's factor of 1.2.
    #[must_use]
    pub fn new() -> Self {
        First { factor: 1.2 }
    }

    /// Overrides the boost factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a positive finite number.
    #[must_use]
    pub fn with_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        self.factor = factor;
        self
    }
}

impl Default for First {
    fn default() -> Self {
        First::new()
    }
}

/// The data-parallel half of FIRST: boost the home cluster of every
/// row by a constant factor.
struct FirstKernel {
    home: convergent_ir::ClusterId,
    factor: f64,
}

impl RowKernel for FirstKernel {
    fn apply(&self, rows: &mut dyn RowOps) {
        for i in rows.instr_range() {
            rows.scale_cluster(convergent_ir::InstrId::new(i), self.home, self.factor);
        }
    }
}

impl Pass for First {
    fn name(&self) -> &'static str {
        "FIRST"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        if let Some(kernel) = self.row_kernel(
            ctx.dag,
            ctx.machine,
            ctx.time,
            ctx.rng,
            ctx.weights,
            ctx.scratch,
        ) {
            kernel.apply(ctx.weights);
        }
    }

    fn row_kernel<'k>(
        &self,
        _dag: &'k Dag,
        machine: &'k Machine,
        _time: &'k TimeAnalysis,
        _rng: &mut StdRng,
        _weights: &PreferenceMap,
        _scratch: &'k mut PassScratch,
    ) -> Option<Box<dyn RowKernel + 'k>> {
        let home = machine.data_home()?;
        Some(Box::new(FirstKernel {
            home,
            factor: self.factor,
        }))
    }

    fn effect(&self) -> PassEffect {
        // A constant boost of the data-home cluster column (no-op on
        // machines without one).
        PassEffect::new(vec![EffectOp::ScaleClusters {
            factor: Interval::point(self.factor),
        }])
        .breaks_symmetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::Rig;
    use convergent_ir::{ClusterId, DagBuilder, Opcode};
    use convergent_machine::Machine;

    #[test]
    fn vliw_gets_first_cluster_bias() {
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::chorus_vliw(4));
        rig.run(&First::new());
        rig.weights.assert_invariants(1e-9);
        assert_eq!(rig.weights.preferred_cluster(x), ClusterId::new(0));
        assert!((rig.weights.confidence(x) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn raw_is_untouched() {
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(4));
        rig.run(&First::new());
        assert!((rig.weights.confidence(x) - 1.0).abs() < 1e-9);
    }
}
