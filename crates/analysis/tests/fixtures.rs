//! One fixture per diagnostic code: each triggers exactly the code it
//! is named after (the graph-and-machine codes and the `CS07x`
//! pipeline-dataflow codes; the `CS06x` pass-contract codes have
//! their fixtures in `convergent-core`).

use convergent_analysis::{
    analyze_pipeline, lint_dag, lint_raw, Code, ContractClaims, Determinism, EffectOp, Interval,
    LintOptions, PassEffect, PassSummary, Severity,
};
use convergent_ir::{parse_raw, ClusterId, DagBuilder, Opcode};
use convergent_machine::{
    Cluster, CommModel, FuKind, LatencyTable, Machine, MemoryModel, Topology,
};

/// Asserts the report contains `code` and nothing else.
fn assert_only(report: &convergent_analysis::LintReport, code: Code) {
    let codes: Vec<Code> = report.diagnostics().iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![code], "report: {report:?}");
}

fn lint_text(text: &str, machine: &Machine) -> convergent_analysis::LintReport {
    lint_raw(&parse_raw(text).unwrap(), machine, LintOptions::default())
}

#[test]
fn cs001_cycle_with_witness_path() {
    let report = lint_text("i add\ni add\ni add\ne 0 1\ne 1 2\ne 2 0", &Machine::raw(4));
    assert_only(&report, Code::Cycle);
    let d = &report.diagnostics()[0];
    assert_eq!(d.severity, Severity::Error);
    let w = d.witness.as_deref().unwrap();
    // A closed path: starts and ends at the same instruction.
    assert_eq!(w, "i0 -> i1 -> i2 -> i0");
    assert_eq!(d.instrs.len(), 4);
}

#[test]
fn cs002_dangling_edge() {
    let report = lint_text("i add\ne 0 7", &Machine::raw(4));
    assert_only(&report, Code::DanglingEdge);
    // Witness points at the source line of the bad edge.
    assert_eq!(report.diagnostics()[0].witness.as_deref(), Some("line 2"));
}

#[test]
fn cs003_self_edge() {
    let report = lint_text("i add\ne 0 0", &Machine::raw(4));
    assert_only(&report, Code::SelfEdge);
}

#[test]
fn cs004_duplicate_edge() {
    let report = lint_text("i add\ni add\ne 0 1\ne 0 1", &Machine::raw(4));
    assert_only(&report, Code::DuplicateEdge);
}

#[test]
fn cs005_empty_graph() {
    let report = lint_text("unit nothing", &Machine::raw(4));
    assert_only(&report, Code::EmptyGraph);
}

#[test]
fn cs010_infeasible_window_from_latency_overflow() {
    let mut b = DagBuilder::new();
    let a = b.instr(Opcode::IntAlu);
    let c = b.instr(Opcode::IntAlu);
    b.edge(a, c).unwrap();
    let dag = b.build().unwrap();
    let m = Machine::raw(1)
        .with_latencies(LatencyTable::r4000().with(convergent_ir::OpClass::IntAlu, u32::MAX));
    let report = lint_dag(&dag, &m, LintOptions::default());
    assert_only(&report, Code::InfeasibleWindow);
    assert!(report.diagnostics()[0].witness.is_some());
}

#[test]
fn cs011_bad_home_cluster() {
    let report = lint_text("i lw @9\n", &Machine::raw(4));
    assert_only(&report, Code::BadHomeCluster);
    assert_eq!(report.diagnostics()[0].severity, Severity::Error);
}

/// A two-cluster point-to-point machine where cluster 1 has no FPU.
fn lopsided_vliw(memory: MemoryModel) -> Machine {
    Machine::new(
        "lopsided",
        vec![
            Cluster::new(vec![FuKind::IntAluMem, FuKind::Fpu, FuKind::Transfer]),
            Cluster::new(vec![FuKind::IntAluMem, FuKind::Transfer]),
        ],
        Topology::PointToPoint,
        CommModel::vliw_transfer(),
        LatencyTable::r4000(),
        memory,
    )
}

#[test]
fn cs012_incapable_home_hard_is_error() {
    let mut b = DagBuilder::new();
    b.preplaced_instr(Opcode::FMul, ClusterId::new(1));
    let dag = b.build().unwrap();
    let m = lopsided_vliw(MemoryModel::raw());
    let report = lint_dag(&dag, &m, LintOptions::default());
    assert_only(&report, Code::IncapableHome);
    assert_eq!(report.diagnostics()[0].severity, Severity::Error);
}

#[test]
fn cs012_incapable_home_soft_is_warning() {
    let mut b = DagBuilder::new();
    b.preplaced_instr(Opcode::FMul, ClusterId::new(1));
    let dag = b.build().unwrap();
    let m = lopsided_vliw(MemoryModel::chorus());
    let report = lint_dag(&dag, &m, LintOptions::default());
    assert_only(&report, Code::IncapableHome);
    assert_eq!(report.diagnostics()[0].severity, Severity::Warning);
}

#[test]
fn cs013_tight_preplaced_pair_is_pedantic_note() {
    // Two adjacent memory ops pinned to opposite corners of a 4x4
    // mesh: 6 hops of communication, zero slack on the edge.
    let text = "i lw @0\ni sw @15\ne 0 1";
    let m = Machine::raw(16);
    assert!(lint_text(text, &m).is_empty(), "default lint stays quiet");
    let report = lint_raw(&parse_raw(text).unwrap(), &m, LintOptions::pedantic());
    assert_only(&report, Code::TightPreplacedPair);
    assert_eq!(report.diagnostics()[0].severity, Severity::Note);
}

#[test]
fn cs020_uncoverable_class() {
    // `send` needs a Universal unit; a chorus VLIW has none.
    let report = lint_text("i fmul\ni send\ne 0 1", &Machine::chorus_vliw(4));
    // Send is also a communication pseudo-op, so CS021 fires too —
    // check CS020 is present with error severity.
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::UncoverableClass)
        .expect("CS020 expected");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn cs021_comm_op_in_input() {
    // On a Raw machine every tile is Universal, so a `copy` is
    // coverable — only the pseudo-op warning fires.
    let report = lint_text("i add\ni copy\ne 0 1", &Machine::raw(4));
    assert_only(&report, Code::CommOpInInput);
    assert_eq!(report.diagnostics()[0].severity, Severity::Warning);
}

#[test]
fn cs030_dead_value_is_pedantic_note() {
    let text = "i lw\ni fmul\ni sw\ne 0 1\ne 0 2";
    let m = Machine::raw(4);
    assert!(lint_text(text, &m).is_empty(), "default lint stays quiet");
    let report = lint_raw(&parse_raw(text).unwrap(), &m, LintOptions::pedantic());
    assert_only(&report, Code::DeadValue);
    assert_eq!(report.diagnostics()[0].severity, Severity::Note);
}

#[test]
fn cs031_pressure_over_registers_is_pedantic_note() {
    // 40 producers feeding one consumer on a 1-tile machine with 32
    // registers.
    let mut b = DagBuilder::new();
    let sink = b.instr(Opcode::Store);
    for _ in 0..40 {
        let p = b.instr(Opcode::Load);
        b.edge(p, sink).unwrap();
    }
    let dag = b.build().unwrap();
    let m = Machine::raw(1);
    assert!(lint_dag(&dag, &m, LintOptions::default()).is_empty());
    let report = lint_dag(&dag, &m, LintOptions::pedantic());
    assert_only(&report, Code::PressureOverRegisters);
}

#[test]
fn cs040_degenerate_shard_structure_is_pedantic_note() {
    // A 12-instruction chain ending in a store (the giant component)
    // plus a small load/load/store triangle: 2 components, the larger
    // holding 12 of 15 instructions > 3/4.
    let mut b = DagBuilder::new();
    let mut prev = b.instr(Opcode::IntAlu);
    for k in 0..11 {
        let n = if k == 10 {
            b.instr(Opcode::Store)
        } else {
            b.instr(Opcode::IntAlu)
        };
        b.edge(prev, n).unwrap();
        prev = n;
    }
    let s0 = b.instr(Opcode::Load);
    let s1 = b.instr(Opcode::Load);
    let sink = b.instr(Opcode::Store);
    b.edge(s0, sink).unwrap();
    b.edge(s1, sink).unwrap();
    let dag = b.build().unwrap();
    let m = Machine::raw(4);
    assert!(
        lint_dag(&dag, &m, LintOptions::default()).is_empty(),
        "default lint stays quiet"
    );
    let report = lint_dag(&dag, &m, LintOptions::pedantic());
    assert_only(&report, Code::DegenerateShardStructure);
    assert_eq!(report.diagnostics()[0].severity, Severity::Note);
}

#[test]
fn cs040_silent_on_balanced_components_and_connected_graphs() {
    // Two equal chains: components exist but neither dominates.
    let mut b = DagBuilder::new();
    for _ in 0..2 {
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 0..4 {
            let n = b.instr(Opcode::IntAlu);
            b.edge(prev, n).unwrap();
            prev = n;
        }
    }
    let dag = b.build().unwrap();
    let report = lint_dag(&dag, &Machine::raw(4), LintOptions::pedantic());
    assert!(report.is_empty(), "{report:?}");
}

#[test]
fn cs041_degenerate_region_cut_is_pedantic_note() {
    // A complete bipartite layer (16 loads each feeding 2040 stores):
    // larger than the default region target, 2-connected (no
    // articulation vertex), and its only level cut is hopelessly
    // unbalanced — the decomposer finds no profitable cut, so a
    // sharded run falls back to a monolithic schedule.
    let mut b = DagBuilder::new();
    let sources: Vec<_> = (0..16).map(|_| b.instr(Opcode::Load)).collect();
    for _ in 0..2040 {
        let sink = b.instr(Opcode::Store);
        for &src in &sources {
            b.edge(src, sink).unwrap();
        }
    }
    let dag = b.build().unwrap();
    let m = Machine::raw(4);
    assert!(
        lint_dag(&dag, &m, LintOptions::default()).is_empty(),
        "default lint stays quiet"
    );
    let report = lint_dag(&dag, &m, LintOptions::pedantic());
    assert_only(&report, Code::DegenerateRegionCut);
    assert_eq!(report.diagnostics()[0].severity, Severity::Note);
}

#[test]
fn cs041_silent_when_the_cut_is_acceptable() {
    // A 2100-instruction chain is over the region target but cuts
    // cleanly at articulation vertices (balanced pieces, almost no
    // cross edges): the governor would accept, so the lint stays
    // quiet.
    let mut b = DagBuilder::new();
    let mut prev = b.instr(Opcode::Load);
    for k in 1..2100 {
        let n = if k == 2099 {
            b.instr(Opcode::Store)
        } else {
            b.instr(Opcode::IntAlu)
        };
        b.edge(prev, n).unwrap();
        prev = n;
    }
    let dag = b.build().unwrap();
    let report = lint_dag(&dag, &Machine::raw(4), LintOptions::pedantic());
    assert!(report.is_empty(), "{report:?}");
}

#[test]
fn cs050_zero_latency() {
    let mut b = DagBuilder::new();
    b.instr(Opcode::FMul);
    let dag = b.build().unwrap();
    let m = Machine::chorus_vliw(2)
        .with_latencies(LatencyTable::r4000().with(convergent_ir::OpClass::FMul, 0));
    let report = lint_dag(&dag, &m, LintOptions::default());
    assert_only(&report, Code::ZeroLatency);
    assert_eq!(report.diagnostics()[0].severity, Severity::Warning);
}

#[test]
fn cs051_comm_latency_mismatch() {
    let mut b = DagBuilder::new();
    b.instr(Opcode::IntAlu);
    let dag = b.build().unwrap();
    // Charging cycles for register-mapped network ports contradicts
    // the Raw comm model.
    let m =
        Machine::raw(2).with_latencies(LatencyTable::r4000().with(convergent_ir::OpClass::Send, 1));
    let report = lint_dag(&dag, &m, LintOptions::default());
    assert_only(&report, Code::CommLatencyMismatch);
    assert_eq!(report.diagnostics()[0].severity, Severity::Warning);
}

#[test]
fn cs052_missing_transfer_unit() {
    let mut b = DagBuilder::new();
    b.instr(Opcode::IntAlu);
    let dag = b.build().unwrap();
    // Copy-based comm model, but cluster 1 cannot source a transfer.
    let m = Machine::new(
        "no-transfer",
        vec![
            Cluster::new(vec![FuKind::IntAluMem, FuKind::Transfer]),
            Cluster::new(vec![FuKind::IntAluMem]),
        ],
        Topology::PointToPoint,
        CommModel::vliw_transfer(),
        LatencyTable::r4000(),
        MemoryModel::chorus(),
    );
    let report = lint_dag(&dag, &m, LintOptions::default());
    assert_only(&report, Code::MissingTransferUnit);
    assert_eq!(report.diagnostics()[0].severity, Severity::Error);
    // Register-mapped machines never need transfer units.
    assert!(lint_dag(&dag, &Machine::raw(2), LintOptions::default()).is_empty());
}

// --- CS07x: pipeline dataflow over pass-effect summaries ---------------
//
// These drive `analyze_pipeline` with synthetic summaries shaped like
// the builtin passes (a window-establishing TIME pass, a seeded noise
// pass, a deterministic cluster bias) so each fixture isolates one
// ordering or redundancy hazard.

fn summary(name: &str, eff: PassEffect) -> PassSummary {
    PassSummary::new(name, ContractClaims::default(), eff)
}

fn time_pass() -> PassSummary {
    summary(
        "INITTIME",
        PassEffect::new(vec![EffectOp::EstablishWindows]),
    )
}

fn noise_pass() -> PassSummary {
    summary(
        "NOISE",
        PassEffect::new(vec![EffectOp::Absolute {
            in_window: true,
            value: Interval::new(0.0, 2.0),
            randomized: true,
            preserves_support: true,
        }])
        .with_determinism(Determinism::SeededRng)
        .reads_windows()
        .breaks_symmetry(),
    )
}

fn bias_pass() -> PassSummary {
    summary(
        "FIRST",
        PassEffect::new(vec![EffectOp::ScaleClusters {
            factor: Interval::point(1.2),
        }])
        .breaks_symmetry(),
    )
}

#[test]
fn cs070_windows_read_before_established() {
    let report = analyze_pipeline(&[noise_pass(), time_pass(), bias_pass()], 4);
    assert_only(&report, Code::WindowsReadBeforeEstablished);
    assert_eq!(report.diagnostics()[0].severity, Severity::Warning);
    // The fixed ordering is clean.
    assert!(analyze_pipeline(&[time_pass(), noise_pass(), bias_pass()], 4).is_empty());
}

#[test]
fn cs071_dead_pass() {
    // A second INITTIME only re-establishes windows the first already
    // established.
    let report = analyze_pipeline(&[time_pass(), time_pass(), bias_pass()], 4);
    assert_only(&report, Code::DeadPass);
    assert_eq!(report.diagnostics()[0].severity, Severity::Warning);
}

#[test]
fn cs072_redundant_normalization() {
    let trailing_norm = summary(
        "FIRST-NORM",
        PassEffect::new(vec![
            EffectOp::ScaleClusters {
                factor: Interval::point(1.2),
            },
            EffectOp::Normalize,
        ])
        .breaks_symmetry(),
    );
    let report = analyze_pipeline(&[time_pass(), trailing_norm], 4);
    assert_only(&report, Code::RedundantNormalization);
    assert_eq!(report.diagnostics()[0].severity, Severity::Note);
}

#[test]
fn cs073_noise_after_bias() {
    let report = analyze_pipeline(&[time_pass(), bias_pass(), noise_pass()], 4);
    assert_only(&report, Code::NoiseAfterBias);
    assert_eq!(report.diagnostics()[0].severity, Severity::Warning);
}

#[test]
fn cs074_undecidable_confidence() {
    // Window establishment plus a pure time-axis emphasis: nothing
    // ever distinguishes one cluster from another.
    let emph = summary(
        "EMPHCP",
        PassEffect::new(vec![EffectOp::ScaleTimes {
            factor: Interval::point(1.2),
        }])
        .time_only(),
    );
    let report = analyze_pipeline(&[time_pass(), emph], 4);
    assert_only(&report, Code::UndecidableConfidence);
    assert_eq!(report.diagnostics()[0].severity, Severity::Warning);
    // An opaque pass might break symmetry, so no claim is made.
    let opaque = summary("?", PassEffect::opaque());
    assert!(analyze_pipeline(&[time_pass(), opaque], 4).is_empty());
}

#[test]
fn presets_lint_clean() {
    // The text-format example from the README lints clean on both
    // machine families, including pedantic mode.
    let text = "unit dot4\ni lw @0\ni lw @1\ni fmul\ni sw @0\ne 0 2\ne 1 2\ne 2 3";
    for m in [Machine::raw(4), Machine::chorus_vliw(4)] {
        for opts in [LintOptions::default(), LintOptions::pedantic()] {
            let report = lint_raw(&parse_raw(text).unwrap(), &m, opts);
            assert!(report.is_empty(), "{}: {report:?}", m.name());
        }
    }
}

#[test]
fn diagnostics_catalogue_documents_every_code() {
    // docs/DIAGNOSTICS.md is the user-facing contract for the stable
    // code ids: adding a code without documenting it fails here.
    let doc = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/DIAGNOSTICS.md"
    ))
    .expect("docs/DIAGNOSTICS.md exists at the workspace root");
    for code in Code::ALL {
        assert!(
            doc.contains(&format!("## {code} ")),
            "docs/DIAGNOSTICS.md lacks a section for {code}"
        );
    }
}
