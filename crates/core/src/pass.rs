//! The pass interface.
//!
//! "All phases in the convergent scheduler share a common interface.
//! The input or output to each phase is a collection of spatial and
//! temporal preferences of instructions. A phase operates by analyzing
//! the current preferences and modifying them." — Section 1.
//!
//! A [`Pass`] sees the world through [`PassContext`]: the dependence
//! graph, the machine, precomputed timing analysis, a distance oracle,
//! a deterministic RNG (for NOISE), and the mutable [`PreferenceMap`].
//! Passes must not assume anything about which passes ran before them;
//! that independence is the framework's point.

use convergent_ir::{Dag, DistanceOracle, TimeAnalysis};
use convergent_machine::Machine;
use rand::rngs::StdRng;

use crate::PreferenceMap;

/// Everything a pass may look at or change.
#[derive(Debug)]
pub struct PassContext<'a> {
    /// The dependence graph being scheduled.
    pub dag: &'a Dag,
    /// The target machine.
    pub machine: &'a Machine,
    /// Latency-weighted timing analysis of `dag` on `machine`.
    pub time: &'a TimeAnalysis,
    /// Cached undirected graph distances.
    pub dist: &'a mut DistanceOracle,
    /// Deterministic randomness (seeded by the driver).
    pub rng: &'a mut StdRng,
    /// The shared preference map.
    pub weights: &'a mut PreferenceMap,
}

/// One convergent-scheduling heuristic.
///
/// Implementations read and nudge `ctx.weights`; the driver normalizes
/// after every pass ("we run normalization at the end of every pass to
/// ensure the invariants"), so passes may scale weights freely.
///
/// # Example
///
/// A custom pass that biases even-numbered instructions toward
/// cluster 0:
///
/// ```
/// use convergent_core::{Pass, PassContext};
/// use convergent_ir::ClusterId;
///
/// struct EvenToZero;
///
/// impl Pass for EvenToZero {
///     fn name(&self) -> &'static str {
///         "even-to-zero"
///     }
///     fn run(&self, ctx: &mut PassContext<'_>) {
///         for i in ctx.dag.ids() {
///             if i.raw() % 2 == 0 {
///                 ctx.weights.scale_cluster(i, ClusterId::new(0), 2.0);
///             }
///         }
///     }
/// }
/// ```
pub trait Pass {
    /// Short upper-case name matching the paper ("INITTIME", "NOISE",
    /// ...); used in convergence traces and reports.
    fn name(&self) -> &'static str;

    /// Returns `true` if this pass only adjusts temporal preferences.
    /// The paper's convergence plots (Figures 7 and 9) exclude such
    /// passes.
    fn is_time_only(&self) -> bool {
        false
    }

    /// Reads and nudges the preference map.
    fn run(&self, ctx: &mut PassContext<'_>);
}
