//! The `--threads` contract, end to end: the convergent scheduler's
//! intra-pass parallelism (`ConvergentScheduler::with_threads`) must
//! be invisible in the output. Row kernels operate on disjoint
//! instruction rows, so any interleaving of per-row updates produces
//! the same bits as the sequential order — this test pins that claim
//! by scheduling every builtin workload (the Raw and clustered-VLIW
//! suites) at 1, 2, and 8 threads and requiring the full space-time
//! schedule, communication ops included, to be identical.

use convergent_core::ConvergentScheduler;
use convergent_machine::Machine;
use convergent_workloads::{raw_suite, vliw_suite};

#[test]
fn vliw_suite_schedules_identically_at_1_2_8_threads() {
    let machine = Machine::chorus_vliw(4);
    for unit in vliw_suite(4) {
        let reference = ConvergentScheduler::vliw_default()
            .schedule(unit.dag(), &machine)
            .unwrap_or_else(|e| panic!("{}: {e}", unit.name()));
        for threads in [2, 8] {
            let parallel = ConvergentScheduler::vliw_default()
                .with_threads(threads)
                .schedule(unit.dag(), &machine)
                .unwrap_or_else(|e| panic!("{}: {e}", unit.name()));
            assert_eq!(
                reference.schedule(),
                parallel.schedule(),
                "{} diverged at {threads} threads",
                unit.name()
            );
        }
    }
}

#[test]
fn raw_suite_schedules_identically_at_1_2_8_threads() {
    let machine = Machine::raw(4);
    for unit in raw_suite(4) {
        let reference = ConvergentScheduler::raw_default()
            .schedule(unit.dag(), &machine)
            .unwrap_or_else(|e| panic!("{}: {e}", unit.name()));
        for threads in [2, 8] {
            let parallel = ConvergentScheduler::raw_default()
                .with_threads(threads)
                .schedule(unit.dag(), &machine)
                .unwrap_or_else(|e| panic!("{}: {e}", unit.name()));
            assert_eq!(
                reference.schedule(),
                parallel.schedule(),
                "{} diverged at {threads} threads",
                unit.name()
            );
        }
    }
}
