//! Forward dataflow over a pass sequence: the `CS07x` pipeline lints.
//!
//! A sequence is straight-line, so the "fixpoint" is reached in one
//! monotone forward sweep of the abstract state ([`AbsRow`]) through
//! every pass's effect summary. The sweep tracks which facts each pass
//! *needs* versus which facts the prefix has *established* and reports
//! the mismatches:
//!
//! | code | hazard |
//! |---|---|
//! | `CS070` | windows read or written before any pass establishes them |
//! | `CS071` | a pass that is dead at its position |
//! | `CS072` | an explicit trailing normalization (the driver's job) |
//! | `CS073` | randomized noise after a deterministic bias pass |
//! | `CS074` | no pass can ever break cluster symmetry |
//!
//! Opaque summaries poison the relevant facts conservatively: an
//! unknown pass might establish windows or break symmetry, so no
//! `CS070`/`CS074` claim is made past one.

use crate::absint::domain::{AbsRow, NormStatus, WindowFact};
use crate::absint::effects::{Determinism, EffectOp, PassEffect, PassSummary};
use crate::{Code, Diagnostic, LintReport};

/// `true` when the pass's summary says it touches feasibility windows
/// (reads them to guard writes, or targets in-window cells).
fn uses_windows(eff: &PassEffect) -> bool {
    eff.reads_windows
        || eff.ops.iter().any(|op| {
            matches!(
                op,
                EffectOp::Absolute {
                    in_window: true,
                    ..
                }
            )
        })
}

/// `true` when some op draws on the RNG.
fn is_randomized(eff: &PassEffect) -> bool {
    eff.ops.iter().any(|op| {
        matches!(
            op,
            EffectOp::Absolute {
                randomized: true,
                ..
            }
        )
    })
}

/// `true` when the pass is dead at a point where windows are already
/// established: it only (re-)establishes windows and squashes
/// incapable clusters, both idempotent facts.
fn only_reestablishes(eff: &PassEffect) -> bool {
    !eff.ops.is_empty()
        && eff
            .ops
            .iter()
            .all(|op| matches!(op, EffectOp::EstablishWindows | EffectOp::Forbid { .. }))
}

/// `true` when every op scales whole cluster columns — a no-op once
/// normalization runs on a single-cluster machine.
fn only_scales_clusters(eff: &PassEffect) -> bool {
    !eff.ops.is_empty()
        && eff
            .ops
            .iter()
            .all(|op| matches!(op, EffectOp::ScaleClusters { .. }))
}

/// Applies one pass's effect summary to the abstract row state,
/// followed by the driver's normalization.
fn transfer(row: &mut AbsRow, eff: &PassEffect) {
    if eff.opaque {
        // Unknown pass: assume it may establish windows and break
        // symmetry, and leave the value range at the normalized hull.
        row.windows = WindowFact::Established;
        row.symmetry_broken = true;
        row.normalize();
        return;
    }
    for op in &eff.ops {
        match op {
            EffectOp::EstablishWindows => row.windows = WindowFact::Established,
            EffectOp::Absolute { value, .. } => {
                row.value = row.value.join(value);
                row.norm = NormStatus::Dirty;
            }
            EffectOp::ScaleClusters { factor }
            | EffectOp::ScaleCells { factor }
            | EffectOp::ScaleTimes { factor } => {
                row.value = row.value.mul(factor);
                row.norm = NormStatus::Dirty;
            }
            EffectOp::Forbid { .. } => row.norm = NormStatus::Dirty,
            EffectOp::Normalize => row.normalize(),
        }
    }
    if eff.breaks_symmetry {
        row.symmetry_broken = true;
    }
    row.normalize();
}

/// Runs the pipeline dataflow analysis over `passes` for a target with
/// `n_clusters` clusters and reports every `CS07x` hazard.
#[must_use]
pub fn analyze_pipeline(passes: &[PassSummary], n_clusters: usize) -> LintReport {
    let mut report = LintReport::new();
    let mut row = AbsRow::initial();
    // Set once a deterministic (non-RNG) pass breaks symmetry; a
    // randomized pass after that point erodes the established bias.
    let mut deterministic_bias = false;
    let mut any_opaque = false;

    for (k, pass) in passes.iter().enumerate() {
        let eff = &pass.effect;
        if eff.opaque {
            any_opaque = true;
            transfer(&mut row, eff);
            continue;
        }

        if row.windows == WindowFact::Unestablished
            && uses_windows(eff)
            && !eff.ops.contains(&EffectOp::EstablishWindows)
        {
            report.push(Diagnostic::new(
                Code::WindowsReadBeforeEstablished,
                vec![],
                format!(
                    "pass {k} ({}) uses feasibility windows, but no earlier pass \
                     establishes them (run a TIME pass such as INITTIME first)",
                    pass.name
                ),
            ));
        }

        if row.windows == WindowFact::Established && only_reestablishes(eff) {
            report.push(Diagnostic::new(
                Code::DeadPass,
                vec![],
                format!(
                    "pass {k} ({}) only re-establishes windows already established \
                     by an earlier pass; it has no effect here",
                    pass.name
                ),
            ));
        } else if n_clusters == 1 && only_scales_clusters(eff) {
            report.push(Diagnostic::new(
                Code::DeadPass,
                vec![],
                format!(
                    "pass {k} ({}) only scales cluster columns, which normalization \
                     cancels on a single-cluster machine",
                    pass.name
                ),
            ));
        }

        if matches!(eff.ops.last(), Some(EffectOp::Normalize)) {
            report.push(Diagnostic::new(
                Code::RedundantNormalization,
                vec![],
                format!(
                    "pass {k} ({}) ends with an explicit normalization; the driver \
                     normalizes after every pass anyway",
                    pass.name
                ),
            ));
        }

        if deterministic_bias && is_randomized(eff) {
            report.push(Diagnostic::new(
                Code::NoiseAfterBias,
                vec![],
                format!(
                    "pass {k} ({}) injects randomized noise after a deterministic \
                     bias pass already broke symmetry; run noise first",
                    pass.name
                ),
            ));
        }

        if eff.breaks_symmetry
            && matches!(eff.determinism, Determinism::PureGraph)
            && !is_randomized(eff)
        {
            deterministic_bias = true;
        }
        transfer(&mut row, eff);
    }

    if n_clusters > 1 && !any_opaque && !row.symmetry_broken && !passes.is_empty() {
        report.push(Diagnostic::new(
            Code::UndecidableConfidence,
            vec![],
            format!(
                "no pass in the {}-pass sequence can break cluster symmetry on a \
                 {n_clusters}-cluster machine; cluster preferences stay tied and \
                 every argmax falls back to cluster 0",
                passes.len()
            ),
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::domain::Interval;
    use crate::absint::effects::ContractClaims;

    fn pass(name: &str, eff: PassEffect) -> PassSummary {
        PassSummary::new(name, ContractClaims::default(), eff)
    }

    fn inittime() -> PassSummary {
        let claims = ContractClaims {
            establishes_windows: true,
            ..ContractClaims::default()
        };
        PassSummary::new(
            "INITTIME",
            claims,
            PassEffect::new(vec![
                EffectOp::EstablishWindows,
                EffectOp::Forbid {
                    only_incapable: true,
                },
            ]),
        )
    }

    fn noise() -> PassSummary {
        pass(
            "NOISE",
            PassEffect::new(vec![EffectOp::Absolute {
                in_window: true,
                value: Interval::new(0.0, 2.0),
                randomized: true,
                preserves_support: true,
            }])
            .with_determinism(Determinism::SeededRng)
            .reads_windows()
            .breaks_symmetry(),
        )
    }

    fn first() -> PassSummary {
        pass(
            "FIRST",
            PassEffect::new(vec![EffectOp::ScaleClusters {
                factor: Interval::point(1.2),
            }])
            .breaks_symmetry(),
        )
    }

    #[test]
    fn clean_pipeline_is_clean() {
        let report = analyze_pipeline(&[inittime(), noise(), first()], 4);
        assert!(report.is_empty(), "{report:?}");
    }

    #[test]
    fn windows_before_time_is_flagged() {
        let report = analyze_pipeline(&[noise(), inittime()], 4);
        let codes: Vec<_> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::WindowsReadBeforeEstablished]);
    }

    #[test]
    fn repeated_inittime_is_dead() {
        let report = analyze_pipeline(&[inittime(), inittime(), first()], 4);
        let codes: Vec<_> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::DeadPass]);
    }

    #[test]
    fn cluster_scaling_is_dead_on_one_cluster() {
        let report = analyze_pipeline(&[inittime(), noise(), first()], 1);
        let codes: Vec<_> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::DeadPass]);
        // The same sequence is fine on two clusters.
        assert!(analyze_pipeline(&[inittime(), noise(), first()], 2).is_empty());
    }

    #[test]
    fn noise_after_deterministic_bias_is_flagged() {
        let report = analyze_pipeline(&[inittime(), first(), noise()], 4);
        let codes: Vec<_> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::NoiseAfterBias]);
    }

    #[test]
    fn trailing_normalize_is_redundant() {
        let p = pass(
            "NORM",
            PassEffect::new(vec![
                EffectOp::ScaleClusters {
                    factor: Interval::point(2.0),
                },
                EffectOp::Normalize,
            ])
            .breaks_symmetry(),
        );
        let report = analyze_pipeline(&[inittime(), p], 4);
        let codes: Vec<_> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::RedundantNormalization]);
    }

    #[test]
    fn symmetric_sequence_never_decides() {
        let emph = pass(
            "EMPHCP",
            PassEffect::new(vec![EffectOp::ScaleTimes {
                factor: Interval::point(1.2),
            }])
            .time_only(),
        );
        let report = analyze_pipeline(&[inittime(), emph], 4);
        let codes: Vec<_> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::UndecidableConfidence]);
        // A single-cluster machine has nothing to decide.
        assert!(analyze_pipeline(&[inittime()], 1).is_empty());
    }

    #[test]
    fn opaque_pass_suppresses_whole_sequence_claims() {
        let report = analyze_pipeline(&[pass("?", PassEffect::opaque())], 4);
        assert!(report.is_empty(), "{report:?}");
        // Windows-before-TIME is also forgiven past an opaque pass.
        let report = analyze_pipeline(&[pass("?", PassEffect::opaque()), noise()], 4);
        assert!(report.is_empty(), "{report:?}");
    }

    #[test]
    fn empty_sequence_is_clean() {
        assert!(analyze_pipeline(&[], 4).is_empty());
    }
}
