//! Hot-path counters: what the scheduler *did*, not how long it took.
//!
//! Two layers:
//!
//! * [`CounterTotals`] — a plain snapshot of every counter the
//!   telemetry layer knows about. Cheap to copy, diff, and merge;
//!   this is what sinks receive (batched once per span, never from
//!   inside a hot loop).
//! * [`MapCounters`] — the live accumulator owned by
//!   [`crate::PreferenceMap`]. Counting is **off by default**: every
//!   increment site first checks a plain `bool`, so the disabled path
//!   costs one predictable branch (and the scheduler's byte-identical
//!   output never depends on the flag — counters only observe). When
//!   enabled, increments are relaxed atomics so disjoint
//!   [`crate::WeightRows`] chunks can count from worker threads
//!   without locks.

use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of every telemetry counter, batched per span.
///
/// Map-owned counters (weight ops, argmax cache, band events) are
/// filled by [`crate::PreferenceMap`]; harness-owned counters
/// (boundary COMMs, referee verdicts) are filled by the driver and the
/// verification tools. All fields are plain totals, so deltas and sums
/// are field-wise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterTotals {
    /// `set` ops (includes the `add` read-modify-write path).
    pub set: u64,
    /// Per-cell `scale` ops.
    pub scale: u64,
    /// `scale_cluster` ops.
    pub scale_cluster: u64,
    /// `scale_time` ops.
    pub scale_time: u64,
    /// `set_window` ops.
    pub set_window: u64,
    /// `forbid_cluster` ops.
    pub forbid_cluster: u64,
    /// `normalize` ops (one per instruction per `normalize_all`).
    pub normalize: u64,
    /// `reset_uniform` ops.
    pub reset_uniform: u64,
    /// Bulk row-kernel calls (`add_row`, `axpy_row`, `scale_row`,
    /// `noise_fill`, `scale_clusters_row`) — one count per row visit,
    /// however many cells the visit touched.
    pub row_batch: u64,
    /// Argmax reads answered from a valid cache.
    pub argmax_hits: u64,
    /// Argmax reads that forced a fresh marginal scan.
    pub argmax_misses: u64,
    /// Cached argmax halves invalidated by a mutation.
    pub argmax_invalidations: u64,
    /// Banded-layout band growths (out-of-band absolute writes).
    pub band_growths: u64,
    /// Uniform-row densifications on the banded layout.
    pub band_densifications: u64,
    /// Cross-shard transfers inserted by the stitch fix-up.
    pub boundary_comms: u64,
    /// Cut-governor verdicts: decomposition accepted for sharding.
    pub governor_accepts: u64,
    /// Cut-governor verdicts: degenerate cut, monolithic fallback.
    pub governor_rejects: u64,
    /// `validate()` verdicts: schedule accepted.
    pub validate_ok: u64,
    /// `validate()` verdicts: schedule rejected.
    pub validate_fail: u64,
    /// Oracle cross-checks that agreed with `evaluate()`.
    pub oracle_agree: u64,
    /// Oracle cross-checks that disagreed (or failed to replay).
    pub oracle_disagree: u64,
    /// Contract clauses the abstract interpreter proved for all
    /// inputs (no probe run needed).
    pub contracts_proven: u64,
    /// Contract clauses that fell back to the empirical probes
    /// (Unproven) or were statically refuted.
    pub contracts_unproven: u64,
}

impl CounterTotals {
    /// Every counter as `(name, value)`, in a fixed order — the single
    /// source of truth for exporters.
    #[must_use]
    pub fn named(&self) -> [(&'static str, u64); 23] {
        [
            ("set", self.set),
            ("scale", self.scale),
            ("scale_cluster", self.scale_cluster),
            ("scale_time", self.scale_time),
            ("set_window", self.set_window),
            ("forbid_cluster", self.forbid_cluster),
            ("normalize", self.normalize),
            ("reset_uniform", self.reset_uniform),
            ("row_batch", self.row_batch),
            ("argmax_hits", self.argmax_hits),
            ("argmax_misses", self.argmax_misses),
            ("argmax_invalidations", self.argmax_invalidations),
            ("band_growths", self.band_growths),
            ("band_densifications", self.band_densifications),
            ("boundary_comms", self.boundary_comms),
            ("governor_accepts", self.governor_accepts),
            ("governor_rejects", self.governor_rejects),
            ("validate_ok", self.validate_ok),
            ("validate_fail", self.validate_fail),
            ("oracle_agree", self.oracle_agree),
            ("oracle_disagree", self.oracle_disagree),
            ("contracts_proven", self.contracts_proven),
            ("contracts_unproven", self.contracts_unproven),
        ]
    }

    /// Total weight operations of any kind (bulk row visits count
    /// once).
    #[must_use]
    pub fn weight_ops(&self) -> u64 {
        self.set
            + self.scale
            + self.scale_cluster
            + self.scale_time
            + self.set_window
            + self.forbid_cluster
            + self.normalize
            + self.reset_uniform
            + self.row_batch
    }

    /// Fraction of argmax reads answered from cache, or `None` when
    /// there were no reads.
    #[must_use]
    pub fn argmax_hit_rate(&self) -> Option<f64> {
        let reads = self.argmax_hits + self.argmax_misses;
        (reads > 0).then(|| self.argmax_hits as f64 / reads as f64)
    }

    /// `true` when every counter is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.named().iter().all(|&(_, v)| v == 0)
    }

    /// Field-wise `self - base` (saturating) — the per-span delta the
    /// driver emits.
    #[must_use]
    pub fn delta_since(&self, base: &CounterTotals) -> CounterTotals {
        let mut out = CounterTotals::default();
        for ((name, v), (_, b)) in self.named().iter().zip(base.named().iter()) {
            out.set_by_name(name, v.saturating_sub(*b));
        }
        out
    }

    /// Field-wise accumulate.
    pub fn merge(&mut self, other: &CounterTotals) {
        for (name, v) in other.named() {
            let cur = self
                .named()
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |&(_, v)| v);
            self.set_by_name(name, cur + v);
        }
    }

    /// Renders the counters as a flat JSON object (all fields, fixed
    /// order), plus the derived `weight_ops` total.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (name, v) in self.named() {
            out.push_str(&format!("\"{name}\":{v},"));
        }
        out.push_str(&format!("\"weight_ops\":{}}}", self.weight_ops()));
        out
    }

    fn set_by_name(&mut self, name: &str, v: u64) {
        match name {
            "set" => self.set = v,
            "scale" => self.scale = v,
            "scale_cluster" => self.scale_cluster = v,
            "scale_time" => self.scale_time = v,
            "set_window" => self.set_window = v,
            "forbid_cluster" => self.forbid_cluster = v,
            "normalize" => self.normalize = v,
            "reset_uniform" => self.reset_uniform = v,
            "row_batch" => self.row_batch = v,
            "argmax_hits" => self.argmax_hits = v,
            "argmax_misses" => self.argmax_misses = v,
            "argmax_invalidations" => self.argmax_invalidations = v,
            "band_growths" => self.band_growths = v,
            "band_densifications" => self.band_densifications = v,
            "boundary_comms" => self.boundary_comms = v,
            "governor_accepts" => self.governor_accepts = v,
            "governor_rejects" => self.governor_rejects = v,
            "validate_ok" => self.validate_ok = v,
            "validate_fail" => self.validate_fail = v,
            "oracle_agree" => self.oracle_agree = v,
            "oracle_disagree" => self.oracle_disagree = v,
            "contracts_proven" => self.contracts_proven = v,
            "contracts_unproven" => self.contracts_unproven = v,
            _ => unreachable!("unknown counter {name}"),
        }
    }
}

/// The kind of weight operation being counted; see the matching
/// [`CounterTotals`] fields.
#[derive(Clone, Copy, Debug)]
pub(crate) enum OpKind {
    Set,
    Scale,
    ScaleCluster,
    ScaleTime,
    SetWindow,
    ForbidCluster,
    Normalize,
    ResetUniform,
    RowBatch,
}

/// The live counter block owned by [`crate::PreferenceMap`].
///
/// Disabled by default: every increment first checks `enabled`, a
/// plain `bool` that is only flipped via `&mut self` before any
/// concurrent access starts, so the hot path pays one well-predicted
/// branch. The counts themselves are relaxed atomics so disjoint row
/// chunks can share `&MapCounters` across worker threads.
#[derive(Debug, Default)]
pub(crate) struct MapCounters {
    enabled: bool,
    set: AtomicU64,
    scale: AtomicU64,
    scale_cluster: AtomicU64,
    scale_time: AtomicU64,
    set_window: AtomicU64,
    forbid_cluster: AtomicU64,
    normalize: AtomicU64,
    reset_uniform: AtomicU64,
    row_batch: AtomicU64,
    argmax_hits: AtomicU64,
    argmax_misses: AtomicU64,
    argmax_invalidations: AtomicU64,
}

impl Clone for MapCounters {
    fn clone(&self) -> Self {
        let c = |a: &AtomicU64| AtomicU64::new(a.load(Ordering::Relaxed));
        MapCounters {
            enabled: self.enabled,
            set: c(&self.set),
            scale: c(&self.scale),
            scale_cluster: c(&self.scale_cluster),
            scale_time: c(&self.scale_time),
            set_window: c(&self.set_window),
            forbid_cluster: c(&self.forbid_cluster),
            normalize: c(&self.normalize),
            reset_uniform: c(&self.reset_uniform),
            row_batch: c(&self.row_batch),
            argmax_hits: c(&self.argmax_hits),
            argmax_misses: c(&self.argmax_misses),
            argmax_invalidations: c(&self.argmax_invalidations),
        }
    }
}

impl MapCounters {
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn enable(&mut self) {
        self.enabled = true;
    }

    /// Counts one weight operation. No-op (one branch) when disabled.
    #[inline]
    pub(crate) fn op(&self, kind: OpKind) {
        if !self.enabled {
            return;
        }
        let field = match kind {
            OpKind::Set => &self.set,
            OpKind::Scale => &self.scale,
            OpKind::ScaleCluster => &self.scale_cluster,
            OpKind::ScaleTime => &self.scale_time,
            OpKind::SetWindow => &self.set_window,
            OpKind::ForbidCluster => &self.forbid_cluster,
            OpKind::Normalize => &self.normalize,
            OpKind::ResetUniform => &self.reset_uniform,
            OpKind::RowBatch => &self.row_batch,
        };
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one argmax read (hit = answered from a valid cache).
    /// Callers must gate on [`MapCounters::enabled`] themselves — the
    /// hit/miss classification needs a cache-flag read that should not
    /// happen on the disabled path.
    #[inline]
    pub(crate) fn argmax_read(&self, hit: bool) {
        let field = if hit {
            &self.argmax_hits
        } else {
            &self.argmax_misses
        };
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` argmax-cache invalidations (gate on
    /// [`MapCounters::enabled`] at the call site).
    #[inline]
    pub(crate) fn invalidations(&self, n: u64) {
        if n > 0 {
            self.argmax_invalidations.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Snapshot of the map-owned counters (band events are owned by
    /// the banded core and merged by the map).
    pub(crate) fn totals(&self) -> CounterTotals {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        CounterTotals {
            set: g(&self.set),
            scale: g(&self.scale),
            scale_cluster: g(&self.scale_cluster),
            scale_time: g(&self.scale_time),
            set_window: g(&self.set_window),
            forbid_cluster: g(&self.forbid_cluster),
            normalize: g(&self.normalize),
            reset_uniform: g(&self.reset_uniform),
            row_batch: g(&self.row_batch),
            argmax_hits: g(&self.argmax_hits),
            argmax_misses: g(&self.argmax_misses),
            argmax_invalidations: g(&self.argmax_invalidations),
            ..CounterTotals::default()
        }
    }
}

/// Always-on band-event stats owned by the banded core. Band growth
/// and densification are cold row-state transitions (at most a few per
/// row per schedule), so these are not gated on the enabled flag —
/// one relaxed increment at a site that just paid a reallocation.
#[derive(Debug, Default)]
pub(crate) struct BandStats {
    pub(crate) growths: AtomicU64,
    pub(crate) densifications: AtomicU64,
}

impl Clone for BandStats {
    fn clone(&self) -> Self {
        BandStats {
            growths: AtomicU64::new(self.growths.load(Ordering::Relaxed)),
            densifications: AtomicU64::new(self.densifications.load(Ordering::Relaxed)),
        }
    }
}

impl BandStats {
    #[inline]
    pub(crate) fn grew(&self) {
        self.growths.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn densified(&self) {
        self.densifications.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_delta_and_merge_are_fieldwise() {
        let mut a = CounterTotals {
            set: 10,
            argmax_hits: 4,
            ..CounterTotals::default()
        };
        let b = CounterTotals {
            set: 3,
            argmax_hits: 1,
            band_growths: 2,
            ..CounterTotals::default()
        };
        let d = a.delta_since(&b);
        assert_eq!(d.set, 7);
        assert_eq!(d.argmax_hits, 3);
        assert_eq!(d.band_growths, 0); // saturating
        a.merge(&b);
        assert_eq!(a.set, 13);
        assert_eq!(a.band_growths, 2);
        assert!(!a.is_zero());
        assert!(CounterTotals::default().is_zero());
    }

    #[test]
    fn weight_ops_and_hit_rate() {
        let t = CounterTotals {
            set: 2,
            row_batch: 3,
            argmax_hits: 3,
            argmax_misses: 1,
            ..CounterTotals::default()
        };
        assert_eq!(t.weight_ops(), 5);
        assert_eq!(t.argmax_hit_rate(), Some(0.75));
        assert_eq!(CounterTotals::default().argmax_hit_rate(), None);
    }

    #[test]
    fn map_counters_disabled_by_default() {
        let mut c = MapCounters::default();
        c.op(OpKind::Set);
        assert!(c.totals().is_zero());
        c.enable();
        c.op(OpKind::Set);
        c.op(OpKind::RowBatch);
        c.argmax_read(true);
        c.invalidations(2);
        let t = c.totals();
        assert_eq!(t.set, 1);
        assert_eq!(t.row_batch, 1);
        assert_eq!(t.argmax_hits, 1);
        assert_eq!(t.argmax_invalidations, 2);
    }

    #[test]
    fn json_lists_every_field() {
        let t = CounterTotals::default();
        let j = t.to_json();
        for (name, _) in t.named() {
            assert!(j.contains(&format!("\"{name}\":")), "{name} missing");
        }
        assert!(j.contains("\"weight_ops\":0"));
    }
}
