//! Exporter contracts, held as golden files: the Chrome trace-event
//! writer must produce this exact byte sequence for a fixed event feed
//! (so Perfetto keeps loading what we emit), and the Prometheus
//! text-exposition writer must round-trip through its own parser. A
//! real driver run is then pushed through both exporters and held to
//! the schema validator.

use convergent_core::telemetry::{
    parse_exposition, validate_chrome_trace, ChromeTraceSink, ConvergenceMetrics, CounterTotals,
    PrometheusSink, SpanKind, TelemetrySink,
};
use convergent_core::ConvergentScheduler;
use convergent_ir::{ClusterId, DagBuilder, Instruction, Opcode};
use convergent_machine::Machine;

/// A small diamond DAG with one preplaced load — enough structure for
/// every pass to do real work.
fn diamond() -> convergent_ir::Dag {
    let mut b = DagBuilder::new();
    let a = b.push(Instruction::preplaced(Opcode::Load, ClusterId::new(0)));
    let l = b.push(Instruction::new(Opcode::IntAlu));
    let r = b.push(Instruction::new(Opcode::FMul));
    let s = b.push(Instruction::new(Opcode::Store));
    b.edge(a, l).unwrap();
    b.edge(a, r).unwrap();
    b.edge(l, s).unwrap();
    b.edge(r, s).unwrap();
    b.build().unwrap()
}

/// The golden file: a fixed feed of spans, counters, and convergence
/// samples must render to exactly these bytes. If this test fails
/// because the format deliberately changed, re-derive the expectation
/// with `println!("{json}")` — but know that the schema parts
/// (`traceEvents`, `ph`/`ts`/`dur` fields, metadata events) are what
/// Perfetto loads, so they should not change casually.
#[test]
fn chrome_trace_golden_file() {
    let mut sink = ChromeTraceSink::new();
    sink.span("<init>", SpanKind::Stage, 0.0, 0.000_25);
    sink.span("PATH", SpanKind::Pass, 0.000_25, 0.001);
    sink.counters(
        "PATH",
        &CounterTotals {
            scale_cluster: 12,
            argmax_hits: 3,
            argmax_misses: 1,
            ..CounterTotals::default()
        },
    );
    sink.convergence(
        "PATH",
        &ConvergenceMetrics {
            mean_confidence: 1.5,
            decision_churn: 0.25,
            preference_entropy: 2.0,
            preplacement_coverage: 1.0,
        },
    );
    sink.span("shard0/COMM", SpanKind::Pass, 0.001_25, 0.000_5);
    sink.span("shard0", SpanKind::Shard, 0.001_25, 0.000_5);
    sink.span("<run>", SpanKind::Run, 0.0, 0.002);
    let json = sink.write_json();
    let expected = concat!(
        "{\"traceEvents\":[\n",
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"name\":\"csched\"}},\n",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"name\":\"driver\"}},\n",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":0,\"args\":{\"name\":\"shard0\"}},\n",
        "{\"name\":\"<init>\",\"cat\":\"stage\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":250,\"args\":{}},\n",
        "{\"name\":\"<run>\",\"cat\":\"run\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":2000,\"args\":{}},\n",
        "{\"name\":\"PATH\",\"cat\":\"pass\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":250,\"dur\":1000,\"args\":{}},\n",
        "{\"name\":\"weight ops\",\"cat\":\"counters\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1250,\"args\":{\"set\":0,\"scale\":0,\"scale_cluster\":12,\"scale_time\":0,\"set_window\":0,\"forbid_cluster\":0,\"normalize\":0,\"reset_uniform\":0,\"row_batch\":0}},\n",
        "{\"name\":\"argmax cache\",\"cat\":\"counters\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1250,\"args\":{\"hits\":3,\"misses\":1,\"invalidations\":0}},\n",
        "{\"name\":\"convergence\",\"cat\":\"convergence\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1250,\"args\":{\"mean_confidence\":1.5,\"decision_churn\":0.25,\"preference_entropy\":2,\"preplacement_coverage\":1}},\n",
        "{\"name\":\"COMM\",\"cat\":\"pass\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1250,\"dur\":500,\"args\":{}},\n",
        "{\"name\":\"shard0\",\"cat\":\"shard\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1250,\"dur\":500,\"args\":{}}\n",
        "]}\n",
    );
    assert_eq!(json, expected);
    // And the golden bytes themselves satisfy the schema validator.
    let stats = validate_chrome_trace(&json).expect("golden trace validates");
    assert_eq!(stats.span_events, 5);
    assert_eq!(stats.counter_events, 3);
}

/// A real driver run through the Chrome exporter: valid schema,
/// monotone timestamps (checked by the validator), and a span for
/// every pass of the sequence that ran.
#[test]
fn real_run_trace_validates_and_names_every_pass() {
    let dag = diamond();
    let machine = Machine::chorus_vliw(2);
    let sched = ConvergentScheduler::vliw_default();
    let mut sink = ChromeTraceSink::new();
    sched
        .schedule_with_sink(&dag, &machine, &mut sink)
        .expect("diamond schedules");
    let stats = validate_chrome_trace(&sink.write_json()).expect("trace validates");
    for name in sched.sequence().names() {
        assert!(
            stats.span_names.contains(name),
            "pass {name} has no span in the trace"
        );
    }
    assert!(stats.span_names.contains("<run>"));
    assert!(stats.span_names.contains("<listsched>"));
    assert!(stats.counter_events > 0, "no counter samples in the trace");
}

/// A real driver run through the Prometheus exporter: the rendered
/// exposition parses back into an equal registry (writer/parser
/// round-trip on live data, not just hand-built samples).
#[test]
fn real_run_prometheus_exposition_round_trips() {
    let dag = diamond();
    let machine = Machine::chorus_vliw(2);
    let mut sink = PrometheusSink::new();
    ConvergentScheduler::vliw_default()
        .schedule_with_sink(&dag, &machine, &mut sink)
        .expect("diamond schedules");
    let registry = sink.into_registry();
    assert!(!registry.is_empty());
    let text = registry.render();
    assert!(text.contains("csched_pass_duration_seconds"));
    assert!(text.contains("csched_weight_ops_total"));
    assert!(text.contains("csched_convergence_decision_churn"));
    let back = parse_exposition(&text).expect("exposition parses");
    assert_eq!(back, registry);
    assert_eq!(back.render(), text);
}
