//! Cheap per-pass wall-clock profiling for the driver.
//!
//! [`PassProfile`] aggregates `Instant` spans by span name; the driver
//! records one span per pass plus the synthetic `"<init>"` (analysis +
//! map construction), `"<readoff>"` (decision extraction), and
//! `"<listsched>"` (final list scheduling) spans. The sharded driver
//! additionally records `"<decompose>"` / `"<stitch>"` and merges each
//! shard's spans under a `shard{k}/` prefix. Passes that appear more
//! than once in a sequence (e.g. PATHPROP) accumulate into a single
//! entry. The profile is only collected on the `*_profiled` driver
//! entry points, so the normal scheduling path pays nothing.

use std::borrow::Cow;
use std::collections::HashMap;

use crate::telemetry::{SpanKind, TelemetrySink};

/// Aggregated per-pass wall-clock spans, in first-seen order.
#[derive(Clone, Debug, Default)]
pub struct PassProfile {
    spans: Vec<(Cow<'static, str>, f64, u32)>,
    /// Name → index into `spans`, so repeated spans (PATHPROP, shard
    /// replays) aggregate in O(1) instead of a linear rescan.
    index: HashMap<Cow<'static, str>, usize>,
}

impl PassProfile {
    /// Adds `secs` to the span named `name` (created on first use).
    pub(crate) fn record(&mut self, name: impl Into<Cow<'static, str>>, secs: f64) {
        self.bump(name.into(), secs, 1);
    }

    fn bump(&mut self, name: Cow<'static, str>, secs: f64, hits: u32) {
        if let Some(&j) = self.index.get(&name) {
            self.spans[j].1 += secs;
            self.spans[j].2 += hits;
        } else {
            self.index.insert(name.clone(), self.spans.len());
            self.spans.push((name, secs, hits));
        }
    }

    /// `(name, total_seconds, hits)` per span, in first-seen order.
    pub fn spans(&self) -> impl Iterator<Item = (&str, f64, u32)> + '_ {
        self.spans.iter().map(|(n, s, h)| (n.as_ref(), *s, *h))
    }

    /// Total wall-clock seconds across all spans.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.spans.iter().map(|(_, s, _)| s).sum()
    }

    /// Renders the profile as an aligned text table (name, seconds,
    /// share, hit count), for `--profile` output.
    #[must_use]
    pub fn render_table(&self) -> String {
        let total = self.total().max(f64::MIN_POSITIVE);
        let width = self
            .spans
            .iter()
            .map(|(n, _, _)| n.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = format!(
            "{:<width$}  {:>12}  {:>6}  {:>4}\n",
            "pass", "seconds", "share", "hits"
        );
        for (name, secs, hits) in &self.spans {
            out.push_str(&format!(
                "{name:<width$}  {secs:>12.6}  {:>5.1}%  {hits:>4}\n",
                100.0 * secs / total
            ));
        }
        out.push_str(&format!("{:<width$}  {:>12.6}\n", "total", self.total()));
        out
    }
}

/// The original `--profile` consumer, reborn as a [`TelemetrySink`]:
/// it keeps stage and pass spans (full path, so shard replays land as
/// `shard{k}/NAME`) and ignores everything else, which reproduces the
/// pre-telemetry profile tables exactly.
impl TelemetrySink for PassProfile {
    fn span(&mut self, path: &str, kind: SpanKind, _start_secs: f64, dur_secs: f64) {
        if matches!(kind, SpanKind::Stage | SpanKind::Pass) {
            self.record(path.to_string(), dur_secs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_by_name_in_order() {
        let mut p = PassProfile::default();
        p.record("<init>", 0.5);
        p.record("PATH", 1.0);
        p.record("PATHPROP", 0.25);
        p.record("PATHPROP", 0.25);
        let spans: Vec<_> = p.spans().collect();
        assert_eq!(
            spans,
            vec![("<init>", 0.5, 1), ("PATH", 1.0, 1), ("PATHPROP", 0.5, 2)]
        );
        assert!((p.total() - 2.0).abs() < 1e-12);
        let table = p.render_table();
        assert!(table.contains("PATHPROP"));
        assert!(table.contains("total"));
    }

    #[test]
    fn sink_keeps_only_stage_and_pass_spans() {
        let mut p = PassProfile::default();
        p.span("<run>", SpanKind::Run, 0.0, 2.0);
        p.span("shard0", SpanKind::Shard, 0.0, 1.0);
        p.span("<init>", SpanKind::Stage, 0.0, 0.5);
        p.span("PATH", SpanKind::Pass, 0.5, 1.0);
        p.span("PATH/<kernel>", SpanKind::Phase, 0.6, 0.2);
        let spans: Vec<_> = p.spans().collect();
        assert_eq!(spans, vec![("<init>", 0.5, 1), ("PATH", 1.0, 1)]);
    }

    #[test]
    fn sink_replay_merges_shard_spans() {
        // Shard buffers replay the same span names repeatedly; the
        // profile aggregates by full (prefixed) path.
        let mut p = PassProfile::default();
        p.record("<decompose>", 0.1);
        p.span("shard0/PATH", SpanKind::Pass, 0.0, 0.5);
        p.span("shard0/PATH", SpanKind::Pass, 0.5, 0.5);
        p.span("shard0/<listsched>", SpanKind::Stage, 1.0, 0.25);
        let spans: Vec<_> = p.spans().collect();
        assert_eq!(
            spans,
            vec![
                ("<decompose>", 0.1, 1),
                ("shard0/PATH", 1.0, 2),
                ("shard0/<listsched>", 0.25, 1)
            ]
        );
    }
}
