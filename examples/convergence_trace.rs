//! Watch the preference map converge — the paper's Figure 4.
//!
//! Figure 4 renders the cluster-preference map of an fpppp code
//! sequence after each pass: rows are instructions, columns are
//! clusters, brightness is preference. This example prints the same
//! thing as ASCII art for the fpppp kernel on a 4-cluster VLIW,
//! pass by pass.
//!
//! ```text
//! cargo run --release --example convergence_trace
//! ```

use convergent_scheduling::prelude::*;
use convergent_scheduling::workloads::{fpppp_kernel, FppppParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let unit = fpppp_kernel(FppppParams {
        spines: 4,
        steps: 6,
    });
    let machine = Machine::chorus_vliw(4);
    println!("{unit}\n");
    println!("rows = instructions, cols = clusters; '.'→'@' = weak→strong preference\n");

    ConvergentScheduler::vliw_default().assign_with_observer(
        unit.dag(),
        &machine,
        |k, name, weights| {
            println!("--- after pass {k}: {name} ---");
            // Show a sample of instructions (every 4th) to keep the
            // picture compact.
            for i in unit.dag().ids().step_by(4) {
                let total = weights.total(i).max(f64::MIN_POSITIVE);
                let mut row = String::new();
                for c in 0..machine.n_clusters() {
                    let frac = weights.cluster_weight(i, ClusterId::new(c as u16)) / total;
                    let glyph = match (frac * 100.0) as u32 {
                        0..=9 => ' ',
                        10..=24 => '.',
                        25..=39 => 'o',
                        40..=59 => 'O',
                        _ => '@',
                    };
                    row.push(glyph);
                }
                println!("  {i:>4} |{row}|");
            }
            println!();
        },
    )?;
    Ok(())
}
