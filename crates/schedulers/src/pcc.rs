//! Partial Component Clustering (PCC).
//!
//! Desoli (HP Labs technical report HPL-98-13) assigns clusters in
//! three steps:
//!
//! 1. **Partial components** — walk the dependence graph bottom-up,
//!    critical-path first, growing chains of instructions; component
//!    size is capped by a threshold θ.
//! 2. **Initial assignment** — components are placed on clusters by
//!    simple load-balancing and communication-affinity criteria.
//! 3. **Iterative descent** — repeatedly try moving a component to
//!    another cluster, keeping any move that shortens the *measured*
//!    schedule (a full list-scheduler run per probe). This measurement
//!    loop is what makes PCC's compile time balloon in the paper's
//!    Figure 10, and we reproduce it faithfully.
//!
//! As in the paper's comparison, preplacement is accounted for through
//! cost: on soft-memory machines (Chorus) the schedule probes price
//! remote accesses; on hard machines (Raw) components containing
//! preplaced instructions are pinned to the home cluster.

use convergent_ir::{ClusterId, Dag, InstrId, TimeAnalysis};
use convergent_machine::Machine;
use convergent_sim::{Assignment, SpaceTimeSchedule};

use crate::list::check_assignment;
use crate::{ListScheduler, ScheduleError, Scheduler};

/// The PCC scheduler. See the module docs.
#[derive(Clone, Debug)]
pub struct PccScheduler {
    theta: usize,
    max_rounds: usize,
}

impl PccScheduler {
    /// Creates a PCC scheduler with the default component cap (θ = 12)
    /// and up to 4 descent rounds.
    #[must_use]
    pub fn new() -> Self {
        PccScheduler {
            theta: 12,
            max_rounds: 4,
        }
    }

    /// Sets the maximum component size θ. Desoli notes the tradeoff:
    /// small θ → more components → better assignments but longer
    /// compile times.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is zero.
    #[must_use]
    pub fn with_theta(mut self, theta: usize) -> Self {
        assert!(theta > 0, "component cap must be positive");
        self.theta = theta;
        self
    }

    /// Sets the maximum number of iterative-descent rounds.
    #[must_use]
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Computes the cluster assignment (steps 1–3) without the final
    /// list-scheduling pass.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] for graphs that cannot be mapped to
    /// the machine (bad home clusters, inexecutable operations).
    pub fn assign(&self, dag: &Dag, machine: &Machine) -> Result<Assignment, ScheduleError> {
        crate::precondition::check_inputs(dag, machine)?;
        let components = build_components(dag, machine, self.theta)?;
        let mut assignment = initial_assignment(dag, machine, &components);
        check_assignment(dag, machine, &assignment)?;

        // Iterative descent on *estimated* schedule length — Desoli's
        // algorithm "for estimating schedule lengths and communication
        // costs" rather than a full scheduler run per probe. The
        // estimate combines the dependence-height bound (with
        // communication charged on cross-cluster edges) and the
        // per-cluster resource bound; its misalignment with the real
        // makespan is PCC's published weakness, while the sheer number
        // of probes is its published compile-time cost (Figure 10).
        let hard = machine.memory().preplacement_is_hard();
        let mut best = estimate_length(dag, machine, &assignment);
        for _ in 0..self.max_rounds {
            let mut improved = false;
            for comp in &components {
                if hard && comp.home.is_some() {
                    continue; // pinned
                }
                let current = assignment.cluster(comp.members[0]);
                let mut best_move: Option<(ClusterId, u32)> = None;
                for c in machine.cluster_ids() {
                    if c == current {
                        continue;
                    }
                    if comp
                        .members
                        .iter()
                        .any(|&i| !machine.cluster_can_execute(c, dag.instr(i).class()))
                    {
                        continue;
                    }
                    for &i in &comp.members {
                        assignment.set(i, c);
                    }
                    let m = estimate_length(dag, machine, &assignment);
                    if m < best && best_move.is_none_or(|(_, bm)| m < bm) {
                        best_move = Some((c, m));
                    }
                    for &i in &comp.members {
                        assignment.set(i, current);
                    }
                }
                if let Some((c, m)) = best_move {
                    for &i in &comp.members {
                        assignment.set(i, c);
                    }
                    best = m;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        Ok(assignment)
    }
}

impl Default for PccScheduler {
    fn default() -> Self {
        PccScheduler::new()
    }
}

impl Scheduler for PccScheduler {
    fn name(&self) -> &str {
        "pcc"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> Result<SpaceTimeSchedule, ScheduleError> {
        let assignment = self.assign(dag, machine)?;
        ListScheduler::new().schedule_with_cp(dag, machine, &assignment)
    }
}

/// Desoli-style schedule-length estimate for an assignment: the larger
/// of (a) the dependence height where every cross-cluster edge pays
/// the transfer latency and remote memory ops pay their penalty, and
/// (b) the busiest cluster's resource bound (operations per capable
/// functional unit, counting inserted copies on transfer units).
fn estimate_length(dag: &Dag, machine: &Machine, assignment: &Assignment) -> u32 {
    let n_clusters = machine.n_clusters();
    // (a) height with communication.
    let mut finish = vec![0u32; dag.len()];
    let mut height = 0u32;
    for &i in dag.topo_order() {
        let c = assignment.cluster(i);
        let ready = dag
            .preds(i)
            .iter()
            .map(|&p| finish[p.index()] + machine.comm_latency(assignment.cluster(p), c))
            .max()
            .unwrap_or(0);
        let lat = convergent_sim::effective_latency_in(dag, machine, i, c);
        finish[i.index()] = ready + lat;
        height = height.max(finish[i.index()]);
    }
    // (b) resource bound per cluster: ops per capable unit, plus one
    // transfer-unit slot per distinct (producer, consumer-cluster).
    let mut bound = 0u32;
    for c in machine.cluster_ids() {
        let cluster = machine.cluster(c);
        let mut per_fu = vec![0u32; cluster.issue_width()];
        for i in dag.ids() {
            if assignment.cluster(i) != c {
                continue;
            }
            // Charge the least-loaded capable unit (optimistic).
            let class = dag.instr(i).class();
            if let Some(k) = (0..cluster.issue_width())
                .filter(|&k| cluster.fus()[k].can_execute(class))
                .min_by_key(|&k| per_fu[k])
            {
                per_fu[k] += 1;
            }
        }
        if !machine.comm().register_mapped {
            let mut dests: std::collections::HashSet<(u32, usize)> =
                std::collections::HashSet::new();
            for e in dag.edges() {
                let (pc, uc) = (assignment.cluster(e.src), assignment.cluster(e.dst));
                if pc == c && uc != c {
                    dests.insert((e.src.raw(), uc.index()));
                }
            }
            if let Some(k) = (0..cluster.issue_width())
                .filter(|&k| cluster.fus()[k].can_execute(convergent_ir::OpClass::Copy))
                .min_by_key(|&k| per_fu[k])
            {
                per_fu[k] += dests.len() as u32;
            }
        }
        bound = bound.max(per_fu.into_iter().max().unwrap_or(0));
    }
    let _ = n_clusters;
    height.max(bound)
}

/// A partial component: a chain-ish group of instructions assigned as
/// one unit.
#[derive(Clone, Debug)]
struct Component {
    members: Vec<InstrId>,
    home: Option<ClusterId>,
}

/// Step 1: grow components bottom-up, critical-path first, capped at θ.
fn build_components(
    dag: &Dag,
    machine: &Machine,
    theta: usize,
) -> Result<Vec<Component>, ScheduleError> {
    let time = TimeAnalysis::compute(dag, |i| machine.latency_of(i));
    // Bottom-up: consider instructions from the leaves, most critical
    // first (deepest finish = latest on the critical path).
    let mut order: Vec<InstrId> = dag.ids().collect();
    order.sort_by_key(|&i| {
        (
            std::cmp::Reverse(time.earliest_start(i) + time.latency(i)),
            time.slack(i),
            i,
        )
    });
    let mut comp_of: Vec<Option<usize>> = vec![None; dag.len()];
    let mut components: Vec<Component> = Vec::new();
    for seed in order {
        if comp_of[seed.index()].is_some() {
            continue;
        }
        let id = components.len();
        let mut comp = Component {
            members: vec![seed],
            home: dag.instr(seed).preplacement(),
        };
        comp_of[seed.index()] = Some(id);
        // Extend upward through the most critical unassigned
        // predecessor while the cap and home compatibility allow.
        let mut cur = seed;
        while comp.members.len() < theta {
            let next = dag
                .preds(cur)
                .iter()
                .copied()
                .filter(|&p| comp_of[p.index()].is_none())
                .filter(|&p| match (comp.home, dag.instr(p).preplacement()) {
                    (Some(h), Some(ph)) => h == ph,
                    _ => true,
                })
                .max_by_key(|&p| {
                    (
                        time.earliest_start(p) + time.latency(p),
                        std::cmp::Reverse(time.slack(p)),
                        std::cmp::Reverse(p),
                    )
                });
            let Some(p) = next else { break };
            comp_of[p.index()] = Some(id);
            comp.members.push(p);
            if comp.home.is_none() {
                comp.home = dag.instr(p).preplacement();
            }
            cur = p;
        }
        components.push(comp);
    }
    Ok(components)
}

/// Step 2: load/communication-balanced initial placement.
fn initial_assignment(dag: &Dag, machine: &Machine, components: &[Component]) -> Assignment {
    let n_clusters = machine.n_clusters();
    let mut assignment = Assignment::uniform(dag.len(), ClusterId::new(0));
    let mut assigned: Vec<bool> = vec![false; dag.len()];
    let mut load = vec![0usize; n_clusters];

    let mut order: Vec<usize> = (0..components.len()).collect();
    // Homed components first (their cluster is forced or strongly
    // preferred), then big ones.
    order.sort_by_key(|&k| {
        (
            components[k].home.is_none(),
            std::cmp::Reverse(components[k].members.len()),
            k,
        )
    });
    for k in order {
        let comp = &components[k];
        let chosen = match comp.home {
            Some(h) => h,
            None => {
                // Affinity: edges from this component to already
                // assigned instructions, per cluster.
                let mut aff = vec![0usize; n_clusters];
                let mut total = 0usize;
                for &i in &comp.members {
                    for n in dag.neighbors(i) {
                        if assigned[n.index()] {
                            aff[assignment.cluster(n).index()] += 1;
                            total += 1;
                        }
                    }
                }
                machine
                    .cluster_ids()
                    .filter(|&c| {
                        comp.members
                            .iter()
                            .all(|&i| machine.cluster_can_execute(c, dag.instr(i).class()))
                    })
                    .min_by_key(|&c| {
                        let cut = total - aff[c.index()];
                        (cut + load[c.index()], c)
                    })
                    .unwrap_or(ClusterId::new(0))
            }
        };
        for &i in &comp.members {
            assignment.set(i, chosen);
            assigned[i.index()] = true;
        }
        load[chosen.index()] += comp.members.len();
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::{DagBuilder, Opcode};
    use convergent_sim::validate;

    fn c(i: u16) -> ClusterId {
        ClusterId::new(i)
    }

    #[test]
    fn components_respect_theta() {
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 0..19 {
            let nxt = b.instr(Opcode::IntAlu);
            b.edge(prev, nxt).unwrap();
            prev = nxt;
        }
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(4);
        let comps = build_components(&dag, &m, 5).unwrap();
        assert!(comps.iter().all(|cm| cm.members.len() <= 5));
        let total: usize = comps.iter().map(|cm| cm.members.len()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn chain_forms_one_component() {
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 0..4 {
            let nxt = b.instr(Opcode::IntAlu);
            b.edge(prev, nxt).unwrap();
            prev = nxt;
        }
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(4);
        let comps = build_components(&dag, &m, 12).unwrap();
        assert_eq!(comps.len(), 1);
    }

    #[test]
    fn components_never_mix_homes() {
        let mut b = DagBuilder::new();
        let l0 = b.preplaced_instr(Opcode::Load, c(0));
        let l1 = b.preplaced_instr(Opcode::Load, c(1));
        let add = b.instr(Opcode::IntAlu);
        b.edge(l0, add).unwrap();
        b.edge(l1, add).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let comps = build_components(&dag, &m, 12).unwrap();
        for comp in &comps {
            let homes: std::collections::HashSet<_> = comp
                .members
                .iter()
                .filter_map(|&i| dag.instr(i).preplacement())
                .collect();
            assert!(homes.len() <= 1, "{comp:?}");
        }
    }

    #[test]
    fn schedules_validate_on_both_machines() {
        let mut b = DagBuilder::new();
        let mut leaves = Vec::new();
        for k in 0..4u16 {
            let ld = b.preplaced_instr(Opcode::Load, c(k));
            let m1 = b.instr(Opcode::IntMul);
            b.edge(ld, m1).unwrap();
            leaves.push(m1);
        }
        let s1 = b.instr(Opcode::IntAlu);
        let s2 = b.instr(Opcode::IntAlu);
        let s3 = b.instr(Opcode::IntAlu);
        b.edge(leaves[0], s1).unwrap();
        b.edge(leaves[1], s1).unwrap();
        b.edge(leaves[2], s2).unwrap();
        b.edge(leaves[3], s2).unwrap();
        b.edge(s1, s3).unwrap();
        b.edge(s2, s3).unwrap();
        let dag = b.build().unwrap();

        for m in [Machine::raw(4), Machine::chorus_vliw(4)] {
            let s = PccScheduler::new().schedule(&dag, &m).unwrap();
            validate(&dag, &m, &s).unwrap();
            assert!(
                s.assignment().respects_preplacement(&dag) || !m.memory().preplacement_is_hard()
            );
        }
    }

    #[test]
    fn descent_never_worsens() {
        // Random-ish mesh of work; descent result must be <= initial.
        let mut b = DagBuilder::new();
        let mut ids = Vec::new();
        for k in 0..24 {
            let op = if k % 3 == 0 {
                Opcode::FMul
            } else {
                Opcode::IntAlu
            };
            ids.push(b.instr(op));
        }
        for k in 4..24 {
            b.edge(ids[k - 4], ids[k]).unwrap();
            if k % 5 == 0 {
                b.edge(ids[k - 3], ids[k]).unwrap();
            }
        }
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(4);
        let pcc = PccScheduler::new();
        let comps = build_components(&dag, &m, pcc.theta).unwrap();
        let initial = initial_assignment(&dag, &m, &comps);
        let init_len = ListScheduler::new()
            .schedule_with_cp(&dag, &m, &initial)
            .unwrap()
            .makespan();
        let final_len = pcc.schedule(&dag, &m).unwrap().makespan();
        assert!(final_len <= init_len);
    }

    #[test]
    fn estimate_tracks_height_and_resources() {
        // A pure chain: estimate equals the latency-weighted height.
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::FMul); // 7 cycles each
        for _ in 0..3 {
            let nxt = b.instr(Opcode::FMul);
            b.edge(prev, nxt).unwrap();
            prev = nxt;
        }
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let all0 = Assignment::uniform(dag.len(), c(0));
        assert_eq!(estimate_length(&dag, &m, &all0), 28);
        // Splitting the chain across clusters adds transfer latency to
        // the height estimate.
        let split = Assignment::from_vec(vec![c(0), c(1), c(0), c(1)]);
        assert_eq!(estimate_length(&dag, &m, &split), 31);
        // Wide independent work: the resource bound dominates when one
        // cluster holds everything (8 fmuls on one FPU = 8 slots).
        let mut b = DagBuilder::new();
        for _ in 0..8 {
            b.instr(Opcode::FMul);
        }
        let wide = b.build().unwrap();
        let all0 = Assignment::uniform(wide.len(), c(0));
        assert_eq!(estimate_length(&wide, &m, &all0), 8);
        // Balanced: resource bound halves (4 per FPU); the height is
        // one fmul plus the live-in fetch for roots off the data-home
        // cluster (7 + 1).
        let bal: Assignment = (0..8u16).map(|k| c(k % 2)).collect();
        assert_eq!(estimate_length(&wide, &m, &bal), 8);
    }

    #[test]
    fn estimate_counts_transfer_unit_occupancy() {
        // One producer on c0 feeding 6 consumers on c1: the producer
        // cluster's transfer unit carries one copy (deduped per
        // destination cluster), so the bound stays small; but with 6
        // distinct producers the copies pile onto the transfer unit.
        let mut b = DagBuilder::new();
        let producers: Vec<_> = (0..6).map(|_| b.instr(Opcode::IntAlu)).collect();
        let sink = b.instr(Opcode::IntAlu);
        for &p in &producers {
            b.edge(p, sink).unwrap();
        }
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let mut asg = Assignment::uniform(dag.len(), c(0));
        asg.set(sink, c(1));
        // 6 copies on c0's transfer unit dominate the estimate's
        // resource bound.
        assert!(estimate_length(&dag, &m, &asg) >= 6);
    }

    #[test]
    fn theta_zero_panics() {
        let r = std::panic::catch_unwind(|| PccScheduler::new().with_theta(0));
        assert!(r.is_err());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(PccScheduler::new().name(), "pcc");
    }
}
