//! Scheduling units: the granule of work a scheduler consumes.
//!
//! The paper: "Convergent scheduling operates on individual scheduling
//! units, which may be basic blocks, traces, superblocks, hyperblocks,
//! or treegions." A [`SchedulingUnit`] bundles a dependence graph with a
//! name and the kind of region it came from.

use std::fmt;
use std::sync::Arc;

use crate::Dag;

/// The compiler region a scheduling unit was formed from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum RegionKind {
    /// A single basic block.
    #[default]
    BasicBlock,
    /// A trace (Fisher-style, the paper's Rawcc default).
    Trace,
    /// A superblock.
    Superblock,
    /// A hyperblock.
    Hyperblock,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegionKind::BasicBlock => "basic block",
            RegionKind::Trace => "trace",
            RegionKind::Superblock => "superblock",
            RegionKind::Hyperblock => "hyperblock",
        };
        f.write_str(s)
    }
}

/// A named dependence graph ready for scheduling.
///
/// The graph is held behind an [`Arc`] so suites and experiment
/// harnesses can share one unit across many scheduler runs cheaply.
#[derive(Clone, Debug)]
pub struct SchedulingUnit {
    name: String,
    kind: RegionKind,
    dag: Arc<Dag>,
}

impl SchedulingUnit {
    /// Wraps a graph as a scheduling unit.
    #[must_use]
    pub fn new(name: impl Into<String>, dag: Dag) -> Self {
        SchedulingUnit {
            name: name.into(),
            kind: RegionKind::default(),
            dag: Arc::new(dag),
        }
    }

    /// Sets the region kind this unit was formed from.
    #[must_use]
    pub fn with_kind(mut self, kind: RegionKind) -> Self {
        self.kind = kind;
        self
    }

    /// The unit's name (benchmark name or trace label).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The region kind.
    #[must_use]
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// The dependence graph.
    #[must_use]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// A shared handle to the dependence graph.
    #[must_use]
    pub fn dag_arc(&self) -> Arc<Dag> {
        Arc::clone(&self.dag)
    }
}

impl fmt::Display for SchedulingUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} instrs, {} edges)",
            self.name,
            self.kind,
            self.dag.len(),
            self.dag.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DagBuilder, Opcode};

    #[test]
    fn unit_wraps_graph() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::IntAlu);
        let unit = SchedulingUnit::new("t", b.build().unwrap()).with_kind(RegionKind::Trace);
        assert_eq!(unit.name(), "t");
        assert_eq!(unit.kind(), RegionKind::Trace);
        assert_eq!(unit.dag().len(), 1);
        let shared = unit.dag_arc();
        assert_eq!(shared.len(), 1);
        assert!(unit.to_string().contains("trace"));
    }

    #[test]
    fn region_kind_display() {
        assert_eq!(RegionKind::BasicBlock.to_string(), "basic block");
        assert_eq!(RegionKind::Hyperblock.to_string(), "hyperblock");
        assert_eq!(RegionKind::default(), RegionKind::BasicBlock);
    }
}
