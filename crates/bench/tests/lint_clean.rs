//! Acceptance gate: the fuzzer's generated graphs are lint-clean.
//!
//! The convergent-analysis linter must produce **zero diagnostics** —
//! not even notes — on every graph of the seed-0 fuzz stream, across
//! all machine presets the stream draws. The fuzz binary enforces the
//! same invariant at sweep time (any diagnostic is reported under the
//! pseudo-scheduler `lint`); this test pins it in `cargo test` where
//! regressions in either the generators or the linter show up without
//! running a sweep.

use convergent_analysis::{lint_unit, LintOptions};
use convergent_bench::cases::case_stream;
use convergent_bench::parallel::{default_jobs, run_cells};

#[test]
fn two_thousand_seed0_fuzz_graphs_lint_clean() {
    let cases = case_stream(0, 2000, None, None, convergent_bench::cases::MACHINES);
    let reports = run_cells(&cases, default_jobs(), |case| {
        let (machine, unit) = case.instantiate();
        let report = lint_unit(&unit, &machine, LintOptions::default());
        if report.is_empty() {
            None
        } else {
            let rendered: Vec<String> = report
                .diagnostics()
                .iter()
                .map(ToString::to_string)
                .collect();
            Some(format!(
                "case {} ({} size {} on {}): {}",
                case.id,
                case.family,
                case.size,
                case.machine_spec,
                rendered.join("; ")
            ))
        }
    });
    let dirty: Vec<String> = reports.into_iter().flatten().collect();
    assert!(
        dirty.is_empty(),
        "{} of 2000 generated graphs produced diagnostics:\n{}",
        dirty.len(),
        dirty.join("\n")
    );
}
