//! Linear-algebra solver kernels: cholesky and vpenta.

use convergent_ir::{Opcode, SchedulingUnit};

use crate::kernel::Kb;

/// Parameters for [`cholesky`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CholeskyParams {
    /// Memory banks / clusters (columns are interleaved across them).
    pub n_banks: u16,
    /// Rows below the diagonal updated in the scheduled region.
    pub rows: usize,
}

impl CholeskyParams {
    /// A small instance.
    #[must_use]
    pub fn small() -> Self {
        CholeskyParams {
            n_banks: 4,
            rows: 8,
        }
    }

    /// Instance sized for an `n_banks`-cluster machine.
    #[must_use]
    pub fn for_banks(n_banks: u16) -> Self {
        CholeskyParams { n_banks, rows: 8 }
    }
}

impl Default for CholeskyParams {
    fn default() -> Self {
        CholeskyParams::small()
    }
}

/// `cholesky` (Spec92 Nasa7): one step of the factorization — square
/// root of the pivot, scale the column below it, then the symmetric
/// rank-1 update of the trailing rows. The sqrt→divide chain forms a
/// serial spine; the updates fan out in parallel, banked by row.
#[must_use]
pub fn cholesky(params: CholeskyParams) -> SchedulingUnit {
    let mut kb = Kb::new(params.n_banks);
    // Pivot: l[0][0] = sqrt(a[0][0]).
    let a00 = kb.load(0, "a[0][0]");
    let pivot = kb.op(Opcode::FSqrt, &[a00]);
    kb.store(0, "l[0][0]", pivot);
    // Column scale: l[r][0] = a[r][0] / pivot.
    let mut col = Vec::with_capacity(params.rows);
    for r in 1..=params.rows as i64 {
        let arc = kb.load(r, &format!("a[{r}][0]"));
        let l = kb.op(Opcode::FDiv, &[arc, pivot]);
        kb.store(r, &format!("l[{r}][0]"), l);
        col.push(l);
    }
    // Rank-1 update of the trailing submatrix (upper triangle of the
    // scheduled block): a[r][c] -= l[r][0] · l[c][0].
    for r in 1..=params.rows {
        for c in 1..=r {
            let arc = kb.load(r as i64, &format!("a[{r}][{c}]"));
            let prod = kb.op(Opcode::FMul, &[col[r - 1], col[c - 1]]);
            let upd = kb.op(Opcode::FAdd, &[arc, prod]);
            kb.store(r as i64, &format!("a'[{r}][{c}]"), upd);
        }
    }
    kb.finish("cholesky")
}

/// Parameters for [`vpenta`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VpentaParams {
    /// Memory banks / clusters (vector lanes interleaved across them).
    pub n_banks: u16,
    /// Independent lanes per bank.
    pub lanes_per_bank: usize,
}

impl VpentaParams {
    /// A small instance.
    #[must_use]
    pub fn small() -> Self {
        VpentaParams {
            n_banks: 4,
            lanes_per_bank: 2,
        }
    }

    /// Instance sized for an `n_banks`-cluster machine.
    #[must_use]
    pub fn for_banks(n_banks: u16) -> Self {
        VpentaParams {
            n_banks,
            lanes_per_bank: 2,
        }
    }
}

impl Default for VpentaParams {
    fn default() -> Self {
        VpentaParams::small()
    }
}

/// `vpenta` (Spec92 Nasa7): simultaneous inversion of pentadiagonal
/// systems, vectorized across independent lanes. Each lane runs the
/// same ~20-op elimination step over its five diagonals — wide, with
/// per-lane chains and fully banked memory traffic.
#[must_use]
pub fn vpenta(params: VpentaParams) -> SchedulingUnit {
    let mut kb = Kb::new(params.n_banks);
    for lane in 0..(i64::from(params.n_banks) * params.lanes_per_bank as i64) {
        // Load the five diagonals and the rhs for this lane.
        let a = kb.load(lane, &format!("a[{lane}]"));
        let b = kb.load(lane, &format!("b[{lane}]"));
        let c = kb.load(lane, &format!("c[{lane}]"));
        let d = kb.load(lane, &format!("d[{lane}]"));
        let e = kb.load(lane, &format!("e[{lane}]"));
        let f = kb.load(lane, &format!("f[{lane}]"));
        // Forward elimination step (one sweep of the recurrence):
        // rld = 1/c; substitute into the two rows below.
        let rld = kb.op(Opcode::FDiv, &[c]);
        let m1 = kb.op(Opcode::FMul, &[b, rld]);
        let m2 = kb.op(Opcode::FMul, &[a, rld]);
        let d1 = kb.op(Opcode::FMul, &[m1, d]);
        let e1 = kb.op(Opcode::FMul, &[m1, e]);
        let f1 = kb.op(Opcode::FMul, &[m1, f]);
        let d2 = kb.op(Opcode::FMul, &[m2, d]);
        let e2 = kb.op(Opcode::FMul, &[m2, e]);
        let f2 = kb.op(Opcode::FMul, &[m2, f]);
        let nc1 = kb.op(Opcode::FAdd, &[c, d1]);
        let nd1 = kb.op(Opcode::FAdd, &[d, e1]);
        let nf1 = kb.op(Opcode::FAdd, &[f, f1]);
        let nc2 = kb.op(Opcode::FAdd, &[c, d2]);
        let nd2 = kb.op(Opcode::FAdd, &[d, e2]);
        let nf2 = kb.op(Opcode::FAdd, &[f, f2]);
        kb.store(lane, &format!("c'[{lane}]"), nc1);
        kb.store(lane, &format!("d'[{lane}]"), nd1);
        kb.store(lane, &format!("f'[{lane}]"), nf1);
        kb.store(lane, &format!("c''[{lane}]"), nc2);
        kb.store(lane, &format!("d''[{lane}]"), nd2);
        kb.store(lane, &format!("f''[{lane}]"), nf2);
    }
    kb.finish("vpenta")
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::ShapeStats;

    #[test]
    fn cholesky_has_sqrt_div_spine() {
        let unit = cholesky(CholeskyParams::small());
        let ops: Vec<_> = unit.dag().instrs().iter().map(|i| i.opcode()).collect();
        assert!(ops.contains(&Opcode::FSqrt));
        assert_eq!(
            ops.iter().filter(|&&o| o == Opcode::FDiv).count(),
            8 // one divide per scaled row
        );
        // The sqrt/div spine makes the latency-weighted critical path
        // long relative to the graph's unit-latency height.
        let lat = convergent_ir::TimeAnalysis::compute(unit.dag(), |i| match i.opcode() {
            Opcode::FSqrt | Opcode::FDiv => 23,
            _ => 1,
        });
        assert!(lat.critical_path_length() > 48);
    }

    #[test]
    fn cholesky_updates_fan_out() {
        let unit = cholesky(CholeskyParams::small());
        let s = ShapeStats::compute(unit.dag(), |_| 1);
        assert!(s.max_width() >= 8, "{s}");
    }

    #[test]
    fn vpenta_lanes_are_independent() {
        let unit = vpenta(VpentaParams::small());
        let s = ShapeStats::compute(unit.dag(), |_| 1);
        // 8 independent lanes: very fat.
        assert!(s.avg_parallelism() > 6.0, "{s}");
        assert!(s.preplaced_fraction() > 0.4, "{s}");
    }

    #[test]
    fn vpenta_scales_with_banks() {
        assert!(
            vpenta(VpentaParams::for_banks(16)).dag().len()
                > vpenta(VpentaParams::for_banks(4)).dag().len() * 2
        );
    }
}
