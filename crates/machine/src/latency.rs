//! Operation latency tables.

use convergent_ir::{Instruction, OpClass};

/// Per-operation-class latencies in cycles.
///
/// The default table follows the MIPS R4000 regime both the Raw
/// prototype and the Chorus simulator base their instruction sets on:
/// single-cycle integer ALU, 2-cycle multiply, long divides, 3-cycle
/// loads, and multi-cycle floating point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyTable {
    entries: [u32; OpClass::ALL.len()],
}

impl LatencyTable {
    /// The R4000-flavoured default used by both machine presets.
    #[must_use]
    pub const fn r4000() -> Self {
        let mut entries = [1u32; OpClass::ALL.len()];
        // Indices follow OpClass::ALL order.
        entries[Self::idx(OpClass::IntAlu)] = 1;
        entries[Self::idx(OpClass::IntMul)] = 2;
        entries[Self::idx(OpClass::IntDiv)] = 12;
        entries[Self::idx(OpClass::Load)] = 3;
        entries[Self::idx(OpClass::Store)] = 1;
        entries[Self::idx(OpClass::FAdd)] = 4;
        entries[Self::idx(OpClass::FMul)] = 7;
        entries[Self::idx(OpClass::FDiv)] = 23;
        entries[Self::idx(OpClass::Branch)] = 1;
        entries[Self::idx(OpClass::Copy)] = 1;
        entries[Self::idx(OpClass::Send)] = 0;
        entries[Self::idx(OpClass::Recv)] = 0;
        LatencyTable { entries }
    }

    /// A table where every class takes one cycle — convenient for unit
    /// tests and for reproducing the paper's Figure 1 example, where
    /// all operations are single-cycle.
    #[must_use]
    pub const fn uniform(cycles: u32) -> Self {
        LatencyTable {
            entries: [cycles; OpClass::ALL.len()],
        }
    }

    const fn idx(class: OpClass) -> usize {
        // OpClass::ALL order; kept in sync by the exhaustiveness test.
        match class {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::IntDiv => 2,
            OpClass::Load => 3,
            OpClass::Store => 4,
            OpClass::FAdd => 5,
            OpClass::FMul => 6,
            OpClass::FDiv => 7,
            OpClass::Branch => 8,
            OpClass::Copy => 9,
            OpClass::Send => 10,
            OpClass::Recv => 11,
        }
    }

    /// Latency of operation class `class` in cycles.
    #[must_use]
    pub const fn get(&self, class: OpClass) -> u32 {
        self.entries[Self::idx(class)]
    }

    /// Overrides the latency of one class (builder-style).
    #[must_use]
    pub const fn with(mut self, class: OpClass, cycles: u32) -> Self {
        self.entries[Self::idx(class)] = cycles;
        self
    }

    /// Latency of a concrete instruction.
    #[must_use]
    pub fn of(&self, instr: &Instruction) -> u32 {
        self.get(instr.class())
    }
}

impl Default for LatencyTable {
    fn default() -> Self {
        LatencyTable::r4000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::Opcode;

    #[test]
    fn r4000_values() {
        let t = LatencyTable::r4000();
        assert_eq!(t.get(OpClass::IntAlu), 1);
        assert_eq!(t.get(OpClass::IntMul), 2);
        assert_eq!(t.get(OpClass::Load), 3);
        assert_eq!(t.get(OpClass::FAdd), 4);
        assert_eq!(t.get(OpClass::FMul), 7);
        assert_eq!(t.get(OpClass::FDiv), 23);
        assert_eq!(t.get(OpClass::Send), 0);
    }

    #[test]
    fn idx_covers_all_classes_in_order() {
        for (k, class) in OpClass::ALL.iter().enumerate() {
            assert_eq!(LatencyTable::idx(*class), k, "{class:?}");
        }
    }

    #[test]
    fn uniform_and_with() {
        let t = LatencyTable::uniform(1).with(OpClass::FDiv, 10);
        assert_eq!(t.get(OpClass::IntAlu), 1);
        assert_eq!(t.get(OpClass::FDiv), 10);
    }

    #[test]
    fn of_instruction() {
        let t = LatencyTable::r4000();
        assert_eq!(t.of(&Instruction::new(Opcode::Load)), 3);
        assert_eq!(t.of(&Instruction::new(Opcode::FSqrt)), 23);
        assert_eq!(t.of(&Instruction::new(Opcode::Const)), 1);
    }

    #[test]
    fn default_is_r4000() {
        assert_eq!(LatencyTable::default(), LatencyTable::r4000());
    }
}
