//! Stencil kernels: jacobi, life, swim, rbsorf, tomcatv.
//!
//! Row-banked 2-D loops. Each unrolled row's loads touch the rows
//! above and below — preplaced on *neighboring* clusters — so the
//! dependence graphs have the "mostly local with structured nearest-
//! neighbor communication" shape that makes Raw-style mesh machines
//! interesting.

use convergent_ir::{InstrId, Opcode, SchedulingUnit};

use crate::kernel::Kb;

/// Parameters shared by the row-banked stencils.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StencilParams {
    /// Memory banks / clusters; rows are interleaved across them and
    /// the row loop is unrolled this many times.
    pub n_banks: u16,
    /// Points computed per row in the scheduled region.
    pub points_per_row: usize,
}

impl StencilParams {
    /// A small instance.
    #[must_use]
    pub fn small() -> Self {
        StencilParams {
            n_banks: 4,
            points_per_row: 4,
        }
    }

    /// Instance sized for an `n_banks`-cluster machine.
    #[must_use]
    pub fn for_banks(n_banks: u16) -> Self {
        StencilParams {
            n_banks,
            points_per_row: 4,
        }
    }
}

impl Default for StencilParams {
    fn default() -> Self {
        StencilParams::small()
    }
}

/// `jacobi`: the Raw benchmark suite's 5-point relaxation,
/// `out[i][j] = 0.25·(in[i−1][j] + in[i+1][j] + in[i][j−1] + in[i][j+1])`.
#[must_use]
pub fn jacobi(params: StencilParams) -> SchedulingUnit {
    let mut kb = Kb::new(params.n_banks);
    let quarter = kb.constant("0.25");
    for i in 0..i64::from(params.n_banks) {
        for j in 0..params.points_per_row {
            let up = kb.load_cached(i - 1, &format!("in[{}][{j}]", i - 1));
            let down = kb.load_cached(i + 1, &format!("in[{}][{j}]", i + 1));
            let left = kb.load_cached(i, &format!("in[{i}][{}]", j as i64 - 1));
            let right = kb.load_cached(i, &format!("in[{i}][{}]", j + 1));
            let s1 = kb.op(Opcode::FAdd, &[up, down]);
            let s2 = kb.op(Opcode::FAdd, &[left, right]);
            let s3 = kb.op(Opcode::FAdd, &[s1, s2]);
            let avg = kb.op(Opcode::FMul, &[s3, quarter]);
            kb.store(i, &format!("out[{i}][{j}]"), avg);
        }
    }
    kb.finish("jacobi")
}

/// `life`: Conway's game of life from the Raw benchmark suite — an
/// 8-neighbor integer stencil with comparison logic. Very fat, pure
/// integer.
#[must_use]
pub fn life(params: StencilParams) -> SchedulingUnit {
    let mut kb = Kb::new(params.n_banks);
    for i in 0..i64::from(params.n_banks) {
        for j in 0..params.points_per_row {
            let mut neighbors: Vec<InstrId> = Vec::with_capacity(8);
            for di in -1..=1i64 {
                for dj in -1..=1i64 {
                    if di == 0 && dj == 0 {
                        continue;
                    }
                    neighbors
                        .push(kb.load_cached(i + di, &format!("g[{}][{}]", i + di, j as i64 + dj)));
                }
            }
            let count = kb.reduce_tree(Opcode::IntAlu, &neighbors);
            let self_cell = kb.load_cached(i, &format!("g[{i}][{j}]"));
            // alive = (count == 3) | (self & (count == 2))
            let is3 = kb.op(Opcode::IntAlu, &[count]);
            let is2 = kb.op(Opcode::IntAlu, &[count]);
            let keep = kb.op(Opcode::Logic, &[self_cell, is2]);
            let alive = kb.op(Opcode::Logic, &[is3, keep]);
            kb.store(i, &format!("out[{i}][{j}]"), alive);
        }
    }
    kb.finish("life")
}

/// `swim`: the Spec95 shallow-water kernel — three coupled 5-point
/// stencils (u, v, p fields) with FP multiplies, per point.
#[must_use]
pub fn swim(params: StencilParams) -> SchedulingUnit {
    let mut kb = Kb::new(params.n_banks);
    let c1 = kb.constant("cu");
    let c2 = kb.constant("cv");
    for i in 0..i64::from(params.n_banks) {
        for j in 0..params.points_per_row {
            // u-momentum: needs p from the east and v cross-terms.
            let p_e = kb.load_cached(i, &format!("p[{i}][{}]", j + 1));
            let p_c = kb.load_cached(i, &format!("p[{i}][{j}]"));
            let v_n = kb.load_cached(i - 1, &format!("v[{}][{j}]", i - 1));
            let v_s = kb.load_cached(i + 1, &format!("v[{}][{j}]", i + 1));
            let dp = kb.op(Opcode::FAdd, &[p_e, p_c]);
            let dv = kb.op(Opcode::FAdd, &[v_n, v_s]);
            let cor = kb.op(Opcode::FMul, &[dv, c1]);
            let unew = kb.op(Opcode::FAdd, &[dp, cor]);
            kb.store(i, &format!("unew[{i}][{j}]"), unew);
            // v-momentum, mirrored.
            let p_n = kb.load_cached(i - 1, &format!("p[{}][{j}]", i - 1));
            let u_w = kb.load_cached(i, &format!("u[{i}][{}]", j as i64 - 1));
            let u_e = kb.load_cached(i, &format!("u[{i}][{}]", j + 1));
            let dp2 = kb.op(Opcode::FAdd, &[p_n, p_c]);
            let du = kb.op(Opcode::FAdd, &[u_w, u_e]);
            let cor2 = kb.op(Opcode::FMul, &[du, c2]);
            let vnew = kb.op(Opcode::FAdd, &[dp2, cor2]);
            kb.store(i, &format!("vnew[{i}][{j}]"), vnew);
            // Continuity: p update from both.
            let div = kb.op(Opcode::FAdd, &[unew, vnew]);
            let pnew = kb.op(Opcode::FAdd, &[p_c, div]);
            kb.store(i, &format!("pnew[{i}][{j}]"), pnew);
        }
    }
    kb.finish("swim")
}

/// `rbsorf`: red-black successive over-relaxation. Like jacobi but
/// each point blends the stencil average with the old value through
/// the relaxation factor ω, lengthening the per-point chain.
#[must_use]
pub fn rbsorf(params: StencilParams) -> SchedulingUnit {
    let mut kb = Kb::new(params.n_banks);
    let omega = kb.constant("omega");
    let quarter = kb.constant("0.25");
    for i in 0..i64::from(params.n_banks) {
        for j in 0..params.points_per_row {
            // Red points only: (i + j) even in the full code; the
            // scheduled region sees every point it touches.
            let up = kb.load_cached(i - 1, &format!("a[{}][{j}]", i - 1));
            let down = kb.load_cached(i + 1, &format!("a[{}][{j}]", i + 1));
            let left = kb.load_cached(i, &format!("a[{i}][{}]", j as i64 - 1));
            let right = kb.load_cached(i, &format!("a[{i}][{}]", j + 1));
            let center = kb.load_cached(i, &format!("a[{i}][{j}]"));
            let s1 = kb.op(Opcode::FAdd, &[up, down]);
            let s2 = kb.op(Opcode::FAdd, &[left, right]);
            let s3 = kb.op(Opcode::FAdd, &[s1, s2]);
            let avg = kb.op(Opcode::FMul, &[s3, quarter]);
            let resid = kb.op(Opcode::FAdd, &[avg, center]);
            let scaled = kb.op(Opcode::FMul, &[resid, omega]);
            let new = kb.op(Opcode::FAdd, &[center, scaled]);
            kb.store(i, &format!("a[{i}][{j}]"), new);
        }
    }
    kb.finish("rbsorf")
}

/// `tomcatv`: the Spec95 mesh-generation kernel. Per point it forms
/// first and second differences of the x/y coordinate arrays, then a
/// longer arithmetic chain (including a divide) for the residuals —
/// more work and more serialization per point than the relaxations.
#[must_use]
pub fn tomcatv(params: StencilParams) -> SchedulingUnit {
    let mut kb = Kb::new(params.n_banks);
    for i in 0..i64::from(params.n_banks) {
        for j in 0..params.points_per_row {
            let mut diffs = Vec::new();
            for arr in ["x", "y"] {
                let n = kb.load_cached(i - 1, &format!("{arr}[{}][{j}]", i - 1));
                let s = kb.load_cached(i + 1, &format!("{arr}[{}][{j}]", i + 1));
                let w = kb.load_cached(i, &format!("{arr}[{i}][{}]", j as i64 - 1));
                let e = kb.load_cached(i, &format!("{arr}[{i}][{}]", j + 1));
                let c = kb.load_cached(i, &format!("{arr}[{i}][{j}]"));
                let dx = kb.op(Opcode::FAdd, &[e, w]); // first differences
                let dy = kb.op(Opcode::FAdd, &[n, s]);
                let two_c = kb.op(Opcode::FMul, &[c]);
                let d2x = kb.op(Opcode::FAdd, &[dx, two_c]); // second differences
                let d2y = kb.op(Opcode::FAdd, &[dy, two_c]);
                diffs.push((dx, dy, d2x, d2y));
            }
            let (xx, xy, x2, _) = diffs[0];
            let (yx, yy, y2, _) = diffs[1];
            // Jacobian-ish combination: a = xx² + yx², b = xx·xy + yx·yy ...
            let a1 = kb.op(Opcode::FMul, &[xx, xx]);
            let a2 = kb.op(Opcode::FMul, &[yx, yx]);
            let a = kb.op(Opcode::FAdd, &[a1, a2]);
            let b1 = kb.op(Opcode::FMul, &[xx, xy]);
            let b2 = kb.op(Opcode::FMul, &[yx, yy]);
            let b = kb.op(Opcode::FAdd, &[b1, b2]);
            let r1 = kb.op(Opcode::FMul, &[a, x2]);
            let r2 = kb.op(Opcode::FMul, &[b, y2]);
            let rnum = kb.op(Opcode::FAdd, &[r1, r2]);
            let rden = kb.op(Opcode::FAdd, &[a, b]);
            let res = kb.op(Opcode::FDiv, &[rnum, rden]);
            kb.store(i, &format!("rx[{i}][{j}]"), res);
        }
    }
    kb.finish("tomcatv")
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::{ClusterId, ShapeStats};

    #[test]
    fn jacobi_touches_neighbor_banks() {
        let unit = jacobi(StencilParams::small());
        // Row 0's stencil loads row -1, banked on cluster 3 (mod 4).
        let homes: std::collections::HashSet<_> = unit
            .dag()
            .preplaced()
            .map(|i| unit.dag().instr(i).preplacement().unwrap())
            .collect();
        assert!(homes.contains(&ClusterId::new(3)));
        assert_eq!(homes.len(), 4);
    }

    #[test]
    fn stencils_are_fat() {
        for unit in [
            jacobi(StencilParams::small()),
            life(StencilParams::small()),
            swim(StencilParams::small()),
            rbsorf(StencilParams::small()),
        ] {
            let s = ShapeStats::compute(unit.dag(), |_| 1);
            assert!(s.is_fat(), "{}: {s}", unit.name());
        }
    }

    #[test]
    fn life_is_integer_and_biggest() {
        let unit = life(StencilParams::small());
        assert!(unit.dag().instrs().iter().all(|i| !i.opcode().is_float()));
        assert!(unit.dag().len() > 200);
    }

    #[test]
    fn tomcatv_has_divides_on_the_path() {
        let unit = tomcatv(StencilParams::small());
        assert!(unit
            .dag()
            .instrs()
            .iter()
            .any(|i| i.opcode() == Opcode::FDiv));
        let time = convergent_ir::TimeAnalysis::compute(unit.dag(), |_| 1);
        assert!(time.critical_path_length() >= 7);
    }

    #[test]
    fn sizes_scale_with_banks() {
        let small = swim(StencilParams::for_banks(2));
        let large = swim(StencilParams::for_banks(8));
        assert!(large.dag().len() >= small.dag().len() * 3);
    }
}
