//! Ablations beyond the paper: how sensitive is convergent scheduling
//! to its design choices? Each section isolates one knob DESIGN.md
//! calls out and sweeps it over the Raw suite at 16 tiles.
//!
//! ```text
//! cargo run --release -p convergent-bench --bin ablations
//! ```

use convergent_bench::{geomean, speedup};
use convergent_core::passes::{
    Comm, EmphCp, InitTime, LevelDistribute, LoadBalance, Path, PathProp, Place, PlaceProp,
};
use convergent_core::{ConvergentScheduler, Sequence};
use convergent_machine::Machine;
use convergent_workloads::{layered, raw_suite, LayeredParams};

fn raw_seq_with_place_factor(place: f64) -> Sequence {
    Sequence::new()
        .with(InitTime::new())
        .with(PlaceProp::new())
        .with(LoadBalance::new())
        .with(Place::new().with_factor(place))
        .with(Path::new())
        .with(PathProp::new())
        .with(LevelDistribute::new())
        .with(PathProp::new())
        .with(Comm::new())
        .with(PathProp::new())
        .with(EmphCp::new())
}

fn suite_geomean(sched: &ConvergentScheduler, machine: &Machine) -> f64 {
    let sp: Vec<f64> = raw_suite(16)
        .iter()
        .map(|u| speedup(sched, u, machine).expect("suite schedules"))
        .collect();
    geomean(&sp)
}

fn main() {
    let machine = Machine::raw(16);

    println!("== ablation 1: PLACE boost factor (paper: 100) ==");
    for factor in [2.0, 10.0, 100.0, 1000.0] {
        let sched =
            ConvergentScheduler::new(raw_seq_with_place_factor(factor)).with_time_priorities(false);
        println!(
            "  factor {factor:>6}: geomean speedup {:.3}",
            suite_geomean(&sched, &machine)
        );
    }

    println!();
    println!("== ablation 2: drop one pass from the Raw sequence ==");
    let full = ConvergentScheduler::raw_default().with_time_priorities(false);
    println!("  full sequence : {:.3}", suite_geomean(&full, &machine));
    let droppable = [
        "PLACEPROP",
        "LOAD",
        "PLACE",
        "PATH",
        "LEVEL",
        "COMM",
        "PATHPROP",
    ];
    for drop_name in &droppable {
        let mut seq = Sequence::new();
        for name in Sequence::raw().names() {
            if name == *drop_name {
                continue;
            }
            match name {
                "INITTIME" => seq.push(InitTime::new()),
                "PLACEPROP" => seq.push(PlaceProp::new()),
                "LOAD" => seq.push(LoadBalance::new()),
                "PLACE" => seq.push(Place::new()),
                "PATH" => seq.push(Path::new()),
                "PATHPROP" => seq.push(PathProp::new()),
                "LEVEL" => seq.push(LevelDistribute::new()),
                "COMM" => seq.push(Comm::new()),
                "EMPHCP" => seq.push(EmphCp::new()),
                other => unreachable!("unknown pass {other}"),
            }
        }
        let sched = ConvergentScheduler::new(seq).with_time_priorities(false);
        println!(
            "  drop {drop_name:<10}: {:.3}",
            suite_geomean(&sched, &machine)
        );
    }

    println!();
    println!("== ablation 3: preplacement density (random layered DAGs, 16 tiles) ==");
    println!("  (speedup of the convergent scheduler as congruence information grows)");
    for density in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let unit = layered(
            LayeredParams::new(600, 11)
                .with_width(16)
                .with_preplacement(density, 16),
        );
        let sched = ConvergentScheduler::raw_default();
        let sp = speedup(&sched, &unit, &machine).expect("schedules");
        println!("  density {density:>4.2}: speedup {sp:.3}");
    }

    println!();
    println!("== ablation 4: iterating the COMM/LOAD tail (paper feature 5) ==");
    println!("  (\"the framework allows a heuristic to be applied multiple times\")");
    for repeats in [1usize, 2, 3, 4] {
        let mut seq = Sequence::new()
            .with(InitTime::new())
            .with(PlaceProp::new())
            .with(LoadBalance::new())
            .with(Place::new())
            .with(Path::new())
            .with(PathProp::new())
            .with(LevelDistribute::new());
        for _ in 0..repeats {
            seq.push(Comm::new());
            seq.push(LoadBalance::new());
        }
        seq.push(EmphCp::new());
        let sched = ConvergentScheduler::new(seq).with_time_priorities(false);
        println!(
            "  {repeats}× COMM+LOAD: geomean speedup {:.3}",
            suite_geomean(&sched, &machine)
        );
    }

    println!();
    println!("== ablation 5: LEVEL granularity g (paper: 4 on Raw) ==");
    for g in [1u32, 2, 4, 8, 16] {
        let seq = Sequence::new()
            .with(InitTime::new())
            .with(PlaceProp::new())
            .with(LoadBalance::new())
            .with(Place::new())
            .with(Path::new())
            .with(PathProp::new())
            .with(LevelDistribute::new().with_granularity(g))
            .with(PathProp::new())
            .with(Comm::new())
            .with(PathProp::new())
            .with(EmphCp::new());
        let sched = ConvergentScheduler::new(seq).with_time_priorities(false);
        println!(
            "  g = {g:>2}: geomean speedup {:.3}",
            suite_geomean(&sched, &machine)
        );
    }
}
