//! Property tests for `decompose_with`: whatever the graph family and
//! region policy, the decomposition is a *true partition* — every
//! instruction lands in exactly one shard with consistent local/global
//! id maps, the cross-edge list is exactly the set of edges whose
//! endpoints land in different shards, every cross edge points from an
//! earlier shard to a later one (the quotient order is topological),
//! and every other edge survives inside exactly one shard's local DAG.
//!
//! The generator sweeps four families — chains (connected, heavy on
//! articulation vertices), interleaved strided chains (several weakly-
//! connected components), fan-out stars (one articulation hub), and
//! loose dust — each salted with random extra forward edges, under
//! shard budgets from trivial to generous and region-size targets small
//! enough to force recursive cuts on almost every case.

use convergent_ir::{decompose_with, Dag, DagBuilder, InstrId, Opcode, RegionPolicy};
use proptest::prelude::*;

const CASES: u32 = if cfg!(miri) { 8 } else { 96 };
const MAX_LEN: usize = 60;

/// Builds one graph from fixed-size random material.
fn build(family: u8, n: usize, extra: &[(usize, usize)]) -> Dag {
    let mut b = DagBuilder::with_capacity(n);
    let ids: Vec<InstrId> = (0..n)
        .map(|k| {
            b.instr(match k % 7 {
                0 => Opcode::Load,
                3 => Opcode::Store,
                5 => Opcode::FMul,
                _ => Opcode::IntAlu,
            })
        })
        .collect();
    match family % 4 {
        // Chain backbone: connected, every interior vertex articulates.
        0 => {
            for k in 1..n {
                b.edge(ids[k - 1], ids[k]).expect("fresh ids");
            }
        }
        // Three interleaved strided chains: 3 components for n > 3.
        1 => {
            for k in 3..n {
                b.edge(ids[k - 3], ids[k]).expect("fresh ids");
            }
        }
        // Fan-out star: one articulation hub feeding everything.
        2 => {
            for k in 1..n {
                b.edge(ids[0], ids[k]).expect("fresh ids");
            }
        }
        // Dust: no backbone, only the random extras below.
        _ => {}
    }
    for &(a, z) in extra {
        let (a, z) = (a % n, z % n);
        if a < z {
            let _ = b.edge_dedup(ids[a], ids[z]);
        }
    }
    b.build().expect("edges point forward")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn decompose_is_a_true_partition(
        family in 0..4u8,
        n in 1usize..MAX_LEN,
        extra in proptest::collection::vec((0usize..MAX_LEN, 0usize..MAX_LEN), 0..MAX_LEN),
        max_shards in 1usize..10,
        region_size in 1usize..24,
    ) {
        let dag = build(family, n, &extra);
        let policy = RegionPolicy::new(max_shards).with_region_size(region_size);
        let dec = decompose_with(&dag, &policy);

        // Every instruction lands in exactly one shard, and the
        // local/global id maps agree in both directions.
        let mut seen = vec![0usize; dag.len()];
        for (k, shard) in dec.shards().iter().enumerate() {
            prop_assert_eq!(shard.dag().len(), shard.len());
            prop_assert!(!shard.is_empty(), "shard {} is empty", k);
            for (local, &global) in shard.to_global().iter().enumerate() {
                seen[global.index()] += 1;
                prop_assert_eq!(dec.shard_of(global), k);
                prop_assert_eq!(dec.local_id(global).index(), local);
                prop_assert_eq!(
                    shard.global_id(InstrId::new(u32::try_from(local).unwrap())),
                    global
                );
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "coverage counts {:?}", seen);
        if max_shards <= 1 {
            prop_assert!(dec.is_trivial(), "max_shards=1 must not decompose");
        }

        // The cross-edge list is exactly the set of edges between
        // shards, each pointing from an earlier shard to a later one;
        // all remaining edges survive inside their shard's local DAG.
        let mut cross = 0usize;
        for e in dag.edges() {
            let (a, z) = (dec.shard_of(e.src), dec.shard_of(e.dst));
            if a == z {
                continue;
            }
            cross += 1;
            prop_assert!(
                a < z,
                "cross edge {} -> {} goes backward across shards {} -> {}",
                e.src, e.dst, a, z
            );
            prop_assert!(
                dec.cross_edges().contains(&e),
                "edge {} -> {} crosses shards but is missing from cross_edges()",
                e.src, e.dst
            );
        }
        prop_assert_eq!(cross, dec.cross_edges().len());
        let internal: usize = dec.shards().iter().map(|s| s.dag().edge_count()).sum();
        prop_assert_eq!(internal + cross, dag.edge_count());
    }
}
