//! Property tests for the preference map: the paper's Section 3
//! invariants must survive arbitrary sequences of the basic
//! operations.

use convergent_scheduling::core::PreferenceMap;
use convergent_scheduling::ir::{ClusterId, InstrId};
use proptest::prelude::*;

/// One basic operation on the map.
#[derive(Clone, Debug)]
enum Op {
    Scale { i: usize, c: usize, t: usize, f: f64 },
    ScaleCluster { i: usize, c: usize, f: f64 },
    ScaleTime { i: usize, t: usize, f: f64 },
    Add { i: usize, c: usize, t: usize, d: f64 },
    Normalize { i: usize },
    SetMarginal { i: usize, target: Vec<f64> },
}

fn op_strategy(n_instrs: usize, n_clusters: usize, n_slots: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_instrs, 0..n_clusters, 0..n_slots, 0.0f64..50.0)
            .prop_map(|(i, c, t, f)| Op::Scale { i, c, t, f }),
        (0..n_instrs, 0..n_clusters, 0.0f64..50.0)
            .prop_map(|(i, c, f)| Op::ScaleCluster { i, c, f }),
        (0..n_instrs, 0..n_slots, 0.0f64..50.0).prop_map(|(i, t, f)| Op::ScaleTime { i, t, f }),
        (0..n_instrs, 0..n_clusters, 0..n_slots, -1.0f64..1.0)
            .prop_map(|(i, c, t, d)| Op::Add { i, c, t, d }),
        (0..n_instrs).prop_map(|i| Op::Normalize { i }),
        (
            0..n_instrs,
            proptest::collection::vec(0.0f64..1.0, n_clusters)
        )
            .prop_map(|(i, target)| Op::SetMarginal { i, target }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_survive_arbitrary_operations(
        ops in proptest::collection::vec(op_strategy(4, 3, 5), 1..60)
    ) {
        let mut w = PreferenceMap::new(4, 3, 5);
        for op in ops {
            match op {
                Op::Scale { i, c, t, f } => {
                    w.scale(InstrId::new(i as u32), ClusterId::new(c as u16), t as u32, f);
                }
                Op::ScaleCluster { i, c, f } => {
                    w.scale_cluster(InstrId::new(i as u32), ClusterId::new(c as u16), f);
                }
                Op::ScaleTime { i, t, f } => {
                    w.scale_time(InstrId::new(i as u32), t as u32, f);
                }
                Op::Add { i, c, t, d } => {
                    w.add(InstrId::new(i as u32), ClusterId::new(c as u16), t as u32, d);
                }
                Op::Normalize { i } => w.normalize(InstrId::new(i as u32)),
                Op::SetMarginal { i, target } => {
                    w.set_cluster_marginal(InstrId::new(i as u32), &target);
                }
            }
        }
        // Normalization must always restore the paper's invariants.
        w.normalize_all();
        w.assert_invariants(1e-6);
    }

    #[test]
    fn preferred_cluster_matches_marginal_argmax(
        scales in proptest::collection::vec((0usize..3, 0usize..4, 0.1f64..20.0), 1..20)
    ) {
        let mut w = PreferenceMap::new(3, 4, 3);
        for (i, c, f) in scales {
            w.scale_cluster(InstrId::new(i as u32), ClusterId::new(c as u16), f);
        }
        for i in 0..3u32 {
            let pref = w.preferred_cluster(InstrId::new(i));
            let best = (0..4u16)
                .map(|c| w.cluster_weight(InstrId::new(i), ClusterId::new(c)))
                .fold(f64::MIN, f64::max);
            let got = w.cluster_weight(InstrId::new(i), pref);
            prop_assert!((got - best).abs() < 1e-9, "i{i}: {got} vs {best}");
        }
    }

    #[test]
    fn confidence_is_at_least_one(
        scales in proptest::collection::vec((0usize..2, 0usize..3, 0.1f64..20.0), 0..16)
    ) {
        let mut w = PreferenceMap::new(2, 3, 4);
        for (i, c, f) in scales {
            w.scale_cluster(InstrId::new(i as u32), ClusterId::new(c as u16), f);
        }
        for i in 0..2u32 {
            // Top ÷ runner-up is ≥ 1 by definition.
            prop_assert!(w.confidence(InstrId::new(i)) >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn windows_are_never_resurrected(
        lo in 0u32..3,
        len in 0u32..3,
        ops in proptest::collection::vec((0usize..2, 0.0f64..10.0), 1..12)
    ) {
        let hi = lo + len;
        let mut w = PreferenceMap::new(1, 2, 8);
        let i = InstrId::new(0);
        w.set_window(i, lo, hi);
        for (c, f) in ops {
            w.scale_cluster(i, ClusterId::new(c as u16), f);
            w.normalize(i);
        }
        for t in 0..8u32 {
            if t < lo || t > hi {
                prop_assert_eq!(w.time_weight(i, t), 0.0, "slot {} leaked", t);
            }
        }
    }
}
