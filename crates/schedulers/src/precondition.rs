//! Shared input precondition for every scheduler.
//!
//! Before PR 5, each scheduler carried (or lacked) its own ad-hoc
//! loop rejecting out-of-range preplacements and uncoverable op
//! classes, and anything not covered surfaced as an index panic deep
//! inside assignment. Now all five techniques run the static linter
//! first and turn error-severity diagnostics into structured
//! [`ScheduleError`]s.

use convergent_analysis::{lint_dag, Code, LintOptions};
use convergent_ir::Dag;
use convergent_machine::Machine;

use crate::ScheduleError;

/// Checks that `(dag, machine)` passes the static lint, mapping
/// error-severity diagnostics to [`ScheduleError`]s.
///
/// The two historical rejections keep their dedicated variants so
/// existing callers can keep matching on them: `CS011` maps to
/// [`ScheduleError::BadHomeCluster`] and `CS020` to
/// [`ScheduleError::NoCapableCluster`]. Every other error-severity
/// diagnostic (infeasible windows, contradictory preplacement on a
/// hard machine, …) is returned as [`ScheduleError::Lint`].
///
/// # Errors
///
/// Returns the first mappable diagnostic as its dedicated variant, or
/// all remaining error-severity diagnostics bundled in
/// [`ScheduleError::Lint`].
pub fn check_inputs(dag: &Dag, machine: &Machine) -> Result<(), ScheduleError> {
    let report = lint_dag(dag, machine, LintOptions::default());
    let mut lint_errors = Vec::new();
    for d in report.errors() {
        match d.code {
            Code::BadHomeCluster => {
                let instr = d.instrs[0];
                let home = dag
                    .instr(instr)
                    .preplacement()
                    .expect("CS011 is only emitted for preplaced instructions");
                return Err(ScheduleError::BadHomeCluster { instr, home });
            }
            Code::UncoverableClass => {
                return Err(ScheduleError::NoCapableCluster(d.instrs[0]));
            }
            _ => lint_errors.push(d.clone()),
        }
    }
    if lint_errors.is_empty() {
        Ok(())
    } else {
        Err(ScheduleError::Lint {
            diagnostics: lint_errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::{ClusterId, DagBuilder, Opcode};
    use convergent_machine::LatencyTable;

    #[test]
    fn bad_home_maps_to_dedicated_variant() {
        let mut b = DagBuilder::new();
        let i = b.preplaced_instr(Opcode::Load, ClusterId::new(9));
        let dag = b.build().unwrap();
        assert_eq!(
            check_inputs(&dag, &Machine::raw(4)),
            Err(ScheduleError::BadHomeCluster {
                instr: i,
                home: ClusterId::new(9)
            })
        );
    }

    #[test]
    fn uncoverable_class_maps_to_dedicated_variant() {
        let mut b = DagBuilder::new();
        let i = b.instr(Opcode::Send);
        let dag = b.build().unwrap();
        assert_eq!(
            check_inputs(&dag, &Machine::chorus_vliw(4)),
            Err(ScheduleError::NoCapableCluster(i))
        );
    }

    #[test]
    fn other_errors_surface_as_lint_diagnostics() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let c = b.instr(Opcode::IntAlu);
        b.edge(a, c).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::raw(1)
            .with_latencies(LatencyTable::r4000().with(convergent_ir::OpClass::IntAlu, u32::MAX));
        match check_inputs(&dag, &m) {
            Err(ScheduleError::Lint { diagnostics }) => {
                assert!(diagnostics.iter().all(|d| d.code == Code::InfeasibleWindow));
            }
            other => panic!("expected Lint, got {other:?}"),
        }
    }

    #[test]
    fn clean_inputs_pass() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::Load);
        let c = b.instr(Opcode::FMul);
        b.edge(a, c).unwrap();
        let dag = b.build().unwrap();
        assert_eq!(check_inputs(&dag, &Machine::raw(4)), Ok(()));
        assert_eq!(check_inputs(&dag, &Machine::chorus_vliw(4)), Ok(()));
    }
}
