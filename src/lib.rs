#![warn(missing_docs)]
//! Umbrella crate for the Convergent Scheduling reproduction.
//!
//! This crate re-exports the whole workspace so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! * [`ir`] — dependence-graph IR and analyses
//! * [`machine`] — Raw and clustered-VLIW machine models
//! * [`analysis`] — the static linter: structured `CSxxx` diagnostics
//!   over `(DAG, machine)` inputs, no scheduler run required
//! * [`core`] — the convergent scheduler (preference maps + passes)
//! * [`schedulers`] — list scheduling and the UAS / PCC / Rawcc baselines
//! * [`sim`] — schedule validation and cycle-level evaluation
//! * [`workloads`] — reconstructed benchmark DAG generators
//!
//! # Quickstart
//!
//! ```
//! use convergent_scheduling::prelude::*;
//!
//! // A 4-cluster VLIW and a small matrix-multiply kernel.
//! let machine = Machine::chorus_vliw(4);
//! let unit = workloads::mxm(MxmParams::small());
//!
//! // Run the paper's VLIW pass sequence and list-schedule the result.
//! let outcome = ConvergentScheduler::vliw_default()
//!     .schedule(unit.dag(), &machine)
//!     .expect("scheduling succeeds");
//! let schedule = outcome.schedule();
//! assert!(schedule.makespan().get() > 0);
//! ```

pub use convergent_analysis as analysis;
pub use convergent_core as core;
pub use convergent_ir as ir;
pub use convergent_machine as machine;
pub use convergent_schedulers as schedulers;
pub use convergent_sim as sim;
pub use convergent_workloads as workloads;

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use convergent_analysis::{
        lint_dag, lint_raw, lint_unit, Code, Diagnostic, LintOptions, LintReport, Severity,
    };
    pub use convergent_core::{
        ConvergentScheduler, EffectOp, Interval, Pass, PassContext, PassContract, PassEffect,
        PreferenceMap, Sequence,
    };
    pub use convergent_ir::{
        ClusterId, Cycle, Dag, DagBuilder, InstrId, Instruction, OpClass, Opcode, Program,
        SchedulingUnit, TimeAnalysis,
    };
    pub use convergent_machine::Machine;
    pub use convergent_schedulers::{
        schedule_program, CrossRegionPolicy, ListScheduler, PccScheduler, RawccScheduler,
        UasScheduler,
    };
    pub use convergent_sim::{analyze_pressure, evaluate, validate, SpaceTimeSchedule};
    pub use convergent_workloads::{self as workloads, MxmParams};
}
