//! Schedule legality checking.
//!
//! [`validate`] is the single referee used by every test and experiment
//! in the workspace: a schedule that passes is executable on the target
//! machine — all dependences are satisfied through time and space, no
//! issue slot is double-booked, and every hard placement constraint is
//! honored.

use std::collections::HashMap;

use convergent_ir::{Cycle, Dag, InstrId};
use convergent_machine::Machine;

use crate::{SimError, SpaceTimeSchedule, Violation};

/// Checks `schedule` against `dag` and `machine`.
///
/// # Errors
///
/// Returns [`SimError::SizeMismatch`] if the schedule covers a
/// different number of instructions than the graph, and
/// [`SimError::Invalid`] with the full list of [`Violation`]s if any
/// rule is broken.
pub fn validate(
    dag: &Dag,
    machine: &Machine,
    schedule: &SpaceTimeSchedule,
) -> Result<(), SimError> {
    if schedule.ops().len() != dag.len() {
        return Err(SimError::SizeMismatch {
            expected: dag.len(),
            actual: schedule.ops().len(),
        });
    }
    let mut violations = Vec::new();

    check_placements(dag, machine, schedule, &mut violations);
    check_resources(machine, schedule, &mut violations);
    check_dependences(dag, schedule, &mut violations);

    if violations.is_empty() {
        Ok(())
    } else {
        Err(SimError::Invalid(violations))
    }
}

fn check_placements(
    dag: &Dag,
    machine: &Machine,
    schedule: &SpaceTimeSchedule,
    violations: &mut Vec<Violation>,
) {
    let hard = machine.memory().preplacement_is_hard();
    for op in schedule.ops() {
        let instr = dag.instr(op.instr);
        if op.fu >= machine.cluster(op.cluster).issue_width() {
            violations.push(Violation::BadFuIndex {
                instr: op.instr,
                fu: op.fu,
            });
            continue;
        }
        if !machine.cluster(op.cluster).fus()[op.fu].can_execute(instr.class()) {
            violations.push(Violation::IncapableCluster {
                instr: op.instr,
                cluster: op.cluster,
            });
        }
        if hard {
            if let Some(home) = instr.preplacement() {
                if home != op.cluster {
                    violations.push(Violation::PreplacementViolated {
                        instr: op.instr,
                        home,
                        actual: op.cluster,
                    });
                }
            }
        }
    }
}

fn check_resources(
    machine: &Machine,
    schedule: &SpaceTimeSchedule,
    violations: &mut Vec<Violation>,
) {
    let mut slots: HashMap<(usize, usize, Cycle), u32> = HashMap::new();
    for op in schedule.ops() {
        if op.fu < machine.cluster(op.cluster).issue_width() {
            *slots
                .entry((op.cluster.index(), op.fu, op.start))
                .or_insert(0) += 1;
        }
    }
    for comm in schedule.comms() {
        if let Some(fu) = comm.fu {
            if fu < machine.cluster(comm.from).issue_width() {
                *slots
                    .entry((comm.from.index(), fu, comm.start))
                    .or_insert(0) += 1;
            } else {
                violations.push(Violation::BadFuIndex {
                    instr: comm.producer,
                    fu,
                });
            }
        }
    }
    let mut conflicts: Vec<_> = slots
        .into_iter()
        .filter(|&(_, count)| count > 1)
        .map(|((cluster, fu, cycle), _)| Violation::ResourceConflict {
            cluster: convergent_ir::ClusterId::new(cluster as u16),
            fu,
            cycle,
        })
        .collect();
    conflicts.sort_by_key(|v| match v {
        Violation::ResourceConflict { cluster, fu, cycle } => (*cycle, cluster.index(), *fu),
        _ => unreachable!(),
    });
    violations.extend(conflicts);
}

fn check_dependences(dag: &Dag, schedule: &SpaceTimeSchedule, violations: &mut Vec<Violation>) {
    for e in dag.edges() {
        let p = schedule.op(e.src);
        let u = schedule.op(e.dst);
        let available = if p.cluster == u.cluster {
            Some(p.finish())
        } else {
            value_arrival(schedule, e.src, p.finish(), u.cluster, violations)
        };
        match available {
            Some(avail) => {
                if u.start < avail {
                    violations.push(Violation::DependenceViolated {
                        producer: e.src,
                        consumer: e.dst,
                        available: avail,
                        start: u.start,
                    });
                }
            }
            None => violations.push(Violation::MissingComm {
                producer: e.src,
                consumer: e.dst,
            }),
        }
    }
}

/// Earliest arrival of `producer`'s value at cluster `to`, following a
/// single comm op. Transfers injected before the value is ready are
/// reported and ignored.
fn value_arrival(
    schedule: &SpaceTimeSchedule,
    producer: InstrId,
    ready: Cycle,
    to: convergent_ir::ClusterId,
    violations: &mut Vec<Violation>,
) -> Option<Cycle> {
    let mut best: Option<Cycle> = None;
    for comm in schedule.comms_for(producer) {
        if comm.to != to {
            continue;
        }
        if comm.start < ready {
            violations.push(Violation::CommTooEarly {
                producer,
                start: comm.start,
                ready,
            });
            continue;
        }
        let arrival = comm.arrival();
        best = Some(best.map_or(arrival, |b: Cycle| b.min(arrival)));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduleBuilder;
    use convergent_ir::{ClusterId, DagBuilder, Opcode};

    fn chain() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let c = b.instr(Opcode::IntAlu);
        b.edge(a, c).unwrap();
        b.build().unwrap()
    }

    fn c(i: u16) -> ClusterId {
        ClusterId::new(i)
    }

    fn i(k: u32) -> InstrId {
        InstrId::new(k)
    }

    #[test]
    fn valid_same_cluster_schedule() {
        let dag = chain();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.place(i(1), c(0), 0, Cycle::new(1));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
    }

    #[test]
    fn dependence_violation_detected() {
        let dag = chain();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.place(i(1), c(0), 1, Cycle::ZERO); // too early
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        match err {
            SimError::Invalid(v) => assert!(matches!(v[0], Violation::DependenceViolated { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_comm_detected() {
        let dag = chain();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.place(i(1), c(1), 0, Cycle::new(10));
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        assert!(matches!(
            err,
            SimError::Invalid(ref v) if matches!(v[0], Violation::MissingComm { .. })
        ));
    }

    #[test]
    fn comm_makes_cross_cluster_legal() {
        let dag = chain();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        // value ready at 1; copy at 1 on transfer unit (fu 3); arrives 2.
        sb.comm(i(0), c(0), c(1), Cycle::new(1), Some(3));
        sb.place(i(1), c(1), 0, Cycle::new(2));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
    }

    #[test]
    fn comm_too_early_detected() {
        let dag = chain();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.comm(i(0), c(0), c(1), Cycle::ZERO, Some(3)); // value not ready
        sb.place(i(1), c(1), 0, Cycle::new(5));
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        match err {
            SimError::Invalid(v) => {
                assert!(v
                    .iter()
                    .any(|x| matches!(x, Violation::CommTooEarly { .. })));
                assert!(v.iter().any(|x| matches!(x, Violation::MissingComm { .. })));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resource_conflict_detected() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::IntAlu);
        b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.place(i(1), c(0), 0, Cycle::ZERO); // same fu, same cycle
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        assert!(matches!(
            err,
            SimError::Invalid(ref v) if matches!(v[0], Violation::ResourceConflict { .. })
        ));
    }

    #[test]
    fn incapable_fu_detected() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::FMul);
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(1);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO); // fu 0 is int-alu, not fpu
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        assert!(matches!(
            err,
            SimError::Invalid(ref v) if matches!(v[0], Violation::IncapableCluster { .. })
        ));
    }

    #[test]
    fn hard_preplacement_enforced_on_raw() {
        let mut b = DagBuilder::new();
        b.preplaced_instr(Opcode::Load, c(1));
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        assert!(matches!(
            err,
            SimError::Invalid(ref v) if matches!(v[0], Violation::PreplacementViolated { .. })
        ));
    }

    #[test]
    fn soft_preplacement_allowed_on_vliw() {
        let mut b = DagBuilder::new();
        b.preplaced_instr(Opcode::Load, c(1));
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 1, Cycle::ZERO); // fu 1 = int-alu/mem
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap(); // legal, just slower
        assert_eq!(s.op(i(0)).latency, 4);
    }

    #[test]
    fn bad_fu_index_detected() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let m = Machine::raw(1); // single-issue: only fu 0
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 5, Cycle::ZERO);
        let s = sb.build(&m).unwrap();
        let err = validate(&dag, &m, &s).unwrap_err();
        assert!(matches!(
            err,
            SimError::Invalid(ref v) if matches!(v[0], Violation::BadFuIndex { .. })
        ));
    }

    #[test]
    fn raw_register_mapped_comm() {
        let dag = chain();
        let m = Machine::raw(4);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        // finish at 1, route 0 -> 1 injected at 1, arrives 1 + 3 = 4.
        sb.comm(i(0), c(0), c(1), Cycle::new(1), None);
        sb.place(i(1), c(1), 0, Cycle::new(4));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
        // One cycle earlier must fail.
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        sb.comm(i(0), c(0), c(1), Cycle::new(1), None);
        sb.place(i(1), c(1), 0, Cycle::new(3));
        let s = sb.build(&m).unwrap();
        assert!(validate(&dag, &m, &s).is_err());
    }
}
