//! The pass interface.
//!
//! "All phases in the convergent scheduler share a common interface.
//! The input or output to each phase is a collection of spatial and
//! temporal preferences of instructions. A phase operates by analyzing
//! the current preferences and modifying them." — Section 1.
//!
//! A [`Pass`] sees the world through [`PassContext`]: the dependence
//! graph, the machine, precomputed timing analysis, a distance oracle,
//! a deterministic RNG (for NOISE), and the mutable [`PreferenceMap`].
//! Passes must not assume anything about which passes ran before them;
//! that independence is the framework's point.

use convergent_analysis::PassEffect;
use convergent_ir::{Dag, DistanceOracle, TimeAnalysis};
use convergent_machine::Machine;
use rand::rngs::StdRng;

use crate::weights::RowOps;
use crate::PreferenceMap;

/// Everything a pass may look at or change.
#[derive(Debug)]
pub struct PassContext<'a> {
    /// The dependence graph being scheduled.
    pub dag: &'a Dag,
    /// The target machine.
    pub machine: &'a Machine,
    /// Latency-weighted timing analysis of `dag` on `machine`.
    pub time: &'a TimeAnalysis,
    /// Cached undirected graph distances.
    pub dist: &'a mut DistanceOracle,
    /// Deterministic randomness (seeded by the driver).
    pub rng: &'a mut StdRng,
    /// The shared preference map.
    pub weights: &'a mut PreferenceMap,
    /// Reusable driver-owned buffers (see [`PassScratch`]).
    pub scratch: &'a mut PassScratch,
}

/// Reusable buffers owned by the driver and threaded through
/// [`PassContext::scratch`], so steady-state pass execution allocates
/// nothing per run: COMM's marginal snapshot, NOISE's pre-drawn noise
/// vectors, PLACEPROP's factor table all live here. Contents are
/// unspecified between runs — fill before reading.
#[derive(Clone, Debug, Default)]
pub struct PassScratch {
    /// Primary `f64` buffer.
    pub a: Vec<f64>,
    /// Secondary `f64` buffer, for passes that need two at once.
    pub b: Vec<f64>,
    /// Index/offset buffer (e.g. per-instruction starts into `a`).
    pub idx: Vec<usize>,
    /// Stamp/flag buffer (e.g. grand-neighbor dedup marks).
    pub mark: Vec<u32>,
}

/// The data-parallel half of a pass: an immutable, fully precomputed
/// recipe applied independently to every instruction row. Produced by
/// [`Pass::row_kernel`] after the pass's sequential prologue (graph
/// analysis, RNG draws — everything order-sensitive) has run; the
/// driver then applies it either to the whole map or to the disjoint
/// [`crate::WeightRows`] chunks of a thread scope. Both orders produce
/// bit-identical maps because each instruction's updates touch only
/// that instruction's row.
pub trait RowKernel: Sync {
    /// Applies the kernel to every instruction in `rows`'
    /// [`RowOps::instr_range`].
    fn apply(&self, rows: &mut dyn RowOps);
}

/// The behavioural contract a pass declares, verified empirically by
/// [`crate::contract::verify_pass`] on small probe graphs via the
/// recording `PreferenceMap` proxy.
///
/// Every field defaults to the framework's baseline expectations
/// (`PassContract::default()`); a pass overrides
/// [`Pass::contract`] only to *relax* a clause it intentionally does
/// not honor — INITTIME, which creates the feasibility windows in the
/// first place, sets [`PassContract::establishes_windows`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassContract {
    /// This pass *establishes* feasibility (windows and executable
    /// clusters) rather than working inside it; the window-respecting
    /// check is skipped. Only INITTIME sets this.
    pub establishes_windows: bool,
    /// Absolute writes (`set`/`add`) land inside the instruction's
    /// feasible window. Multiplicative operations cannot violate
    /// feasibility (zero times anything is zero), so only absolute
    /// writes are checked. Violations are `CS060`.
    pub window_respecting: bool,
    /// Identical inputs and an identically seeded RNG produce the
    /// bit-identical operation log. Violations are `CS061`.
    pub deterministic: bool,
    /// The preference-map invariants (`W ∈ [0,1]`, `Σ W[i] = 1`,
    /// consistent marginals) hold after the pass runs and the driver
    /// normalizes. Violations are `CS062`.
    pub normalization_preserving: bool,
    /// The pass never forbids (or zero-scales) the home cluster of a
    /// preplaced instruction that its home can execute. Violations
    /// are `CS063`.
    pub preplacement_monotone: bool,
}

impl Default for PassContract {
    fn default() -> Self {
        PassContract {
            establishes_windows: false,
            window_respecting: true,
            deterministic: true,
            normalization_preserving: true,
            preplacement_monotone: true,
        }
    }
}

/// One convergent-scheduling heuristic.
///
/// Implementations read and nudge `ctx.weights`; the driver normalizes
/// after every pass ("we run normalization at the end of every pass to
/// ensure the invariants"), so passes may scale weights freely.
///
/// # Example
///
/// A custom pass that biases even-numbered instructions toward
/// cluster 0:
///
/// ```
/// use convergent_core::{Pass, PassContext};
/// use convergent_ir::ClusterId;
///
/// struct EvenToZero;
///
/// impl Pass for EvenToZero {
///     fn name(&self) -> &'static str {
///         "even-to-zero"
///     }
///     fn run(&self, ctx: &mut PassContext<'_>) {
///         for i in ctx.dag.ids() {
///             if i.raw() % 2 == 0 {
///                 ctx.weights.scale_cluster(i, ClusterId::new(0), 2.0);
///             }
///         }
///     }
/// }
/// ```
///
/// Passes are `Send + Sync`: pass structs are immutable configuration
/// (all mutable state lives in [`PassContext`]), which is what lets
/// the driver share a [`Sequence`](crate::Sequence) across threads and
/// a future `cschedd` daemon hold one scheduler for many requests.
pub trait Pass: Send + Sync {
    /// Short upper-case name matching the paper ("INITTIME", "NOISE",
    /// ...); used in convergence traces and reports.
    fn name(&self) -> &'static str;

    /// Returns `true` if this pass only adjusts temporal preferences.
    /// The paper's convergence plots (Figures 7 and 9) exclude such
    /// passes.
    fn is_time_only(&self) -> bool {
        false
    }

    /// Reads and nudges the preference map.
    fn run(&self, ctx: &mut PassContext<'_>);

    /// Splits this pass into a sequential prologue (run inside this
    /// call: graph analysis, RNG draws — everything order-sensitive)
    /// and a [`RowKernel`] whose per-instruction applications are
    /// independent. Returning `Some` opts the pass into the driver's
    /// `--threads` intra-pass parallelism; the default `None` keeps it
    /// sequential-only. `None` may also mean "nothing to do on this
    /// input" (the driver then skips the pass body entirely), so a
    /// pass that overrides this should route its `run` through the
    /// kernel to keep the two paths identical. `scratch` offers
    /// reusable buffers the returned kernel may borrow; `weights` is
    /// read-only here — all writes happen in the kernel.
    fn row_kernel<'k>(
        &self,
        dag: &'k Dag,
        machine: &'k Machine,
        time: &'k TimeAnalysis,
        rng: &mut StdRng,
        weights: &PreferenceMap,
        scratch: &'k mut PassScratch,
    ) -> Option<Box<dyn RowKernel + 'k>> {
        let _ = (dag, machine, time, rng, weights, scratch);
        None
    }

    /// The behavioural contract this pass claims to honor; checked by
    /// `csched lint` through [`crate::contract::verify_pass`]. The
    /// default claims the full baseline contract, which every pass in
    /// [`crate::passes`] except INITTIME satisfies as-is.
    fn contract(&self) -> PassContract {
        PassContract::default()
    }

    /// The pass's abstract effect summary: an over-approximation of
    /// every `WeightOp` shape it can emit, phrased in the
    /// `convergent_analysis::absint` domain. The contract verifier
    /// tries to *prove* each [`Pass::contract`] clause from this
    /// summary for all inputs; clauses it cannot decide fall back to
    /// the empirical recording-proxy probes. The default — an opaque
    /// summary — keeps every clause on the empirical path, so
    /// third-party passes need not opt in.
    fn effect(&self) -> PassEffect {
        PassEffect::opaque()
    }
}
