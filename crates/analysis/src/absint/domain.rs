//! The abstract preference-map domain.
//!
//! Concrete state is a map `W[i, c, t]` of non-negative weights, plus
//! per-instruction feasibility windows `[lo, hi]` and a normalization
//! invariant (`Σ W[i] = 1` after every driver step). The abstraction
//! keeps one summary row for all instructions:
//!
//! * the possible per-cell weight range as an [`Interval`],
//! * whether windows have been established ([`WindowFact`]),
//! * whether the row is currently normalized ([`NormStatus`]),
//! * whether cluster symmetry can already be broken (a row whose
//!   cluster marginals may differ; uniform rows argmax to cluster 0).
//!
//! Joins are component-wise; every component is a finite lattice (or
//! the interval hull), so forward propagation over a straight-line
//! sequence terminates trivially.

/// A closed interval `[lo, hi]` over the extended non-negative reals.
///
/// Intervals over-approximate the set of values a weight, a scale
/// factor, or a written cell can take. `lo > hi` never occurs for
/// intervals built through the constructors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: f64,
    /// Largest possible value.
    pub hi: f64,
}

impl Interval {
    /// The interval holding exactly `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    #[must_use]
    pub fn point(v: f64) -> Self {
        assert!(!v.is_nan(), "interval endpoints must not be NaN");
        Interval { lo: v, hi: v }
    }

    /// The interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is NaN or `lo > hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "endpoints must not be NaN");
        assert!(lo <= hi, "interval endpoints out of order: [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The unit interval `[0, 1]` — a normalized cell's range.
    #[must_use]
    pub fn unit() -> Self {
        Interval { lo: 0.0, hi: 1.0 }
    }

    /// Any strictly positive finite factor — the widest interval a
    /// data-dependent but sign- and finiteness-guarded scale factor
    /// (LOAD's `1/load`, COMM's neighbor skew) can take.
    #[must_use]
    pub fn positive_finite() -> Self {
        Interval {
            lo: f64::MIN_POSITIVE,
            hi: f64::MAX,
        }
    }

    /// `true` if `v` lies in the interval.
    #[must_use]
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Smallest interval containing both `self` and `other`.
    #[must_use]
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Interval product (both operands non-negative in this domain, so
    /// the endpoints multiply directly). Saturates to `f64::MAX`
    /// instead of overflowing to infinity.
    #[must_use]
    pub fn mul(&self, other: &Interval) -> Interval {
        let sat = |v: f64| if v.is_finite() { v } else { f64::MAX };
        Interval {
            lo: sat(self.lo * other.lo),
            hi: sat(self.hi * other.hi),
        }
    }

    /// `true` when both endpoints are finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// `true` when no value in the interval is negative.
    #[must_use]
    pub fn is_nonneg(&self) -> bool {
        self.lo >= 0.0
    }

    /// `true` when every value in the interval is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.lo > 0.0
    }
}

/// Whether feasibility windows have been established yet.
///
/// Windows are tighten-only facts: once some pass runs
/// `EstablishWindows` they exist for the rest of the sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum WindowFact {
    /// No pass has established windows; every slot is nominally
    /// feasible and "in-window" reads see the full `[0, H]` range.
    Unestablished,
    /// Some earlier pass ran `EstablishWindows`.
    Established,
}

/// Whether the abstract row currently satisfies the normalization
/// invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NormStatus {
    /// `Σ W[i] = 1` and every cell is in `[0, 1]`.
    Normalized,
    /// A pass has written since the last normalization; cells are
    /// bounded by the row's value interval but the sum is arbitrary.
    Dirty,
}

/// The abstract per-row state threaded through a sequence walk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AbsRow {
    /// Range of any single cell's weight.
    pub value: Interval,
    /// Whether feasibility windows exist yet.
    pub windows: WindowFact,
    /// Whether the row is normalized right now.
    pub norm: NormStatus,
    /// Whether cluster marginals can already differ (symmetry broken).
    pub symmetry_broken: bool,
}

impl AbsRow {
    /// The driver's initial state: a fresh uniform normalized map, no
    /// windows, full symmetry.
    #[must_use]
    pub fn initial() -> Self {
        AbsRow {
            value: Interval::unit(),
            windows: WindowFact::Unestablished,
            norm: NormStatus::Normalized,
            symmetry_broken: false,
        }
    }

    /// The driver's normalization step: cells return to `[0, 1]`,
    /// everything else survives.
    pub fn normalize(&mut self) {
        self.value = Interval::unit();
        self.norm = NormStatus::Normalized;
    }

    /// Component-wise join (least upper bound) with `other`.
    #[must_use]
    pub fn join(&self, other: &AbsRow) -> AbsRow {
        AbsRow {
            value: self.value.join(&other.value),
            windows: self.windows.min(other.windows),
            norm: self.norm.max(other.norm),
            symmetry_broken: self.symmetry_broken || other.symmetry_broken,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let u = Interval::unit();
        assert!(u.contains(0.0) && u.contains(1.0) && !u.contains(1.1));
        assert!(u.is_finite() && u.is_nonneg() && !u.is_positive());
        assert!(Interval::point(1.2).is_positive());
        let j = Interval::point(0.5).join(&Interval::point(2.0));
        assert_eq!(j, Interval::new(0.5, 2.0));
    }

    #[test]
    fn interval_mul_saturates() {
        let big = Interval::new(1.0, f64::MAX);
        let prod = big.mul(&big);
        assert!(prod.is_finite());
        assert_eq!(prod.hi, f64::MAX);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_interval_panics() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn row_join_is_pessimistic() {
        let mut a = AbsRow::initial();
        a.windows = WindowFact::Established;
        a.symmetry_broken = true;
        let b = AbsRow::initial();
        let j = a.join(&b);
        // Windows only count when both branches established them;
        // symmetry counts when either branch broke it.
        assert_eq!(j.windows, WindowFact::Unestablished);
        assert!(j.symmetry_broken);
        assert_eq!(j.norm, NormStatus::Normalized);
    }

    #[test]
    fn normalize_resets_value_range() {
        let mut r = AbsRow::initial();
        r.value = Interval::new(0.0, 100.0);
        r.norm = NormStatus::Dirty;
        r.normalize();
        assert_eq!(r.value, Interval::unit());
        assert_eq!(r.norm, NormStatus::Normalized);
    }
}
