//! Offline stand-in for the `proptest` crate.
//!
//! Implements exactly the subset this workspace uses — `proptest!`,
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, `Strategy` with
//! `prop_map`, range/tuple strategies, `collection::vec`, `any`,
//! `ProptestConfig::with_cases` — generating random cases with a
//! deterministic per-test seed. No shrinking: a failing case reports
//! its case number and panics. Activated only via
//! `scripts/offline-check.sh`; default builds resolve the real
//! `proptest` from crates.io.

use std::marker::PhantomData;

/// Deterministic generator driving all strategies (SplitMix64, seeded
/// from the test-function name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream depends only on `name`.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// A generator of values (stands in for `proptest::strategy::Strategy`;
/// no value trees / shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u128 + 1;
                start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}
uint_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// `Just`-style constant strategy (handy for oneof arms).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Object-safe strategy, used by [`Union`] / `prop_oneof!`.
pub trait StrategyObj<T> {
    /// Generates one value.
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice between heterogeneous strategies with a common value
/// type (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<Box<dyn StrategyObj<T>>>,
}

impl<T> Union<T> {
    /// Creates the union; panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn StrategyObj<T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate_obj(rng)
    }
}

/// Types with a canonical strategy (stands in for `Arbitrary`).
pub trait ArbitraryValue {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl ArbitraryValue for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<A>(PhantomData<A>);

impl<A: ArbitraryValue> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A` (mirrors `proptest::prelude::any`).
#[must_use]
pub fn any<A: ArbitraryValue>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};

    /// Length specification accepted by [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `elem` values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Re-export under proptest's user-facing name.
pub use test_runner::Config as ProptestConfig;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        Strategy,
    };
}

/// Builds a [`Union`] choosing uniformly between the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($arm) as Box<dyn $crate::StrategyObj<_>>),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` block
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                let ($($arg,)*) =
                    ($($crate::Strategy::generate(&($strat), &mut __rng),)*);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body }),
                );
                if let Err(err) = __outcome {
                    eprintln!(
                        "proptest stub: case {}/{} of {} failed (no shrinking)",
                        __case + 1,
                        __cfg.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(err);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(x in 3usize..10, (a, b) in (0u32..4, 0.0f64..1.0)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn vec_and_oneof(
            v in crate::collection::vec(prop_oneof![0usize..2, 5usize..7], 2..5)
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in v {
                prop_assert!(x < 2 || (5..7).contains(&x));
            }
        }

        #[test]
        fn any_u64_works(s in any::<u64>()) {
            let _ = s;
        }
    }
}
