//! Lint/scheduler agreement properties.
//!
//! Two directions tie the static analyzer to the schedulers:
//!
//! * **Soundness of the generators** — every builtin workload and
//!   every randomly generated graph lints with *zero* diagnostics on
//!   the machines it targets.
//! * **Completeness of the lint** — a graph the linter passes is never
//!   rejected by a scheduler for an input-side reason
//!   (`BadHomeCluster`, `NoCapableCluster`, `Lint`): whatever the
//!   linter lets through, the schedulers can place and the result
//!   validates. Conversely, a graph the linter flags with an
//!   error-severity diagnostic is refused by every scheduler's
//!   precondition hook as a structured error, never a panic.

use convergent_scheduling::analysis::{lint_dag, lint_unit, Code, LintOptions};
use convergent_scheduling::core::ConvergentScheduler;
use convergent_scheduling::ir::{ClusterId, Dag, DagBuilder, Instruction, Opcode, SchedulingUnit};
use convergent_scheduling::machine::Machine;
use convergent_scheduling::schedulers::{
    BugScheduler, PccScheduler, RawccScheduler, ScheduleError, Scheduler, UasScheduler,
};
use convergent_scheduling::sim::validate;
use convergent_scheduling::workloads as wl;
use proptest::prelude::*;

fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(UasScheduler::new()),
        Box::new(PccScheduler::new().with_max_rounds(1)),
        Box::new(RawccScheduler::new()),
        Box::new(BugScheduler::new()),
        Box::new(ConvergentScheduler::raw_default()),
        Box::new(ConvergentScheduler::vliw_tuned()),
    ]
}

fn is_input_side(e: &ScheduleError) -> bool {
    matches!(
        e,
        ScheduleError::BadHomeCluster { .. }
            | ScheduleError::NoCapableCluster(_)
            | ScheduleError::Lint { .. }
    )
}

/// A lint-clean graph is never rejected for an input-side reason, and
/// whatever schedules, validates.
fn check_clean_graph_schedules(unit: &SchedulingUnit, machine: &Machine) {
    let report = lint_unit(unit, machine, LintOptions::default());
    assert!(
        report.is_empty(),
        "{} on {}: {:?}",
        unit.name(),
        machine.name(),
        report.diagnostics()
    );
    for sched in all_schedulers() {
        match sched.schedule(unit.dag(), machine) {
            Ok(s) => validate(unit.dag(), machine, &s)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", sched.name(), machine.name())),
            Err(e) if is_input_side(&e) => panic!(
                "{} rejected a lint-clean graph on {}: {e}",
                sched.name(),
                machine.name()
            ),
            // Non-input-side errors (e.g. NoProgress) would be a
            // scheduler bug but are not this property's subject; the
            // fuzz harness owns those.
            Err(e) => panic!("{} on {}: {e}", sched.name(), machine.name()),
        }
    }
}

#[test]
fn builtin_workloads_lint_with_zero_diagnostics() {
    let machines = [Machine::raw(4), Machine::raw(16), Machine::chorus_vliw(4)];
    for machine in &machines {
        let banks = machine.n_clusters() as u16;
        let units = [
            wl::cholesky(wl::CholeskyParams::for_banks(banks)),
            wl::tomcatv(wl::StencilParams::for_banks(banks)),
            wl::vpenta(wl::VpentaParams::for_banks(banks)),
            wl::mxm(wl::MxmParams::for_banks(banks)),
            wl::fpppp_kernel(wl::FppppParams::small()),
            wl::sha(wl::ShaParams::small()),
            wl::swim(wl::StencilParams::for_banks(banks)),
            wl::jacobi(wl::StencilParams::for_banks(banks)),
            wl::life(wl::StencilParams::for_banks(banks)),
            wl::vvmul(wl::VvmulParams::for_banks(banks)),
            wl::rbsorf(wl::StencilParams::for_banks(banks)),
            wl::yuv(wl::YuvParams::for_banks(banks)),
            wl::fir(wl::FirParams::for_banks(banks)),
        ];
        for unit in &units {
            let report = lint_unit(unit, machine, LintOptions::default());
            assert!(
                report.is_empty(),
                "{} on {}: {:?}",
                unit.name(),
                machine.name(),
                report.diagnostics()
            );
        }
    }
}

/// A graph whose only defect is one out-of-range home cluster.
fn dag_with_bad_home(n: usize, bad_home: u16) -> Dag {
    let mut b = DagBuilder::with_capacity(n + 1);
    let mut prev = b.push(Instruction::new(Opcode::Load));
    for _ in 0..n {
        let next = b.push(Instruction::new(Opcode::IntAlu));
        b.edge(prev, next).unwrap();
        prev = next;
    }
    let sink = b.push(Instruction::preplaced(
        Opcode::Store,
        ClusterId::new(bad_home),
    ));
    b.edge(prev, sink).unwrap();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_layered_graphs_lint_clean_and_schedule(
        n in 8usize..100,
        width in 2usize..10,
        seed in any::<u64>(),
        pre in 0.0f64..0.8,
    ) {
        let unit = wl::layered(
            wl::LayeredParams::new(n, seed)
                .with_width(width)
                .with_preplacement(pre, 4),
        );
        check_clean_graph_schedules(&unit, &Machine::raw(4));
        check_clean_graph_schedules(&unit, &Machine::chorus_vliw(4));
    }

    #[test]
    fn random_series_parallel_graphs_lint_clean_and_schedule(
        n in 5usize..60,
        seed in any::<u64>(),
    ) {
        let unit = wl::series_parallel(n, seed);
        check_clean_graph_schedules(&unit, &Machine::raw(2));
        check_clean_graph_schedules(&unit, &Machine::chorus_vliw(2));
    }

    #[test]
    fn flagged_graphs_are_refused_not_panicked(
        n in 1usize..20,
        extra in 0u16..100,
    ) {
        // One home cluster past the machine edge: the linter must
        // flag CS011, and every scheduler must surface the same
        // finding as a structured input-side error.
        let machine = Machine::raw(4);
        let bad_home = machine.n_clusters() as u16 + extra;
        let dag = dag_with_bad_home(n, bad_home);
        let report = lint_dag(&dag, &machine, LintOptions::default());
        prop_assert!(
            report.errors().any(|d| d.code == Code::BadHomeCluster),
            "{:?}",
            report.diagnostics()
        );
        for sched in all_schedulers() {
            match sched.schedule(&dag, &machine) {
                Err(e) if is_input_side(&e) => {}
                other => panic!(
                    "{} should refuse a bad home cluster, got {other:?}",
                    sched.name()
                ),
            }
        }
    }
}
