//! Chrome trace-event JSON exporter (plus a small validating parser).
//!
//! [`ChromeTraceSink`] renders the driver's telemetry as the trace
//! event format that Perfetto and `chrome://tracing` load: `"X"`
//! complete events for spans, `"C"` counter events for per-pass
//! counter/convergence tracks, and `"M"` metadata events naming the
//! process and threads. The driver's logical hierarchy maps onto
//! trace threads: tid 0 is the main driver, shard `k`'s events land on
//! tid `k + 1` (with the `shard{k}/` prefix stripped from names).
//!
//! The writer is hand-rolled (this workspace takes no external
//! dependencies); [`validate_chrome_trace`] re-parses the output with
//! an equally hand-rolled JSON reader, which is what the check-script
//! trace smoke and the golden-file tests run against.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use super::convergence::ConvergenceMetrics;
use super::counters::CounterTotals;
use super::sink::{split_shard_prefix, SinkInterest, SpanKind, TelemetrySink};

/// One rendered trace event.
#[derive(Clone, Debug)]
struct Event {
    name: String,
    cat: &'static str,
    ph: char,
    ts_us: f64,
    dur_us: Option<f64>,
    tid: u64,
    /// Pre-rendered JSON for the `args` object (without braces).
    args: String,
}

/// A [`TelemetrySink`] that renders Chrome trace-event JSON.
///
/// One sink can absorb several runs back to back (the `compiletime`
/// bench traces every size into one file): call
/// [`ChromeTraceSink::advance_base`] between runs so the next run's
/// events start after everything recorded so far.
#[derive(Clone, Debug, Default)]
pub struct ChromeTraceSink {
    events: Vec<Event>,
    /// Offset (µs) added to every incoming timestamp.
    base_us: f64,
    /// Latest event end seen (µs, absolute).
    max_end_us: f64,
    /// End of the most recent span (µs, absolute) — counter events are
    /// stamped here, right where the span they describe ended.
    last_span_end_us: f64,
}

impl ChromeTraceSink {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        ChromeTraceSink::default()
    }

    /// Number of events recorded so far (spans + counters).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Moves the time base past everything recorded so far, so a
    /// subsequent run appears after (not on top of) the previous one.
    pub fn advance_base(&mut self) {
        self.base_us = self.max_end_us;
    }

    /// Records a standalone instantaneous counter sample at the end of
    /// the trace — used by harnesses to append referee verdicts or
    /// other totals that are not tied to a driver span.
    pub fn note_counters(&mut self, track: &str, delta: &CounterTotals) {
        let ts = self.max_end_us;
        self.push_counter_groups(track, delta, ts);
    }

    fn push_counter_groups(&mut self, suffix: &str, delta: &CounterTotals, ts_us: f64) {
        let groups: [(&str, &[(&str, u64)]); 7] = [
            (
                "weight ops",
                &[
                    ("set", delta.set),
                    ("scale", delta.scale),
                    ("scale_cluster", delta.scale_cluster),
                    ("scale_time", delta.scale_time),
                    ("set_window", delta.set_window),
                    ("forbid_cluster", delta.forbid_cluster),
                    ("normalize", delta.normalize),
                    ("reset_uniform", delta.reset_uniform),
                    ("row_batch", delta.row_batch),
                ],
            ),
            (
                "argmax cache",
                &[
                    ("hits", delta.argmax_hits),
                    ("misses", delta.argmax_misses),
                    ("invalidations", delta.argmax_invalidations),
                ],
            ),
            (
                "band",
                &[
                    ("growths", delta.band_growths),
                    ("densifications", delta.band_densifications),
                ],
            ),
            ("boundary comms", &[("inserted", delta.boundary_comms)]),
            (
                "governor",
                &[
                    ("accepts", delta.governor_accepts),
                    ("rejects", delta.governor_rejects),
                ],
            ),
            (
                "referee",
                &[
                    ("validate_ok", delta.validate_ok),
                    ("validate_fail", delta.validate_fail),
                    ("oracle_agree", delta.oracle_agree),
                    ("oracle_disagree", delta.oracle_disagree),
                ],
            ),
            (
                "contracts",
                &[
                    ("proven", delta.contracts_proven),
                    ("unproven", delta.contracts_unproven),
                ],
            ),
        ];
        for (group, fields) in groups {
            if fields.iter().all(|&(_, v)| v == 0) {
                continue;
            }
            let mut args = String::new();
            for (k, v) in fields {
                if !args.is_empty() {
                    args.push(',');
                }
                let _ = write!(args, "{}:{v}", json_string(k));
            }
            let name = if suffix.is_empty() {
                group.to_string()
            } else {
                format!("{group} ({suffix})")
            };
            self.events.push(Event {
                name,
                cat: "counters",
                ph: 'C',
                ts_us,
                dur_us: None,
                tid: 0,
                args,
            });
        }
    }

    /// Renders the trace as a JSON document (`{"traceEvents": [...]}`).
    /// Events are emitted in nondecreasing `ts` order, metadata first.
    #[must_use]
    pub fn write_json(&self) -> String {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by(|&a, &b| {
            self.events[a]
                .ts_us
                .partial_cmp(&self.events[b].ts_us)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut tids: BTreeMap<u64, &'static str> = BTreeMap::new();
        for ev in &self.events {
            tids.entry(ev.tid).or_insert("");
        }
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut emit = |line: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&line);
        };
        emit(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"name\":\"csched\"}}"
                .to_string(),
            &mut first,
        );
        for &tid in tids.keys() {
            let label = if tid == 0 {
                "driver".to_string()
            } else {
                format!("shard{}", tid - 1)
            };
            emit(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"ts\":0,\"args\":{{\"name\":{}}}}}",
                    json_string(&label)
                ),
                &mut first,
            );
        }
        for &k in &order {
            let ev = &self.events[k];
            let mut line = format!(
                "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
                json_string(&ev.name),
                ev.cat,
                ev.ph,
                ev.tid,
                fmt_us(ev.ts_us)
            );
            if let Some(dur) = ev.dur_us {
                let _ = write!(line, ",\"dur\":{}", fmt_us(dur));
            }
            let _ = write!(line, ",\"args\":{{{}}}}}", ev.args);
            emit(line, &mut first);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes the rendered trace to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or writing the file.
    pub fn save(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.write_json())
    }
}

/// Timestamps print as integers when whole (Perfetto is happiest with
/// integer µs) and shortest-round-trip decimals otherwise.
fn fmt_us(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl TelemetrySink for ChromeTraceSink {
    fn interest(&self) -> SinkInterest {
        SinkInterest::all()
    }

    fn span(&mut self, path: &str, kind: SpanKind, start_secs: f64, dur_secs: f64) {
        let (shard, rest) = split_shard_prefix(path);
        let (tid, name) = match (shard, rest) {
            (Some(k), "") => ((k + 1) as u64, format!("shard{k}")),
            (Some(k), inner) => ((k + 1) as u64, inner.to_string()),
            (None, _) => (0, path.to_string()),
        };
        let cat = match kind {
            SpanKind::Run => "run",
            SpanKind::Shard => "shard",
            SpanKind::Stage => "stage",
            SpanKind::Pass => "pass",
            SpanKind::Phase => "phase",
        };
        let ts = self.base_us + start_secs * 1e6;
        let dur = dur_secs * 1e6;
        self.max_end_us = self.max_end_us.max(ts + dur);
        self.last_span_end_us = ts + dur;
        self.events.push(Event {
            name,
            cat,
            ph: 'X',
            ts_us: ts,
            dur_us: Some(dur),
            tid,
            args: String::new(),
        });
    }

    fn counters(&mut self, path: &str, delta: &CounterTotals) {
        let (shard, _) = split_shard_prefix(path);
        let suffix = shard.map(|k| format!("shard{k}")).unwrap_or_default();
        let ts = self.last_span_end_us;
        self.push_counter_groups(&suffix, delta, ts);
    }

    fn convergence(&mut self, path: &str, metrics: &ConvergenceMetrics) {
        let (shard, _) = split_shard_prefix(path);
        let name = match shard {
            Some(k) => format!("convergence (shard{k})"),
            None => "convergence".to_string(),
        };
        let args = format!(
            "\"mean_confidence\":{},\"decision_churn\":{},\"preference_entropy\":{},\"preplacement_coverage\":{}",
            finite(metrics.mean_confidence),
            finite(metrics.decision_churn),
            finite(metrics.preference_entropy),
            finite(metrics.preplacement_coverage),
        );
        self.events.push(Event {
            name,
            cat: "convergence",
            ph: 'C',
            ts_us: self.last_span_end_us,
            dur_us: None,
            tid: 0,
            args,
        });
    }
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---- a small validating JSON reader ----

/// A parsed JSON value (just enough for trace validation).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("peeked a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

/// Summary of a validated Chrome trace; see [`validate_chrome_trace`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events in `traceEvents`.
    pub total_events: usize,
    /// `"X"` (complete span) events.
    pub span_events: usize,
    /// `"C"` (counter) events.
    pub counter_events: usize,
    /// Distinct span names seen.
    pub span_names: std::collections::BTreeSet<String>,
}

/// Parses `text` as Chrome trace-event JSON and checks the schema the
/// exporters promise: a `traceEvents` array whose members carry a
/// string `name`, a string `ph`, a numeric `ts ≥ 0` in nondecreasing
/// order, and a numeric `dur ≥ 0` on every `"X"` event.
///
/// # Errors
///
/// A description of the first schema violation (or parse error).
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let root = parse_json(text)?;
    let events = root
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .clone();
    let Json::Arr(events) = events else {
        return Err("traceEvents is not an array".to_string());
    };
    let mut stats = TraceStats {
        total_events: events.len(),
        ..TraceStats::default()
    };
    let mut prev_ts = f64::NEG_INFINITY;
    for (k, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {k}: missing string name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {k}: missing string ph"))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {k}: missing numeric ts"))?;
        if ts < 0.0 {
            return Err(format!("event {k} ({name}): negative ts {ts}"));
        }
        if ts < prev_ts {
            return Err(format!(
                "event {k} ({name}): ts {ts} decreases below {prev_ts}"
            ));
        }
        prev_ts = ts;
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {k} ({name}): X without numeric dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {k} ({name}): negative dur {dur}"));
                }
                stats.span_events += 1;
                stats.span_names.insert(name.to_string());
            }
            "C" => {
                stats.counter_events += 1;
            }
            "M" => {}
            other => {
                return Err(format!("event {k} ({name}): unexpected ph {other:?}"));
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals(set: u64) -> CounterTotals {
        CounterTotals {
            set,
            ..CounterTotals::default()
        }
    }

    #[test]
    fn sink_renders_valid_monotone_trace() {
        let mut sink = ChromeTraceSink::new();
        sink.span("<init>", SpanKind::Stage, 0.0, 0.001);
        sink.span("PATH", SpanKind::Pass, 0.001, 0.002);
        sink.counters("PATH", &totals(7));
        sink.span("shard0/COMM", SpanKind::Pass, 0.003, 0.001);
        sink.span("shard0", SpanKind::Shard, 0.003, 0.001);
        sink.span("<run>", SpanKind::Run, 0.0, 0.004);
        let json = sink.write_json();
        let stats = validate_chrome_trace(&json).expect("trace validates");
        assert_eq!(stats.span_events, 5);
        assert!(stats.counter_events >= 1);
        assert!(stats.span_names.contains("PATH"));
        assert!(stats.span_names.contains("COMM")); // prefix stripped
        assert!(stats.span_names.contains("shard0"));
    }

    #[test]
    fn advance_base_separates_runs() {
        let mut sink = ChromeTraceSink::new();
        sink.span("a", SpanKind::Pass, 0.0, 1.0);
        sink.advance_base();
        sink.span("b", SpanKind::Pass, 0.0, 1.0);
        let json = sink.write_json();
        validate_chrome_trace(&json).expect("monotone after advance_base");
        assert!(json.contains("\"ts\":1000000"));
    }

    #[test]
    fn parser_round_trips_escapes() {
        let v = parse_json("{\"a\\n\\\"b\":[1,2.5,-3e2,true,null,\"\\u0041\"]}").unwrap();
        let arr = v.get("a\n\"b").unwrap();
        assert_eq!(
            *arr,
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-300.0),
                Json::Bool(true),
                Json::Null,
                Json::Str("A".to_string()),
            ])
        );
    }

    #[test]
    fn validator_rejects_decreasing_ts() {
        let bad = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"ts\":5,\"dur\":1},\
            {\"name\":\"b\",\"ph\":\"X\",\"ts\":4,\"dur\":1}]}";
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("decreases"));
    }

    #[test]
    fn validator_rejects_x_without_dur() {
        let bad = "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0}]}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("dur"));
    }

    #[test]
    fn referee_counters_appear_via_note_counters() {
        let mut sink = ChromeTraceSink::new();
        sink.span("<run>", SpanKind::Run, 0.0, 1.0);
        sink.note_counters(
            "",
            &CounterTotals {
                validate_ok: 1,
                oracle_agree: 1,
                ..CounterTotals::default()
            },
        );
        let json = sink.write_json();
        assert!(json.contains("referee"));
        validate_chrome_trace(&json).unwrap();
    }
}
