//! Critical-path-dominated kernels: fpppp-kernel and sha.
//!
//! These are the paper's "long, narrow graphs dominated by a few
//! critical paths" (Figure 2a) and the two benchmarks on which
//! preplacement provides no guidance — convergent scheduling must rely
//! on its critical-path, parallelism, and communication heuristics
//! alone, and the paper reports it trails Rawcc there.

use convergent_ir::{InstrId, Opcode, SchedulingUnit};

use crate::kernel::Kb;

/// Parameters for [`fpppp_kernel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FppppParams {
    /// Number of interleaved expression spines (the kernel's
    /// fine-grained ILP; the paper's Rawcc extracts substantial
    /// speedup from it, so it is well above 1).
    pub spines: usize,
    /// Serial steps per spine.
    pub steps: usize,
}

impl FppppParams {
    /// A ~500-instruction instance with ILP ≈ 8, matching the huge
    /// straight-line block the paper schedules.
    #[must_use]
    pub fn small() -> Self {
        FppppParams {
            spines: 8,
            steps: 28,
        }
    }
}

impl Default for FppppParams {
    fn default() -> Self {
        FppppParams::small()
    }
}

/// `fpppp-kernel`: the inner loop of Spec95's fpppp ("consumes 50% of
/// the run-time"). Two-electron integral evaluation is an enormous
/// straight-line FP expression block: several long serial expression
/// spines evaluate concurrently, exchanging values every few steps
/// (the cross-links are what makes the parallelism *fine-grained* and
/// communication-expensive to exploit), with almost no memory traffic
/// and no preplacement. Deterministic pseudo-random opcode choice
/// keeps the graph irregular like the real code.
#[must_use]
pub fn fpppp_kernel(params: FppppParams) -> SchedulingUnit {
    assert!(params.spines > 0 && params.steps > 0, "non-trivial kernel");
    let mut kb = Kb::new(1); // banking irrelevant: nothing is preplaced
    let inputs: Vec<InstrId> = (0..params.spines.max(2))
        .map(|k| kb.load_free(&format!("s{k}")))
        .collect();
    // xorshift for deterministic irregularity.
    let mut state = 0x9e37_79b9_u32;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        state
    };
    // Each spine works from its own small set of register-resident
    // scalars (the integral prefactors); only occasionally does a
    // spine consume a neighbouring spine's running value — those
    // cross-links are the "fine-grained" part of the parallelism.
    let mut pool: Vec<Vec<InstrId>> = (0..params.spines)
        .map(|s| (0..3).map(|k| kb.load_free(&format!("p{s}_{k}"))).collect())
        .collect();
    let mut spines: Vec<InstrId> = (0..params.spines)
        .map(|k| kb.op(Opcode::FMul, &[inputs[k % inputs.len()], pool[k][0]]))
        .collect();
    for step in 0..params.steps {
        for s in 0..params.spines {
            let other = if step % 6 == 5 && params.spines > 1 {
                spines[(s + 1) % params.spines] // sparse cross-link
            } else {
                let mine = &pool[s];
                mine[rand() as usize % mine.len()]
            };
            let op = if step % 14 == 13 {
                Opcode::FDiv // periodic reciprocals lengthen the path
            } else if rand() % 2 == 0 {
                Opcode::FAdd
            } else {
                Opcode::FMul
            };
            spines[s] = kb.op(op, &[spines[s], other]);
            // The side value evolves too, giving each step a touch of
            // intra-spine ILP.
            if step % 4 == 1 {
                let k = rand() as usize % pool[s].len();
                let refreshed = kb.op(Opcode::FAdd, &[pool[s][k], spines[s]]);
                pool[s][k] = refreshed;
            }
        }
    }
    let result = kb.reduce_tree(Opcode::FAdd, &spines.clone());
    kb.store_free("result", result);
    kb.finish("fpppp-kernel")
}

/// Parameters for [`sha`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShaParams {
    /// Number of compression rounds in the scheduled region (the full
    /// algorithm runs 80).
    pub rounds: usize,
}

impl ShaParams {
    /// A 20-round instance (~300 instructions).
    #[must_use]
    pub fn small() -> Self {
        ShaParams { rounds: 20 }
    }
}

impl Default for ShaParams {
    fn default() -> Self {
        ShaParams::small()
    }
}

/// `sha`: the Secure Hash Algorithm compression function. Each round
/// computes `tmp = rotl5(a) + f(b,c,d) + e + w[t] + K` and rotates the
/// five working registers — an integer dependence spiral with almost
/// no extractable ILP beyond the message-schedule XORs.
#[must_use]
pub fn sha(params: ShaParams) -> SchedulingUnit {
    let mut kb = Kb::new(1); // no preplacement: state lives in registers
    let mut a = kb.load_free("h0");
    let mut b = kb.load_free("h1");
    let mut c = kb.load_free("h2");
    let mut d = kb.load_free("h3");
    let mut e = kb.load_free("h4");
    let k = kb.constant("K");
    // Message schedule: w[t] for t < 16 are loads; afterwards
    // w[t] = rotl1(w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t-16]).
    let mut w: Vec<InstrId> = Vec::with_capacity(params.rounds);
    for t in 0..params.rounds {
        let wt = if t < 16 {
            kb.load_free(&format!("w[{t}]"))
        } else {
            let x1 = kb.op(Opcode::Logic, &[w[t - 3], w[t - 8]]);
            let x2 = kb.op(Opcode::Logic, &[x1, w[t - 14]]);
            let x3 = kb.op(Opcode::Logic, &[x2, w[t - 16]]);
            kb.op(Opcode::Shift, &[x3])
        };
        w.push(wt);
    }
    for &wt in w.iter().take(params.rounds) {
        let rot_a = kb.op(Opcode::Shift, &[a]);
        // f(b, c, d): choice function (b & c) | (~b & d).
        let bc = kb.op(Opcode::Logic, &[b, c]);
        let nbd = kb.op(Opcode::Logic, &[b, d]);
        let f = kb.op(Opcode::Logic, &[bc, nbd]);
        let s1 = kb.op(Opcode::IntAlu, &[rot_a, f]);
        let s2 = kb.op(Opcode::IntAlu, &[s1, e]);
        let s3 = kb.op(Opcode::IntAlu, &[s2, wt]);
        let tmp = kb.op(Opcode::IntAlu, &[s3, k]);
        // Rotate registers.
        e = d;
        d = c;
        c = kb.op(Opcode::Shift, &[b]); // rotl30(b)
        b = a;
        a = tmp;
    }
    for (reg, name) in [(a, "h0'"), (b, "h1'"), (c, "h2'"), (d, "h3'"), (e, "h4'")] {
        kb.store_free(name, reg);
    }
    kb.finish("sha")
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::ShapeStats;

    #[test]
    fn fpppp_is_long_with_fine_grained_ilp() {
        let unit = fpppp_kernel(FppppParams::small());
        let s = ShapeStats::compute(unit.dag(), |_| 1);
        assert!(s.instr_count() > 150, "{s}");
        // fpppp's parallelism is fine-grained (≈ the spine count), far
        // below the fat unrolled loops, and its height is substantial.
        assert!(s.avg_parallelism() >= 4.0, "{s}");
        assert!(s.avg_parallelism() <= 12.0, "{s}");
        assert!(s.height() >= 25, "{s}");
        // No preplacement except the final result store.
        assert!(s.preplaced_fraction() < 0.02, "{s}");
    }

    #[test]
    fn fpppp_is_float_dominated() {
        let unit = fpppp_kernel(FppppParams::small());
        let fp = unit
            .dag()
            .instrs()
            .iter()
            .filter(|i| i.opcode().is_float())
            .count();
        assert!(fp * 2 > unit.dag().len(), "FP should dominate");
    }

    #[test]
    fn sha_is_serial_integer() {
        let unit = sha(ShaParams::small());
        let s = ShapeStats::compute(unit.dag(), |_| 1);
        assert!(s.avg_parallelism() < 3.0, "{s}");
        assert!(unit.dag().instrs().iter().all(|i| !i.opcode().is_float()));
    }

    #[test]
    fn sha_rounds_scale_depth() {
        let short = sha(ShaParams { rounds: 10 });
        let long = sha(ShaParams { rounds: 40 });
        let h_short = ShapeStats::compute(short.dag(), |_| 1).height();
        let h_long = ShapeStats::compute(long.dag(), |_| 1).height();
        assert!(h_long > h_short * 2);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = fpppp_kernel(FppppParams::small());
        let b = fpppp_kernel(FppppParams::small());
        assert_eq!(a.dag().len(), b.dag().len());
        assert_eq!(a.dag().edge_count(), b.dag().edge_count());
    }
}
