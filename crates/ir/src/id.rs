//! Newtype identifiers used throughout the workspace.
//!
//! Instructions, clusters, and cycles are all "just integers", but mixing
//! them up is the classic scheduling bug. Newtypes keep them statically
//! distinct (C-NEWTYPE) at zero runtime cost.

use std::fmt;

/// Identifier of an instruction within one [`crate::Dag`].
///
/// Instruction ids are dense: a DAG with `n` instructions uses ids
/// `0..n`, which lets analyses and preference maps index plain vectors.
///
/// # Example
///
/// ```
/// use convergent_ir::InstrId;
/// let i = InstrId::new(3);
/// assert_eq!(i.index(), 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InstrId(u32);

impl InstrId {
    /// Creates an instruction id from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        InstrId(index)
    }

    /// Returns the dense index as a `usize` suitable for vector indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for InstrId {
    fn from(v: u32) -> Self {
        InstrId(v)
    }
}

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Identifier of a cluster (a VLIW cluster or a Raw tile).
///
/// Clusters are dense `0..n` within one machine model. On a Raw mesh of
/// width `w`, cluster `c` sits at coordinates `(c % w, c / w)`; the
/// machine model owns that mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClusterId(u16);

impl ClusterId {
    /// Creates a cluster id from a dense index.
    #[must_use]
    pub const fn new(index: u16) -> Self {
        ClusterId(index)
    }

    /// Returns the dense index as a `usize` suitable for vector indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u16` value.
    #[must_use]
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl From<u16> for ClusterId {
    fn from(v: u16) -> Self {
        ClusterId(v)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A machine cycle (time slot) within one scheduling unit.
///
/// Cycle arithmetic saturates at zero on subtraction, because schedules
/// never reach back before cycle 0.
///
/// # Example
///
/// ```
/// use convergent_ir::Cycle;
/// let t = Cycle::new(5);
/// assert_eq!((t + 2).get(), 7);
/// assert_eq!(t.saturating_sub(9), Cycle::ZERO);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u32);

impl Cycle {
    /// Cycle zero, the first time slot of a scheduling unit.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle from a raw count.
    #[must_use]
    pub const fn new(v: u32) -> Self {
        Cycle(v)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the cycle as a `usize` suitable for vector indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Subtracts `rhs` cycles, saturating at [`Cycle::ZERO`].
    #[must_use]
    pub const fn saturating_sub(self, rhs: u32) -> Cycle {
        Cycle(self.0.saturating_sub(rhs))
    }
}

impl From<u32> for Cycle {
    fn from(v: u32) -> Self {
        Cycle(v)
    }
}

impl std::ops::Add<u32> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: u32) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_id_roundtrip() {
        let i = InstrId::new(42);
        assert_eq!(i.index(), 42);
        assert_eq!(i.raw(), 42);
        assert_eq!(InstrId::from(42u32), i);
        assert_eq!(i.to_string(), "i42");
    }

    #[test]
    fn cluster_id_roundtrip() {
        let c = ClusterId::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(ClusterId::from(7u16), c);
        assert_eq!(c.to_string(), "c7");
    }

    #[test]
    fn cycle_arithmetic() {
        let t = Cycle::new(10);
        assert_eq!((t + 5).get(), 15);
        assert_eq!(t.saturating_sub(3).get(), 7);
        assert_eq!(t.saturating_sub(100), Cycle::ZERO);
        assert_eq!(Cycle::default(), Cycle::ZERO);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(InstrId::new(1) < InstrId::new(2));
        assert!(Cycle::new(1) < Cycle::new(2));
        assert!(ClusterId::new(0) < ClusterId::new(1));
    }
}
