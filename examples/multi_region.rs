//! Scheduling across region boundaries.
//!
//! "When a value is live across multiple scheduling regions, its
//! definitions and uses must be mapped to a consistent cluster" —
//! this example schedules a strip-mined accumulation loop (three
//! regions, four carried accumulators) on a 4-tile Raw machine under
//! the Rawcc first-definition policy, and shows where each accumulator
//! was bound.
//!
//! ```text
//! cargo run --release --example multi_region
//! ```

use convergent_scheduling::core::ConvergentScheduler;
use convergent_scheduling::machine::Machine;
use convergent_scheduling::schedulers::{schedule_program, CrossRegionPolicy};
use convergent_scheduling::workloads::{multi_region_accumulate, MultiRegionParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = multi_region_accumulate(MultiRegionParams::small());
    let machine = Machine::raw(4);
    println!(
        "{} regions, {} instructions, {} cross-region values\n",
        program.units().len(),
        program.len(),
        program.values().len()
    );

    let scheduler = ConvergentScheduler::raw_default();
    let ps = schedule_program(
        &program,
        &machine,
        &scheduler,
        CrossRegionPolicy::FirstDefinition,
    )?;

    for (k, (unit, schedule)) in program.units().iter().zip(ps.schedules()).enumerate() {
        println!(
            "region {k} ({}): {} cycles, {} transfers",
            unit.name(),
            schedule.makespan(),
            schedule.comm_count()
        );
    }
    println!();
    for v in program.values() {
        println!(
            "value {:<8} bound to {}",
            v.name(),
            ps.binding(v.name()).expect("scheduled")
        );
    }
    println!("\ntotal: {} cycles back-to-back", ps.total_cycles());
    Ok(())
}
