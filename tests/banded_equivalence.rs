//! End-to-end equality of the banded and dense preference-map layouts:
//! for every built-in workload (the table2/figure8 suites) on both a
//! Raw and a Chorus VLIW machine, the convergent scheduler must
//! produce *identical* outcomes — assignment, priorities, convergence
//! trace, and the final space-time schedule — regardless of layout.
//! The banded map is an exact representation change, not an
//! approximation.

use convergent_scheduling::core::ConvergentScheduler;
use convergent_scheduling::ir::SchedulingUnit;
use convergent_scheduling::machine::Machine;
use convergent_scheduling::sim::validate;
use convergent_scheduling::workloads as wl;

fn workloads(banks: u16) -> Vec<SchedulingUnit> {
    vec![
        wl::cholesky(wl::CholeskyParams::for_banks(banks)),
        wl::tomcatv(wl::StencilParams::for_banks(banks)),
        wl::vpenta(wl::VpentaParams::for_banks(banks)),
        wl::mxm(wl::MxmParams::for_banks(banks)),
        wl::fpppp_kernel(wl::FppppParams::small()),
        wl::sha(wl::ShaParams::small()),
        wl::swim(wl::StencilParams::for_banks(banks)),
        wl::jacobi(wl::StencilParams::for_banks(banks)),
        wl::life(wl::StencilParams::for_banks(banks)),
        wl::vvmul(wl::VvmulParams::for_banks(banks)),
        wl::rbsorf(wl::StencilParams::for_banks(banks)),
        wl::yuv(wl::YuvParams::for_banks(banks)),
        wl::fir(wl::FirParams::for_banks(banks)),
    ]
}

fn check_machine(machine: &Machine, mk: fn() -> ConvergentScheduler) {
    for unit in workloads(machine.n_clusters() as u16) {
        let banded = mk()
            .schedule(unit.dag(), machine)
            .unwrap_or_else(|e| panic!("{}: banded schedule failed: {e}", unit.name()));
        let dense = mk()
            .with_reference_map(true)
            .schedule(unit.dag(), machine)
            .unwrap_or_else(|e| panic!("{}: dense schedule failed: {e}", unit.name()));
        assert_eq!(
            banded.assignment(),
            dense.assignment(),
            "{}: assignments diverge",
            unit.name()
        );
        assert_eq!(
            banded.trace(),
            dense.trace(),
            "{}: convergence traces diverge",
            unit.name()
        );
        assert_eq!(
            banded.schedule(),
            dense.schedule(),
            "{}: schedules diverge",
            unit.name()
        );
        validate(unit.dag(), machine, banded.schedule())
            .unwrap_or_else(|e| panic!("{}: schedule invalid: {e}", unit.name()));
    }
}

#[test]
fn banded_and_dense_schedules_are_identical_on_raw() {
    check_machine(&Machine::raw(4), ConvergentScheduler::raw_default);
}

#[test]
fn banded_and_dense_schedules_are_identical_on_vliw() {
    check_machine(&Machine::chorus_vliw(4), ConvergentScheduler::vliw_tuned);
}
