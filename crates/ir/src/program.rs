//! Multi-region programs and cross-region values.
//!
//! The paper (Section 5): "when a value is live across multiple
//! scheduling regions, its definitions and uses must be mapped to a
//! consistent cluster. On Rawcc, this cluster is the cluster of the
//! first definition/use encountered by the compiler; subsequent
//! definitions and uses become preplaced instructions. On Chorus, all
//! values that are live across multiple scheduling regions are mapped
//! to the first cluster."
//!
//! A [`Program`] is an ordered list of scheduling units plus the
//! [`CrossValue`]s that connect them; the multi-region driver in the
//! schedulers crate turns those links into preplacement constraints.

use std::error::Error;
use std::fmt;

use crate::{InstrId, SchedulingUnit};

/// A value live across scheduling regions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrossValue {
    name: String,
    def: (usize, InstrId),
    uses: Vec<(usize, InstrId)>,
}

impl CrossValue {
    /// The value's name (for reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `(unit index, instruction)` producing the value.
    #[must_use]
    pub fn def(&self) -> (usize, InstrId) {
        self.def
    }

    /// `(unit index, instruction)` pairs consuming the value in later
    /// regions.
    #[must_use]
    pub fn uses(&self) -> &[(usize, InstrId)] {
        &self.uses
    }
}

/// Errors building a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgramError {
    /// A link referenced a unit index that does not exist.
    UnknownUnit(usize),
    /// A link referenced an instruction outside its unit.
    UnknownInstr {
        /// Offending unit index.
        unit: usize,
        /// Offending instruction id.
        instr: InstrId,
    },
    /// A use appears at or before its definition's region.
    UseBeforeDef {
        /// The cross-value's name.
        name: String,
    },
    /// A cross-value has no uses.
    Unused {
        /// The cross-value's name.
        name: String,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnknownUnit(u) => write!(f, "program has no unit {u}"),
            ProgramError::UnknownInstr { unit, instr } => {
                write!(f, "unit {unit} has no instruction {instr}")
            }
            ProgramError::UseBeforeDef { name } => {
                write!(
                    f,
                    "cross-region value '{name}' is used at or before its definition region"
                )
            }
            ProgramError::Unused { name } => {
                write!(f, "cross-region value '{name}' has no uses")
            }
        }
    }
}

impl Error for ProgramError {}

/// An ordered sequence of scheduling units linked by cross-region
/// values.
///
/// # Example
///
/// ```
/// use convergent_ir::{DagBuilder, Opcode, Program, SchedulingUnit};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Region 0 defines an accumulator; region 1 consumes it.
/// let mut b0 = DagBuilder::new();
/// let acc = b0.instr(Opcode::FAdd);
/// let mut b1 = DagBuilder::new();
/// let use_acc = b1.instr(Opcode::FMul);
/// let mut program = Program::new(vec![
///     SchedulingUnit::new("r0", b0.build()?),
///     SchedulingUnit::new("r1", b1.build()?),
/// ]);
/// program.link("acc", (0, acc), vec![(1, use_acc)])?;
/// assert_eq!(program.values().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Program {
    units: Vec<SchedulingUnit>,
    values: Vec<CrossValue>,
}

impl Program {
    /// Creates a program from ordered scheduling units.
    #[must_use]
    pub fn new(units: Vec<SchedulingUnit>) -> Self {
        Program {
            units,
            values: Vec::new(),
        }
    }

    /// Declares a value defined by `def` and consumed by `uses` in
    /// later regions.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] for out-of-range units/instructions,
    /// uses at or before the definition region, or an empty use list.
    pub fn link(
        &mut self,
        name: impl Into<String>,
        def: (usize, InstrId),
        uses: Vec<(usize, InstrId)>,
    ) -> Result<(), ProgramError> {
        let name = name.into();
        if uses.is_empty() {
            return Err(ProgramError::Unused { name });
        }
        self.check_site(def)?;
        for &u in &uses {
            self.check_site(u)?;
            if u.0 <= def.0 {
                return Err(ProgramError::UseBeforeDef { name });
            }
        }
        self.values.push(CrossValue { name, def, uses });
        Ok(())
    }

    fn check_site(&self, (unit, instr): (usize, InstrId)) -> Result<(), ProgramError> {
        let u = self
            .units
            .get(unit)
            .ok_or(ProgramError::UnknownUnit(unit))?;
        if instr.index() >= u.dag().len() {
            return Err(ProgramError::UnknownInstr { unit, instr });
        }
        Ok(())
    }

    /// The scheduling units, in execution order.
    #[must_use]
    pub fn units(&self) -> &[SchedulingUnit] {
        &self.units
    }

    /// The declared cross-region values.
    #[must_use]
    pub fn values(&self) -> &[CrossValue] {
        &self.values
    }

    /// Total instruction count across all regions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.units.iter().map(|u| u.dag().len()).sum()
    }

    /// Returns `true` if the program has no units.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DagBuilder, Opcode};

    fn two_region_program() -> Program {
        let mut b0 = DagBuilder::new();
        b0.instr(Opcode::FAdd);
        let mut b1 = DagBuilder::new();
        b1.instr(Opcode::FMul);
        Program::new(vec![
            SchedulingUnit::new("r0", b0.build().unwrap()),
            SchedulingUnit::new("r1", b1.build().unwrap()),
        ])
    }

    #[test]
    fn link_accepts_forward_uses() {
        let mut p = two_region_program();
        p.link("v", (0, InstrId::new(0)), vec![(1, InstrId::new(0))])
            .unwrap();
        assert_eq!(p.values()[0].name(), "v");
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn link_rejects_backward_and_same_region_uses() {
        let mut p = two_region_program();
        let err = p
            .link("v", (1, InstrId::new(0)), vec![(1, InstrId::new(0))])
            .unwrap_err();
        assert!(matches!(err, ProgramError::UseBeforeDef { .. }));
    }

    #[test]
    fn link_rejects_bad_sites() {
        let mut p = two_region_program();
        assert!(matches!(
            p.link("v", (5, InstrId::new(0)), vec![(1, InstrId::new(0))]),
            Err(ProgramError::UnknownUnit(5))
        ));
        assert!(matches!(
            p.link("v", (0, InstrId::new(9)), vec![(1, InstrId::new(0))]),
            Err(ProgramError::UnknownInstr { .. })
        ));
        assert!(matches!(
            p.link("v", (0, InstrId::new(0)), vec![]),
            Err(ProgramError::Unused { .. })
        ));
    }

    #[test]
    fn errors_display() {
        let e = ProgramError::UseBeforeDef { name: "x".into() };
        assert!(e.to_string().contains('x'));
    }
}
