//! Soundness of the abstract contract prover over the fuzz stream.
//!
//! The abstract interpreter claims its `Proven` verdicts hold *for all
//! inputs*; `csched` trusts that claim enough to skip the recorded
//! probe runs entirely. This test confronts the claim with the same
//! deterministic graph stream the differential fuzzer sweeps: for 500
//! seed-0 cases, every pass of the machine-matched builtin sequence is
//! (a) proven in full by the prover and (b) re-verified *empirically*
//! on the actual generated graph via the recording proxy. A single
//! disagreement — a statically proven clause that produces a `CS06x`
//! diagnostic on a real graph — fails the test.
//!
//! Plain `#[test]`, seed-pinned: no proptest shrinking is needed
//! because the stream itself is replayable (`fuzz --seed 0`).

use convergent_bench::cases::{case_stream, MACHINES};
use convergent_core::{prove_pass, verify_pass_on, ConvergentScheduler, Sequence};

const SEED: u64 = 0;
const BUDGET: usize = 500;

#[test]
fn proven_clauses_hold_empirically_over_the_fuzz_stream() {
    let cases = case_stream(SEED, BUDGET, None, None, MACHINES);
    assert_eq!(cases.len(), BUDGET);
    let mut graphs = 0usize;
    let mut disagreements: Vec<String> = Vec::new();
    for case in &cases {
        let (machine, unit) = case.instantiate();
        // The same sequence choice the fuzzer's convergent scheduler
        // makes (see `ConvergentScheduler::{raw_default,vliw_tuned}`).
        let seq = if machine.comm().register_mapped {
            Sequence::raw()
        } else {
            Sequence::vliw_tuned()
        };
        graphs += 1;
        for pass in seq.passes() {
            let (proof, static_diags) = prove_pass(pass.as_ref());
            assert!(
                proof.all_proven() && static_diags.is_empty(),
                "builtin pass {} must prove statically: {proof:?} {static_diags:?}",
                pass.name()
            );
            let label = format!("case{}-{}", case.id, case.family);
            for d in verify_pass_on(pass.as_ref(), &machine, &label, unit.dag()) {
                disagreements.push(format!(
                    "case {} ({} on {}): pass {}: {d}",
                    case.id,
                    case.family,
                    case.machine_spec,
                    pass.name()
                ));
            }
        }
    }
    assert_eq!(graphs, BUDGET);
    assert!(
        disagreements.is_empty(),
        "{} statically proven clause(s) violated empirically:\n{}",
        disagreements.len(),
        disagreements.join("\n")
    );
    // Sanity: the scheduler type the fuzzer builds really uses these
    // sequences (a rename would silently decouple this test).
    let _ = (
        ConvergentScheduler::raw_default(),
        ConvergentScheduler::vliw_tuned(),
    );
}
