//! Deterministic fuzz-case stream shared by the `fuzz` binary and the
//! lint-cleanliness tests.
//!
//! A case is one `(graph family, size, seed) × machine preset` cell.
//! The stream is produced by a single SplitMix64 generator, so
//! `(seed, budget)` fixes the entire sweep: the fuzzer, the check
//! scripts' `--lint-only` smoke, and the `tests/lint_clean.rs`
//! acceptance test all see the exact same graphs for the same seed.

use convergent_ir::SchedulingUnit;
use convergent_machine::Machine;
use convergent_workloads::{
    deep_chain, disconnected, fully_preplaced, layered, op_class_desert, parallel_chains,
    series_parallel, wide_fanin, LayeredParams,
};

/// Machine presets swept by the fuzzer: every Raw tile count the
/// router handles, the Chorus VLIW widths from the paper, and the
/// single-cluster degenerate machine.
pub const MACHINES: &[&str] = &[
    "raw1", "raw2", "raw3", "raw4", "raw5", "raw6", "raw7", "raw8", "raw9", "raw10", "raw11",
    "raw12", "raw13", "raw14", "raw15", "raw16", "vliw1", "vliw2", "vliw4", "vliw8",
];

/// Graph families the generator draws from.
pub const FAMILIES: &[&str] = &[
    "layered",
    "layered-preplaced",
    "series-parallel",
    "parallel-chains",
    "deep-chain",
    "wide-fanin",
    "fully-preplaced",
    "op-class-desert",
    "disconnected",
];

/// Builds a machine from a `rawN`/`vliwN` preset spec.
///
/// # Panics
///
/// Panics if `spec` is not one of the [`MACHINES`] presets.
#[must_use]
pub fn machine_from_spec(spec: &str) -> Machine {
    if let Some(n) = spec.strip_prefix("raw") {
        return Machine::raw(n.parse().expect("preset specs parse"));
    }
    if let Some(n) = spec.strip_prefix("vliw") {
        return Machine::chorus_vliw(n.parse().expect("preset specs parse"));
    }
    unreachable!("presets are rawN/vliwN");
}

/// SplitMix64: a tiny, high-quality deterministic generator so the
/// harness does not depend on the `rand` crate at run time.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Instantiates one graph family at the given size and seed.
///
/// # Panics
///
/// Panics if `family` is not one of the [`FAMILIES`] names.
#[must_use]
pub fn build_unit(family: &str, size: usize, banks: u16, seed: u64) -> SchedulingUnit {
    match family {
        "layered" => layered(LayeredParams::new(size, seed).with_width(1 + size / 8)),
        "layered-preplaced" => layered(
            LayeredParams::new(size, seed)
                .with_width(1 + size / 10)
                .with_preplacement(0.5, banks),
        ),
        "series-parallel" => series_parallel(size, seed),
        "parallel-chains" => parallel_chains(1 + size / 10, 1 + size % 10),
        "deep-chain" => deep_chain(size),
        "wide-fanin" => wide_fanin(size, banks, seed),
        "fully-preplaced" => fully_preplaced(size, banks, seed),
        "op-class-desert" => op_class_desert(size, seed),
        // Component count rides the seed so the sweep covers both
        // near-connected and dust-heavy shapes.
        "disconnected" => disconnected(2 + (seed % 7) as usize, size, seed),
        other => unreachable!("unknown family {other}"),
    }
}

/// One (graph, machine) cell of the sweep.
pub struct Case {
    /// Position in the stream (stable for a given seed).
    pub id: usize,
    /// Graph family name (one of [`FAMILIES`]).
    pub family: &'static str,
    /// Machine preset spec (one of [`MACHINES`]).
    pub machine_spec: &'static str,
    /// Instruction count passed to the family generator.
    pub size: usize,
    /// Seed passed to the family generator.
    pub unit_seed: u64,
}

impl Case {
    /// Builds this case's machine and graph.
    #[must_use]
    pub fn instantiate(&self) -> (Machine, SchedulingUnit) {
        let machine = machine_from_spec(self.machine_spec);
        let unit = build_unit(
            self.family,
            self.size,
            machine.n_clusters() as u16,
            self.unit_seed,
        );
        (machine, unit)
    }
}

/// The deterministic case list: every draw comes from one SplitMix64
/// stream, so `(seed, budget)` fixes the entire sweep. Pinned
/// dimensions still consume their draws, keeping the unpinned
/// dimensions' sequence identical to the full sweep's.
#[must_use]
pub fn case_stream(
    seed: u64,
    budget: usize,
    family: Option<&'static str>,
    size: Option<usize>,
    machines: &[&'static str],
) -> Vec<Case> {
    let mut state = seed ^ 0xC0FF_EE00_D15E_A5E5;
    (0..budget)
        .map(|id| {
            let r0 = splitmix64(&mut state);
            let r1 = splitmix64(&mut state);
            let r2 = splitmix64(&mut state);
            Case {
                id,
                family: family.unwrap_or(FAMILIES[(r0 % FAMILIES.len() as u64) as usize]),
                machine_spec: machines[(r1 % machines.len() as u64) as usize],
                size: size.unwrap_or(3 + (r2 % 90) as usize),
                unit_seed: splitmix64(&mut state),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_dimension_pinning_is_transparent() {
        let full = case_stream(7, 20, None, None, MACHINES);
        let again = case_stream(7, 20, None, None, MACHINES);
        for (a, b) in full.iter().zip(&again) {
            assert_eq!(a.family, b.family);
            assert_eq!(a.machine_spec, b.machine_spec);
            assert_eq!(a.size, b.size);
            assert_eq!(a.unit_seed, b.unit_seed);
        }
        // Pinning the family keeps every other dimension's draws.
        let pinned = case_stream(7, 20, Some("deep-chain"), None, MACHINES);
        for (a, b) in full.iter().zip(&pinned) {
            assert_eq!(b.family, "deep-chain");
            assert_eq!(a.machine_spec, b.machine_spec);
            assert_eq!(a.size, b.size);
            assert_eq!(a.unit_seed, b.unit_seed);
        }
    }

    #[test]
    fn every_preset_and_family_instantiates() {
        for &spec in MACHINES {
            let machine = machine_from_spec(spec);
            assert!(machine.n_clusters() >= 1);
        }
        for &family in FAMILIES {
            let unit = build_unit(family, 12, 4, 3);
            assert!(!unit.dag().is_empty(), "{family}");
        }
    }
}
